#ifndef RELACC_BENCH_TOPK_SWEEP_H_
#define RELACC_BENCH_TOPK_SWEEP_H_

// Shared driver for the top-k coverage figures 6(b)/(c)/(f)/(g).

#include "common.h"

namespace relacc {
namespace bench {

/// Fig. 6(b)/(f): coverage (% of entities whose true target is among the
/// top-k candidates) as k varies, for TopKCT under the three Σ filters and
/// TopKCTh under both forms. `sample` caps the number of entities.
inline void RunKSweep(const EntityDataset& ds, int sample) {
  const int n = std::min<int>(sample, static_cast<int>(ds.entities.size()));
  const std::vector<int> ks = {5, 10, 15, 20, 25};
  struct Series {
    const char* label;
    TopKAlgo algo;
    RuleFormFilter filter;
  };
  const std::vector<Series> series = {
      {"TopKCT  form (1) only", TopKAlgo::kTopKCT, RuleFormFilter::kForm1Only},
      {"TopKCT  form (2) only", TopKAlgo::kTopKCT, RuleFormFilter::kForm2Only},
      {"TopKCT  both forms   ", TopKAlgo::kTopKCT, RuleFormFilter::kBoth},
      {"TopKCTh both forms   ", TopKAlgo::kTopKCTh, RuleFormFilter::kBoth},
  };
  std::printf("%-24s", "series \\ k");
  for (int k : ks) std::printf("  k=%-4d", k);
  std::printf("\n");
  for (const Series& s : series) {
    std::vector<int> hits(ks.size(), 0);
    for (int i = 0; i < n; ++i) {
      const int rank = TruthRank(s.algo, ds, i, ds.masters, s.filter,
                                 ks.back());
      if (rank == 0) continue;
      for (std::size_t j = 0; j < ks.size(); ++j) {
        if (rank <= ks[j]) ++hits[j];
      }
    }
    std::printf("%-24s", s.label);
    for (std::size_t j = 0; j < ks.size(); ++j) {
      std::printf("  %s", Pct(static_cast<double>(hits[j]) / n).c_str());
    }
    std::printf("\n");
  }
}

/// Fig. 6(c)/(g): coverage at k=15 as ‖Im‖ varies, for TopKCT and TopKCTh.
inline void RunImSweep(const EntityDataset& ds, const std::vector<int>& sizes,
                       int sample) {
  const int n = std::min<int>(sample, static_cast<int>(ds.entities.size()));
  const int k = 15;
  for (const TopKAlgo algo : {TopKAlgo::kTopKCT, TopKAlgo::kTopKCTh}) {
    std::printf("%-10s", AlgoName(algo));
    for (int size : sizes) {
      const std::vector<Relation> masters = ds.TruncatedMasters(size);
      int hits = 0;
      for (int i = 0; i < n; ++i) {
        const int rank =
            TruthRank(algo, ds, i, masters, RuleFormFilter::kBoth, k);
        if (rank > 0 && rank <= k) ++hits;
      }
      std::printf("  |Im|=%-5d %s", size,
                  Pct(static_cast<double>(hits) / n).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace relacc

#endif  // RELACC_BENCH_TOPK_SWEEP_H_
