#ifndef RELACC_BENCH_SYN_SWEEP_H_
#define RELACC_BENCH_SYN_SWEEP_H_

// Shared driver for the Syn efficiency figures 6(i)-(l): elapsed time of
// RankJoinCT / TopKCT / TopKCTh while one of (‖Ie‖, ‖Σ‖, ‖Im‖, k) varies
// and the others stay at the paper's defaults (900, 60, 300, 15).

#include "common.h"
#include "datagen/syn_generator.h"

namespace relacc {
namespace bench {

struct SynPoint {
  int x;
  SynConfig config;
  int k = 15;
};

inline void RunSynSweep(const char* x_label,
                        const std::vector<SynPoint>& points) {
  std::printf("%-8s", x_label);
  for (const SynPoint& p : points) std::printf("  %8d", p.x);
  std::printf("\n");
  // One generated dataset + engine per point, shared by the 3 algorithms
  // (the paper also reuses the deduced target across algorithms).
  std::vector<double> times[3];
  for (const SynPoint& p : points) {
    const SynDataset syn = GenerateSyn(p.config);
    const GroundProgram prog =
        Instantiate(syn.spec.ie, syn.spec.masters, syn.spec.rules);
    ChaseEngine engine(syn.spec.ie, &prog, syn.spec.config);
    const ChaseOutcome out = engine.RunFromInitial();
    if (!out.church_rosser) {
      std::fprintf(stderr, "syn spec not CR at x=%d: %s\n", p.x,
                   out.violation.c_str());
      for (auto& t : times) t.push_back(-1.0);
      continue;
    }
    // Warm the check checkpoint so all algorithms pay the same base cost.
    (void)engine.CheckCandidate(syn.spec.ie.tuple(0));
    const TopKAlgo algos[3] = {TopKAlgo::kRankJoinCT, TopKAlgo::kTopKCT,
                               TopKAlgo::kTopKCTh};
    for (int a = 0; a < 3; ++a) {
      TopKResult result;
      const double ms = TimeMs([&] {
        result = RunTopK(algos[a], engine, syn.spec.masters, out.target,
                         syn.pref, p.k);
      });
      times[a].push_back(ms);
    }
  }
  const char* names[3] = {"RankJoinCT", "TopKCT", "TopKCTh"};
  for (int a = 0; a < 3; ++a) {
    std::printf("%-10s (ms)", names[a]);
    for (double t : times[a]) std::printf("  %8.1f", t);
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace relacc

#endif  // RELACC_BENCH_SYN_SWEEP_H_
