// Fig. 6(c): Med — top-k coverage (k=15) as ‖Im‖ grows from 0 to 2400.
// Paper: monotone improvement; still ~63% with no master data at all.

#include "topk_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(c): Med coverage vs |Im| at k=15 "
              "(paper: ~63%% at 0, rising) ==\n");
  const EntityDataset ds = GenerateProfile(MedConfig());
  RunImSweep(ds, {0, 600, 1200, 1800, 2400}, /*sample=*/400);
  std::printf("(sampled 400 of %zu entities)\n", ds.entities.size());
  return 0;
}
