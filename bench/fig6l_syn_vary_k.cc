// Fig. 6(l): Syn — elapsed time vs k in [5, 25] (defaults otherwise).

#include "syn_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(l): Syn time vs k ==\n");
  std::vector<SynPoint> points;
  for (int k : {5, 10, 15, 20, 25}) {
    SynPoint p;
    p.x = k;
    p.k = k;
    points.push_back(p);
  }
  RunSynSweep("k", points);
  return 0;
}
