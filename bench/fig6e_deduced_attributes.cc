// Fig. 6(e): average percentage of attributes whose most accurate value is
// deduced, with Σ restricted to ARs of form (1) only / form (2) only /
// both. Paper: Med 42/20/73, CFP 55/27/83. The headline finding — the two
// forms *interact* (both > form1 + form2 alone) — must reproduce.

#include "common.h"

using namespace relacc;
using namespace relacc::bench;

namespace {

double AvgDeduced(const EntityDataset& ds, RuleFormFilter filter) {
  double sum = 0.0;
  for (std::size_t i = 0; i < ds.entities.size(); ++i) {
    sum += ChaseEntity(ds, static_cast<int>(i), ds.masters, filter)
               .quality.attrs_deduced;
  }
  return sum / static_cast<double>(ds.entities.size());
}

void RunDataset(const EntityDataset& ds) {
  const double f1 = AvgDeduced(ds, RuleFormFilter::kForm1Only);
  const double f2 = AvgDeduced(ds, RuleFormFilter::kForm2Only);
  const double both = AvgDeduced(ds, RuleFormFilter::kBoth);
  std::printf("%-4s | form (1) only %s | form (2) only %s | both %s | "
              "interaction: both exceeds max(single-form) by %+.1f pts\n",
              ds.name.c_str(), Pct(f1).c_str(), Pct(f2).c_str(),
              Pct(both).c_str(), 100.0 * (both - std::max(f1, f2)));
}

}  // namespace

int main() {
  std::printf("== Fig 6(e): %% attributes deduced by AR form "
              "(paper: Med 42/20/73, CFP 55/27/83) ==\n");
  RunDataset(GenerateProfile(MedConfig()));
  RunDataset(GenerateProfile(CfpConfig()));
  return 0;
}
