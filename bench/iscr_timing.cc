// IsCR timing (Sec. 7, text: "IsCR takes about 10ms" per entity) plus the
// interactive-session resume cost: the Fig. 3 loop re-chases once per user
// revision via ChaseEngine::ResumeWith, and this bench pits the
// trail-native resume (a persistent session state that extends across
// accumulating revisions and rolls back through its trail) against the
// kCopy escape hatch (deep-copy the
// all-null checkpoint per revision, O(attrs · n²/64) words). Outcomes must
// be identical — Church-Rosser flag, target, violation emptiness and the
// per-call stats delta — and trail is expected to win by ≥ 5x from n = 64
// up on med-profile entities (the copy cost is quadratic in n; the trail
// cost follows the resume's footprint).
//
// Emits BENCH_iscr_timing.json (bench::JsonReport); exits nonzero only on
// an outcome mismatch, so perf noise cannot break CI.

#include <cstdio>
#include <string>
#include <vector>

#include "chase/chase_engine.h"
#include "common.h"
#include "datagen/profile_generator.h"
#include "datagen/syn_generator.h"
#include "rules/grounding.h"
#include "topk/preference.h"

namespace relacc {
namespace bench {
namespace {

/// Average IsCR wall time (grounding + index + chase) over a dataset.
void TimeIsCR(JsonReport* report, const char* profile,
              const EntityDataset& ds, int entities) {
  const int n = std::min<int>(entities, static_cast<int>(ds.entities.size()));
  int church_rosser = 0;
  const double ms = TimeMs([&] {
    for (int i = 0; i < n; ++i) {
      church_rosser += IsCR(ds.SpecFor(i)).church_rosser ? 1 : 0;
    }
  });
  std::printf("%-24s %6d entities %10.3f ms/entity (%d CR)\n",
              profile, n, ms / n, church_rosser);
  JsonReport::Row row;
  row.Set("section", "iscr")
      .Set("profile", profile)
      .Set("entities", n)
      .Set("church_rosser", church_rosser)
      .Set("ms_per_entity", ms / n);
  report->Add(std::move(row));
}

/// The rounds of one simulated interactive session over `spec`:
/// cumulative truth reveals — round r designates the true values of the
/// first r still-null attributes, exactly the Exp-3 shape RunFramework
/// feeds ResumeWith. Under kTrail each round extends the session prefix,
/// so only the new reveal is chased in; kCopy replays the whole prefix
/// on a fresh checkpoint copy every round.
std::vector<Tuple> SessionRounds(const Specification& spec,
                                 const Tuple& deduced, const Tuple& truth) {
  const int num_attrs = spec.ie.schema().size();
  std::vector<Tuple> rounds;
  Tuple cumulative(std::vector<Value>(num_attrs, Value::Null()));
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (!deduced.at(a).is_null()) continue;
    if (a < truth.size() && !truth.at(a).is_null()) {
      cumulative.set(a, truth.at(a));
      rounds.push_back(cumulative);
    }
  }
  return rounds;
}

/// Independent one-attribute revisions (no two extend each other), so a
/// trail session resets to the checkpoint on every call — the
/// no-prefix-reuse worst case.
std::vector<Tuple> IndependentRevisions(const Specification& spec,
                                        const Tuple& deduced) {
  const int num_attrs = spec.ie.schema().size();
  std::vector<Tuple> revisions;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (!deduced.at(a).is_null()) continue;
    int taken = 0;
    for (const Value& v :
         ActiveDomain(spec.ie, spec.masters, a, /*defaults=*/false)) {
      if (taken >= 2) break;
      Tuple single(std::vector<Value>(num_attrs, Value::Null()));
      single.set(a, v);
      revisions.push_back(std::move(single));
      ++taken;
    }
  }
  return revisions;
}

struct ResumeRun {
  double ms = 0.0;
  /// One entry per revision: CR flag and target (or violation marker) —
  /// must match across strategies. Stats are excluded deliberately: a
  /// session-extending trail resume legitimately reports less work.
  std::vector<std::string> outcomes;
};

ResumeRun RunResumes(const Specification& spec, const GroundProgram& prog,
                     CheckStrategy strategy,
                     const std::vector<Tuple>& revisions, int rounds) {
  ChaseConfig config = spec.config;
  config.check_strategy = strategy;
  ChaseEngine engine(spec.ie, &prog, config);
  ResumeRun run;
  if (!engine.RunFromCheckpoint().church_rosser) return run;
  // Warm-up: builds the kTrail session state (a one-time copy a
  // framework session amortizes over all its rounds).
  (void)engine.ResumeWith(revisions[0]);
  run.ms = TimeMs([&] {
    for (int r = 0; r < rounds; ++r) {
      for (const Tuple& revision : revisions) {
        const ChaseOutcome out = engine.ResumeWith(revision);
        if (r == 0) {
          run.outcomes.push_back(out.church_rosser ? out.target.ToString()
                                                   : "abort");
        }
      }
    }
  });
  return run;
}

int Run() {
  const bool small = SmallScale();
  JsonReport report("iscr_timing");

  std::printf("== IsCR per entity (grounding + chase) ==\n");
  {
    ProfileConfig c = MedConfig();
    c.num_entities = small ? 24 : 200;
    c.master_size = small ? 24 : 178;
    const EntityDataset med = GenerateProfile(c);
    TimeIsCR(&report, "med", med, small ? 24 : 200);
    const EntityDataset cfp =
        GenerateProfile(small ? [] {
          ProfileConfig cc = CfpConfig();
          cc.num_entities = 12;
          cc.master_size = 12;
          return cc;
        }() : CfpConfig());
    TimeIsCR(&report, "cfp", cfp, small ? 12 : 100);
  }

  std::printf("\n== per-revision ResumeWith: trail vs copy "
              "(med profile, exact |Ie| per point%s) ==\n",
              small ? "; RELACC_BENCH_SMALL" : "");
  std::printf("%6s %-12s %10s %14s %14s %9s\n", "n", "kind", "revisions",
              "copy us/rev", "trail us/rev", "speedup");

  const std::vector<int> sizes =
      small ? std::vector<int>{16, 32} : std::vector<int>{16, 64, 96};
  const int64_t target_resumes = small ? 128 : 512;
  bool all_identical = true;

  for (int n : sizes) {
    ProfileConfig config = MedConfig(/*seed=*/4321 + n);
    config.num_entities = 6;
    config.min_tuples = n;
    config.max_tuples = n;
    config.master_size = 200;
    // Every free attribute corrupted: observations disagree, the chase
    // leaves them null, and the session has real revisions to make. Med
    // proper has two free attributes; eight of them here make the
    // session a realistic multi-round interaction (the paper's Exp-3
    // reports up to ~4 rounds even with top-k suggestions absorbing
    // most of the work).
    config.free_corruption_prob = 1.0;
    config.num_free_attrs = 8;
    const EntityDataset ds = GenerateProfile(config);

    bool found = false;
    for (int i = 0; i < static_cast<int>(ds.entities.size()) && !found; ++i) {
      const Specification spec = ds.SpecFor(i);
      const GroundProgram prog =
          Instantiate(spec.ie, spec.masters, spec.rules);
      ChaseEngine probe(spec.ie, &prog, spec.config);
      const ChaseOutcome outcome = probe.RunFromCheckpoint();
      if (!outcome.church_rosser || outcome.target.IsComplete()) continue;
      const std::vector<Tuple> session =
          SessionRounds(spec, outcome.target, ds.truths[i]);
      const std::vector<Tuple> independent =
          IndependentRevisions(spec, outcome.target);
      if (session.empty() || independent.empty()) continue;
      found = true;

      const struct {
        const char* kind;
        const std::vector<Tuple>& revisions;
      } kinds[] = {{"session", session}, {"independent", independent}};
      for (const auto& [kind, revisions] : kinds) {
        const int rounds = static_cast<int>(std::max<int64_t>(
            1, target_resumes / static_cast<int64_t>(revisions.size())));
        const int64_t resumes =
            static_cast<int64_t>(revisions.size()) * rounds;
        const ResumeRun copy =
            RunResumes(spec, prog, CheckStrategy::kCopy, revisions, rounds);
        const ResumeRun trail =
            RunResumes(spec, prog, CheckStrategy::kTrail, revisions, rounds);
        if (copy.outcomes != trail.outcomes) all_identical = false;

        const double copy_us = copy.ms * 1e3 / static_cast<double>(resumes);
        const double trail_us =
            trail.ms * 1e3 / static_cast<double>(resumes);
        const double speedup = trail.ms > 0.0 ? copy.ms / trail.ms : 0.0;
        std::printf("%6d %-12s %10zu %14.1f %14.1f %8.2fx\n", n, kind,
                    revisions.size(), copy_us, trail_us, speedup);

        JsonReport::Row row;
        row.Set("section", "resume_trail_vs_copy")
            .Set("kind", kind)
            .Set("n", n)
            .Set("revisions", static_cast<int64_t>(revisions.size()))
            .Set("rounds", rounds)
            .Set("copy_us_per_resume", copy_us)
            .Set("trail_us_per_resume", trail_us)
            .Set("speedup", speedup);
        report.Add(std::move(row));
      }
    }
    if (!found) {
      std::printf("%6d   (no incomplete Church-Rosser entity; skipped)\n",
                  n);
    }
  }

  report.Write();
  std::printf("resume outcomes identical across strategies: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }
