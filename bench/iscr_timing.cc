// IsCR timing (Sec. 7, text): "IsCR takes about 10ms" per entity; grounding
// + Church-Rosser check + target deduction. google-benchmark over Med/CFP
// entities and the Syn instance at the paper's default sizes.

#include <benchmark/benchmark.h>

#include "chase/chase_engine.h"
#include "datagen/profile_generator.h"
#include "datagen/syn_generator.h"

namespace {

using namespace relacc;

const EntityDataset& MedDataset() {
  static const EntityDataset* ds = [] {
    ProfileConfig c = MedConfig();
    c.num_entities = 200;
    c.master_size = 178;
    return new EntityDataset(GenerateProfile(c));
  }();
  return *ds;
}

const EntityDataset& CfpDataset() {
  static const EntityDataset* ds =
      new EntityDataset(GenerateProfile(CfpConfig()));
  return *ds;
}

/// Full IsCR: Instantiation + index + chase, per entity.
void BM_IsCR_Med(benchmark::State& state) {
  const EntityDataset& ds = MedDataset();
  int i = 0;
  for (auto _ : state) {
    const Specification spec = ds.SpecFor(i % 200);
    benchmark::DoNotOptimize(IsCR(spec).church_rosser);
    ++i;
  }
}
BENCHMARK(BM_IsCR_Med)->Unit(benchmark::kMillisecond);

void BM_IsCR_Cfp(benchmark::State& state) {
  const EntityDataset& ds = CfpDataset();
  int i = 0;
  for (auto _ : state) {
    const Specification spec = ds.SpecFor(i % 100);
    benchmark::DoNotOptimize(IsCR(spec).church_rosser);
    ++i;
  }
}
BENCHMARK(BM_IsCR_Cfp)->Unit(benchmark::kMillisecond);

/// Chase only (index/grounding prebuilt) — the incremental cost per chase
/// run, which the top-k `check` pays.
void BM_ChaseOnly_Med(benchmark::State& state) {
  const EntityDataset& ds = MedDataset();
  const Specification spec = ds.SpecFor(0);
  const GroundProgram prog = Instantiate(spec.ie, spec.masters, spec.rules);
  const ChaseEngine engine(spec.ie, &prog, spec.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunFromInitial().church_rosser);
  }
}
BENCHMARK(BM_ChaseOnly_Med)->Unit(benchmark::kMicrosecond);

/// Syn at the paper's defaults (‖Ie‖=900, ‖Im‖=300, ‖Σ‖=60).
void BM_IsCR_Syn(benchmark::State& state) {
  SynConfig c;
  c.num_tuples = static_cast<int>(state.range(0));
  const SynDataset syn = GenerateSyn(c);
  const GroundProgram prog =
      Instantiate(syn.spec.ie, syn.spec.masters, syn.spec.rules);
  const ChaseEngine engine(syn.spec.ie, &prog, syn.spec.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunFromInitial().church_rosser);
  }
}
BENCHMARK(BM_IsCR_Syn)->Arg(300)->Arg(900)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

/// The candidate-target check from the warm checkpoint — the inner loop of
/// all top-k algorithms.
void BM_CheckCandidate_Syn(benchmark::State& state) {
  SynConfig c;
  c.num_tuples = static_cast<int>(state.range(0));
  const SynDataset syn = GenerateSyn(c);
  const GroundProgram prog =
      Instantiate(syn.spec.ie, syn.spec.masters, syn.spec.rules);
  const ChaseEngine engine(syn.spec.ie, &prog, syn.spec.config);
  const ChaseOutcome out = engine.RunFromInitial();
  Tuple candidate = out.target;
  for (AttrId a = 0; a < syn.spec.ie.schema().size(); ++a) {
    if (candidate.at(a).is_null()) {
      const auto dom = syn.spec.ie.ColumnDomain(a);
      if (!dom.empty()) candidate.set(a, dom[0]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.CheckCandidate(candidate));
  }
}
BENCHMARK(BM_CheckCandidate_Syn)->Arg(300)->Arg(900)->Arg(1500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
