// Fig. 6(b): Med — % of entities whose true target is among the top-k
// candidates, varying k in [5,25], for TopKCT under the Σ-form ablation
// and TopKCTh. Paper: rises with k; ~92% (TopKCT) / 91% (TopKCTh) at k=25;
// both forms beat either form alone.

#include "topk_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(b): Med top-k coverage vs k "
              "(paper: ~92%% at k=25) ==\n");
  const EntityDataset ds = GenerateProfile(MedConfig());
  RunKSweep(ds, /*sample=*/600);
  std::printf("(sampled 600 of %zu entities)\n", ds.entities.size());
  return 0;
}
