// Table 4: truth discovery on Rest (which restaurants are closed?).
// Paper:
//   DeduceOrder                      P 1.00  R 0.15  F1 0.26
//   voting                           P 0.62  R 0.92  F1 0.74
//   copyCEF                          P 0.76  R 0.85  F1 0.80
//   TopKCT (voting preference)       P 0.73  R 0.95  F1 0.82
//   TopKCT (copyCEF preference)      P 0.81  R 0.88  F1 0.85
// Shape to reproduce: DeduceOrder = precision champion with poor recall;
// copyCEF beats voting on F1; ARs lift both preference variants, and the
// copyCEF-preference variant is the overall best.

#include "common.h"
#include "datagen/rest_generator.h"
#include "truth/copy_cef.h"
#include "truth/deduce_order.h"
#include "truth/voting.h"

using namespace relacc;
using namespace relacc::bench;

namespace {

void Report(const char* name, const std::vector<Value>& decisions,
            const std::vector<bool>& truth) {
  const BinaryMetrics m =
      ComputeBinaryMetrics(decisions, truth, Value::Bool(true));
  std::printf("%-28s P %.2f  R %.2f  F1 %.2f\n", name, m.precision, m.recall,
              m.f1);
}

}  // namespace

int main() {
  RestConfig config;  // full scale: 5149 restaurants, 12 sources, 8 weeks
  const RestDataset ds = GenerateRest(config);
  std::printf("== Table 4: truth discovery on Rest (%d restaurants, "
              "%zu claims) ==\n",
              config.num_restaurants, ds.claims.claims().size());

  // --- baselines -----------------------------------------------------------
  Report("voting", VoteClaims(ds.claims), ds.truly_closed);

  CopyCefConfig cef_cfg;
  cef_cfg.n_false_values = 1;  // boolean attribute
  const CopyCefResult cef = RunCopyCef(ds.claims, cef_cfg);
  Report("copyCEF", cef.Decisions(), ds.truly_closed);

  const AttrId closed = ds.schema.MustIndexOf("closed");
  std::vector<Value> deduce(config.num_restaurants, Value::Null());
  std::vector<Value> topk_vote(config.num_restaurants, Value::Null());
  std::vector<Value> topk_cef(config.num_restaurants, Value::Null());
  for (int o = 0; o < config.num_restaurants; ++o) {
    const EntityInstance inst = ds.InstanceFor(o);
    if (inst.empty()) continue;
    Specification spec;
    spec.ie = inst;
    spec.rules = ds.rules;
    spec.config = ds.chase_config;
    deduce[o] = RunDeduceOrder(spec).at(closed);

    const GroundProgram prog = Instantiate(inst, spec.masters, spec.rules);
    ChaseEngine engine(inst, &prog, spec.config);
    const ChaseOutcome out = engine.RunFromInitial();
    if (!out.church_rosser) continue;
    if (!out.target.at(closed).is_null()) {
      topk_vote[o] = out.target.at(closed);
      topk_cef[o] = out.target.at(closed);
      continue;
    }
    // TopKCT with k=1, once with occurrence-count weights (voting-style
    // preference) and once with copyCEF's posteriors as weights.
    const PreferenceModel vote_pref =
        PreferenceModel::FromOccurrences(inst, spec.masters);
    const TopKResult rv =
        TopKCT(engine, spec.masters, out.target, vote_pref, 1);
    if (!rv.targets.empty()) topk_vote[o] = rv.targets[0].at(closed);

    PreferenceModel cef_pref = vote_pref;
    for (const auto& [value, prob] : cef.value_probs[o]) {
      // Scale into the occurrence-count range so the closed? weight
      // dominates ties without dwarfing the other attributes.
      cef_pref.SetWeight(closed, value, prob * 10.0);
    }
    const TopKResult rc =
        TopKCT(engine, spec.masters, out.target, cef_pref, 1);
    if (!rc.targets.empty()) topk_cef[o] = rc.targets[0].at(closed);
  }
  Report("DeduceOrder", deduce, ds.truly_closed);
  Report("TopKCT (voting pref)", topk_vote, ds.truly_closed);
  Report("TopKCT (copyCEF pref)", topk_cef, ds.truly_closed);
  return 0;
}
