// Ablation: the chase index H (DESIGN.md §3). Algorithm IsCR's cost bound
// O((|Ie|² + |Im|)·|Σ|) rests on the watch-list index over ground steps:
// each event (order pair derived / te attribute set) touches only the
// steps that mention it, and NextStep is O(1). This bench compares the
// indexed engine (chase/chase_engine.h) against the naive re-scan fixpoint
// that the explainer uses (chase/explain.h, kept simple on purpose) as the
// entity instance grows.

#include <benchmark/benchmark.h>

#include "chase/chase_engine.h"
#include "chase/explain.h"
#include "datagen/profile_generator.h"

namespace {

using namespace relacc;  // NOLINT(build/namespaces): bench-local

EntityDataset MakeDataset(int tuples_per_entity) {
  ProfileConfig config = MedConfig(/*seed=*/13);
  config.num_entities = 12;
  config.master_size = 24;
  config.min_tuples = tuples_per_entity;
  config.mean_extra_tuples = tuples_per_entity;
  config.max_tuples = tuples_per_entity * 2;
  return GenerateProfile(config);
}

void BM_IndexedChase(benchmark::State& state) {
  EntityDataset dataset = MakeDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (size_t i = 0; i < dataset.entities.size(); ++i) {
      Specification spec = dataset.SpecFor(static_cast<int>(i));
      ChaseOutcome outcome = IsCR(spec);
      benchmark::DoNotOptimize(outcome.church_rosser);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.entities.size()));
}
BENCHMARK(BM_IndexedChase)->Arg(4)->Arg(12)->Arg(28)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveRescanChase(benchmark::State& state) {
  EntityDataset dataset = MakeDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (size_t i = 0; i < dataset.entities.size(); ++i) {
      Specification spec = dataset.SpecFor(static_cast<int>(i));
      ExplainedChase explained(spec);
      benchmark::DoNotOptimize(explained.church_rosser());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.entities.size()));
}
BENCHMARK(BM_NaiveRescanChase)->Arg(4)->Arg(12)->Arg(28)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
