// Fig. 6(j): Syn — elapsed time vs ‖Σ‖ in [20, 100] (defaults otherwise).

#include "syn_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(j): Syn time vs |Sigma| ==\n");
  std::vector<SynPoint> points;
  for (int r : {20, 40, 60, 80, 100}) {
    SynPoint p;
    p.x = r;
    p.config.num_rules = r;
    points.push_back(p);
  }
  RunSynSweep("|Sigma|", points);
  return 0;
}
