// Fig. 6(i): Syn — elapsed time vs ‖Ie‖ in [300, 1500]. Paper at 1500:
// TopKCTh 159ms < TopKCT 271ms << RankJoinCT 1983ms; all scale well.

#include "syn_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(i): Syn time vs |Ie| "
              "(paper order: TopKCTh < TopKCT << RankJoinCT) ==\n");
  std::vector<SynPoint> points;
  for (int n : {300, 600, 900, 1200, 1500}) {
    SynPoint p;
    p.x = n;
    p.config.num_tuples = n;
    points.push_back(p);
  }
  RunSynSweep("|Ie|", points);
  return 0;
}
