// Fig. 7(b): Med — per-entity elapsed top-k time as ‖Im‖ grows from 0 to
// 2400 (k=15). Paper: flat-ish and under 500ms for all three algorithms.

#include "common.h"

using namespace relacc;
using namespace relacc::bench;

int main() {
  std::printf("== Fig 7(b): Med per-entity top-k time vs |Im| ==\n");
  const EntityDataset ds = GenerateProfile(MedConfig());
  const std::vector<int> sizes = {0, 600, 1200, 1800, 2400};
  const int sample = 60;
  std::printf("%-12s", "|Im|");
  for (int s : sizes) std::printf("  %8d", s);
  std::printf("\n");
  std::vector<double> times[3];
  for (int size : sizes) {
    const std::vector<Relation> masters = ds.TruncatedMasters(size);
    const TopKAlgo algos[3] = {TopKAlgo::kRankJoinCT, TopKAlgo::kTopKCT,
                               TopKAlgo::kTopKCTh};
    for (int a = 0; a < 3; ++a) {
      double total = 0.0;
      int counted = 0;
      for (int i = 0; i < sample; ++i) {
        const std::vector<AccuracyRule> rules =
            ds.FilteredRules(RuleFormFilter::kBoth);
        const GroundProgram prog =
            Instantiate(ds.entities[i], masters, rules);
        ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
        const ChaseOutcome out = engine.RunFromInitial();
        if (!out.church_rosser || out.target.IsComplete()) continue;
        const PreferenceModel pref =
            PreferenceModel::FromOccurrences(ds.entities[i], masters);
        total += TimeMs([&] {
          (void)RunTopK(algos[a], engine, masters, out.target, pref, 15);
        });
        ++counted;
      }
      times[a].push_back(counted > 0 ? total / counted : 0.0);
    }
  }
  const char* names[3] = {"RankJoinCT", "TopKCT", "TopKCTh"};
  for (int a = 0; a < 3; ++a) {
    std::printf("%-12s", names[a]);
    for (double t : times[a]) std::printf("  %6.3fms", t);
    std::printf("\n");
  }
  std::printf("(avg per incomplete entity among the first %d)\n", sample);
  return 0;
}
