// Fig. 6(d): Med — cumulative % of true targets found after h rounds of
// simulated user interaction (Exp-3). Paper: all targets within 3 rounds.

#include "interaction_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(d): Med interaction rounds (paper: <=3) ==\n");
  const EntityDataset ds = GenerateProfile(MedConfig());
  RunInteractionSweep(ds, /*sample=*/500, /*max_h=*/6);
  return 0;
}
