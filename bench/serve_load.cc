// serve_load: load generator for the `relacc serve` daemon.
//
// Drives N concurrent clients with a mixed workload — batch clients
// stream every resolved entity through a pipeline session
// (pipeline.start / submit / finish), interactive clients run
// interaction rounds (interact.start / suggest / session.close) — and
// reports p50/p99 request latency plus end-to-end entity throughput as
// a bench::JsonReport row (BENCH_serve_load.json).
//
// Two modes:
//   * embedded (default): starts an in-process serve::Server on an
//     ephemeral port over the given spec — the sanitize and bench-json
//     CI lanes use this, so the daemon runs under ASan/TSan without any
//     process choreography.
//   * external (--port N or --port-file PATH): connects to an already
//     running `relacc serve` daemon — the serve-smoke CI lane uses this
//     to exercise the real process + SIGTERM drain path.
//
// Every batch client must produce a byte-identical pipeline.finish
// report; the generator exits 1 on any divergence. --report-out writes
// that canonical report exactly as `relacc pipeline --json` prints it
// (same serializer, Dump(2) + newline), so CI can `diff` the two.
//
// Usage:
//   serve_load <spec.json> [--key attr[,attr...]] [--clients N]
//              [--iters N] [--window N] [--host H]
//              [--port N | --port-file PATH] [--report-out PATH]
//              [--replicas N] [--deadline-ms N] [--fault-inject SPEC]
//
// Fault tolerance: --replicas sizes the embedded pool, --deadline-ms
// stamps every request with a deadline, and --fault-inject arms the
// embedded daemon's deterministic fault injector. Clients fail over —
// they restart a cancelled pipeline or interaction round on a fresh
// session — and the report row gains failovers / failover_p99_ms plus
// the daemon's deadline_exceeded / shed / quarantines / readmissions
// counters (fetched over the wire before the drain).
//
// Exit codes: 0 success, 1 runtime/verification failure, 2 usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/accuracy_service.h"
#include "common.h"
#include "er/resolver.h"
#include "io/spec_io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/json.h"
#include "util/status.h"

namespace relacc {
namespace bench {
namespace {

struct LoadOptions {
  std::string spec_path;
  std::string key = "key";
  std::string host = "127.0.0.1";
  std::string port_file;
  std::string report_out;
  std::string fault_inject;  // embedded mode: ServerOptions::fault_inject
  int clients = 4;
  int iters = 0;     // interactive rounds per client; 0 = auto (small-aware)
  int port = 0;      // 0 = embedded server on an ephemeral port
  int replicas = 1;  // embedded mode: pool size
  int64_t deadline_ms = 0;  // per-request deadline_ms wire param; 0 = none
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.json> [--key attr[,attr...]] [--clients N]\n"
               "       [--iters N] [--window N] [--host H]\n"
               "       [--port N | --port-file PATH] [--report-out PATH]\n"
               "       [--replicas N] [--deadline-ms N] [--fault-inject SPEC]\n",
               argv0);
  return 2;
}

/// Nearest-rank percentile over an unsorted latency sample (ms).
double Percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<size_t>(q * static_cast<double>(sample.size()));
  return sample[rank >= sample.size() ? sample.size() - 1 : rank];
}

/// Polls `path` for up to ~10s for the daemon's --port-file handshake.
Result<int> PortFromFile(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    Result<std::string> text = ReadFile(path);
    if (text.ok() && !text.value().empty()) {
      return Result<int>(std::atoi(text.value().c_str()));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Result<int>(Status::IoError("port file " + path + " never appeared"));
}

struct ClientOutcome {
  std::vector<double> latencies_ms;
  std::vector<double> failover_ms;  ///< end-to-end time of runs that failed over
  std::string report;  ///< batch clients: pipeline.finish Dump(2)
  std::string error;   ///< non-empty on failure
  int64_t entities = 0;
  int64_t retries = 0;    ///< kResourceExhausted retries honored
  int64_t failovers = 0;  ///< runs restarted after deadline/injected faults
};

/// Bounded backpressure retries per request: a loaded daemon sheds with
/// kResourceExhausted + retry_after_ms, and a well-behaved client waits
/// that hint out (escalating, capped) instead of failing or hammering.
constexpr int kMaxRetries = 5;

/// Bounded failovers per logical run (a pipeline stream or an
/// interaction round): a deadline-exceeded or injected-fault answer
/// abandons the session and restarts the run from scratch — the daemon
/// routes the fresh session to a healthy replica.
constexpr int kMaxFailovers = 8;

/// Errors a client recovers from by restarting on a fresh session:
/// the daemon cancelled the work (deadline) or a fault was injected.
bool IsFailoverable(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kInternal;
}

/// One timed round trip; appends the latency of every attempt, honors
/// kResourceExhausted backpressure with a bounded backoff, and surfaces
/// terminal errors.
Result<Json> TimedCall(serve::ServeClient* client, ClientOutcome* out,
                       const std::string& method, Json params) {
  Result<Json> response = Status::Internal("no attempt made");
  for (int attempt = 0;; ++attempt) {
    Json attempt_params = params;  // Call consumes its params
    const auto start = std::chrono::steady_clock::now();
    response = client->Call(method, std::move(attempt_params));
    const auto end = std::chrono::steady_clock::now();
    out->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (response.ok() ||
        response.status().code() != StatusCode::kResourceExhausted ||
        attempt >= kMaxRetries) {
      break;
    }
    // The daemon's hint, escalated per attempt and capped so a bench
    // run stays bounded; a floor of 1ms keeps a zero/absent hint from
    // degenerating into a busy loop.
    int64_t wait_ms = std::max<int64_t>(client->last_retry_after_ms(), 1);
    wait_ms = std::min<int64_t>(wait_ms * (attempt + 1), 2000);
    ++out->retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  if (!response.ok()) {
    out->error = method + ": " + response.status().ToString();
  }
  return response;
}

/// Stamps the per-request deadline wire param (works against embedded
/// and external daemons alike; overrides any daemon default).
Json WithDeadline(Json params, int64_t deadline_ms) {
  if (deadline_ms > 0) params.Set("deadline_ms", Json::Int(deadline_ms));
  return params;
}

/// One full pipeline run: start, stream, finish. Failure leaves the
/// status in out->error and returns it for the failover decision.
Status TryBatchPipeline(const LoadOptions& opt, serve::ServeClient* client,
                        const std::vector<EntityInstance>& entities,
                        const Schema& schema, int64_t window,
                        ClientOutcome* out) {
  Json start = Json::Object();
  if (window > 0) start.Set("window", Json::Int(window));
  Result<Json> started =
      TimedCall(client, out, "pipeline.start",
                WithDeadline(std::move(start), opt.deadline_ms));
  if (!started.ok()) return started.status();
  const int64_t sid = started.value().GetInt("session").value();

  Json submit = Json::Object();
  submit.Set("session", Json::Int(sid));
  submit.Set("entities", serve::EntitiesToJson(entities, schema));
  Result<Json> accepted =
      TimedCall(client, out, "pipeline.submit",
                WithDeadline(std::move(submit), opt.deadline_ms));
  if (!accepted.ok()) return accepted.status();
  out->entities = accepted.value().GetInt("accepted").value();

  Json finish = Json::Object();
  finish.Set("session", Json::Int(sid));
  Result<Json> report =
      TimedCall(client, out, "pipeline.finish",
                WithDeadline(std::move(finish), opt.deadline_ms));
  if (!report.ok()) return report.status();
  out->report = report.value().Dump(2) + "\n";
  return Status::OK();
}

/// Streams every entity through one pipeline session and keeps the
/// finish report for the byte-identity check. A deadline-exceeded or
/// injected-fault answer abandons the session (the daemon reaps it with
/// the connection) and restarts the whole pipeline — the fresh
/// pipeline.start routes to a healthy replica, so a wedged replica
/// costs latency, not correctness.
void RunBatchClient(const LoadOptions& opt, int port,
                    const std::vector<EntityInstance>& entities,
                    const Schema& schema, int64_t window, ClientOutcome* out) {
  Result<std::unique_ptr<serve::ServeClient>> client =
      serve::ServeClient::Connect(opt.host, port);
  if (!client.ok()) {
    out->error = "connect: " + client.status().ToString();
    return;
  }
  const auto run_start = std::chrono::steady_clock::now();
  bool failed_over = false;
  for (int attempt = 0; attempt <= kMaxFailovers; ++attempt) {
    Status run = TryBatchPipeline(opt, client.value().get(), entities, schema,
                                  window, out);
    if (run.ok()) {
      out->error.clear();
      break;
    }
    if (!IsFailoverable(run) || attempt == kMaxFailovers) return;
    failed_over = true;
    ++out->failovers;
  }
  if (failed_over) {
    out->failover_ms.push_back(std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - run_start)
                                   .count());
  }
}

/// One interaction round: start a session on one entity, take the first
/// suggestion, close.
Status TryInteractionRound(const LoadOptions& opt, serve::ServeClient* client,
                           const EntityInstance& entity, const Schema& schema,
                           ClientOutcome* out) {
  Json start = Json::Object();
  const std::vector<EntityInstance> one(1, entity);
  start.Set("entity", serve::EntitiesToJson(one, schema).at(0));
  Result<Json> started =
      TimedCall(client, out, "interact.start",
                WithDeadline(std::move(start), opt.deadline_ms));
  if (!started.ok()) return started.status();
  const int64_t sid = started.value().GetInt("session").value();
  Json suggest = Json::Object();
  suggest.Set("session", Json::Int(sid));
  Result<Json> suggested =
      TimedCall(client, out, "interact.suggest",
                WithDeadline(std::move(suggest), opt.deadline_ms));
  if (!suggested.ok()) return suggested.status();
  Json close = Json::Object();
  close.Set("session", Json::Int(sid));
  Result<Json> closed =
      TimedCall(client, out, "session.close",
                WithDeadline(std::move(close), opt.deadline_ms));
  if (!closed.ok()) return closed.status();
  return Status::OK();
}

/// Interaction rounds over one resolved entity (rotating through the
/// cluster set). Suggestion content is not asserted on — only that the
/// calls succeed; a failoverable error retries the round on a fresh
/// session.
void RunInteractiveClient(const LoadOptions& opt, int port, int iters,
                          const std::vector<EntityInstance>& entities,
                          const Schema& schema, ClientOutcome* out) {
  Result<std::unique_ptr<serve::ServeClient>> client =
      serve::ServeClient::Connect(opt.host, port);
  if (!client.ok()) {
    out->error = "connect: " + client.status().ToString();
    return;
  }
  int64_t failovers_left = kMaxFailovers;
  for (int i = 0; i < iters; ++i) {
    const EntityInstance& entity =
        entities[static_cast<size_t>(i) % entities.size()];
    const auto round_start = std::chrono::steady_clock::now();
    bool failed_over = false;
    for (;;) {
      Status round =
          TryInteractionRound(opt, client.value().get(), entity, schema, out);
      if (round.ok()) {
        out->error.clear();
        break;
      }
      if (!IsFailoverable(round) || failovers_left == 0) return;
      failed_over = true;
      --failovers_left;
      ++out->failovers;
    }
    if (failed_over) {
      out->failover_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - round_start)
              .count());
    }
  }
}

int RunLoad(const LoadOptions& opt, int64_t window) {
  Result<std::string> text = ReadFile(opt.spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::string base_dir = ".";
  const size_t slash = opt.spec_path.find_last_of('/');
  if (slash != std::string::npos) base_dir = opt.spec_path.substr(0, slash);
  Result<SpecDocument> doc = SpecFromJsonText(text.value(), base_dir);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = doc.value().spec.ie.schema();

  ResolverConfig resolver;
  for (size_t from = 0; from <= opt.key.size();) {
    size_t comma = opt.key.find(',', from);
    if (comma == std::string::npos) comma = opt.key.size();
    const std::string name = opt.key.substr(from, comma - from);
    std::optional<AttrId> attr = schema.IndexOf(name);
    if (!attr.has_value()) {
      std::fprintf(stderr, "error: --key attribute '%s' not in the schema\n",
                   name.c_str());
      return 1;
    }
    resolver.key_attrs.push_back(*attr);
    from = comma + 1;
  }
  ResolutionResult resolution = ResolveEntities(doc.value().spec.ie, resolver);
  if (resolution.entities.empty()) {
    std::fprintf(stderr, "error: spec resolved to zero entities\n");
    return 1;
  }

  // Embedded daemon unless an external endpoint was named.
  std::vector<std::unique_ptr<AccuracyService>> services;
  std::unique_ptr<serve::Server> server;
  int port = opt.port;
  if (!opt.port_file.empty()) {
    Result<int> read = PortFromFile(opt.port_file);
    if (!read.ok()) {
      std::fprintf(stderr, "error: %s\n", read.status().ToString().c_str());
      return 1;
    }
    port = read.value();
  } else if (port == 0) {
    for (int i = 0; i < opt.replicas; ++i) {
      Result<std::unique_ptr<AccuracyService>> created =
          AccuracyService::Create(doc.value().spec, ServiceOptions{});
      if (!created.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     created.status().ToString().c_str());
        return 1;
      }
      services.push_back(std::move(created).value());
    }
    std::vector<AccuracyService*> raw;
    raw.reserve(services.size());
    for (const auto& s : services) raw.push_back(s.get());
    serve::ServerOptions server_options;
    server_options.fault_inject = opt.fault_inject;
    server_options.default_deadline_ms = opt.deadline_ms;
    Result<std::unique_ptr<serve::Server>> started =
        serve::Server::Start(std::move(raw), server_options);
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
    port = server->port();
  }

  const int batch_clients = opt.clients / 2 + opt.clients % 2;  // >= 1
  const int interactive_clients = opt.clients - batch_clients;
  const int iters = opt.iters > 0 ? opt.iters : (SmallScale() ? 2 : 5);

  std::vector<ClientOutcome> outcomes(static_cast<size_t>(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(opt.clients));
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < opt.clients; ++i) {
    ClientOutcome* out = &outcomes[static_cast<size_t>(i)];
    if (i < batch_clients) {
      threads.emplace_back([&opt, port, &resolution, &schema, window, out] {
        RunBatchClient(opt, port, resolution.entities, schema, window, out);
      });
    } else {
      threads.emplace_back([&opt, port, iters, &resolution, &schema, out] {
        RunInteractiveClient(opt, port, iters, resolution.entities, schema,
                             out);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  // Daemon-side fault-tolerance counters, captured over the wire before
  // the drain tears the listener down (works against external daemons
  // too; absent fields stay zero against a pre-0.10 daemon).
  int64_t daemon_deadline_exceeded = 0;
  int64_t daemon_shed = 0;
  int64_t daemon_quarantines = 0;
  int64_t daemon_readmissions = 0;
  {
    Result<std::unique_ptr<serve::ServeClient>> probe =
        serve::ServeClient::Connect(opt.host, port);
    if (probe.ok()) {
      Result<Json> stats = probe.value()->Call("stats", Json::Object());
      if (stats.ok()) {
        auto int_field = [](const Json& obj, const std::string& key) {
          const Json* v = obj.Find(key);
          return v != nullptr && v->is_int() ? v->as_int() : int64_t{0};
        };
        daemon_deadline_exceeded =
            int_field(stats.value(), "deadline_exceeded");
        daemon_shed = int_field(stats.value(), "shed");
        const Json* replicas_json = stats.value().Find("replicas");
        if (replicas_json != nullptr && replicas_json->is_array()) {
          for (int i = 0; i < replicas_json->size(); ++i) {
            daemon_quarantines += int_field(replicas_json->at(i), "quarantines");
            daemon_readmissions +=
                int_field(replicas_json->at(i), "readmissions");
          }
        }
      }
    }
  }

  // An embedded daemon drains before we report, so its executor's work is
  // fully accounted and TSan sees the complete join graph.
  if (server != nullptr) {
    server->RequestDrain();
    const Status drained = server->Wait();
    if (!drained.ok()) {
      std::fprintf(stderr, "error: drain: %s\n", drained.ToString().c_str());
      return 1;
    }
  }

  std::vector<double> latencies;
  std::vector<double> failover_latencies;
  int64_t entities_done = 0;
  int64_t retried_requests = 0;
  int64_t failovers = 0;
  int failures = 0;
  for (const ClientOutcome& out : outcomes) {
    if (!out.error.empty()) {
      std::fprintf(stderr, "error: client failed: %s\n", out.error.c_str());
      ++failures;
    }
    latencies.insert(latencies.end(), out.latencies_ms.begin(),
                     out.latencies_ms.end());
    failover_latencies.insert(failover_latencies.end(),
                              out.failover_ms.begin(), out.failover_ms.end());
    entities_done += out.entities;
    retried_requests += out.retries;
    failovers += out.failovers;
  }
  if (failures > 0) return 1;

  // Byte-identity across batch clients: every pipeline saw the same
  // entities through the same service, so every report must match.
  const std::string& canonical = outcomes[0].report;
  for (int i = 1; i < batch_clients; ++i) {
    if (outcomes[static_cast<size_t>(i)].report != canonical) {
      std::fprintf(stderr,
                   "error: batch client %d report diverges from client 0\n", i);
      return 1;
    }
  }
  if (!opt.report_out.empty()) {
    const Status written = WriteFile(opt.report_out, canonical);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double failover_p99 = Percentile(failover_latencies, 0.99);
  const double entities_per_s =
      wall_ms > 0.0 ? static_cast<double>(entities_done) / (wall_ms / 1000.0)
                    : 0.0;
  std::printf(
      "serve_load: clients=%d (batch=%d interactive=%d) entities=%lld "
      "requests=%zu retried=%lld p50=%.3fms p99=%.3fms wall=%.1fms "
      "entities/s=%.1f failovers=%lld failover_p99=%.3fms "
      "deadline_exceeded=%lld shed=%lld quarantines=%lld readmissions=%lld\n",
      opt.clients, batch_clients, interactive_clients,
      static_cast<long long>(entities_done), latencies.size(),
      static_cast<long long>(retried_requests), p50, p99, wall_ms,
      entities_per_s, static_cast<long long>(failovers), failover_p99,
      static_cast<long long>(daemon_deadline_exceeded),
      static_cast<long long>(daemon_shed),
      static_cast<long long>(daemon_quarantines),
      static_cast<long long>(daemon_readmissions));

  JsonReport json("serve_load");
  JsonReport::Row row;
  row.Set("scenario", std::string("serve_load"))
      .Set("mode", server != nullptr ? std::string("embedded")
                                     : std::string("external"))
      .Set("clients", opt.clients)
      .Set("batch_clients", batch_clients)
      .Set("interactive_clients", interactive_clients)
      .Set("replicas", opt.replicas)
      .Set("deadline_ms", opt.deadline_ms)
      .Set("entities", entities_done)
      .Set("requests", static_cast<int64_t>(latencies.size()))
      .Set("retried_requests", retried_requests)
      .Set("failovers", failovers)
      .Set("failover_p99_ms", failover_p99)
      .Set("deadline_exceeded", daemon_deadline_exceeded)
      .Set("shed", daemon_shed)
      .Set("quarantines", daemon_quarantines)
      .Set("readmissions", daemon_readmissions)
      .Set("p50_ms", p50)
      .Set("p99_ms", p99)
      .Set("wall_ms", wall_ms)
      .Set("entities_per_s", entities_per_s);
  json.Add(std::move(row));
  json.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main(int argc, char** argv) {
  relacc::bench::LoadOptions opt;
  int64_t window = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--key" && next(&value)) {
      opt.key = value;
    } else if (arg == "--clients" && next(&value)) {
      opt.clients = std::atoi(value.c_str());
    } else if (arg == "--iters" && next(&value)) {
      opt.iters = std::atoi(value.c_str());
    } else if (arg == "--window" && next(&value)) {
      window = std::atoll(value.c_str());
    } else if (arg == "--host" && next(&value)) {
      opt.host = value;
    } else if (arg == "--port" && next(&value)) {
      opt.port = std::atoi(value.c_str());
    } else if (arg == "--port-file" && next(&value)) {
      opt.port_file = value;
    } else if (arg == "--report-out" && next(&value)) {
      opt.report_out = value;
    } else if (arg == "--replicas" && next(&value)) {
      opt.replicas = std::atoi(value.c_str());
    } else if (arg == "--deadline-ms" && next(&value)) {
      opt.deadline_ms = std::atoll(value.c_str());
    } else if (arg == "--fault-inject" && next(&value)) {
      opt.fault_inject = value;
    } else if (!arg.empty() && arg[0] != '-' && opt.spec_path.empty()) {
      opt.spec_path = arg;
    } else {
      return relacc::bench::Usage(argv[0]);
    }
  }
  if (opt.spec_path.empty() || opt.clients < 1 || opt.replicas < 1 ||
      opt.replicas > 64 || opt.deadline_ms < 0 ||
      (opt.port != 0 && (opt.port < 0 || opt.port > 65535))) {
    return relacc::bench::Usage(argv[0]);
  }
  return relacc::bench::RunLoad(opt, window);
}
