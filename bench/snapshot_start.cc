// snapshot_start: cold vs warm service start over a large master.
//
// Cold start is the full bring-up `AccuracyService::Create` performs
// from a specification — intern the masters, ground the rules, chase
// the all-null checkpoint — timed together with the first
// DeduceEntity(). Warm start is the same service restored from a
// `relacc snapshot build` artifact (ServiceOptions::snapshot_path):
// the master columns stay mmap-backed and untouched, the grounded
// program and chased checkpoint are loaded, and the first
// DeduceEntity() is served straight from the stored outcome.
//
// The master relation is padded to 1e6 tuples (20k under
// RELACC_BENCH_SMALL) with rows whose keys match no entity, so the
// outcome is unchanged while cold grounding pays the full scan. The
// bench verifies the two outcomes digest-identically (exit 1 on any
// divergence) and, at full scale, gates warm >= 10x faster than cold.
//
// Row: BENCH_snapshot_start.json — cold_ms, warm_ms, build_ms,
// speedup, master_rows.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/accuracy_service.h"
#include "common.h"
#include "snapshot/memo_cache.h"

namespace relacc {
namespace bench {
namespace {

/// Order-sensitive digest of everything a caller can observe in an
/// outcome; cold and warm must agree bit for bit.
uint64_t OutcomeDigest(const ChaseOutcome& outcome) {
  uint64_t h = snapshot::kFnvOffset;
  const uint8_t cr = outcome.church_rosser ? 1 : 0;
  h = snapshot::FingerprintBytes(h, &cr, 1);
  h = snapshot::FingerprintTuple(h, outcome.target);
  h = snapshot::FingerprintBytes(h, outcome.violation.data(),
                                 outcome.violation.size());
  return h;
}

int Run() {
  const bool small = SmallScale();
  const int64_t master_rows = small ? 20000 : 1000000;

  ProfileConfig config = MedConfig(7);
  config.num_entities = 40;
  config.master_size = 40;
  EntityDataset ds = GenerateProfile(config);
  Specification spec = ds.SpecFor(0);

  // Pad the master to `master_rows`: cloned rows under fresh keys that
  // match no entity, so grounding scans them and deduces past them.
  Relation& master = spec.masters[0];
  const int64_t base_rows = master.size();
  const Schema& master_schema = master.schema();
  for (int64_t i = 0; master.size() < master_rows; ++i) {
    const Tuple& base = master.tuple(static_cast<int>(i % base_rows));
    std::vector<Value> row;
    row.reserve(static_cast<std::size_t>(master_schema.size()));
    for (AttrId a = 0; a < master_schema.size(); ++a) {
      row.push_back(base.at(a));
    }
    row[0] = Value::Str("pad-" + std::to_string(i));
    master.Add(Tuple(std::move(row)));
  }
  std::printf("snapshot_start: master=%lld rows (%s scale)\n",
              static_cast<long long>(master.size()),
              small ? "small" : "full");

  // --- cold: ground + chase from the specification -----------------------
  std::unique_ptr<AccuracyService> cold_service;
  ChaseOutcome cold_outcome;
  Status failure = Status::OK();
  const double cold_ms = TimeMs([&] {
    ServiceOptions options;
    options.columnar_storage = true;
    Result<std::unique_ptr<AccuracyService>> created =
        AccuracyService::Create(spec, options);
    if (!created.ok()) {
      failure = created.status();
      return;
    }
    cold_service = std::move(created).value();
    Result<ChaseOutcome> outcome = cold_service->DeduceEntity();
    if (!outcome.ok()) {
      failure = outcome.status();
      return;
    }
    cold_outcome = std::move(outcome).value();
  });
  if (!failure.ok()) {
    std::fprintf(stderr, "error: cold start: %s\n",
                 failure.ToString().c_str());
    return 1;
  }

  // --- build the artifact (reported, not part of either start time) ------
  const char* dir = std::getenv("RELACC_BENCH_JSON_DIR");
  const std::string snap_path = (dir != nullptr && *dir != '\0'
                                     ? std::string(dir) + "/"
                                     : std::string()) +
                                "BENCH_snapshot_start.snap";
  const double build_ms = TimeMs([&] {
    failure = cold_service->WriteSnapshot(snap_path);
  });
  if (!failure.ok()) {
    std::fprintf(stderr, "error: snapshot build: %s\n",
                 failure.ToString().c_str());
    return 1;
  }

  // --- warm: mmap the artifact --------------------------------------------
  ChaseOutcome warm_outcome;
  const double warm_ms = TimeMs([&] {
    ServiceOptions options;
    options.snapshot_path = snap_path;
    Result<std::unique_ptr<AccuracyService>> created =
        AccuracyService::Create(Specification(), options);
    if (!created.ok()) {
      failure = created.status();
      return;
    }
    Result<ChaseOutcome> outcome = created.value()->DeduceEntity();
    if (!outcome.ok()) {
      failure = outcome.status();
      return;
    }
    warm_outcome = std::move(outcome).value();
  });
  std::remove(snap_path.c_str());
  if (!failure.ok()) {
    std::fprintf(stderr, "error: warm start: %s\n",
                 failure.ToString().c_str());
    return 1;
  }

  const uint64_t cold_digest = OutcomeDigest(cold_outcome);
  const uint64_t warm_digest = OutcomeDigest(warm_outcome);
  if (cold_digest != warm_digest) {
    std::fprintf(stderr,
                 "error: warm outcome diverges from cold "
                 "(cold=%016llx warm=%016llx)\n",
                 static_cast<unsigned long long>(cold_digest),
                 static_cast<unsigned long long>(warm_digest));
    return 1;
  }

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::printf(
      "snapshot_start: cold=%.1fms build=%.1fms warm=%.1fms speedup=%.1fx "
      "digest=%016llx\n",
      cold_ms, build_ms, warm_ms, speedup,
      static_cast<unsigned long long>(cold_digest));

  JsonReport json("snapshot_start");
  JsonReport::Row row;
  row.Set("scenario", std::string("cold_vs_warm_start"))
      .Set("master_rows", master.size())
      .Set("cold_ms", cold_ms)
      .Set("build_ms", build_ms)
      .Set("warm_ms", warm_ms)
      .Set("speedup", speedup)
      .Set("outcomes_identical", std::string("yes"));
  json.Add(std::move(row));
  json.Write();

  // The acceptance gate of the subsystem: at full scale a warm start of
  // a million-tuple master must be at least 10x faster than cold. Small
  // scale stays informational — fixed costs dominate tiny masters.
  if (!small && speedup < 10.0) {
    std::fprintf(stderr, "error: warm start speedup %.1fx < 10x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }
