// Fig. 6(f): CFP — top-k coverage vs k (paper: ~94% TopKCT / 87% TopKCTh
// at k=25; both forms beat either alone).

#include "topk_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(f): CFP top-k coverage vs k "
              "(paper: ~94%% at k=25) ==\n");
  const EntityDataset ds = GenerateProfile(CfpConfig());
  RunKSweep(ds, /*sample=*/100);
  return 0;
}
