#ifndef RELACC_BENCH_INTERACTION_SWEEP_H_
#define RELACC_BENCH_INTERACTION_SWEEP_H_

// Shared driver for the user-interaction figures 6(d)/(h): the Exp-3
// protocol — while the top-k candidates miss the true target, reveal the
// true value of one null attribute and re-run; report the cumulative % of
// targets found after h rounds.

#include <map>

#include "common.h"
#include "framework/framework.h"

// This sweep deliberately exercises the deprecated RunFramework shim:
// it is now a thin wrapper over AccuracyService::StartInteraction, so
// the figures double as a regression bench for the shim path. The
// suppression macro pair (api/version.h) is scoped — END at the end of
// this header — so including TUs keep the deprecation wall for their
// own code.
#include "api/version.h"

RELACC_SUPPRESS_DEPRECATED_BEGIN

namespace relacc {
namespace bench {

inline void RunInteractionSweep(const EntityDataset& ds, int sample,
                                int max_h) {
  const int n = std::min<int>(sample, static_cast<int>(ds.entities.size()));
  std::map<int, int> found_at;  // rounds -> count
  int never = 0;
  for (int i = 0; i < n; ++i) {
    Specification spec = ds.SpecFor(i);
    const PreferenceModel pref =
        PreferenceModel::FromOccurrences(spec.ie, spec.masters);
    SimulatedUser user(ds.truths[i]);
    FrameworkOptions opts;
    opts.k = 15;
    const FrameworkResult r = RunFramework(spec, pref, &user, opts);
    if (r.found_complete_target && r.target == ds.truths[i]) {
      ++found_at[r.interaction_rounds];
    } else {
      ++never;
    }
  }
  int cumulative = 0;
  std::printf("rounds h :");
  for (int h = 0; h <= max_h; ++h) std::printf("  h<=%-3d", h);
  std::printf("\n%% found  :");
  for (int h = 0; h <= max_h; ++h) {
    auto it = found_at.find(h);
    if (it != found_at.end()) cumulative += it->second;
    std::printf("  %s", Pct(static_cast<double>(cumulative) / n).c_str());
  }
  int max_rounds = 0;
  for (const auto& [h, c] : found_at) max_rounds = std::max(max_rounds, h);
  std::printf("\nmax rounds needed: %d; true target never reached: %s\n",
              max_rounds, Pct(static_cast<double>(never) / n).c_str());
}

}  // namespace bench
}  // namespace relacc

RELACC_SUPPRESS_DEPRECATED_END

#endif  // RELACC_BENCH_INTERACTION_SWEEP_H_
