// Ablation: built-in axiom handling (ChaseConfig::builtin_axioms) versus
// declaratively grounding ϕ7-ϕ9 through Instantiation. Both paths are
// behaviourally equivalent (tests cross-validate them); this bench
// quantifies why the native path is the default: grounding ϕ8 alone
// materializes O(|Ie|²) steps per attribute.

#include <benchmark/benchmark.h>

#include "chase/chase_engine.h"
#include "datagen/profile_generator.h"
#include "rules/axioms.h"

namespace {

using namespace relacc;

EntityDataset MakeDataset(int mean_tuples) {
  ProfileConfig c = CfpConfig(5);
  c.num_entities = 20;
  c.master_size = 18;
  c.mean_extra_tuples = mean_tuples;
  c.max_tuples = 4 * mean_tuples;
  return GenerateProfile(c);
}

void BM_BuiltinAxioms(benchmark::State& state) {
  const EntityDataset ds = MakeDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < 20; ++i) {
      Specification spec = ds.SpecFor(i);
      benchmark::DoNotOptimize(IsCR(spec).church_rosser);
    }
  }
}
BENCHMARK(BM_BuiltinAxioms)->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_GroundedAxioms(benchmark::State& state) {
  EntityDataset ds = MakeDataset(static_cast<int>(state.range(0)));
  const std::vector<AccuracyRule> axioms = ExpandAxioms(ds.schema);
  for (auto _ : state) {
    for (int i = 0; i < 20; ++i) {
      Specification spec = ds.SpecFor(i);
      spec.config.builtin_axioms = false;
      spec.rules.insert(spec.rules.end(), axioms.begin(), axioms.end());
      benchmark::DoNotOptimize(IsCR(spec).church_rosser);
    }
  }
}
BENCHMARK(BM_GroundedAxioms)->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
