// Fig. 6(k): Syn — elapsed time vs ‖Im‖ in [100, 500] (defaults otherwise).

#include "syn_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(k): Syn time vs |Im| ==\n");
  std::vector<SynPoint> points;
  for (int m : {100, 200, 300, 400, 500}) {
    SynPoint p;
    p.x = m;
    p.config.master_size = m;
    points.push_back(p);
  }
  RunSynSweep("|Im|", points);
  return 0;
}
