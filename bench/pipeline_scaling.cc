// Whole-database accuracy pipeline (the paper's Sec. 8 future-work
// scenario) under the single thread budget: RunPipeline chases entities
// in parallel, then completes incomplete targets through one shared
// CandidateChecker rebound per entity (ComputePipelineThreadPlan gives
// the whole budget to each phase in turn, so the levels time-multiplex
// instead of multiplying into N×M threads). reuse_checkers=false is the
// A/B baseline: a fresh checker — and a fresh thread pool — torn down
// per completed entity.
//
// Two scenarios: `many_entities` (most entities complete via the chase;
// the per-entity completions that remain are where rebuild pays a pool
// spawn each and reuse pays one total) and `few_entities_deep` (every
// target incomplete, deep candidate searches — the check batches must
// keep the wide shared pool busy). Reports must be identical across
// modes and budgets; exits nonzero only on a report mismatch, so perf
// noise cannot break CI.
//
// Emits BENCH_pipeline_scaling.json (bench::JsonReport).

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "datagen/profile_generator.h"
#include "pipeline/pipeline.h"

namespace relacc {
namespace bench {
namespace {

/// Canonical form of a report for cross-run comparison: per-entity CR
/// flag and final target, plus the aggregate counters.
std::string ReportKey(const PipelineReport& report) {
  std::string key;
  for (const EntityReport& e : report.entities) {
    key += e.church_rosser ? e.target.ToString() : "!CR";
    key += '\n';
  }
  key += std::to_string(report.num_complete_by_chase) + "/" +
         std::to_string(report.num_completed_by_candidates) + "/" +
         std::to_string(report.num_incomplete);
  return key;
}

struct Scenario {
  const char* name;
  EntityDataset dataset;
  std::vector<int> budgets;
  int reps;
};

int Run() {
  const bool small = SmallScale();
  JsonReport json("pipeline_scaling");

  std::vector<Scenario> scenarios;
  {
    // Many small entities: the chase phase is the embarrassingly-parallel
    // bulk; the minority of incomplete targets flows through the shared
    // completion checker one entity at a time.
    ProfileConfig config = MedConfig(/*seed=*/3);
    config.num_entities = small ? 36 : 150;
    config.master_size = small ? 40 : 120;
    scenarios.push_back({"many_entities", GenerateProfile(config),
                         small ? std::vector<int>{1, 4}
                               : std::vector<int>{1, 2, 4, 8},
                         small ? 1 : 3});
  }
  {
    // Few large entities with every free attribute corrupted: targets
    // stay incomplete and the per-entity top-1 candidate search (checks
    // included) dominates, exercising the wide shared checker.
    ProfileConfig config = MedConfig(/*seed=*/17);
    config.num_entities = 4;
    config.min_tuples = small ? 24 : 48;
    config.max_tuples = small ? 24 : 48;
    config.master_size = 120;
    config.free_corruption_prob = 1.0;
    scenarios.push_back({"few_entities_deep", GenerateProfile(config),
                         small ? std::vector<int>{8} : std::vector<int>{4, 8},
                         small ? 2 : 5});
  }

  bool all_identical = true;
  for (const Scenario& scenario : scenarios) {
    std::printf("== pipeline %s (%zu entities%s) ==\n", scenario.name,
                scenario.dataset.entities.size(),
                small ? "; RELACC_BENCH_SMALL" : "");
    std::printf("%8s %8s %6s %6s %12s %14s\n", "budget", "mode", "chase",
                "check", "ms/run", "entities/s");
    std::string reference_key;
    {
      // Untimed warm-up: faults in the dataset and allocator so the first
      // timed configuration is not charged for cold caches.
      PipelineOptions warm;
      warm.num_threads = scenario.budgets.front();
      (void)RunPipeline(scenario.dataset.entities, scenario.dataset.masters,
                        scenario.dataset.rules, warm);
    }
    for (int budget : scenario.budgets) {
      for (const bool reuse : {true, false}) {
        PipelineOptions options;
        options.num_threads = budget;
        options.completion = CompletionPolicy::kBestCandidate;
        options.reuse_checkers = reuse;
        PipelineReport report;
        const double ms = TimeMs([&] {
          for (int r = 0; r < scenario.reps; ++r) {
            report = RunPipeline(scenario.dataset.entities,
                                 scenario.dataset.masters,
                                 scenario.dataset.rules, options);
          }
        });
        const double ms_per_run = ms / scenario.reps;
        const double entities_per_s =
            ms_per_run > 0.0
                ? static_cast<double>(scenario.dataset.entities.size()) /
                      (ms_per_run / 1e3)
                : 0.0;
        const std::string key = ReportKey(report);
        if (reference_key.empty()) {
          reference_key = key;
        } else if (key != reference_key) {
          all_identical = false;
        }
        const char* mode = reuse ? "reuse" : "rebuild";
        std::printf("%8d %8s %6d %6d %12.2f %14.0f\n", budget, mode,
                    report.plan.chase_threads, report.plan.check_threads,
                    ms_per_run, entities_per_s);
        JsonReport::Row row;
        row.Set("scenario", scenario.name)
            .Set("mode", mode)
            .Set("budget", budget)
            .Set("chase_threads", report.plan.chase_threads)
            .Set("check_threads", report.plan.check_threads)
            .Set("entities",
                 static_cast<int64_t>(scenario.dataset.entities.size()))
            .Set("ms_per_run", ms_per_run)
            .Set("entities_per_s", entities_per_s);
        json.Add(std::move(row));
      }
    }
  }

  json.Write();
  std::printf("reports identical across modes and budgets: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }
