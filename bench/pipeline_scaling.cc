// Whole-database accuracy pipeline (the paper's Sec. 8 future-work
// scenario) under the single thread budget, in two sections:
//
// 1. Batch A/B (via the deprecated RunPipeline shim): reuse_checkers on
//    vs off across budgets — one persistent completion checker rebound
//    per entity vs a fresh checker (and pool) torn down per entity.
//    Reports must be identical across modes and budgets.
//
// 2. Streaming (AccuracyService::StartPipeline): entities submitted in
//    arrival-sized batches through a bounded window. The report must be
//    byte-identical to the batch path for every window, while
//    stats().peak_in_flight_engines stays <= window — memory is
//    O(window), not O(entities).
//
// 3. Completion A/B (many_entities_completion scenario): phase-2
//    entity-parallel completion (the 2-D thread plan) vs the one-entity-
//    at-a-time schedule at the same budget, identical reports enforced;
//    the parallel row carries speedup_vs_serial for the CI gate.
//
// 4. ground_scaling: sharded Instantiate at several |Ie| points and
//    shard counts — step-for-step program identity enforced, timing
//    recorded.
//
// Exits nonzero only on a report/program mismatch or a window-bound
// violation, so perf noise cannot break CI. Emits
// BENCH_pipeline_scaling.json.
//
// Extra mode for the CI peak-memory lane:
//   bench_pipeline_scaling --stream N [--window W] [--chunk C]
// streams N med-shaped entities (the same C-entity chunk resubmitted, so
// input memory is constant) through one session and prints a JSON line
// with the process peak RSS; the lane runs it at two entity counts and
// asserts the RSS does not scale with N.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "api/accuracy_service.h"
#include "common.h"
#include "datagen/profile_generator.h"
#include "pipeline/pipeline.h"

// The batch section deliberately exercises the deprecated RunPipeline
// shim — it is the A/B baseline the streaming session must match.
#include "api/version.h"

RELACC_SUPPRESS_DEPRECATED_BEGIN

namespace relacc {
namespace bench {
namespace {

/// Canonical form of a report for cross-run comparison: per-entity CR
/// flag and final target, plus the aggregate counters. The thread plan is
/// deliberately excluded — it varies with the budget by design while
/// everything else must not.
std::string ReportKey(const PipelineReport& report) {
  std::string key;
  for (const EntityReport& e : report.entities) {
    key += e.church_rosser ? e.target.ToString() : "!CR";
    key += '\n';
  }
  key += std::to_string(report.num_complete_by_chase) + "/" +
         std::to_string(report.num_completed_by_candidates) + "/" +
         std::to_string(report.num_incomplete);
  return key;
}

/// Peak RSS of this process in KiB (0 where unsupported).
int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// One streaming run: `entities` submitted in batches of `batch`,
/// through a session with the given window (and, when
/// `completion_workers` > 0, a forced phase-2 entity-parallel width).
/// Returns the final report; peak/ok flow out through the out-params.
PipelineReport RunStreaming(const EntityDataset& dataset, int budget,
                            int64_t window, std::size_t batch,
                            int64_t* peak_in_flight, bool* ok,
                            int completion_workers = 0) {
  Specification spec;
  spec.ie = Relation(dataset.schema);
  spec.masters = dataset.masters;
  spec.rules = dataset.rules;
  spec.config = dataset.chase_config;
  ServiceOptions options;
  options.num_threads = budget;
  options.window = window;
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(std::move(spec), options);
  if (!service.ok()) {
    *ok = false;
    return {};
  }
  PipelineSessionOptions session_options;
  session_options.completion_workers = completion_workers;
  Result<std::unique_ptr<PipelineSession>> session =
      service.value()->StartPipeline(std::move(session_options));
  if (!session.ok()) {
    *ok = false;
    return {};
  }
  for (std::size_t begin = 0; begin < dataset.entities.size();
       begin += batch) {
    const std::size_t end =
        std::min(dataset.entities.size(), begin + batch);
    std::vector<EntityInstance> chunk(dataset.entities.begin() + begin,
                                      dataset.entities.begin() + end);
    if (!session.value()->Submit(std::move(chunk)).ok()) {
      *ok = false;
      return {};
    }
  }
  Result<PipelineReport> report = session.value()->Finish();
  if (!report.ok()) {
    *ok = false;
    return {};
  }
  *peak_in_flight = session.value()->stats().peak_in_flight_engines;
  *ok = *peak_in_flight <= window;
  return std::move(report).value();
}

struct Scenario {
  const char* name;
  EntityDataset dataset;
  std::vector<int> budgets;
  int reps;
  /// Emit the completion-serial vs completion-parallel A/B rows (the
  /// phase-2 entity-parallelism satellite) for this scenario.
  bool completion_ab = false;
};

/// Sharded-grounding rows: Instantiate one med-shaped entity of exactly
/// `n` tuples at several shard counts. The sharded program must equal
/// the serial one step for step (determinism is the gate; the timing
/// rows record the speedup trajectory). Returns false on a mismatch.
bool RunGroundScaling(JsonReport* json) {
  const bool small = SmallScale();
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  bool identical = true;
  const std::vector<int> sizes = small ? std::vector<int>{16, 32}
                                       : std::vector<int>{32, 64, 96};
  std::printf("== ground_scaling (Instantiate, shards {1,4,hw=%d}) ==\n",
              hw);
  std::printf("%6s %8s %6s %12s %12s %10s\n", "n", "shards", "reps",
              "steps", "ms/ground", "speedup");
  for (const int n : sizes) {
    ProfileConfig config = MedConfig(/*seed=*/41);
    config.num_entities = 1;
    config.min_tuples = n;
    config.max_tuples = n;
    config.master_size = 60;
    const EntityDataset ds = GenerateProfile(config);
    const Relation& ie = ds.entities[0];
    const int reps = small ? 3 : (n >= 96 ? 5 : 10);
    const GroundProgram reference = Instantiate(ie, ds.masters, ds.rules);
    double serial_ms = 0.0;
    std::vector<int> shard_counts = {1, 4, hw};
    shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()),
                       shard_counts.end());
    if (hw == 1) shard_counts = {1, 4};  // hw duplicates the serial row
    for (const int shards : shard_counts) {
      GroundProgram program;
      const double ms = TimeMs([&] {
        for (int r = 0; r < reps; ++r) {
          program = shards <= 1
                        ? Instantiate(ie, ds.masters, ds.rules)
                        : Instantiate(ie, ds.masters, ds.rules, shards);
        }
      });
      const double ms_per = ms / reps;
      if (shards <= 1) serial_ms = ms_per;
      if (!(program == reference)) identical = false;
      const double speedup = ms_per > 0.0 ? serial_ms / ms_per : 0.0;
      std::printf("%6d %8d %6d %12zu %12.3f %9.2fx\n", n, shards, reps,
                  program.steps.size(), ms_per, speedup);
      JsonReport::Row row;
      row.Set("scenario", "ground_scaling")
          .Set("n", n)
          .Set("shards", shards)
          .Set("steps", static_cast<int64_t>(program.steps.size()))
          .Set("ms_per_ground", ms_per)
          .Set("speedup_vs_serial", speedup);
      json->Add(std::move(row));
    }
  }
  return identical;
}

/// The CI peak-memory lane: stream `total` entities (one `chunk`-sized
/// generated set resubmitted over and over, so the *input* held by the
/// driver is constant) through a single window-bounded session and print
/// peak RSS. With a bounded window the RSS must not scale with `total` —
/// the lane runs two entity counts and compares.
int RunStreamRssMode(int64_t total, int64_t window, int64_t chunk) {
  ProfileConfig config = MedConfig(/*seed=*/29);
  config.num_entities = static_cast<int>(chunk);
  config.min_tuples = 16;
  config.max_tuples = 16;
  config.master_size = 60;
  config.free_corruption_prob = 0.6;  // most targets reach phase 2
  const EntityDataset dataset = GenerateProfile(config);

  Specification spec;
  spec.ie = Relation(dataset.schema);
  spec.masters = dataset.masters;
  spec.rules = dataset.rules;
  spec.config = dataset.chase_config;
  ServiceOptions options;
  options.num_threads = 2;
  options.window = window;
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(std::move(spec), options);
  if (!service.ok()) {
    std::printf("stream: %s\n", service.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<PipelineSession>> session =
      service.value()->StartPipeline();
  if (!session.ok()) {
    std::printf("stream: %s\n", session.status().ToString().c_str());
    return 1;
  }
  int64_t submitted = 0;
  double ms = TimeMs([&] {
    while (submitted < total) {
      const int64_t take =
          std::min<int64_t>(chunk, total - submitted);
      std::vector<EntityInstance> batch(
          dataset.entities.begin(), dataset.entities.begin() + take);
      if (!session.value()->Submit(std::move(batch)).ok()) return;
      submitted += take;
      // Consume reports as they complete, as a real caller would.
      (void)session.value()->Drain();
    }
  });
  Result<PipelineReport> report = session.value()->Finish();
  if (!report.ok() || submitted != total) {
    std::printf("stream failed after %lld entities\n",
                static_cast<long long>(submitted));
    return 1;
  }
  const int64_t peak = session.value()->stats().peak_in_flight_engines;
  const int64_t rss_kb = PeakRssKb();
  // Machine-readable single line for the CI lane.
  std::printf(
      "STREAM_RSS {\"entities\": %lld, \"window\": %lld, "
      "\"peak_in_flight\": %lld, \"maxrss_kb\": %lld, \"ms\": %.1f, "
      "\"church_rosser\": %d}\n",
      static_cast<long long>(total), static_cast<long long>(window),
      static_cast<long long>(peak), static_cast<long long>(rss_kb), ms,
      report.value().num_church_rosser);
  if (peak > window) {
    std::printf("window bound violated: %lld > %lld\n",
                static_cast<long long>(peak),
                static_cast<long long>(window));
    return 1;
  }
  return 0;
}

int Run() {
  const bool small = SmallScale();
  JsonReport json("pipeline_scaling");

  std::vector<Scenario> scenarios;
  {
    // Many small entities: the chase phase is the embarrassingly-parallel
    // bulk; the minority of incomplete targets flows through the shared
    // completion checker one entity at a time.
    ProfileConfig config = MedConfig(/*seed=*/3);
    config.num_entities = small ? 36 : 150;
    config.master_size = small ? 40 : 120;
    scenarios.push_back({"many_entities", GenerateProfile(config),
                         small ? std::vector<int>{1, 4}
                               : std::vector<int>{1, 2, 4, 8},
                         small ? 1 : 3});
  }
  {
    // Few large entities with every free attribute corrupted: targets
    // stay incomplete and the per-entity top-1 candidate search (checks
    // included) dominates, exercising the wide shared checker.
    ProfileConfig config = MedConfig(/*seed=*/17);
    config.num_entities = 4;
    config.min_tuples = small ? 24 : 48;
    config.max_tuples = small ? 24 : 48;
    config.master_size = 120;
    config.free_corruption_prob = 1.0;
    scenarios.push_back({"few_entities_deep", GenerateProfile(config),
                         small ? std::vector<int>{8} : std::vector<int>{4, 8},
                         small ? 2 : 5});
  }
  {
    // Many entities, every target incomplete: phase 2 dominates and is
    // embarrassingly parallel across entities — the scenario behind the
    // completion-serial vs completion-parallel A/B rows and the
    // budget-8-vs-1 end-to-end acceptance number.
    ProfileConfig config = MedConfig(/*seed=*/31);
    config.num_entities = small ? 16 : 64;
    config.min_tuples = 12;
    config.max_tuples = 12;
    config.master_size = 60;
    config.free_corruption_prob = 1.0;
    // Budget 8 in small mode too: the CI gate reads the top-budget
    // completion-parallel row, and the acceptance number is budget 8 vs
    // budget 1.
    scenarios.push_back({"many_entities_completion", GenerateProfile(config),
                         std::vector<int>{1, 8},
                         small ? 2 : 3, /*completion_ab=*/true});
  }

  bool all_identical = true;
  bool window_bound_held = true;
  for (const Scenario& scenario : scenarios) {
    std::printf("== pipeline %s (%zu entities%s) ==\n", scenario.name,
                scenario.dataset.entities.size(),
                small ? "; RELACC_BENCH_SMALL" : "");
    std::printf("%8s %10s %6s %6s %12s %14s\n", "budget", "mode", "chase",
                "check", "ms/run", "entities/s");
    std::string reference_key;
    {
      // Untimed warm-up: faults in the dataset and allocator so the first
      // timed configuration is not charged for cold caches.
      PipelineOptions warm;
      warm.num_threads = scenario.budgets.front();
      warm.chase = scenario.dataset.chase_config;
      (void)RunPipeline(scenario.dataset.entities, scenario.dataset.masters,
                        scenario.dataset.rules, warm);
    }
    for (int budget : scenario.budgets) {
      for (const bool reuse : {true, false}) {
        PipelineOptions options;
        options.num_threads = budget;
        options.completion = CompletionPolicy::kBestCandidate;
        options.chase = scenario.dataset.chase_config;
        options.reuse_checkers = reuse;
        PipelineReport report;
        const double ms = TimeMs([&] {
          for (int r = 0; r < scenario.reps; ++r) {
            report = RunPipeline(scenario.dataset.entities,
                                 scenario.dataset.masters,
                                 scenario.dataset.rules, options);
          }
        });
        const double ms_per_run = ms / scenario.reps;
        const double entities_per_s =
            ms_per_run > 0.0
                ? static_cast<double>(scenario.dataset.entities.size()) /
                      (ms_per_run / 1e3)
                : 0.0;
        const std::string key = ReportKey(report);
        if (reference_key.empty()) {
          reference_key = key;
        } else if (key != reference_key) {
          all_identical = false;
        }
        const char* mode = reuse ? "reuse" : "rebuild";
        std::printf("%8d %10s %6d %6d %12.2f %14.0f\n", budget, mode,
                    report.plan.chase_threads, report.plan.check_threads,
                    ms_per_run, entities_per_s);
        JsonReport::Row row;
        row.Set("scenario", scenario.name)
            .Set("mode", mode)
            .Set("budget", budget)
            .Set("chase_threads", report.plan.chase_threads)
            .Set("completion_workers", report.plan.completion_workers)
            .Set("check_threads", report.plan.check_threads)
            .Set("entities",
                 static_cast<int64_t>(scenario.dataset.entities.size()))
            .Set("ms_per_run", ms_per_run)
            .Set("entities_per_s", entities_per_s);
        json.Add(std::move(row));
      }

      // Streaming session at the same budget: submitted in small
      // arrival batches across several windows; the report must match
      // the batch reference byte for byte while the in-flight engine
      // count respects the window.
      for (const int64_t window :
           {static_cast<int64_t>(1), static_cast<int64_t>(5),
            static_cast<int64_t>(64)}) {
        int64_t peak = 0;
        bool ok = true;
        PipelineReport report;
        const double ms = TimeMs([&] {
          for (int r = 0; r < scenario.reps; ++r) {
            report = RunStreaming(scenario.dataset, budget, window,
                                  /*batch=*/7, &peak, &ok);
          }
        });
        const double ms_per_run = ms / scenario.reps;
        if (!ok) window_bound_held = false;
        const std::string key = ReportKey(report);
        if (key != reference_key) all_identical = false;
        std::string mode = "stream/w" + std::to_string(window);
        std::printf("%8d %10s %6s %6s %12.2f %14.0f  peak=%lld\n", budget,
                    mode.c_str(), "-", "-", ms_per_run,
                    ms_per_run > 0.0
                        ? scenario.dataset.entities.size() /
                              (ms_per_run / 1e3)
                        : 0.0,
                    static_cast<long long>(peak));
        JsonReport::Row row;
        row.Set("scenario", scenario.name)
            .Set("mode", mode)
            .Set("budget", budget)
            .Set("window", window)
            .Set("peak_in_flight", peak)
            .Set("entities",
                 static_cast<int64_t>(scenario.dataset.entities.size()))
            .Set("ms_per_run", ms_per_run);
        json.Add(std::move(row));
      }

      // Completion A/B at this budget: one entity at a time through a
      // budget-wide checker (workers=1, the pre-2-D schedule) vs the
      // plan's entity-parallel completion (workers=0, auto). Identical
      // reports enforced; the parallel row records its speedup — the
      // bench-json CI job gates on it at the highest budget.
      if (scenario.completion_ab) {
        double serial_ms = 0.0;
        for (const int workers : {1, 0}) {
          int64_t peak = 0;
          bool ok = true;
          PipelineReport report;
          const double ms = TimeMs([&] {
            for (int r = 0; r < scenario.reps; ++r) {
              report = RunStreaming(scenario.dataset, budget, /*window=*/64,
                                    /*batch=*/16, &peak, &ok, workers);
            }
          });
          const double ms_per_run = ms / scenario.reps;
          if (!ok) window_bound_held = false;
          if (ReportKey(report) != reference_key) all_identical = false;
          if (workers == 1) serial_ms = ms_per_run;
          const double speedup =
              ms_per_run > 0.0 ? serial_ms / ms_per_run : 0.0;
          const std::string mode = workers == 1 ? "completion-serial"
                                                : "completion-parallel";
          std::printf("%8d %18s %12.2f  speedup=%.2fx\n", budget,
                      mode.c_str(), ms_per_run, speedup);
          JsonReport::Row row;
          row.Set("scenario", scenario.name)
              .Set("mode", mode)
              .Set("budget", budget)
              .Set("completion_workers", workers)
              .Set("entities",
                   static_cast<int64_t>(scenario.dataset.entities.size()))
              .Set("ms_per_run", ms_per_run)
              .Set("speedup_vs_serial", speedup);
          json.Add(std::move(row));
        }
      }
    }
  }

  const bool ground_identical = RunGroundScaling(&json);
  if (!ground_identical) all_identical = false;

  json.Write();
  std::printf("reports identical across modes, budgets and windows: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  std::printf("streaming window bound held: %s\n",
              window_bound_held ? "yes" : "NO (BUG)");
  return all_identical && window_bound_held ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main(int argc, char** argv) {
  int64_t stream_total = 0;
  int64_t window = 8;
  int64_t chunk = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      stream_total = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--chunk") == 0 && i + 1 < argc) {
      chunk = std::atoll(argv[++i]);
    } else {
      std::printf("usage: %s [--stream N [--window W] [--chunk C]]\n",
                  argv[0]);
      return 2;
    }
  }
  if (stream_total > 0) {
    return relacc::bench::RunStreamRssMode(stream_total, window, chunk);
  }
  return relacc::bench::Run();
}

RELACC_SUPPRESS_DEPRECATED_END
