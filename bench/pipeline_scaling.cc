// Extension bench: whole-database accuracy pipeline (the paper's Sec. 8
// future-work scenario). Measures throughput of RunPipeline over Med-shaped
// databases while varying the worker count — the per-entity work (ground,
// IsCR, top-1 candidate) is embarrassingly parallel, so scaling should be
// near-linear until memory bandwidth binds.

#include <benchmark/benchmark.h>

#include "datagen/profile_generator.h"
#include "pipeline/pipeline.h"

namespace {

using namespace relacc;  // NOLINT(build/namespaces): bench-local

const EntityDataset& Dataset() {
  static const EntityDataset* dataset = [] {
    ProfileConfig config = MedConfig(/*seed=*/3);
    config.num_entities = 150;
    config.master_size = 120;
    return new EntityDataset(GenerateProfile(config));
  }();
  return *dataset;
}

void BM_PipelineThreads(benchmark::State& state) {
  const EntityDataset& dataset = Dataset();
  PipelineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.completion = CompletionPolicy::kBestCandidate;
  int complete = 0;
  for (auto _ : state) {
    PipelineReport report = RunPipeline(dataset.entities, dataset.masters,
                                        dataset.rules, options);
    complete =
        report.num_complete_by_chase + report.num_completed_by_candidates;
    benchmark::DoNotOptimize(report.num_church_rosser);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.entities.size()));
  state.counters["entities"] =
      benchmark::Counter(static_cast<double>(dataset.entities.size()));
  state.counters["complete_targets"] =
      benchmark::Counter(static_cast<double>(complete));
}
BENCHMARK(BM_PipelineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->MeasureProcessCPUTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
