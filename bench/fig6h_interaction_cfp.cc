// Fig. 6(h): CFP — cumulative % of true targets found after h interaction
// rounds (Exp-3). Paper: all targets within 4 rounds.

#include "interaction_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(h): CFP interaction rounds (paper: <=4) ==\n");
  const EntityDataset ds = GenerateProfile(CfpConfig());
  RunInteractionSweep(ds, /*sample=*/100, /*max_h=*/6);
  return 0;
}
