// Ablation: incremental re-chase (ChaseEngine::ResumeWith) versus a full
// re-run per framework round. The Fig. 3 loop re-chases after every user
// revision; resuming from the shared all-null terminal checkpoint skips
// replaying the axiom closure and everything already derived. Outcomes are
// identical (tests/test_incremental.cc); this bench quantifies the saving
// on Med-shaped entities of growing size.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "chase/chase_engine.h"
#include "datagen/profile_generator.h"

namespace {

using namespace relacc;  // NOLINT(build/namespaces): bench-local

EntityDataset MakeDataset(int mean_tuples) {
  ProfileConfig config = MedConfig(/*seed=*/7);
  config.num_entities = 24;
  config.master_size = 40;
  config.mean_extra_tuples = mean_tuples;
  config.min_tuples = mean_tuples;
  config.max_tuples = mean_tuples * 2;
  return GenerateProfile(config);
}

/// One revision round per null attribute of the deduced target, like the
/// framework does. `kIncremental` selects the re-chase strategy. Engines
/// (and the incremental path's checkpoint) persist across iterations, as
/// they do across rounds of one framework session; only the re-chase after
/// a revision is timed.
template <bool kIncremental>
void BM_Rechase(benchmark::State& state) {
  EntityDataset dataset = MakeDataset(static_cast<int>(state.range(0)));
  struct Prepared {
    Specification spec;
    GroundProgram program;
    std::unique_ptr<ChaseEngine> engine;
    std::vector<Tuple> revisions;  ///< one per null attribute of the target
  };
  std::vector<std::unique_ptr<Prepared>> prepared;
  for (size_t i = 0; i < dataset.entities.size(); ++i) {
    auto p = std::make_unique<Prepared>();
    p->spec = dataset.SpecFor(static_cast<int>(i));
    p->program = Instantiate(p->spec.ie, p->spec.masters, p->spec.rules);
    p->engine = std::make_unique<ChaseEngine>(p->spec.ie, &p->program,
                                              p->spec.config);
    ChaseOutcome base = p->engine->RunFromInitial();
    if (!base.church_rosser) continue;
    const Tuple& truth = dataset.truths[i];
    const int num_attrs = p->spec.ie.schema().size();
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (!base.target.at(a).is_null() || truth.at(a).is_null()) continue;
      Tuple revision(std::vector<Value>(num_attrs, Value::Null()));
      revision.set(a, truth.at(a));
      p->revisions.push_back(std::move(revision));
    }
    if (kIncremental) {
      // Warm the checkpoint outside the timed region, as TopKCT's check
      // calls do in a real framework session.
      Tuple all_null(std::vector<Value>(num_attrs, Value::Null()));
      benchmark::DoNotOptimize(p->engine->ResumeWith(all_null).church_rosser);
    }
    // At least two distinct revisions per entity: ResumeWith keeps a
    // persistent session, so repeating one identical revision would
    // measure its no-op extension path instead of an incremental
    // re-chase. Alternating incompatible revisions resets the session
    // every call, which is the re-chase this ablation is about.
    if (p->revisions.size() >= 2) prepared.push_back(std::move(p));
  }

  int64_t rounds = 0;
  for (auto _ : state) {
    for (const std::unique_ptr<Prepared>& p : prepared) {
      for (const Tuple& revision : p->revisions) {
        ChaseOutcome out = kIncremental ? p->engine->ResumeWith(revision)
                                        : p->engine->Run(revision);
        benchmark::DoNotOptimize(out.church_rosser);
        ++rounds;
      }
    }
  }
  state.SetItemsProcessed(rounds);
  state.counters["revision_rounds"] =
      benchmark::Counter(static_cast<double>(rounds));
}

void BM_FullRechase(benchmark::State& state) { BM_Rechase<false>(state); }
void BM_IncrementalRechase(benchmark::State& state) {
  BM_Rechase<true>(state);
}

BENCHMARK(BM_FullRechase)->Arg(4)->Arg(16)->Arg(40);
BENCHMARK(BM_IncrementalRechase)->Arg(4)->Arg(16)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
