// Fig. 6(g): CFP — top-k coverage (k=15) as ‖Im‖ grows from 0 to 56.
// Paper: monotone improvement; ~64% with no master data.

#include "topk_sweep.h"

int main() {
  using namespace relacc;
  using namespace relacc::bench;
  std::printf("== Fig 6(g): CFP coverage vs |Im| at k=15 "
              "(paper: ~64%% at 0, rising) ==\n");
  const EntityDataset ds = GenerateProfile(CfpConfig());
  RunImSweep(ds, {0, 14, 28, 42, 56}, /*sample=*/100);
  return 0;
}
