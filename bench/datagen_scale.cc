// Storage-layer scale sweep: the same med-shaped tuple stream held as a
// row Relation vs a dictionary-encoded ColumnarRelation, at 1e5 / 1e6
// (and 1e7 with --full) total tuples. Because peak RSS is monotone over
// a process's lifetime, the two modes cannot share a process: with no
// --mode flag this binary is the driver and re-executes itself once per
// (scale, mode) pair via /proc/self/exe, parsing one machine-readable
// line per child.
//
// Each mode run measures
//   * build_ms    — appending the stream into the store (interning cost
//                   is visible here for the columnar side);
//   * ground_ms   — Instantiate over a fixed sample of entity instances
//                   (columnar includes the per-entity FromRelation
//                   encode, exactly as the pipeline's columnar phase
//                   pays it);
//   * chase_ms    — ChaseEngine::RunFromInitial over the same sample;
//   * maxrss_kb   — getrusage peak RSS with the full store resident;
// and prints a digest of the chase targets. The driver asserts the
// digests match between modes (byte-identical reports are the
// correctness gate; the RSS/wall ratios are recorded for the CI scale
// lane to threshold) and emits BENCH_datagen_scale.json.
//
// The input stream is one constant generated chunk replayed until the
// target size, so the generator's own footprint does not scale with N
// and the RSS delta is the store representation itself.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.h"
#include "core/columnar.h"
#include "core/dictionary.h"
#include "datagen/profile_generator.h"
#include "rules/grounding.h"

namespace relacc {
namespace bench {
namespace {

int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// FNV-1a over the sampled chase targets; the driver compares this
/// across modes, so any representation-dependent divergence in ground or
/// chase behaviour fails the bench.
uint64_t DigestAppend(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The shared chunk: a narrow med-shaped profile (12 attributes) with a
/// fixed tuples-per-entity so `--tuples N` maps to an exact replay
/// count. Narrow on purpose — the sweep scales rows, not schema width.
EntityDataset MakeChunk() {
  ProfileConfig config = MedConfig(/*seed=*/57);
  config.num_entities = 500;
  config.min_tuples = 10;
  config.max_tuples = 10;
  config.num_currency_attrs = 3;
  config.num_master_attrs = 2;
  config.num_dep_attrs = 2;
  config.num_free_attrs = 3;
  config.master_size = 60;
  return GenerateProfile(config);
}

constexpr int kChaseSample = 200;

/// One in-process measurement; prints the DATAGEN_SCALE line the driver
/// parses. Only this mode's store representation is ever resident.
int RunMode(const std::string& mode, int64_t tuples) {
  const EntityDataset chunk = MakeChunk();
  const bool columnar = mode == "columnar";

  Dictionary dict;
  Relation row_store(chunk.schema);
  ColumnarRelation col_store(chunk.schema, &dict);

  int64_t appended = 0;
  const double build_ms = TimeMs([&] {
    while (appended < tuples) {
      for (const EntityInstance& e : chunk.entities) {
        for (int i = 0; i < e.size() && appended < tuples; ++i) {
          if (columnar) {
            col_store.Add(e.tuple(i));
          } else {
            row_store.Add(e.tuple(i));
          }
          ++appended;
        }
        if (appended >= tuples) break;
      }
    }
  });

  // Ground + chase a fixed entity sample with the full store resident.
  // Best-of-3: the sample is scale-independent by design, so the minimum
  // is the representation's cost and the reps reject scheduler noise.
  constexpr int kReps = 3;
  const int sample =
      std::min<int>(kChaseSample, static_cast<int>(chunk.entities.size()));
  std::vector<GroundProgram> programs(sample);
  std::vector<ColumnarRelation> encoded;
  double ground_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    encoded.clear();
    encoded.reserve(columnar ? sample : 0);
    const double ms = TimeMs([&] {
      for (int i = 0; i < sample; ++i) {
        if (columnar) {
          encoded.push_back(
              ColumnarRelation::FromRelation(chunk.entities[i], &dict));
          programs[i] =
              Instantiate(encoded.back(), chunk.masters, chunk.rules);
        } else {
          programs[i] = Instantiate(chunk.entities[i], chunk.masters,
                                    chunk.rules);
        }
      }
    });
    ground_ms = rep == 0 ? ms : std::min(ground_ms, ms);
  }

  uint64_t digest = 1469598103934665603ull;  // FNV offset basis
  int church_rosser = 0;
  double chase_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const bool record = rep == 0;  // digest once; targets are deterministic
    const double ms = TimeMs([&] {
      for (int i = 0; i < sample; ++i) {
        ChaseOutcome res;
        if (columnar) {
          ChaseEngine engine(encoded[i], &programs[i], chunk.chase_config);
          res = engine.RunFromInitial();
        } else {
          ChaseEngine engine(chunk.entities[i], &programs[i],
                             chunk.chase_config);
          res = engine.RunFromInitial();
        }
        if (record) {
          church_rosser += res.church_rosser ? 1 : 0;
          digest = DigestAppend(
              digest, res.church_rosser ? res.target.ToString() : "!CR");
        }
      }
    });
    chase_ms = rep == 0 ? ms : std::min(chase_ms, ms);
  }

  const int64_t store_bytes =
      columnar ? static_cast<int64_t>(col_store.ApproxBytes() +
                                      dict.ApproxBytes())
               : -1;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(digest));
  std::printf(
      "DATAGEN_SCALE {\"mode\": \"%s\", \"tuples\": %lld, "
      "\"build_ms\": %.1f, \"ground_ms\": %.1f, \"chase_ms\": %.1f, "
      "\"maxrss_kb\": %lld, \"store_bytes\": %lld, \"dict_terms\": %lld, "
      "\"entities_chased\": %d, \"church_rosser\": %d, "
      "\"digest\": \"%s\"}\n",
      mode.c_str(), static_cast<long long>(tuples), build_ms, ground_ms,
      chase_ms, static_cast<long long>(PeakRssKb()),
      static_cast<long long>(store_bytes),
      static_cast<long long>(dict.size()), sample, church_rosser,
      digest_hex);
  return 0;
}

/// Runs `self --mode <mode> --tuples <n>` and parses its DATAGEN_SCALE
/// line.
Result<Json> RunChild(const std::string& self, const std::string& mode,
                      int64_t tuples) {
  const std::string cmd = self + " --mode " + mode + " --tuples " +
                          std::to_string(tuples) + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return Status::IoError("popen failed for: " + cmd);
  std::string output;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    return Status::Internal("child exited with " + std::to_string(rc) +
                            ": " + output);
  }
  const std::size_t at = output.find("DATAGEN_SCALE ");
  if (at == std::string::npos) {
    return Status::ParseError("no DATAGEN_SCALE line in: " + output);
  }
  const std::size_t end = output.find('\n', at);
  return Json::Parse(output.substr(at + 14, end - (at + 14)));
}

int RunDriver(const std::string& self, bool full) {
  const bool small = SmallScale();
  std::vector<int64_t> scales =
      small ? std::vector<int64_t>{10000, 30000}
            : std::vector<int64_t>{100000, 1000000};
  if (full && !small) scales.push_back(10000000);

  JsonReport json("datagen_scale");
  bool identical = true;
  std::printf("== datagen_scale (row vs columnar store) ==\n");
  std::printf("%9s %9s %10s %10s %10s %12s\n", "tuples", "mode", "build_ms",
              "ground_ms", "chase_ms", "maxrss_kb");
  for (const int64_t tuples : scales) {
    std::string digests[2];
    double rss[2] = {0, 0};
    double wall[2] = {0, 0};
    bool scale_ok = true;
    for (const std::string mode : {"row", "columnar"}) {
      Result<Json> child = RunChild(self, mode, tuples);
      if (!child.ok()) {
        std::printf("%9lld %9s FAILED: %s\n", static_cast<long long>(tuples),
                    mode.c_str(), child.status().ToString().c_str());
        identical = false;
        scale_ok = false;
        continue;
      }
      const Json& r = child.value();
      const int idx = mode == "row" ? 0 : 1;
      digests[idx] = r.GetString("digest").value();
      rss[idx] = static_cast<double>(r.GetInt("maxrss_kb").value());
      wall[idx] =
          r.GetDouble("ground_ms").value() + r.GetDouble("chase_ms").value();
      std::printf("%9lld %9s %10.1f %10.1f %10.1f %12lld\n",
                  static_cast<long long>(tuples), mode.c_str(),
                  r.GetDouble("build_ms").value(),
                  r.GetDouble("ground_ms").value(),
                  r.GetDouble("chase_ms").value(),
                  static_cast<long long>(r.GetInt("maxrss_kb").value()));
      JsonReport::Row out;
      out.Set("mode", mode)
          .Set("tuples", tuples)
          .Set("build_ms", r.GetDouble("build_ms").value())
          .Set("ground_ms", r.GetDouble("ground_ms").value())
          .Set("chase_ms", r.GetDouble("chase_ms").value())
          .Set("maxrss_kb", r.GetInt("maxrss_kb").value())
          .Set("store_bytes", r.GetInt("store_bytes").value())
          .Set("dict_terms", r.GetInt("dict_terms").value())
          .Set("church_rosser", r.GetInt("church_rosser").value())
          .Set("digest", digests[idx]);
      json.Add(std::move(out));
    }
    if (!scale_ok) continue;
    if (digests[0] != digests[1]) {
      std::printf("%9lld DIGEST MISMATCH: row=%s columnar=%s (BUG)\n",
                  static_cast<long long>(tuples), digests[0].c_str(),
                  digests[1].c_str());
      identical = false;
    }
    const double rss_ratio = rss[0] > 0 ? rss[1] / rss[0] : 0.0;
    const double wall_ratio = wall[0] > 0 ? wall[1] / wall[0] : 0.0;
    std::printf("%9lld %9s rss_ratio=%.3f ground+chase_ratio=%.3f\n",
                static_cast<long long>(tuples), "ratio", rss_ratio,
                wall_ratio);
    JsonReport::Row ratio;
    ratio.Set("mode", "ratio")
        .Set("tuples", tuples)
        .Set("rss_ratio", rss_ratio)
        .Set("ground_chase_ratio", wall_ratio)
        .Set("reports_identical",
             static_cast<int64_t>(digests[0] == digests[1] ? 1 : 0));
    json.Add(std::move(ratio));
  }
  json.Write();
  std::printf("chase targets identical across representations: %s\n",
              identical ? "yes" : "NO (BUG)");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main(int argc, char** argv) {
  std::string mode;
  int64_t tuples = 100000;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::printf(
          "usage: %s [--full] | [--mode row|columnar --tuples N]\n",
          argv[0]);
      return 2;
    }
  }
  if (!mode.empty()) {
    if (mode != "row" && mode != "columnar") {
      std::printf("--mode must be row or columnar\n");
      return 2;
    }
    return relacc::bench::RunMode(mode, tuples);
  }
#if defined(__linux__)
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  const std::string self_path =
      n > 0 ? std::string(self, static_cast<std::size_t>(n))
            : std::string(argv[0]);
#else
  const std::string self_path = argv[0];
#endif
  return relacc::bench::RunDriver(self_path, full);
}
