// Scaling of the parallel candidate-check layer (topk/batch_check.h): a
// fixed pool of candidate targets over a Syn workload is checked with 1,
// 2, 4 and 8 worker threads, under both check strategies (kTrail — the
// default — and the kCopy reference). Reports wall-clock per (strategy,
// threads), the speedup over the sequential kCopy baseline (expect >= 2x
// at 8 threads on hardware with >= 4 cores; a 1-core machine shows ~1x),
// and verifies that the verdicts — and a full TopKCT run — are identical
// across thread counts and strategies. Emits BENCH_batch_check_scaling.json
// (bench::JsonReport); RELACC_BENCH_SMALL shrinks the workload for CI.

#include <cstdio>
#include <vector>

#include "chase/chase_engine.h"
#include "common.h"
#include "datagen/syn_generator.h"
#include "rules/grounding.h"
#include "topk/batch_check.h"
#include "topk/topk_ct.h"

// This file deliberately exercises the deprecated batch entry points:
// they are thin shims over AccuracyService now, and the expectations
// here are what pin the shims to the service's behaviour.
#include "api/version.h"

RELACC_SUPPRESS_DEPRECATED_BEGIN

namespace relacc {
namespace bench {
namespace {

int Run() {
  const bool small = SmallScale();
  SynConfig config;
  // The paper's low ‖Ie‖ point: ~1 ms per kCopy check at 300 tuples.
  config.num_tuples = small ? 100 : 300;
  config.master_size = small ? 50 : 150;
  std::printf("== batch candidate-check scaling "
              "(Syn, |Ie|=%d; expect >=2x at 8 threads on >=4 cores) ==\n",
              config.num_tuples);
  const SynDataset syn = GenerateSyn(config);
  const Specification& spec = syn.spec;
  const GroundProgram program =
      Instantiate(spec.ie, spec.masters, spec.rules);
  const ChaseEngine engine(spec.ie, &program, spec.config);
  const ChaseOutcome outcome = engine.RunFromCheckpoint();
  if (!outcome.church_rosser) {
    std::printf("unexpected: Syn spec not Church-Rosser\n");
    return 1;
  }

  // Candidate pool: what the top-k algorithms inspect — completions of
  // the deduced target over the active domains of its null attributes.
  const Tuple& te = outcome.target;
  const std::vector<Tuple> candidates = EnumerateCandidateProduct(
      spec.ie, spec.masters, te, /*include_default_values=*/false,
      small ? 128 : 512);
  std::printf("candidates: %zu  (null attrs of template: %d)\n\n",
              candidates.size(), te.NullCount());

  JsonReport report("batch_check_scaling");
  std::printf("%9s %8s %12s %9s %8s\n", "strategy", "threads", "ms",
              "speedup", "passed");
  std::vector<char> baseline;
  double base_ms = 0.0;
  bool all_identical = true;
  for (CheckStrategy strategy : {CheckStrategy::kCopy, CheckStrategy::kTrail}) {
    Specification run_spec = spec;
    run_spec.config.check_strategy = strategy;
    for (int threads : {1, 2, 4, 8}) {
      std::vector<char> verdicts;
      // Engine construction and the per-worker checkpoint chase are part
      // of the measured cost: that is what a top-k caller pays too.
      const double ms = TimeMs([&] {
        verdicts = CheckCandidates(run_spec, candidates, threads);
      });
      if (baseline.empty()) {
        baseline = verdicts;
        base_ms = ms;
      } else if (verdicts != baseline) {
        all_identical = false;
      }
      std::size_t passed = 0;
      for (char v : verdicts) passed += v != 0;
      const double speedup = ms > 0.0 ? base_ms / ms : 0.0;
      std::printf("%9s %8d %12.1f %8.2fx %8zu\n", CheckStrategyName(strategy),
                  threads, ms, speedup, passed);
      JsonReport::Row row;
      row.Set("name", "batch_check_scaling")
          .Set("strategy", CheckStrategyName(strategy))
          .Set("threads", threads)
          .Set("n", config.num_tuples)
          .Set("candidates", static_cast<int64_t>(candidates.size()))
          .Set("ms", ms)
          .Set("ns_per_check",
               ms * 1e6 / static_cast<double>(candidates.size()))
          .Set("checks_per_s",
               ms > 0.0 ? static_cast<double>(candidates.size()) / (ms / 1e3)
                        : 0.0)
          .Set("speedup_vs_copy_seq", speedup);
      report.Add(std::move(row));
    }
  }
  std::printf("verdicts identical across strategies and thread counts: %s\n",
              all_identical ? "yes" : "NO (BUG)");

  // End to end: TopKCT with a parallel checker returns the same ranked
  // candidates as the sequential run. The pop budget bounds the run when
  // passing candidates are sparse.
  TopKOptions opts;
  opts.max_expansions = 2000;
  opts.num_threads = 1;
  TopKResult seq;
  const double seq_ms = TimeMs([&] {
    seq = TopKCT(engine, spec.masters, te, syn.pref, 8, opts);
  });
  opts.num_threads = 8;
  TopKResult par;
  const double par_ms = TimeMs([&] {
    par = TopKCT(engine, spec.masters, te, syn.pref, 8, opts);
  });
  const bool same =
      par.targets == seq.targets && par.scores == seq.scores;
  std::printf("\nTopKCT k=8: sequential %.1f ms, 8 threads %.1f ms "
              "(%.2fx); ranked output identical: %s\n",
              seq_ms, par_ms, par_ms > 0.0 ? seq_ms / par_ms : 0.0,
              same ? "yes" : "NO (BUG)");
  JsonReport::Row topk_row;
  topk_row.Set("name", "topkct_end_to_end")
      .Set("n", config.num_tuples)
      .Set("k", 8)
      .Set("seq_ms", seq_ms)
      .Set("par8_ms", par_ms)
      .Set("speedup", par_ms > 0.0 ? seq_ms / par_ms : 0.0);
  report.Add(std::move(topk_row));
  report.Write();
  return all_identical && same ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }

RELACC_SUPPRESS_DEPRECATED_END
