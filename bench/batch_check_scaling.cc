// Scaling of the parallel candidate-check layer (topk/batch_check.h): a
// fixed pool of candidate targets over a Syn workload is checked with 1,
// 2, 4 and 8 worker threads. Reports wall-clock per thread count, the
// speedup over the sequential baseline (expect >= 2x at 8 threads on
// hardware with >= 4 cores; a 1-core machine shows ~1x), and verifies
// that the verdicts — and a full TopKCT run — are identical across
// thread counts.

#include <cstdio>
#include <vector>

#include "chase/chase_engine.h"
#include "common.h"
#include "datagen/syn_generator.h"
#include "rules/grounding.h"
#include "topk/batch_check.h"
#include "topk/topk_ct.h"

namespace relacc {
namespace bench {
namespace {

int Run() {
  std::printf("== batch candidate-check scaling "
              "(Syn, |Ie|=300; expect >=2x at 8 threads on >=4 cores) ==\n");
  SynConfig config;
  config.num_tuples = 300;  // the paper's low ‖Ie‖ point: ~1 ms per check
  config.master_size = 150;
  const SynDataset syn = GenerateSyn(config);
  const Specification& spec = syn.spec;
  const GroundProgram program =
      Instantiate(spec.ie, spec.masters, spec.rules);
  const ChaseEngine engine(spec.ie, &program, spec.config);
  const ChaseOutcome outcome = engine.RunFromInitial();
  if (!outcome.church_rosser) {
    std::printf("unexpected: Syn spec not Church-Rosser\n");
    return 1;
  }

  // Candidate pool: what the top-k algorithms inspect — completions of
  // the deduced target over the active domains of its null attributes.
  const Tuple& te = outcome.target;
  const std::vector<Tuple> candidates = EnumerateCandidateProduct(
      spec.ie, spec.masters, te, /*include_default_values=*/false, 512);
  std::printf("candidates: %zu  (null attrs of template: %d)\n\n",
              candidates.size(), te.NullCount());

  std::printf("%8s %12s %9s %8s\n", "threads", "ms", "speedup", "passed");
  std::vector<char> baseline;
  double base_ms = 0.0;
  bool all_identical = true;
  for (int threads : {1, 2, 4, 8}) {
    std::vector<char> verdicts;
    // Engine construction and the per-worker checkpoint chase are part of
    // the measured cost: that is what a top-k caller pays too.
    const double ms = TimeMs([&] {
      verdicts = CheckCandidates(spec, candidates, threads);
    });
    if (threads == 1) {
      baseline = verdicts;
      base_ms = ms;
    } else if (verdicts != baseline) {
      all_identical = false;
    }
    std::size_t passed = 0;
    for (char v : verdicts) passed += v != 0;
    std::printf("%8d %12.1f %8.2fx %8zu\n", threads, ms,
                ms > 0.0 ? base_ms / ms : 0.0, passed);
  }
  std::printf("verdicts identical across thread counts: %s\n",
              all_identical ? "yes" : "NO (BUG)");

  // End to end: TopKCT with a parallel checker returns the same ranked
  // candidates as the sequential run. The pop budget bounds the run when
  // passing candidates are sparse.
  TopKOptions opts;
  opts.max_expansions = 2000;
  opts.num_threads = 1;
  TopKResult seq;
  const double seq_ms = TimeMs([&] {
    seq = TopKCT(engine, spec.masters, te, syn.pref, 8, opts);
  });
  opts.num_threads = 8;
  TopKResult par;
  const double par_ms = TimeMs([&] {
    par = TopKCT(engine, spec.masters, te, syn.pref, 8, opts);
  });
  const bool same =
      par.targets == seq.targets && par.scores == seq.scores;
  std::printf("\nTopKCT k=8: sequential %.1f ms, 8 threads %.1f ms "
              "(%.2fx); ranked output identical: %s\n",
              seq_ms, par_ms, par_ms > 0.0 ? seq_ms / par_ms : 0.0,
              same ? "yes" : "NO (BUG)");
  return all_identical && same ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }
