// Exp-5 (CFP): truth discovery on CFP with k=1 — % of entities whose
// *complete true* target is derived, plus attribute-level accuracy.
// Paper: voting 37%, DeduceOrder 0% (31% of attribute values), TopKCT 70%;
// IsCR alone deduces 83% of attribute values.

#include "common.h"
#include "truth/deduce_order.h"
#include "truth/voting.h"

using namespace relacc;
using namespace relacc::bench;

int main() {
  std::printf("== Exp-5: truth discovery on CFP, k=1 "
              "(paper: voting 37%%, DeduceOrder 0%%, TopKCT 70%%) ==\n");
  const EntityDataset ds = GenerateProfile(CfpConfig());
  const int n = static_cast<int>(ds.entities.size());

  int vote_hits = 0, deduce_hits = 0, topk_hits = 0;
  double deduce_attrs = 0.0, iscr_attrs = 0.0;
  for (int i = 0; i < n; ++i) {
    const Tuple& truth = ds.truths[i];
    // voting: complete tuple by per-attribute majority.
    if (VoteEntity(ds.entities[i]) == truth) ++vote_hits;

    // DeduceOrder: currency rules + CFDs only, certain values only.
    Specification spec = ds.SpecFor(i);
    const Tuple deduced = RunDeduceOrder(spec);
    if (deduced == truth) ++deduce_hits;
    deduce_attrs += CompareTarget(deduced, truth).attrs_correct;

    // TopKCT with k=1 on the full AR set.
    const GroundProgram prog =
        Instantiate(ds.entities[i], ds.masters, ds.rules);
    ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
    const ChaseOutcome out = engine.RunFromInitial();
    if (!out.church_rosser) continue;
    iscr_attrs += CompareTarget(out.target, truth).attrs_correct;
    if (out.target.IsComplete()) {
      if (out.target == truth) ++topk_hits;
      continue;
    }
    const PreferenceModel pref =
        PreferenceModel::FromOccurrences(ds.entities[i], ds.masters);
    const TopKResult r = TopKCT(engine, ds.masters, out.target, pref, 1);
    if (!r.targets.empty() && r.targets[0] == truth) ++topk_hits;
  }
  const double dn = static_cast<double>(n);
  std::printf("complete true targets:  voting %s | DeduceOrder %s | "
              "TopKCT %s\n",
              Pct(vote_hits / dn).c_str(), Pct(deduce_hits / dn).c_str(),
              Pct(topk_hits / dn).c_str());
  std::printf("attribute values:       DeduceOrder %s | IsCR (full Σ) %s\n",
              Pct(deduce_attrs / dn).c_str(), Pct(iscr_attrs / dn).c_str());
  return 0;
}
