// Candidate-check throughput of the two CheckCandidate strategies
// (chase/specification.h): kCopy deep-copies the all-null checkpoint per
// candidate — every PartialOrder bit-matrix, O(attrs · n²/64) words —
// while kTrail chases one long-lived probe state forward and rolls back
// only what the probe changed. Med-profile entities of exact size n are
// checked over the same candidate pool under both strategies; verdicts
// must match bit for bit, and kTrail is expected to win by ≥ 2x from
// n = 32 up (the gap widens with n: copy cost is quadratic in n, trail
// cost follows the probe's footprint).
//
// Emits BENCH_trail_vs_copy.json (see bench::JsonReport); exits nonzero
// only on a verdict mismatch, so perf noise cannot break CI.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "chase/chase_engine.h"
#include "common.h"
#include "datagen/profile_generator.h"
#include "rules/grounding.h"
#include "topk/batch_check.h"

namespace relacc {
namespace bench {
namespace {

struct StrategyRun {
  double ms = 0.0;
  std::vector<char> verdicts;
};

/// Times `rounds` passes of CheckCandidate over the pool on a fresh
/// engine configured with `strategy`; the checkpoint chase is excluded
/// (warmed first) so the measurement isolates the per-candidate cost.
StrategyRun RunStrategy(const Specification& spec, const GroundProgram& prog,
                        CheckStrategy strategy,
                        const std::vector<Tuple>& candidates, int rounds) {
  ChaseConfig config = spec.config;
  config.check_strategy = strategy;
  ChaseEngine engine(spec.ie, &prog, config);
  StrategyRun run;
  if (!engine.RunFromCheckpoint().church_rosser) return run;
  run.verdicts.resize(candidates.size());
  // Warm-up pass: builds the kTrail probe state (a one-time copy a top-k
  // caller amortizes over its whole search) and faults in the indexes, so
  // the timed region isolates the steady-state per-candidate cost.
  (void)engine.CheckCandidate(candidates[0]);
  run.ms = TimeMs([&] {
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        run.verdicts[i] = engine.CheckCandidate(candidates[i]) ? 1 : 0;
      }
    }
  });
  return run;
}

/// Completions of the deduced target over its null attributes; when that
/// product is smaller than `cap`, re-opens further attributes (from the
/// schema tail: free/dep before cur) until the pool is deep enough to
/// time. Re-opened attributes make some candidates disagree with the
/// deduced value there — those probes abort on the conflict, exercising
/// the mid-chase rollback path exactly like a real mixed pool does.
std::vector<Tuple> BuildPool(const Specification& spec, const Tuple& deduced,
                             std::size_t cap) {
  Tuple te = deduced;
  std::vector<Tuple> pool = EnumerateCandidateProduct(
      spec.ie, spec.masters, te, /*include_default_values=*/false, cap);
  for (AttrId a = static_cast<AttrId>(te.size()) - 1;
       a >= 2 && pool.size() < cap / 2; --a) {
    if (te.at(a).is_null()) continue;
    te.set(a, Value::Null());
    pool = EnumerateCandidateProduct(spec.ie, spec.masters, te,
                                     /*include_default_values=*/false, cap);
    if (pool.empty()) return pool;
  }
  return pool;
}

int Run() {
  const bool small = SmallScale();
  std::printf("== trail vs copy candidate-check strategies "
              "(med profile, exact |Ie| per point%s) ==\n",
              small ? "; RELACC_BENCH_SMALL" : "");
  std::printf("%6s %12s %14s %14s %14s %9s\n", "n", "candidates",
              "copy ns/chk", "trail ns/chk", "trail chk/s", "speedup");

  JsonReport report("trail_vs_copy");
  const std::vector<int> sizes = small ? std::vector<int>{16, 32}
                                       : std::vector<int>{16, 32, 64, 96};
  const std::size_t pool_cap = small ? 96 : 256;
  const int64_t target_checks = small ? 256 : 1024;
  bool all_identical = true;

  for (int n : sizes) {
    ProfileConfig config = MedConfig(/*seed=*/1234 + n);
    config.num_entities = 6;
    config.min_tuples = n;
    config.max_tuples = n;
    config.master_size = 200;
    // Every free attribute corrupted: observations disagree, the chase
    // leaves them null, and the candidate search has real work.
    config.free_corruption_prob = 1.0;
    const EntityDataset ds = GenerateProfile(config);

    // First Church-Rosser entity with an incomplete target.
    bool found = false;
    for (int i = 0; i < static_cast<int>(ds.entities.size()) && !found; ++i) {
      const Specification spec = ds.SpecFor(i);
      const GroundProgram prog =
          Instantiate(spec.ie, spec.masters, spec.rules);
      ChaseEngine probe(spec.ie, &prog, spec.config);
      const ChaseOutcome outcome = probe.RunFromCheckpoint();
      if (!outcome.church_rosser || outcome.target.IsComplete()) continue;
      found = true;

      const std::vector<Tuple> candidates =
          BuildPool(spec, outcome.target, pool_cap);
      if (candidates.empty()) break;
      const int rounds = static_cast<int>(std::max<int64_t>(
          1, target_checks / static_cast<int64_t>(candidates.size())));
      const int64_t checks =
          static_cast<int64_t>(candidates.size()) * rounds;

      const StrategyRun copy =
          RunStrategy(spec, prog, CheckStrategy::kCopy, candidates, rounds);
      const StrategyRun trail =
          RunStrategy(spec, prog, CheckStrategy::kTrail, candidates, rounds);
      if (copy.verdicts != trail.verdicts) all_identical = false;

      const double copy_ns = copy.ms * 1e6 / static_cast<double>(checks);
      const double trail_ns = trail.ms * 1e6 / static_cast<double>(checks);
      const double trail_cps =
          trail.ms > 0.0 ? static_cast<double>(checks) / (trail.ms / 1e3)
                         : 0.0;
      const double speedup = trail.ms > 0.0 ? copy.ms / trail.ms : 0.0;
      std::printf("%6d %12zu %14.0f %14.0f %14.0f %8.2fx\n", n,
                  candidates.size(), copy_ns, trail_ns, trail_cps, speedup);

      JsonReport::Row row;
      row.Set("name", "trail_vs_copy")
          .Set("n", n)
          .Set("candidates", static_cast<int64_t>(candidates.size()))
          .Set("rounds", rounds)
          .Set("copy_ns_per_check", copy_ns)
          .Set("trail_ns_per_check", trail_ns)
          .Set("copy_checks_per_s",
               copy.ms > 0.0
                   ? static_cast<double>(checks) / (copy.ms / 1e3)
                   : 0.0)
          .Set("trail_checks_per_s", trail_cps)
          .Set("speedup", speedup);
      report.Add(std::move(row));
    }
    if (!found) {
      std::printf("%6d   (no incomplete Church-Rosser entity; skipped)\n",
                  n);
    }
  }

  report.Write();
  std::printf("verdicts identical across strategies: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relacc

int main() { return relacc::bench::Run(); }
