// Fig. 6(a): percentage of entities for which IsCR automatically deduces a
// complete target tuple. Paper: Med 66%, CFP 72%.

#include "common.h"

using namespace relacc;
using namespace relacc::bench;

namespace {

void RunDataset(const EntityDataset& ds) {
  int cr = 0, complete = 0, complete_correct = 0;
  for (std::size_t i = 0; i < ds.entities.size(); ++i) {
    const EntityOutcome out = ChaseEntity(ds, static_cast<int>(i), ds.masters,
                                          RuleFormFilter::kBoth);
    cr += out.church_rosser;
    complete += out.complete;
    complete_correct += out.complete_correct;
  }
  const double n = static_cast<double>(ds.entities.size());
  std::printf("%-4s | entities %5zu | Church-Rosser %s | complete te %s | "
              "complete & correct %s\n",
              ds.name.c_str(), ds.entities.size(), Pct(cr / n).c_str(),
              Pct(complete / n).c_str(), Pct(complete_correct / n).c_str());
}

}  // namespace

int main() {
  std::printf("== Fig 6(a): %% of entities with a complete deduced target "
              "(paper: Med 66%%, CFP 72%%) ==\n");
  RunDataset(GenerateProfile(MedConfig()));
  RunDataset(GenerateProfile(CfpConfig()));
  return 0;
}
