// Ablation: the priority-queue substrate of TopKCT. The paper prescribes a
// Brodal queue [6]; DESIGN.md §5 substitutes a pairing heap. This bench
// compares the pairing heap against std::priority_queue (binary heap) on
// the TopKCT access pattern — bursts of m pushes per pop, scores drifting
// downward — to show the substitution is not the bottleneck either way.

#include <benchmark/benchmark.h>

#include <queue>

#include "topk/pairing_heap.h"
#include "util/rng.h"

namespace {

using relacc::PairingHeap;
using relacc::Rng;

struct Obj {
  double w;
  int payload[4];
};
struct ObjLess {
  bool operator()(const Obj& a, const Obj& b) const { return a.w < b.w; }
};

/// TopKCT-like workload: pop one, push up to m successors with slightly
/// lower scores.
template <typename Queue, typename PushFn, typename PopFn>
void RunWorkload(benchmark::State& state, Queue& q, PushFn push, PopFn pop) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    push(Obj{1000.0, {}});
    for (int step = 0; step < 1000; ++step) {
      const Obj top = pop();
      benchmark::DoNotOptimize(top.w);
      for (int i = 0; i < m; ++i) {
        push(Obj{top.w - rng.UniformDouble(), {}});
      }
    }
    // Drain so iterations are independent.
    while (!q.empty()) pop();
  }
  state.SetItemsProcessed(state.iterations() * 1000 * (m + 1));
}

void BM_PairingHeap(benchmark::State& state) {
  PairingHeap<Obj, ObjLess> q;
  RunWorkload(
      state, q, [&](Obj o) { q.Push(o); }, [&] { return q.Pop(); });
}
BENCHMARK(BM_PairingHeap)->Arg(2)->Arg(6)->Arg(12);

void BM_StdPriorityQueue(benchmark::State& state) {
  std::priority_queue<Obj, std::vector<Obj>, ObjLess> q;
  RunWorkload(
      state, q, [&](Obj o) { q.push(o); },
      [&] {
        Obj top = q.top();
        q.pop();
        return top;
      });
}
BENCHMARK(BM_StdPriorityQueue)->Arg(2)->Arg(6)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
