// Fig. 7(a): Med — per-entity elapsed time of the three top-k algorithms
// as the entity-instance size grows through the buckets [1,18], [19,36],
// [37,54], [55,72], [73,90]. Paper: all under 500ms; TopKCTh < TopKCT <
// RankJoinCT.

#include "common.h"

using namespace relacc;
using namespace relacc::bench;

int main() {
  std::printf("== Fig 7(a): Med per-entity top-k time vs |Ie| bucket ==\n");
  struct Bucket {
    int lo, hi;
  };
  const std::vector<Bucket> buckets = {{1, 18}, {19, 36}, {37, 54},
                                       {55, 72}, {73, 90}};
  std::printf("%-12s", "bucket");
  for (const Bucket& b : buckets) std::printf("  [%d,%d]\t", b.lo, b.hi);
  std::printf("\n");
  std::vector<double> times[3];
  for (const Bucket& b : buckets) {
    ProfileConfig c = MedConfig(90 + b.lo);
    c.num_entities = 40;
    c.master_size = 36;
    c.min_tuples = b.lo;
    c.max_tuples = b.hi;
    c.mean_extra_tuples = (b.hi - b.lo) / 2.0;
    const EntityDataset ds = GenerateProfile(c);
    const TopKAlgo algos[3] = {TopKAlgo::kRankJoinCT, TopKAlgo::kTopKCT,
                               TopKAlgo::kTopKCTh};
    for (int a = 0; a < 3; ++a) {
      double total = 0.0;
      int counted = 0;
      for (std::size_t i = 0; i < ds.entities.size(); ++i) {
        const std::vector<AccuracyRule> rules =
            ds.FilteredRules(RuleFormFilter::kBoth);
        const GroundProgram prog =
            Instantiate(ds.entities[i], ds.masters, rules);
        ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
        const ChaseOutcome out = engine.RunFromInitial();
        if (!out.church_rosser || out.target.IsComplete()) continue;
        const PreferenceModel pref =
            PreferenceModel::FromOccurrences(ds.entities[i], ds.masters);
        (void)engine.CheckCandidate(ds.truths[i]);  // warm checkpoint
        total += TimeMs([&] {
          (void)RunTopK(algos[a], engine, ds.masters, out.target, pref, 15);
        });
        ++counted;
      }
      times[a].push_back(counted > 0 ? total / counted : 0.0);
    }
  }
  const char* names[3] = {"RankJoinCT", "TopKCT", "TopKCTh"};
  for (int a = 0; a < 3; ++a) {
    std::printf("%-12s", names[a]);
    for (double t : times[a]) std::printf("  %.3fms\t", t);
    std::printf("\n");
  }
  std::printf("(avg per incomplete entity, k=15, 40 entities per bucket)\n");
  return 0;
}
