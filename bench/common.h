#ifndef RELACC_BENCH_COMMON_H_
#define RELACC_BENCH_COMMON_H_

// Shared harness for the per-figure benchmark binaries. Each binary prints
// the rows/series of one table or figure of the paper (see DESIGN.md §4);
// EXPERIMENTS.md records paper-vs-measured.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "chase/chase_engine.h"
#include "datagen/dataset.h"
#include "datagen/profile_generator.h"
#include "topk/rank_join_ct.h"
#include "topk/topk_ct.h"
#include "truth/metrics.h"

namespace relacc {
namespace bench {

/// Wall-clock milliseconds of `fn`.
inline double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Per-entity chase result against ground truth.
struct EntityOutcome {
  bool church_rosser = false;
  bool complete = false;
  bool complete_correct = false;
  TargetQuality quality;
  Tuple target;
};

/// Chases entity `i` of `ds` under `filter` over `masters` (usually
/// ds.masters; substitute a truncated copy for the ‖Im‖ sweeps).
inline EntityOutcome ChaseEntity(const EntityDataset& ds, int i,
                                 const std::vector<Relation>& masters,
                                 RuleFormFilter filter) {
  EntityOutcome out;
  const std::vector<AccuracyRule> rules = ds.FilteredRules(filter);
  const GroundProgram prog = Instantiate(ds.entities[i], masters, rules);
  ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
  const ChaseOutcome res = engine.RunFromInitial();
  out.church_rosser = res.church_rosser;
  if (!res.church_rosser) return out;
  out.target = res.target;
  out.complete = res.target.IsComplete();
  out.quality = CompareTarget(res.target, ds.truths[i]);
  out.complete_correct = out.quality.complete_and_correct > 0.5;
  return out;
}

enum class TopKAlgo { kTopKCT, kTopKCTh, kRankJoinCT };

inline const char* AlgoName(TopKAlgo algo) {
  switch (algo) {
    case TopKAlgo::kTopKCT:
      return "TopKCT";
    case TopKAlgo::kTopKCTh:
      return "TopKCTh";
    case TopKAlgo::kRankJoinCT:
      return "RankJoinCT";
  }
  return "?";
}

inline TopKResult RunTopK(TopKAlgo algo, const ChaseEngine& engine,
                          const std::vector<Relation>& masters,
                          const Tuple& te, const PreferenceModel& pref, int k,
                          const TopKOptions& opts = {}) {
  switch (algo) {
    case TopKAlgo::kTopKCT:
      return TopKCT(engine, masters, te, pref, k, opts);
    case TopKAlgo::kTopKCTh:
      return TopKCTh(engine, masters, te, pref, k, opts);
    case TopKAlgo::kRankJoinCT:
      return RankJoinCT(engine, masters, te, pref, k, opts);
  }
  return {};
}

/// For one entity: the 1-based rank at which the true target appears among
/// the top-`max_k` candidates of `algo`, or 0 if absent. A complete deduced
/// target counts as rank 1 when it equals the truth. Running once at max_k
/// yields the whole Fig. 6(b)/(f) k-sweep.
inline int TruthRank(TopKAlgo algo, const EntityDataset& ds, int i,
                     const std::vector<Relation>& masters,
                     RuleFormFilter filter, int max_k) {
  const std::vector<AccuracyRule> rules = ds.FilteredRules(filter);
  const GroundProgram prog = Instantiate(ds.entities[i], masters, rules);
  ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
  const ChaseOutcome res = engine.RunFromInitial();
  if (!res.church_rosser) return 0;
  if (res.target.IsComplete()) {
    return res.target == ds.truths[i] ? 1 : 0;
  }
  const PreferenceModel pref =
      PreferenceModel::FromOccurrences(ds.entities[i], masters);
  const TopKResult topk =
      RunTopK(algo, engine, masters, res.target, pref, max_k);
  for (std::size_t r = 0; r < topk.targets.size(); ++r) {
    if (topk.targets[r] == ds.truths[i]) return static_cast<int>(r) + 1;
  }
  return 0;
}

/// Percent formatting helper.
inline std::string Pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * x);
  return buf;
}

}  // namespace bench
}  // namespace relacc

#endif  // RELACC_BENCH_COMMON_H_
