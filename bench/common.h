#ifndef RELACC_BENCH_COMMON_H_
#define RELACC_BENCH_COMMON_H_

// Shared harness for the per-figure benchmark binaries. Each binary prints
// the rows/series of one table or figure of the paper (see DESIGN.md §4);
// EXPERIMENTS.md records paper-vs-measured.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "api/version.h"
#include "chase/chase_engine.h"
#include "datagen/dataset.h"
#include "datagen/profile_generator.h"
#include "io/spec_io.h"
#include "topk/rank_join_ct.h"
#include "topk/topk_ct.h"
#include "truth/metrics.h"
#include "util/json.h"
#include "util/status.h"

namespace relacc {
namespace bench {

/// Wall-clock milliseconds of `fn`.
inline double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// True when RELACC_BENCH_SMALL is set (non-empty, not "0"): benches shrink
/// their workloads to smoke-test scale so CI can run them in seconds.
inline bool SmallScale() {
  const char* v = std::getenv("RELACC_BENCH_SMALL");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// Machine-readable results: each Row becomes one JSON object in a
/// top-level array written to BENCH_<bench>.json (under
/// RELACC_BENCH_JSON_DIR when set, else the working directory). CI
/// smoke-runs the benches and uploads these as artifacts, so the perf
/// trajectory (ns/check, checks/s, speedups) is recorded per commit.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)), rows_(Json::Array()) {}

  class Row {
   public:
    Row() : json_(Json::Object()) {}
    Row& Set(const std::string& key, const std::string& v) {
      json_.Set(key, Json::Str(v));
      return *this;
    }
    Row& Set(const std::string& key, double v) {
      json_.Set(key, Json::Real(v));
      return *this;
    }
    Row& Set(const std::string& key, int64_t v) {
      json_.Set(key, Json::Int(v));
      return *this;
    }
    Row& Set(const std::string& key, int v) {
      return Set(key, static_cast<int64_t>(v));
    }
    Json json_;
  };

  void Add(Row row) { rows_.Append(std::move(row.json_)); }

  /// Writes BENCH_<bench_name>.json; returns false (and warns on stdout)
  /// on I/O failure so benches can keep their exit code meaningful.
  bool Write() {
    Json doc = Json::Object();
    doc.Set("bench", Json::Str(bench_name_));
    doc.Set("version", Json::Str(kRelaccVersion));
    doc.Set("small_scale", Json::Bool(SmallScale()));
    doc.Set("rows", std::move(rows_));
    rows_ = Json::Array();
    const char* dir = std::getenv("RELACC_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0'
                                  ? std::string(dir) + "/"
                                  : std::string()) +
                             "BENCH_" + bench_name_ + ".json";
    const Status st = WriteFile(path, doc.Dump(2) + "\n");
    if (!st.ok()) {
      std::printf("warning: could not write %s: %s\n", path.c_str(),
                  st.ToString().c_str());
      return false;
    }
    std::printf("bench json: %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  Json rows_;
};

/// Per-entity chase result against ground truth.
struct EntityOutcome {
  bool church_rosser = false;
  bool complete = false;
  bool complete_correct = false;
  TargetQuality quality;
  Tuple target;
};

/// Chases entity `i` of `ds` under `filter` over `masters` (usually
/// ds.masters; substitute a truncated copy for the ‖Im‖ sweeps).
inline EntityOutcome ChaseEntity(const EntityDataset& ds, int i,
                                 const std::vector<Relation>& masters,
                                 RuleFormFilter filter) {
  EntityOutcome out;
  const std::vector<AccuracyRule> rules = ds.FilteredRules(filter);
  const GroundProgram prog = Instantiate(ds.entities[i], masters, rules);
  ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
  const ChaseOutcome res = engine.RunFromInitial();
  out.church_rosser = res.church_rosser;
  if (!res.church_rosser) return out;
  out.target = res.target;
  out.complete = res.target.IsComplete();
  out.quality = CompareTarget(res.target, ds.truths[i]);
  out.complete_correct = out.quality.complete_and_correct > 0.5;
  return out;
}

enum class TopKAlgo { kTopKCT, kTopKCTh, kRankJoinCT };

inline const char* AlgoName(TopKAlgo algo) {
  switch (algo) {
    case TopKAlgo::kTopKCT:
      return "TopKCT";
    case TopKAlgo::kTopKCTh:
      return "TopKCTh";
    case TopKAlgo::kRankJoinCT:
      return "RankJoinCT";
  }
  return "?";
}

inline TopKResult RunTopK(TopKAlgo algo, const ChaseEngine& engine,
                          const std::vector<Relation>& masters,
                          const Tuple& te, const PreferenceModel& pref, int k,
                          const TopKOptions& opts = {}) {
  switch (algo) {
    case TopKAlgo::kTopKCT:
      return TopKCT(engine, masters, te, pref, k, opts);
    case TopKAlgo::kTopKCTh:
      return TopKCTh(engine, masters, te, pref, k, opts);
    case TopKAlgo::kRankJoinCT:
      return RankJoinCT(engine, masters, te, pref, k, opts);
  }
  return {};
}

/// For one entity: the 1-based rank at which the true target appears among
/// the top-`max_k` candidates of `algo`, or 0 if absent. A complete deduced
/// target counts as rank 1 when it equals the truth. Running once at max_k
/// yields the whole Fig. 6(b)/(f) k-sweep.
inline int TruthRank(TopKAlgo algo, const EntityDataset& ds, int i,
                     const std::vector<Relation>& masters,
                     RuleFormFilter filter, int max_k) {
  const std::vector<AccuracyRule> rules = ds.FilteredRules(filter);
  const GroundProgram prog = Instantiate(ds.entities[i], masters, rules);
  ChaseEngine engine(ds.entities[i], &prog, ds.chase_config);
  // Checkpoint-backed: RunTopK's candidate checks resume from this run.
  const ChaseOutcome res = engine.RunFromCheckpoint();
  if (!res.church_rosser) return 0;
  if (res.target.IsComplete()) {
    return res.target == ds.truths[i] ? 1 : 0;
  }
  const PreferenceModel pref =
      PreferenceModel::FromOccurrences(ds.entities[i], masters);
  const TopKResult topk =
      RunTopK(algo, engine, masters, res.target, pref, max_k);
  for (std::size_t r = 0; r < topk.targets.size(); ++r) {
    if (topk.targets[r] == ds.truths[i]) return static_cast<int>(r) + 1;
  }
  return 0;
}

/// Percent formatting helper.
inline std::string Pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * x);
  return buf;
}

}  // namespace bench
}  // namespace relacc

#endif  // RELACC_BENCH_COMMON_H_
