#include "util/dynamic_bitset.h"

namespace relacc {

std::size_t DynamicBitset::Count() const {
  std::size_t n = 0;
  for (uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

}  // namespace relacc
