#ifndef RELACC_UTIL_DYNAMIC_BITSET_H_
#define RELACC_UTIL_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relacc {

/// A fixed-size-at-construction bitset used for reachability rows in the
/// partial-order transitive closure. Word-level operations (OrWith,
/// iteration over set bits) keep the closure update cache-friendly.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(std::size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(std::size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Sets bit i; returns true iff the bit was previously clear.
  bool TestAndSet(std::size_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (w & mask) return false;
    w |= mask;
    return true;
  }

  /// this |= other. Sizes must match.
  void OrWith(const DynamicBitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// Number of set bits.
  std::size_t Count() const;

  /// Invokes fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Invokes fn(index) for every bit set in `other` but not in `*this`.
  template <typename Fn>
  void ForEachMissingFrom(const DynamicBitset& other, Fn fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = other.words_[w] & ~words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace relacc

#endif  // RELACC_UTIL_DYNAMIC_BITSET_H_
