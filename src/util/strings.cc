#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace relacc {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> prev(a.size() + 1);
  std::vector<std::size_t> cur(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const std::size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) / static_cast<double>(m);
}

double TrigramJaccard(std::string_view a, std::string_view b) {
  if (a.size() < 3 || b.size() < 3) return EditSimilarity(a, b);
  auto grams = [](std::string_view s) {
    std::unordered_set<std::string> g;
    for (std::size_t i = 0; i + 3 <= s.size(); ++i) g.emplace(s.substr(i, 3));
    return g;
  };
  const auto ga = grams(a);
  const auto gb = grams(b);
  std::size_t inter = 0;
  for (const auto& g : ga) inter += gb.count(g);
  const std::size_t uni = ga.size() + gb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace relacc
