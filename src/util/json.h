#ifndef RELACC_UTIL_JSON_H_
#define RELACC_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace relacc {

/// A JSON document node. Self-contained (no external dependency); used by
/// the spec/outcome (de)serializers in src/io and by the CLI. Objects keep
/// key insertion order so serialization is deterministic.
///
/// Numbers remember whether they were written as integers; `AsInt` on a
/// fractional number fails, while `AsDouble` accepts both.
class Json {
 public:
  enum class Type { kNull = 0, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Int(int64_t v);
  static Json Real(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; abort on type mismatch (use the is_* guards or the
  /// checked Get* helpers below).
  bool as_bool() const;
  int64_t as_int() const;
  double as_double() const;  ///< accepts kInt and kDouble
  const std::string& as_string() const;

  // --- arrays ---
  int size() const;  ///< elements (array) or members (object); 0 otherwise
  const Json& at(int i) const;
  Json& at(int i);
  void Append(Json v);

  // --- objects ---
  /// Member lookup; nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  /// Inserts or overwrites member `key`.
  void Set(const std::string& key, Json v);
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Checked member accessors for deserializers: error Status names the key.
  Result<bool> GetBool(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<const Json*> GetArray(const std::string& key) const;
  Result<const Json*> GetObject(const std::string& key) const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact single-line JSON.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document. Rejects trailing non-whitespace input. One
  /// deliberate leniency beyond RFC 8259: literal newlines inside string
  /// values are accepted (multi-line rule-DSL programs embedded in spec
  /// documents stay readable); Dump() always emits the strict escape.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(const std::string& s);

}  // namespace relacc

#endif  // RELACC_UTIL_JSON_H_
