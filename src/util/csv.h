#ifndef RELACC_UTIL_CSV_H_
#define RELACC_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace relacc {

/// Minimal RFC-4180-ish CSV support used to persist generated datasets so
/// that examples can round-trip realistic files. Quotes fields containing
/// separators/quotes/newlines; doubles embedded quotes.
class CsvWriter {
 public:
  explicit CsvWriter(char sep = ',') : sep_(sep) {}

  /// Appends one record to the in-memory buffer.
  void WriteRow(const std::vector<std::string>& fields);

  /// Buffer contents so far.
  const std::string& contents() const { return buffer_; }

  /// Writes the buffer to `path`, truncating.
  Status Flush(const std::string& path) const;

 private:
  char sep_;
  std::string buffer_;
};

/// Parses CSV text into rows of fields.
class CsvReader {
 public:
  explicit CsvReader(char sep = ',') : sep_(sep) {}

  /// Parses the full text. Returns rows (possibly ragged).
  Result<std::vector<std::vector<std::string>>> Parse(const std::string& text) const;

  /// Reads and parses a file.
  Result<std::vector<std::vector<std::string>>> ReadFile(const std::string& path) const;

 private:
  char sep_;
};

}  // namespace relacc

#endif  // RELACC_UTIL_CSV_H_
