#ifndef RELACC_UTIL_RNG_H_
#define RELACC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace relacc {

/// Deterministic xoshiro256** generator. Every generator, experiment and
/// test in this repository takes an explicit seed so results are exactly
/// reproducible across runs and machines (libstdc++ distributions are not
/// portable, so we implement the few we need on top of the raw stream).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Gaussian via Box-Muller, mean/stddev as given.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  /// Uses inverse-CDF over precomputable harmonic weights; intended for
  /// modest n (active domains), not for n in the millions.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Precondition: !v.empty().
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_spare_ = 0.0;
};

}  // namespace relacc

#endif  // RELACC_UTIL_RNG_H_
