#ifndef RELACC_UTIL_STRINGS_H_
#define RELACC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace relacc {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// ASCII lower-casing copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance / max(len); 1.0 for two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity over character trigrams; falls back to
/// EditSimilarity for strings shorter than 3 characters.
double TrigramJaccard(std::string_view a, std::string_view b);

}  // namespace relacc

#endif  // RELACC_UTIL_STRINGS_H_
