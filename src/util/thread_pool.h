#ifndef RELACC_UTIL_THREAD_POOL_H_
#define RELACC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relacc {

/// A fixed-size worker pool for the multi-entity pipeline. Deliberately
/// minimal: fire-and-forget tasks plus a blocking Wait(); result ordering
/// is the caller's concern (the pipeline writes results by index, so
/// output is deterministic regardless of scheduling).
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task`. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits. fn must be
  /// safe to invoke concurrently for distinct i. Indices are chunked to
  /// limit queue churn on large n.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Like ParallelFor, but partitions [0, n) into at most num_threads()
  /// contiguous chunks and passes the chunk's slot index as fn's first
  /// argument. At most one task runs per slot at any time, so fn may use
  /// per-slot scratch state (e.g. a ChaseEngine per worker) without locks.
  void ParallelForSlots(int64_t n,
                        const std::function<void(int, int64_t)>& fn);

  /// ParallelForSlots with the slot count additionally capped at
  /// `max_slots` (>= 1). The pipeline's two-dimensional thread plan uses
  /// this to run `completion_workers` concurrent entity completions on a
  /// budget-wide pool while each slot's candidate checker fans out over
  /// the budget's remaining width — the product, not the pool size, is
  /// what must respect the thread budget.
  void ParallelForSlots(int64_t n, int max_slots,
                        const std::function<void(int, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;  ///< queued + running tasks
  bool shutting_down_ = false;
};

}  // namespace relacc

#endif  // RELACC_UTIL_THREAD_POOL_H_
