#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace relacc {

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::Real(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  assert(type_ == Type::kBool);
  return bool_;
}

int64_t Json::as_int() const {
  assert(type_ == Type::kInt);
  return int_;
}

double Json::as_double() const {
  assert(is_number());
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const std::string& Json::as_string() const {
  assert(type_ == Type::kString);
  return string_;
}

int Json::size() const {
  if (type_ == Type::kArray) return static_cast<int>(array_.size());
  if (type_ == Type::kObject) return static_cast<int>(object_.size());
  return 0;
}

const Json& Json::at(int i) const {
  assert(type_ == Type::kArray && i >= 0 && i < size());
  return array_[i];
}

Json& Json::at(int i) {
  assert(type_ == Type::kArray && i >= 0 && i < size());
  return array_[i];
}

void Json::Append(Json v) {
  assert(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json v) {
  assert(type_ == Type::kObject);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  assert(type_ == Type::kObject);
  return object_;
}

Result<bool> Json::GetBool(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_bool()) {
    return Status::InvalidArgument("key '" + key + "' is not a bool");
  }
  return v->as_bool();
}

Result<int64_t> Json::GetInt(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_int()) {
    return Status::InvalidArgument("key '" + key + "' is not an integer");
  }
  return v->as_int();
}

Result<double> Json::GetDouble(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_number()) {
    return Status::InvalidArgument("key '" + key + "' is not a number");
  }
  return v->as_double();
}

Result<std::string> Json::GetString(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_string()) {
    return Status::InvalidArgument("key '" + key + "' is not a string");
  }
  return v->as_string();
}

Result<const Json*> Json::GetArray(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_array()) {
    return Status::InvalidArgument("key '" + key + "' is not an array");
  }
  return v;
}

Result<const Json*> Json::GetObject(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr) return Status::NotFound("missing key '" + key + "'");
  if (!v->is_object()) {
    return Status::InvalidArgument("key '" + key + "' is not an object");
  }
  return v;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

std::string DumpNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kInt: *out += std::to_string(int_); return;
    case Type::kDouble: *out += DumpNumber(double_); return;
    case Type::kString: *out += JsonEscape(string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ",";
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += "]";
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) *out += ",";
        newline(depth + 1);
        *out += JsonEscape(object_[i].first);
        *out += pretty ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += "}";
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- parsing ---------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    Result<Json> v = ParseValue(0);
    if (!v.ok()) return v;
    SkipWhitespace();
    if (pos_ < static_cast<int>(text_.size())) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  char Peek() const {
    return pos_ < static_cast<int>(text_.size()) ? text_[pos_] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool AtEnd() const { return pos_ >= static_cast<int>(text_.size()); }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("JSON: " + message + " (line " +
                              std::to_string(line_) + ")");
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Json::Str(std::move(s).value());
      }
      case 't':
        return ParseKeyword("true", Json::Bool(true));
      case 'f':
        return ParseKeyword("false", Json::Bool(false));
      case 'n':
        return ParseKeyword("null", Json::Null());
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Json> ParseKeyword(const char* word, Json value) {
    for (const char* p = word; *p; ++p) {
      if (AtEnd() || Advance() != *p) {
        return Error(std::string("invalid literal (expected '") + word + "')");
      }
    }
    return value;
  }

  Result<Json> ParseNumber() {
    int start = pos_;
    if (Peek() == '-') Advance();
    bool integral = true;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (Peek() == '.') {
      integral = false;
      Advance();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      integral = false;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    std::string text = text_.substr(start, pos_ - start);
    if (text.empty() || text == "-") return Error("malformed number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::Int(v);
      }
      // Fall through to double for out-of-range integers.
    }
    return Json::Real(std::strtod(text.c_str(), nullptr));
  }

  Result<std::string> ParseString() {
    Advance();  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated escape");
        char e = Advance();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (AtEnd()) return Error("truncated \\u escape");
              char h = Advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else return Error("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are passed through as two 3-byte sequences).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Result<Json> ParseArray(int depth) {
    Advance();  // '['
    Json array = Json::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      Advance();
      return array;
    }
    while (true) {
      Result<Json> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      array.Append(std::move(v).value());
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        Advance();
        continue;
      }
      if (c == ']') {
        Advance();
        return array;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseObject(int depth) {
    Advance();  // '{'
    Json object = Json::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      Advance();
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Error("expected string key in object");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (Peek() != ':') return Error("expected ':' after object key");
      Advance();
      Result<Json> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      object.Set(key.value(), std::move(v).value());
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        Advance();
        continue;
      }
      if (c == '}') {
        Advance();
        return object;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  int pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

}  // namespace relacc
