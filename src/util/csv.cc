#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace relacc {
namespace {

bool NeedsQuoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_.push_back(sep_);
    const std::string& f = fields[i];
    if (NeedsQuoting(f, sep_)) {
      buffer_.push_back('"');
      for (char c : f) {
        if (c == '"') buffer_.push_back('"');
        buffer_.push_back(c);
      }
      buffer_.push_back('"');
    } else {
      buffer_ += f;
    }
  }
  buffer_.push_back('\n');
}

Status CsvWriter::Flush(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << buffer_;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> CsvReader::Parse(
    const std::string& text) const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_data = true;
    } else if (c == sep_) {
      row.push_back(std::move(field));
      field.clear();
      row_has_data = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      if (row_has_data || !field.empty()) {
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        row_has_data = false;
      }
    } else {
      field.push_back(c);
      row_has_data = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (row_has_data || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> CsvReader::ReadFile(
    const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

}  // namespace relacc
