#include "util/thread_pool.h"

#include <algorithm>

namespace relacc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Chunk so the queue holds O(threads) tasks, not O(n).
  const int64_t num_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(num_threads()) * 4);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = std::min(begin + chunk, n);
    Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::ParallelForSlots(
    int64_t n, const std::function<void(int, int64_t)>& fn) {
  ParallelForSlots(n, num_threads(), fn);
}

void ThreadPool::ParallelForSlots(
    int64_t n, int max_slots, const std::function<void(int, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t slots = std::min<int64_t>(
      n, std::min<int64_t>(std::max(1, max_slots),
                           static_cast<int64_t>(num_threads())));
  const int64_t chunk = (n + slots - 1) / slots;
  for (int64_t slot = 0; slot < slots; ++slot) {
    const int64_t begin = slot * chunk;
    const int64_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    Submit([slot, begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) {
        fn(static_cast<int>(slot), i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace relacc
