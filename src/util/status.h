#ifndef RELACC_UTIL_STATUS_H_
#define RELACC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace relacc {

/// Error codes used across the library. We never throw across library
/// boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kParseError,
  kResourceExhausted,
  kDataLoss,
  kDeadlineExceeded,
};

/// A lightweight success/error carrier in the RocksDB/Arrow idiom.
/// Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad attr".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Mirrors arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  ///   Result<int> F() { if (bad) return Status::InvalidArgument("x"); return 3; }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Undefined behaviour otherwise (asserted in debug).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define RELACC_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::relacc::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace relacc

#endif  // RELACC_UTIL_STATUS_H_
