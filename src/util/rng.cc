#include "util/rng.h"

#include <cmath>

namespace relacc {
namespace {

// splitmix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& w : s_) w = SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_spare_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return NextBelow(n);
  // Inverse CDF on the fly; O(n) worst case but n is an active-domain size.
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double u = UniformDouble() * norm;
  for (uint64_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= 0.0) return i - 1;
  }
  return n - 1;
}

}  // namespace relacc
