#include "core/columnar.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/csv.h"

namespace relacc {

void AbortBorrowedAppend(const char* what) {
  std::fprintf(stderr,
               "%s: append to borrowed (snapshot-backed, read-only) "
               "columnar storage\n",
               what);
  std::abort();
}

std::size_t GrowableBitmap::Count() const {
  std::size_t total = 0;
  const uint64_t* w = words();
  const std::size_t count = word_count();
  for (std::size_t i = 0; i < count; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

ColumnarRelation::ColumnarRelation(Schema schema, Dictionary* dict)
    : schema_(std::move(schema)), dict_(dict) {
  columns_.resize(schema_.size());
  nulls_.resize(schema_.size());
}

void ColumnarRelation::Add(const Tuple& t) {
  if (t.size() != schema_.size()) {
    std::fprintf(stderr, "ColumnarRelation::Add: arity %d != schema %d\n",
                 t.size(), schema_.size());
    std::abort();
  }
  for (AttrId a = 0; a < schema_.size(); ++a) {
    const TermId id = dict_->Intern(t.at(a));
    columns_[a].push_back(id);
    nulls_[a].PushBack(id == kNullTermId);
  }
  row_ids_.push_back(t.id());
  row_sources_.push_back(t.source());
  row_snapshots_.push_back(t.snapshot());
  ++num_rows_;
}

void ColumnarRelation::AddEncoded(std::vector<TermId> ids, int64_t id,
                                  int source, int snapshot) {
  if (static_cast<int>(ids.size()) != schema_.size()) {
    std::fprintf(stderr, "ColumnarRelation::AddEncoded: arity %d != schema %d\n",
                 static_cast<int>(ids.size()), schema_.size());
    std::abort();
  }
  for (AttrId a = 0; a < schema_.size(); ++a) {
    columns_[a].push_back(ids[a]);
    nulls_[a].PushBack(ids[a] == kNullTermId);
  }
  row_ids_.push_back(id);
  row_sources_.push_back(source);
  row_snapshots_.push_back(snapshot);
  ++num_rows_;
}

ColumnarRelation ColumnarRelation::FromRelation(const Relation& rel,
                                                Dictionary* dict) {
  ColumnarRelation out(rel.schema(), dict);
  for (AttrId a = 0; a < out.schema_.size(); ++a) {
    out.columns_[a].reserve(rel.size());
  }
  for (const Tuple& t : rel.tuples()) out.Add(t);
  return out;
}

ColumnarRelation ColumnarRelation::FromBorrowed(
    Schema schema, Dictionary* dict, int num_rows,
    std::vector<const TermId*> columns,
    std::vector<const uint64_t*> null_words, const int64_t* row_ids,
    const int32_t* row_sources, const int32_t* row_snapshots) {
  ColumnarRelation rel(std::move(schema), dict);
  const auto rows = static_cast<std::size_t>(num_rows);
  for (AttrId a = 0; a < rel.schema_.size(); ++a) {
    rel.columns_[a] =
        TermColumn::Borrowed(columns[static_cast<std::size_t>(a)], rows);
    rel.nulls_[a] = GrowableBitmap::Borrowed(
        null_words[static_cast<std::size_t>(a)], rows);
  }
  rel.row_ids_ = BorrowableColumn<int64_t>::Borrowed(row_ids, rows);
  rel.row_sources_ = BorrowableColumn<int32_t>::Borrowed(row_sources, rows);
  rel.row_snapshots_ = BorrowableColumn<int32_t>::Borrowed(row_snapshots, rows);
  rel.num_rows_ = num_rows;
  return rel;
}

Tuple ColumnarRelation::MaterializeTuple(int row) const {
  std::vector<Value> values;
  values.reserve(schema_.size());
  for (AttrId a = 0; a < schema_.size(); ++a) {
    values.push_back(MaterializeAs(*dict_, columns_[a][row], schema_.type(a)));
  }
  Tuple t(std::move(values));
  t.set_id(row_ids_[row]);
  t.set_source(row_sources_[row]);
  t.set_snapshot(row_snapshots_[row]);
  return t;
}

Relation ColumnarRelation::ToRelation() const {
  Relation rel(schema_);
  for (int row = 0; row < num_rows_; ++row) {
    rel.Add(MaterializeTuple(row));
  }
  return rel;
}

Result<ColumnarRelation> ColumnarRelation::FromCsv(const Schema& schema,
                                                   const std::string& text,
                                                   Dictionary* dict) {
  CsvReader reader;
  auto rows_res = reader.Parse(text);
  if (!rows_res.ok()) return rows_res.status();
  const auto& rows = rows_res.value();
  if (rows.empty()) return Status::ParseError("empty CSV");
  if (static_cast<int>(rows[0].size()) != schema.size()) {
    return Status::ParseError("header arity mismatch");
  }
  for (int a = 0; a < schema.size(); ++a) {
    if (rows[0][a] != schema.name(a)) {
      return Status::ParseError("header name mismatch at column " +
                                std::to_string(a) + ": " + rows[0][a]);
    }
  }
  ColumnarRelation rel(schema, dict);
  std::vector<TermId> ids(schema.size(), kNullTermId);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != schema.size()) {
      return Status::ParseError("row arity mismatch at line " +
                                std::to_string(r + 1));
    }
    for (int a = 0; a < schema.size(); ++a) {
      auto v = Value::Parse(schema.type(a), rows[r][a]);
      if (!v.ok()) return v.status();
      ids[a] = dict->Intern(v.value());
    }
    rel.AddEncoded(ids);
  }
  return rel;
}

std::size_t ColumnarRelation::ApproxBytes() const {
  std::size_t bytes = 0;
  for (const auto& col : columns_) bytes += col.ApproxBytes();
  for (const auto& bm : nulls_) bytes += bm.ApproxBytes();
  bytes += row_ids_.ApproxBytes();
  bytes += row_sources_.ApproxBytes();
  bytes += row_snapshots_.ApproxBytes();
  return bytes;
}

}  // namespace relacc
