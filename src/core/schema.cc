#include "core/schema.h"

#include <cstdio>
#include <cstdlib>

namespace relacc {

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  for (AttrId i = 0; i < static_cast<AttrId>(attrs_.size()); ++i) {
    index_.emplace(attrs_[i].name, i);
  }
}

std::optional<AttrId> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

AttrId Schema::MustIndexOf(const std::string& name) const {
  auto id = IndexOf(name);
  if (!id.has_value()) {
    std::fprintf(stderr, "Schema::MustIndexOf: no attribute '%s'\n",
                 name.c_str());
    std::abort();
  }
  return *id;
}

bool Schema::operator==(const Schema& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].type != other.attrs_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace relacc
