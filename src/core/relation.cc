#include "core/relation.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "util/csv.h"

namespace relacc {

void Relation::Add(Tuple t) {
  if (t.size() != schema_.size()) {
    std::fprintf(stderr, "Relation::Add: arity %d != schema %d\n", t.size(),
                 schema_.size());
    std::abort();
  }
  tuples_.push_back(std::move(t));
}

std::vector<Value> Relation::ColumnDomain(AttrId a) const {
  std::vector<Value> out;
  std::unordered_set<std::size_t> seen;
  for (const Tuple& t : tuples_) {
    const Value& v = t.at(a);
    if (v.is_null()) continue;
    const std::size_t h = v.Hash();
    if (seen.count(h)) {
      bool dup = false;
      for (const Value& u : out) {
        if (u == v) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
    }
    seen.insert(h);
    out.push_back(v);
  }
  return out;
}

std::string Relation::ToCsv() const {
  CsvWriter w;
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);
  w.WriteRow(header);
  for (const Tuple& t : tuples_) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (const Value& v : t.values()) row.push_back(v.ToString());
    w.WriteRow(row);
  }
  return w.contents();
}

Result<Relation> Relation::FromCsv(const Schema& schema,
                                   const std::string& text) {
  CsvReader reader;
  auto rows_res = reader.Parse(text);
  if (!rows_res.ok()) return rows_res.status();
  const auto& rows = rows_res.value();
  if (rows.empty()) return Status::ParseError("empty CSV");
  if (static_cast<int>(rows[0].size()) != schema.size()) {
    return Status::ParseError("header arity mismatch");
  }
  for (int a = 0; a < schema.size(); ++a) {
    if (rows[0][a] != schema.name(a)) {
      return Status::ParseError("header name mismatch at column " +
                                std::to_string(a) + ": " + rows[0][a]);
    }
  }
  Relation rel(schema);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != schema.size()) {
      return Status::ParseError("row arity mismatch at line " +
                                std::to_string(r + 1));
    }
    std::vector<Value> values;
    values.reserve(schema.size());
    for (int a = 0; a < schema.size(); ++a) {
      auto v = Value::Parse(schema.type(a), rows[r][a]);
      if (!v.ok()) return v.status();
      values.push_back(std::move(v).value());
    }
    rel.Add(Tuple(std::move(values)));
  }
  return rel;
}

}  // namespace relacc
