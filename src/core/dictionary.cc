#include "core/dictionary.h"

#include <cmath>
#include <mutex>

namespace relacc {

Dictionary::Dictionary() {
  for (auto& shelf : shelves_) shelf.store(nullptr, std::memory_order_relaxed);
  // Reserve id 0 for null so columnar code can test ids directly. The
  // slot holds a real Value::Null so value(kNullTermId) works too.
  Value* shelf0 = new Value[ShelfCapacity(0)];
  shelves_[0].store(shelf0, std::memory_order_release);
  size_.store(1, std::memory_order_release);
}

Dictionary::~Dictionary() {
  for (auto& shelf : shelves_) {
    delete[] shelf.load(std::memory_order_acquire);
  }
}

TermId Dictionary::Intern(const Value& v) {
  if (v.is_null()) return kNullTermId;
  if (index_stale_.load(std::memory_order_acquire)) RebuildIndex();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(v);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = index_.try_emplace(v, kNullTermId);
  if (!inserted) return it->second;  // raced: another writer got here first
  const std::size_t id = size_.load(std::memory_order_relaxed);
  const int s = ShelfOf(static_cast<TermId>(id));
  Value* shelf = shelves_[s].load(std::memory_order_acquire);
  if (shelf == nullptr) {
    shelf = new Value[ShelfCapacity(s)];
    shelves_[s].store(shelf, std::memory_order_release);
  }
  shelf[id - ShelfStart(s)] = v;
  it->second = static_cast<TermId>(id);
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

std::optional<TermId> Dictionary::Lookup(const Value& v) const {
  if (v.is_null()) return kNullTermId;
  if (index_stale_.load(std::memory_order_acquire)) RebuildIndex();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

TermId Dictionary::AppendForLoad(Value v) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const std::size_t id = size_.load(std::memory_order_relaxed);
  const int s = ShelfOf(static_cast<TermId>(id));
  Value* shelf = shelves_[s].load(std::memory_order_acquire);
  if (shelf == nullptr) {
    shelf = new Value[ShelfCapacity(s)];
    shelves_[s].store(shelf, std::memory_order_release);
  }
  shelf[id - ShelfStart(s)] = std::move(v);
  size_.store(id + 1, std::memory_order_release);
  index_stale_.store(true, std::memory_order_release);
  return static_cast<TermId>(id);
}

void Dictionary::RebuildIndex() const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!index_stale_.load(std::memory_order_acquire)) return;  // raced
  const std::size_t n = size_.load(std::memory_order_acquire);
  index_.reserve(n);
  for (TermId id = 1; id < n; ++id) {
    index_.try_emplace(value(id), id);
  }
  index_stale_.store(false, std::memory_order_release);
}

std::size_t Dictionary::ApproxBytes() const {
  const std::size_t n = size();
  std::size_t bytes = 0;
  // Shelf storage is allocated in full shelves.
  for (int s = 0; s < kMaxShelves; ++s) {
    if (ShelfStart(s) >= n) break;
    bytes += static_cast<std::size_t>(ShelfCapacity(s)) * sizeof(Value);
  }
  // String payloads plus a flat estimate of the index (key copy + node).
  for (TermId id = 1; id < n; ++id) {
    const Value& v = value(id);
    const std::size_t payload =
        v.type() == ValueType::kString ? v.as_string().capacity() : 0;
    bytes += 2 * payload + sizeof(Value) + 4 * sizeof(void*);
  }
  return bytes;
}

Value MaterializeAs(const Dictionary& dict, TermId id, ValueType as) {
  if (id == kNullTermId) return Value::Null();
  const Value& v = dict.value(id);
  if (as == ValueType::kInt && v.type() == ValueType::kDouble) {
    const double d = v.as_double();
    if (d == std::floor(d) && std::abs(d) < 9.0e15) {
      return Value::Int(static_cast<int64_t>(d));
    }
  } else if (as == ValueType::kDouble && v.type() == ValueType::kInt) {
    return Value::Real(static_cast<double>(v.as_int()));
  }
  return v;
}

}  // namespace relacc
