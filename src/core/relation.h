#ifndef RELACC_CORE_RELATION_H_
#define RELACC_CORE_RELATION_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "core/tuple.h"
#include "util/status.h"

namespace relacc {

/// A schema plus a bag of tuples. Used both for entity instances Ie and for
/// master relations Im; also the unit of CSV (de)serialization.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(int i) const { return tuples_[i]; }
  Tuple* mutable_tuple(int i) { return &tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends `t`; aborts if arity mismatches the schema.
  void Add(Tuple t);

  /// All distinct non-null values appearing in column `a`, in first-seen
  /// order.
  std::vector<Value> ColumnDomain(AttrId a) const;

  /// Serializes (header + rows) as CSV.
  std::string ToCsv() const;

  /// Parses a CSV produced by ToCsv back into a relation over `schema`
  /// (the header row is validated against the schema's attribute names).
  static Result<Relation> FromCsv(const Schema& schema, const std::string& text);

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

/// A set of tuples pertaining to one real-world entity (the paper's Ie),
/// tagged with the entity id assigned by entity resolution / the generator.
class EntityInstance : public Relation {
 public:
  EntityInstance() = default;
  EntityInstance(int64_t entity_id, Schema schema)
      : Relation(std::move(schema)), entity_id_(entity_id) {}

  int64_t entity_id() const { return entity_id_; }

 private:
  int64_t entity_id_ = -1;
};

}  // namespace relacc

#endif  // RELACC_CORE_RELATION_H_
