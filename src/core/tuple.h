#ifndef RELACC_CORE_TUPLE_H_
#define RELACC_CORE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"

namespace relacc {

/// A tuple over some schema. The schema is held by the containing Relation;
/// a Tuple is just the value vector plus bookkeeping ids used by the data
/// generators and the truth-discovery substrate (source / snapshot of the
/// observation; -1 when not applicable).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  int size() const { return static_cast<int>(values_.size()); }

  const Value& at(AttrId a) const { return values_[a]; }
  void set(AttrId a, Value v) { values_[a] = std::move(v); }

  const std::vector<Value>& values() const { return values_; }

  /// True iff no attribute is null.
  bool IsComplete() const;

  /// Number of null attributes.
  int NullCount() const;

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  int source() const { return source_; }
  void set_source(int s) { source_ = s; }

  int snapshot() const { return snapshot_; }
  void set_snapshot(int s) { snapshot_ = s; }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  /// Pipe-separated rendering for logs.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
  int64_t id_ = -1;
  int source_ = -1;
  int snapshot_ = -1;
};

}  // namespace relacc

#endif  // RELACC_CORE_TUPLE_H_
