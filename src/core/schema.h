#ifndef RELACC_CORE_SCHEMA_H_
#define RELACC_CORE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.h"

namespace relacc {

/// Index of an attribute within a schema.
using AttrId = int;

/// One attribute: a name plus the type of its domain.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;
};

/// A relation schema R = (A1, ..., An). Immutable after construction;
/// shared by reference between relations, rules and algorithms.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  /// Number of attributes n.
  int size() const { return static_cast<int>(attrs_.size()); }

  const Attribute& attr(AttrId id) const { return attrs_[id]; }
  const std::string& name(AttrId id) const { return attrs_[id].name; }
  ValueType type(AttrId id) const { return attrs_[id].type; }

  /// Id of the attribute called `name`, or nullopt.
  std::optional<AttrId> IndexOf(const std::string& name) const;

  /// Id of `name`; aborts if absent. For code paths where the attribute is
  /// known to exist (builders over a fixed schema).
  AttrId MustIndexOf(const std::string& name) const;

  const std::vector<Attribute>& attributes() const { return attrs_; }

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace relacc

#endif  // RELACC_CORE_SCHEMA_H_
