#ifndef RELACC_CORE_COLUMNAR_H_
#define RELACC_CORE_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dictionary.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "util/status.h"

namespace relacc {

/// An append-only bitmap that grows with the relation (DynamicBitset is
/// fixed-size at construction). One per attribute tracks nulls so scans
/// like the chase's ϕ7 axiom walk words, not ids.
class GrowableBitmap {
 public:
  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void PushBack(bool bit) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (bit) words_.back() |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  std::size_t Count() const;

  /// Invokes fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  std::size_t ApproxBytes() const { return words_.capacity() * 8; }

 private:
  std::size_t size_ = 0;
  std::vector<uint64_t> words_;
};

class TupleRef;

/// Dictionary-encoded columnar storage for one relation: per-attribute
/// TermId columns plus null bitmaps, with the tuple bookkeeping (id,
/// source, snapshot) in parallel side columns so FromRelation/ToRelation
/// round-trips exactly. Values are interned once into the (shared,
/// caller-owned) Dictionary; equality on a column is integer equality by
/// construction. The row-oriented Relation stays the public-API boundary
/// type — ToRelation()/TupleRef::Materialize() are the (copying)
/// adapters back.
class ColumnarRelation {
 public:
  /// `dict` is shared and must outlive the relation; many relations
  /// (e.g. every entity of a pipeline) typically share one dictionary.
  ColumnarRelation(Schema schema, Dictionary* dict);

  const Schema& schema() const { return schema_; }
  const Dictionary& dict() const { return *dict_; }
  Dictionary* mutable_dict() const { return dict_; }

  int size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Appends `t`, interning each value — O(attrs) dictionary probes, no
  /// per-row heap allocation beyond amortized column growth. Aborts on
  /// arity mismatch like Relation::Add.
  void Add(const Tuple& t);

  /// Appends a pre-encoded row (ids must come from this->dict()).
  void AddEncoded(std::vector<TermId> ids, int64_t id = -1, int source = -1,
                  int snapshot = -1);

  TermId id_at(int row, AttrId a) const { return columns_[a][row]; }
  bool is_null(int row, AttrId a) const {
    return columns_[a][row] == kNullTermId;
  }
  const std::vector<TermId>& column(AttrId a) const { return columns_[a]; }
  const GrowableBitmap& nulls(AttrId a) const { return nulls_[a]; }

  int64_t row_id(int row) const { return row_ids_[row]; }
  int row_source(int row) const { return row_sources_[row]; }
  int row_snapshot(int row) const { return row_snapshots_[row]; }

  /// O(1) tuple view (no materialization); see TupleRef below.
  TupleRef tuple(int row) const;

  /// Encodes a row relation (interning every value into `dict`).
  static ColumnarRelation FromRelation(const Relation& rel, Dictionary* dict);

  /// Decodes back to rows. Values are materialized via MaterializeAs
  /// with the schema column type, so a type-consistent relation
  /// round-trips to the exact same Values (and any relation round-trips
  /// to operator==-equal ones); id/source/snapshot are preserved.
  Relation ToRelation() const;

  /// Row `row` as a materialized Tuple (same coercion as ToRelation).
  Tuple MaterializeTuple(int row) const;

  /// Streaming CSV parse straight into columns: each cell is parsed with
  /// the schema column type and interned immediately, so the peak cost
  /// is the columns plus the dictionary — never a row-relation copy.
  /// Accepts the same format as Relation::FromCsv/ToCsv.
  static Result<ColumnarRelation> FromCsv(const Schema& schema,
                                          const std::string& text,
                                          Dictionary* dict);

  /// Heap footprint of the columns/bitmaps/side columns (excluding the
  /// shared dictionary), for bench reporting.
  std::size_t ApproxBytes() const;

 private:
  Schema schema_;
  Dictionary* dict_;
  int num_rows_ = 0;
  std::vector<std::vector<TermId>> columns_;  ///< [attr][row]
  std::vector<GrowableBitmap> nulls_;         ///< [attr], bit = is-null
  std::vector<int64_t> row_ids_;
  std::vector<int32_t> row_sources_;
  std::vector<int32_t> row_snapshots_;
};

/// A lightweight non-owning view of one columnar row; valid while the
/// relation (and rows <= this one) are alive. Mirrors the read surface
/// of Tuple so generic code can template over either.
class TupleRef {
 public:
  TupleRef(const ColumnarRelation* rel, int row) : rel_(rel), row_(row) {}

  int size() const { return rel_->schema().size(); }
  int row() const { return row_; }

  TermId id_at(AttrId a) const { return rel_->id_at(row_, a); }
  bool is_null(AttrId a) const { return rel_->is_null(row_, a); }

  /// The interned representative (not schema-coerced; use Materialize
  /// for boundary-exact values).
  const Value& at(AttrId a) const {
    return rel_->dict().value(rel_->id_at(row_, a));
  }

  int64_t id() const { return rel_->row_id(row_); }
  int source() const { return rel_->row_source(row_); }
  int snapshot() const { return rel_->row_snapshot(row_); }

  Tuple Materialize() const { return rel_->MaterializeTuple(row_); }

 private:
  const ColumnarRelation* rel_;
  int row_;
};

inline TupleRef ColumnarRelation::tuple(int row) const {
  return TupleRef(this, row);
}

}  // namespace relacc

#endif  // RELACC_CORE_COLUMNAR_H_
