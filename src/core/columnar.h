#ifndef RELACC_CORE_COLUMNAR_H_
#define RELACC_CORE_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dictionary.h"
#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "util/status.h"

namespace relacc {

/// Aborts with a diagnostic; called when append is attempted on
/// borrowed (read-only, externally owned) columnar storage.
[[noreturn]] void AbortBorrowedAppend(const char* what);

/// An append-only bitmap that grows with the relation (DynamicBitset is
/// fixed-size at construction). One per attribute tracks nulls so scans
/// like the chase's ϕ7 axiom walk words, not ids. Either owns its words
/// or borrows them from an mmap-ed snapshot section (read-only).
class GrowableBitmap {
 public:
  GrowableBitmap() = default;

  /// A read-only view over `nbits` bits in externally owned `words`
  /// (ceil(nbits/64) of them, e.g. inside a mapped snapshot); the
  /// storage must outlive the bitmap. PushBack aborts.
  static GrowableBitmap Borrowed(const uint64_t* words, std::size_t nbits) {
    GrowableBitmap bm;
    bm.borrowed_ = words;
    bm.size_ = nbits;
    return bm;
  }

  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    return (word_ptr()[i >> 6] >> (i & 63)) & 1u;
  }

  void PushBack(bool bit) {
    if (borrowed_ != nullptr) AbortBorrowedAppend("GrowableBitmap");
    if ((size_ & 63) == 0) words_.push_back(0);
    if (bit) words_.back() |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  std::size_t Count() const;

  /// Invokes fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    const uint64_t* words = word_ptr();
    const std::size_t count = word_count();
    for (std::size_t w = 0; w < count; ++w) {
      uint64_t bits = words[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Owned heap footprint (borrowed words belong to the snapshot).
  std::size_t ApproxBytes() const { return words_.capacity() * 8; }

  const uint64_t* words() const { return word_ptr(); }
  std::size_t word_count() const {
    return borrowed_ != nullptr ? (size_ + 63) / 64 : words_.size();
  }

 private:
  const uint64_t* word_ptr() const {
    return borrowed_ != nullptr ? borrowed_ : words_.data();
  }

  std::size_t size_ = 0;
  std::vector<uint64_t> words_;
  const uint64_t* borrowed_ = nullptr;
};

/// A fixed-width column that either owns its storage (the append path)
/// or borrows it from an mmap-ed snapshot section — the zero-copy half
/// of the snapshot story: a loaded master's TermId columns point
/// straight into the mapped file, so they cost no heap, no copy, and
/// are physically shared by every service replica mapping the same
/// artifact. Borrowed columns are read-only; push_back aborts.
template <typename T>
class BorrowableColumn {
 public:
  BorrowableColumn() = default;

  /// A read-only view over externally owned storage; `data` must
  /// outlive the column (the service keeps the MmapFile alive).
  static BorrowableColumn Borrowed(const T* data, std::size_t size) {
    BorrowableColumn c;
    c.borrowed_ = data;
    c.borrowed_size_ = size;
    return c;
  }

  T operator[](std::size_t i) const {
    return borrowed_ != nullptr ? borrowed_[i] : owned_[i];
  }
  std::size_t size() const {
    return borrowed_ != nullptr ? borrowed_size_ : owned_.size();
  }
  const T* data() const {
    return borrowed_ != nullptr ? borrowed_ : owned_.data();
  }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  bool borrowed() const { return borrowed_ != nullptr; }

  void push_back(T v) {
    if (borrowed_ != nullptr) AbortBorrowedAppend("BorrowableColumn");
    owned_.push_back(v);
  }
  void reserve(std::size_t n) { owned_.reserve(n); }

  /// Owned heap footprint (borrowed storage belongs to the snapshot).
  std::size_t ApproxBytes() const { return owned_.capacity() * sizeof(T); }

 private:
  std::vector<T> owned_;
  const T* borrowed_ = nullptr;
  std::size_t borrowed_size_ = 0;
};

using TermColumn = BorrowableColumn<TermId>;

class TupleRef;

/// Dictionary-encoded columnar storage for one relation: per-attribute
/// TermId columns plus null bitmaps, with the tuple bookkeeping (id,
/// source, snapshot) in parallel side columns so FromRelation/ToRelation
/// round-trips exactly. Values are interned once into the (shared,
/// caller-owned) Dictionary; equality on a column is integer equality by
/// construction. The row-oriented Relation stays the public-API boundary
/// type — ToRelation()/TupleRef::Materialize() are the (copying)
/// adapters back. A relation either owns its columns (append path) or
/// borrows them zero-copy from a mapped snapshot (see FromBorrowed).
class ColumnarRelation {
 public:
  /// `dict` is shared and must outlive the relation; many relations
  /// (e.g. every entity of a pipeline) typically share one dictionary.
  ColumnarRelation(Schema schema, Dictionary* dict);

  const Schema& schema() const { return schema_; }
  const Dictionary& dict() const { return *dict_; }
  Dictionary* mutable_dict() const { return dict_; }

  int size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Appends `t`, interning each value — O(attrs) dictionary probes, no
  /// per-row heap allocation beyond amortized column growth. Aborts on
  /// arity mismatch like Relation::Add, and on borrowed storage.
  void Add(const Tuple& t);

  /// Appends a pre-encoded row (ids must come from this->dict()).
  void AddEncoded(std::vector<TermId> ids, int64_t id = -1, int source = -1,
                  int snapshot = -1);

  TermId id_at(int row, AttrId a) const {
    return columns_[a][static_cast<std::size_t>(row)];
  }
  bool is_null(int row, AttrId a) const {
    return id_at(row, a) == kNullTermId;
  }
  const TermColumn& column(AttrId a) const { return columns_[a]; }
  const GrowableBitmap& nulls(AttrId a) const { return nulls_[a]; }

  /// Contiguous side-column views (the snapshot writer copies them out
  /// raw; everything else uses the per-row accessors below).
  const BorrowableColumn<int64_t>& row_ids() const { return row_ids_; }
  const BorrowableColumn<int32_t>& row_sources() const { return row_sources_; }
  const BorrowableColumn<int32_t>& row_snapshots() const {
    return row_snapshots_;
  }

  int64_t row_id(int row) const {
    return row_ids_[static_cast<std::size_t>(row)];
  }
  int row_source(int row) const {
    return row_sources_[static_cast<std::size_t>(row)];
  }
  int row_snapshot(int row) const {
    return row_snapshots_[static_cast<std::size_t>(row)];
  }

  /// O(1) tuple view (no materialization); see TupleRef below.
  TupleRef tuple(int row) const;

  /// Encodes a row relation (interning every value into `dict`).
  static ColumnarRelation FromRelation(const Relation& rel, Dictionary* dict);

  /// Zero-copy view over snapshot-owned storage: the TermId columns,
  /// null-bitmap words and side columns all alias memory the caller
  /// guarantees to outlive the relation (in practice the service's
  /// MmapFile). Ids must be valid in `dict`. The relation is read-only:
  /// Add/AddEncoded abort. `columns`/`null_words` carry one pointer per
  /// schema attribute; each column holds `num_rows` TermIds, each
  /// bitmap ceil(num_rows/64) words.
  static ColumnarRelation FromBorrowed(
      Schema schema, Dictionary* dict, int num_rows,
      std::vector<const TermId*> columns,
      std::vector<const uint64_t*> null_words, const int64_t* row_ids,
      const int32_t* row_sources, const int32_t* row_snapshots);

  /// Decodes back to rows. Values are materialized via MaterializeAs
  /// with the schema column type, so a type-consistent relation
  /// round-trips to the exact same Values (and any relation round-trips
  /// to operator==-equal ones); id/source/snapshot are preserved.
  Relation ToRelation() const;

  /// Row `row` as a materialized Tuple (same coercion as ToRelation).
  Tuple MaterializeTuple(int row) const;

  /// Streaming CSV parse straight into columns: each cell is parsed with
  /// the schema column type and interned immediately, so the peak cost
  /// is the columns plus the dictionary — never a row-relation copy.
  /// Accepts the same format as Relation::FromCsv/ToCsv.
  static Result<ColumnarRelation> FromCsv(const Schema& schema,
                                          const std::string& text,
                                          Dictionary* dict);

  /// Heap footprint of the columns/bitmaps/side columns (excluding the
  /// shared dictionary and any borrowed snapshot storage), for bench
  /// reporting.
  std::size_t ApproxBytes() const;

 private:
  Schema schema_;
  Dictionary* dict_;
  int num_rows_ = 0;
  std::vector<TermColumn> columns_;    ///< [attr][row]
  std::vector<GrowableBitmap> nulls_;  ///< [attr], bit = is-null
  BorrowableColumn<int64_t> row_ids_;
  BorrowableColumn<int32_t> row_sources_;
  BorrowableColumn<int32_t> row_snapshots_;
};

/// A lightweight non-owning view of one columnar row; valid while the
/// relation (and rows <= this one) are alive. Mirrors the read surface
/// of Tuple so generic code can template over either.
class TupleRef {
 public:
  TupleRef(const ColumnarRelation* rel, int row) : rel_(rel), row_(row) {}

  int size() const { return rel_->schema().size(); }
  int row() const { return row_; }

  TermId id_at(AttrId a) const { return rel_->id_at(row_, a); }
  bool is_null(AttrId a) const { return rel_->is_null(row_, a); }

  /// The interned representative (not schema-coerced; use Materialize
  /// for boundary-exact values).
  const Value& at(AttrId a) const {
    return rel_->dict().value(rel_->id_at(row_, a));
  }

  int64_t id() const { return rel_->row_id(row_); }
  int source() const { return rel_->row_source(row_); }
  int snapshot() const { return rel_->row_snapshot(row_); }

  Tuple Materialize() const { return rel_->MaterializeTuple(row_); }

 private:
  const ColumnarRelation* rel_;
  int row_;
};

inline TupleRef ColumnarRelation::tuple(int row) const {
  return TupleRef(this, row);
}

}  // namespace relacc

#endif  // RELACC_CORE_COLUMNAR_H_
