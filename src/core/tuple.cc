#include "core/tuple.h"

namespace relacc {

bool Tuple::IsComplete() const {
  for (const Value& v : values_) {
    if (v.is_null()) return false;
  }
  return true;
}

int Tuple::NullCount() const {
  int n = 0;
  for (const Value& v : values_) n += v.is_null() ? 1 : 0;
  return n;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += " | ";
    const std::string s = values_[i].ToString();
    out += s.empty() ? "null" : s;
  }
  out += ")";
  return out;
}

}  // namespace relacc
