#ifndef RELACC_CORE_VALUE_H_
#define RELACC_CORE_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "util/status.h"

// The tree requires C++20: std::erase_if (tests/, examples/), designated
// initializers and defaulted comparisons are used throughout. CMakeLists
// pins CMAKE_CXX_STANDARD 20 with CXX_STANDARD_REQUIRED ON; this guard
// turns a mis-configured -std=c++17 build into one clear error instead of
// a page of template noise. (MSVC keeps __cplusplus at 199711L unless
// /Zc:__cplusplus is passed, so prefer _MSVC_LANG there.)
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "relacc requires C++20; build with /std:c++20 or via the "
              "root CMakeLists.txt");
#else
static_assert(__cplusplus >= 202002L,
              "relacc requires C++20; build with -std=c++20 or via the "
              "root CMakeLists.txt");
#endif

namespace relacc {

/// Type tag of a Value.
enum class ValueType { kNull = 0, kInt, kDouble, kString, kBool };

/// Name of a value type ("null", "int", ...).
const char* ValueTypeName(ValueType type);

/// An attribute value: a tagged union over {null, int64, double, string,
/// bool}. Values are immutable once constructed; copies are cheap for all
/// alternatives except long strings.
///
/// Comparison semantics follow the paper's first-order reading:
///  * `a == b` is true iff both are null, or both are non-null, of
///    compatible type, and equal (int/double cross-compare numerically);
///  * order comparisons (<, <=, >, >=) involving null are false;
///  * values of incomparable types are unequal and unordered.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Real(double v) { return Value(Data(v)); }
  static Value Str(std::string v) { return Value(Data(std::move(v))); }
  static Value Bool(bool v) { return Value(Data(v)); }

  ValueType type() const { return static_cast<ValueType>(data_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Preconditions: matching type().
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }

  /// Numeric view: int and double both convert; nullopt otherwise.
  std::optional<double> AsNumeric() const;

  /// Equality per the class comment.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison for *comparable* values: negative/zero/positive.
  /// nullopt when the pair is not ordered (null involved, or type mismatch
  /// that is not numeric-numeric).
  std::optional<int> Compare(const Value& other) const;

  /// Total order usable as a container key: null < bool < numeric < string,
  /// and deterministic within each class. NOT the paper's semantics; use
  /// Compare for rule evaluation.
  bool TotalLess(const Value& other) const;

  /// Stable hash, equal values hash equal (int 3 and double 3.0 collide by
  /// design since they compare equal).
  std::size_t Hash() const;

  /// Rendering for logs/CSV: null -> "", bool -> "true"/"false".
  std::string ToString() const;

  /// Parses `text` as `type`; empty text parses to Null for any type.
  static Result<Value> Parse(ValueType type, const std::string& text);

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace relacc

#endif  // RELACC_CORE_VALUE_H_
