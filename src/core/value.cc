#include "core/value.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace relacc {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

std::optional<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return std::nullopt;
  }
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (type() == other.type()) return data_ == other.data_;
  // Cross-type: only numeric pairs may be equal.
  const auto a = AsNumeric();
  const auto b = other.AsNumeric();
  if (a && b) return *a == *b;
  return false;
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  const auto a = AsNumeric();
  const auto b = other.AsNumeric();
  if (a && b) {
    if (*a < *b) return -1;
    if (*a > *b) return 1;
    return 0;
  }
  if (type() != other.type()) return std::nullopt;
  switch (type()) {
    case ValueType::kString: {
      const int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kBool:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    default:
      return std::nullopt;
  }
}

bool Value::TotalLess(const Value& other) const {
  auto cls = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        return 0;
      case ValueType::kBool:
        return 1;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 2;
      case ValueType::kString:
        return 3;
    }
    return 4;
  };
  const int ca = cls(*this);
  const int cb = cls(other);
  if (ca != cb) return ca < cb;
  switch (ca) {
    case 0:
      return false;
    case 1:
      return !as_bool() && other.as_bool();
    case 2: {
      const double a = *AsNumeric();
      const double b = *other.AsNumeric();
      if (a != b) return a < b;
      // Tie-break so int 3 and double 3.0 order deterministically.
      return static_cast<int>(type()) < static_cast<int>(other.type());
    }
    default:
      return as_string() < other.as_string();
  }
}

std::size_t Value::Hash() const {
  auto mix = [](std::size_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return mix(as_bool() ? 0xc0ffee : 0xdecaf);
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Numeric values that compare equal must hash equal.
      const double d = *AsNumeric();
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.0e15) {
        return mix(static_cast<std::size_t>(static_cast<int64_t>(d)));
      }
      std::size_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return mix(bits);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      std::ostringstream ss;
      ss << as_double();
      return ss.str();
    }
    case ValueType::kString:
      return as_string();
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
  }
  return "";
}

Result<Value> Value::Parse(ValueType type, const std::string& text) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("not an int: " + text);
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("not a double: " + text);
      }
      return Value::Real(v);
    }
    case ValueType::kString:
      return Value::Str(text);
    case ValueType::kBool: {
      if (text == "true" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "0") return Value::Bool(false);
      return Status::ParseError("not a bool: " + text);
    }
  }
  return Status::ParseError("unknown type");
}

}  // namespace relacc
