#ifndef RELACC_CORE_DICTIONARY_H_
#define RELACC_CORE_DICTIONARY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "core/value.h"

namespace relacc {

/// Dense id of an interned term. Ids are assigned in first-intern order
/// and never reused; id 0 is reserved for the null value.
using TermId = uint32_t;

/// The id every null Value interns to. Columnar null bitmaps and chase
/// te slots test against this instead of Value::is_null().
inline constexpr TermId kNullTermId = 0;

/// A thread-safe, append-only term dictionary mapping Value <-> TermId
/// (the EDB-layer trick of rule engines over large databases: intern each
/// distinct constant once, then ground and chase on integer ids).
///
/// Interning is type-aware exactly like Value::operator==/Value::Hash:
/// int 3 and double 3.0 compare equal, hash equal, and therefore share
/// one id. The stored representative is the first-interned Value; use
/// MaterializeAs to coerce it back to a schema column type at row-adapter
/// boundaries.
///
/// Concurrency contract:
///  * Intern/Lookup may be called from any number of threads (readers
///    take a shared lock; the insert slow path an exclusive one).
///  * value(id) is lock-free and wait-free for any id obtained from a
///    completed Intern/Lookup: ids index geometric "shelves" (fixed-size
///    arrays published once via atomic pointers), so growth never moves
///    an existing Value and readers never observe a partially built slot.
///  * Ids are stable forever (append-only); nothing is ever deleted.
class Dictionary {
 public:
  Dictionary();
  ~Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Id of `v`, interning it first if new. Null always maps to
  /// kNullTermId. Thread-safe.
  TermId Intern(const Value& v);

  /// Id of `v` if already interned (null -> kNullTermId), else nullopt.
  /// Thread-safe; never inserts.
  std::optional<TermId> Lookup(const Value& v) const;

  /// Bulk-load fast path (the snapshot loader): appends `v` as the next
  /// id WITHOUT touching the hash index — no hashing, one move into the
  /// shelf — and marks the index stale. The next Intern/Lookup rebuilds
  /// it in one pass, so a service that never interns again (the O(1)
  /// warm-start read path) never pays for the index at all. The caller
  /// vouches that `v` is non-null and not already present (the snapshot
  /// stream is distinct by construction and CRC-guarded); a duplicate
  /// would alias two ids and break id stability. Thread-safe, but a
  /// load is normally single-threaded before the dictionary is shared.
  TermId AppendForLoad(Value v);

  /// The interned Value behind `id`. Lock-free; `id` must come from a
  /// completed Intern/Lookup on this dictionary.
  const Value& value(TermId id) const {
    const int s = ShelfOf(id);
    return shelves_[s].load(std::memory_order_acquire)[id - ShelfStart(s)];
  }

  /// Number of assigned ids, including the reserved null slot.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Rough heap footprint of the interned terms (shelves + index), for
  /// bench reporting. Not exact; RSS is the ground truth.
  std::size_t ApproxBytes() const;

 private:
  // Shelf s holds kShelfBase << s slots; shelf starts are the geometric
  // prefix sums, so 22 shelves cover the full 32-bit id space.
  static constexpr uint32_t kShelfBaseLog2 = 10;
  static constexpr uint32_t kShelfBase = 1u << kShelfBaseLog2;
  static constexpr int kMaxShelves = 22;

  static int ShelfOf(TermId id) {
    return std::bit_width((id >> kShelfBaseLog2) + 1u) - 1;
  }
  static uint32_t ShelfStart(int s) {
    return ((1u << s) - 1u) << kShelfBaseLog2;
  }
  static uint32_t ShelfCapacity(int s) { return kShelfBase << s; }

  /// Rebuilds index_ from the shelves when AppendForLoad left it stale.
  void RebuildIndex() const;

  std::array<std::atomic<Value*>, kMaxShelves> shelves_;
  std::atomic<std::size_t> size_{0};

  /// Set by AppendForLoad; cleared by RebuildIndex. Checked before the
  /// index is consulted, so bulk-loaded terms are never missed.
  mutable std::atomic<bool> index_stale_{false};

  mutable std::shared_mutex mu_;
  mutable std::unordered_map<Value, TermId, ValueHash> index_;
};

/// Materializes `id` as a Value of the schema column type `as`: numeric
/// representatives are coerced (exactly — cross-type interning only ever
/// merges numerically equal values) so a column declared kInt yields
/// Value::Int even when a double was interned first, keeping row adapters
/// and chase outcomes byte-identical to the row path. Non-numeric or
/// non-coercible representatives are returned as stored.
Value MaterializeAs(const Dictionary& dict, TermId id, ValueType as);

}  // namespace relacc

#endif  // RELACC_CORE_DICTIONARY_H_
