#ifndef RELACC_CHASE_EXPLAIN_H_
#define RELACC_CHASE_EXPLAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"

namespace relacc {

/// A fact derived by the chase: either an accuracy-order pair
/// ti ⪯_attr tj or a target-template instantiation te[attr] = v.
struct ChaseFact {
  enum class Kind { kOrderPair, kTeValue };

  Kind kind = Kind::kOrderPair;
  AttrId attr = -1;
  int i = -1;  ///< kOrderPair only
  int j = -1;
  Value te_value;  ///< kTeValue only
};

/// How a fact was derived.
enum class DerivationVia {
  kRule,          ///< a ground instance of an AR fired
  kTransitivity,  ///< closure of the partial order
  kLambda,        ///< λ: greatest element of ⪯_attr instantiates te[attr]
};

/// One node of the derivation DAG. Premises point at earlier derivations
/// (indices into ExplainedChase::derivations()), so the graph is acyclic by
/// construction.
struct Derivation {
  ChaseFact fact;
  DerivationVia via = DerivationVia::kRule;
  std::string rule_name;  ///< kRule only; the AR that fired
  std::vector<int> premises;
};

/// A chase run that records *why* each order pair and target value was
/// derived, yielding human-readable proof trees ("why is 772 the most
/// accurate totalPts?"). It re-runs the chase naively — O(|Γ|·facts) rather
/// than the indexed engine of chase_engine.h — because explanation is an
/// interactive, per-entity operation where clarity beats throughput; tests
/// cross-validate its verdict and target against ChaseEngine.
///
/// The built-in axioms ϕ7–ϕ9 are expanded declaratively (rules/axioms.h) so
/// axiom applications are first-class, nameable derivation steps.
class ExplainedChase {
 public:
  explicit ExplainedChase(const Specification& spec);

  /// Same verdict as IsCR(spec).
  bool church_rosser() const { return church_rosser_; }
  /// Description of the first violation when not Church-Rosser.
  const std::string& violation() const { return violation_; }
  /// The deduced target tuple (meaningless unless church_rosser()).
  const Tuple& target() const { return target_; }

  /// All derivations, in application order.
  const std::vector<Derivation>& derivations() const { return derivations_; }

  /// Index of the derivation that set te[attr], if the chase deduced it.
  std::optional<int> FindTeDerivation(AttrId attr) const;

  /// Index of the derivation of ti ⪯_attr tj, if derived.
  std::optional<int> FindPairDerivation(AttrId attr, int i, int j) const;

  /// Renders the proof tree rooted at `derivation_index` as indented text.
  /// Sub-proofs deeper than `max_depth` are elided with "…"; a premise
  /// already printed in the current tree is referenced, not re-expanded.
  std::string Explain(int derivation_index, int max_depth = 12) const;

  /// Convenience: proof tree for te[attr], or a note that it was not
  /// deduced.
  std::string ExplainTarget(AttrId attr) const;

  /// One-line rendering of a fact, e.g. `t1 <= t2 on [rnds]  {16 <= 27}` or
  /// `te[MN] = "Jeffrey"`.
  std::string FactToString(const ChaseFact& fact) const;

 private:
  struct AttrState;

  void Run(const Specification& spec);
  bool ApplyAddPair(AttrId attr, int i, int j, DerivationVia via,
                    const std::string& rule, std::vector<int> premises);
  bool ApplySetTe(AttrId attr, const Value& v, DerivationVia via,
                  const std::string& rule, std::vector<int> premises);
  bool UpdateLambda(AttrId attr);
  int Record(Derivation d);

  Schema schema_;
  Relation ie_;
  bool church_rosser_ = true;
  std::string violation_;
  Tuple target_;
  std::vector<Derivation> derivations_;

  int n_ = 0;
  /// Per attribute: closure bit matrix (n*n, row-major, reach_[a][i*n+j] =
  /// ti ⪯_a tj) and the derivation index of each pair; te derivation index.
  std::vector<std::vector<char>> reach_;
  std::vector<std::vector<int>> pair_derivation_;
  std::vector<int> te_derivation_;
};

}  // namespace relacc

#endif  // RELACC_CHASE_EXPLAIN_H_
