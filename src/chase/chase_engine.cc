#include "chase/chase_engine.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "util/thread_pool.h"

namespace relacc {

/// Mutable per-run state; one instance per Run() call so the engine itself
/// stays const and reusable. Everything is dictionary-encoded: te slots
/// are TermIds (4 bytes, trivially copyable), so the kCopy strategy's
/// deep copy and the kTrail journal both shrank with the columnar layer.
struct ChaseEngine::RunState {
  std::vector<PartialOrder> orders;
  std::vector<TermId> te;
  /// Provenance of each set te slot (rule id or a kBy* sentinel), for
  /// violation messages; parallel to `te`, kByDesignated where unset.
  std::vector<int32_t> te_rule;
  std::vector<int> remaining;
  std::vector<char> dead;
  std::deque<int32_t> queue;           ///< ready ground steps (Q of Fig. 4)
  std::vector<char> attr_dirty;        ///< λ re-check needed
  std::vector<AttrId> dirty_list;
  std::vector<std::pair<int, int>> scratch_pairs;
  ChaseStats stats;
  std::string violation;
  int64_t actions = 0;

  /// Composite journal for the kTrail strategy. Disabled — and therefore
  /// empty and copy-free — on checkpoint states; enabled exactly once per
  /// long-lived state (the engine's check probe state and its resume
  /// session state). The order-pair deltas live inside each
  /// PartialOrder's own trail; a StateMark records positions into all of
  /// them, so rollback points nest (checkpoint < session prefix < current
  /// probe). The vectors keep their capacity across brackets, so a
  /// warmed-up check or resume allocates nothing.
  struct Trail {
    bool enabled = false;
    std::vector<AttrId> te_set;          ///< te[attr] went null -> value
    std::vector<int32_t> remaining_dec;  ///< one entry per --remaining[s]
    std::vector<int32_t> dead_set;       ///< dead[s] went 0 -> 1
  };
  Trail trail;
};

ChaseEngine::~ChaseEngine() = default;

ChaseEngine::ChaseEngine(const Relation& ie, const GroundProgram* program,
                         ChaseConfig config, ThreadPool* build_pool,
                         Dictionary* dict)
    : ie_(&ie),
      schema_(&ie.schema()),
      dict_(dict),
      program_(program),
      config_(config),
      n_(ie.size()),
      num_attrs_(ie.schema().size()) {
  if (dict_ == nullptr) {
    owned_dict_ = std::make_unique<Dictionary>();
    dict_ = owned_dict_.get();
  }
  columns_.resize(num_attrs_);
  value_groups_.resize(num_attrs_);
  value_slot_.resize(num_attrs_);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    columns_[a].reserve(n_);
    for (int i = 0; i < n_; ++i) {
      const TermId id = dict_->Intern(ie.tuple(i).at(a));
      columns_[a].push_back(id);
      if (id == kNullTermId) continue;
      auto [it, inserted] = value_slot_[a].try_emplace(
          id, static_cast<int32_t>(value_groups_[a].size()));
      if (inserted) value_groups_[a].emplace_back();
      value_groups_[a][it->second].push_back(i);
    }
  }
  BuildIndex(build_pool);
}

ChaseEngine::ChaseEngine(const ColumnarRelation& ie,
                         const GroundProgram* program, ChaseConfig config,
                         ThreadPool* build_pool)
    : cie_(&ie),
      schema_(&ie.schema()),
      dict_(ie.mutable_dict()),
      program_(program),
      config_(config),
      n_(ie.size()),
      num_attrs_(ie.schema().size()) {
  columns_.resize(num_attrs_);
  value_groups_.resize(num_attrs_);
  value_slot_.resize(num_attrs_);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    const TermColumn& col = ie.column(a);  // already this dictionary's ids
    columns_[a].assign(col.begin(), col.end());
    for (int i = 0; i < n_; ++i) {
      const TermId id = columns_[a][i];
      if (id == kNullTermId) continue;
      auto [it, inserted] = value_slot_[a].try_emplace(
          id, static_cast<int32_t>(value_groups_[a].size()));
      if (inserted) value_groups_[a].emplace_back();
      value_groups_[a][it->second].push_back(i);
    }
  }
  BuildIndex(build_pool);
}

const Relation& ChaseEngine::ie() const {
  if (ie_ != nullptr) return *ie_;
  // Columnar engine: the row adapter exists only for consumers that walk
  // tuples (top-k search-space builders); built once, thread-safely.
  std::call_once(ie_once_, [this] {
    materialized_ie_ = std::make_unique<Relation>(cie_->ToRelation());
  });
  return *materialized_ie_;
}

void ChaseEngine::BuildIndex(ThreadPool* build_pool) {
  te_watch_.resize(num_attrs_);
  attr_has_order_watch_.assign(num_attrs_, 0);
  const auto& steps = program_->steps;
  remaining0_.resize(steps.size());
  step_te_.assign(steps.size(), kNullTermId);

  // Watch lists keyed by (step, residual predicate) — the Γ-sized part
  // of the index. A shard scans a contiguous step range into private
  // maps/lists; the merge appends them in shard order, so every per-key
  // watcher list comes out in ascending step order exactly as the serial
  // scan would emit it. Below the cutoff (or with no pool) the fan-out
  // would cost more than the scan. Residual te constants (and kSetTe
  // payloads) are interned here once, so the chase loop compares ids;
  // Dictionary::Intern is thread-safe, which the sharded build leans on.
  struct WatchShard {
    std::unordered_map<uint64_t, std::vector<int32_t>> order_watch;
    std::vector<std::vector<TeWatch>> te_watch;
    std::vector<char> attr_has_order_watch;
  };
  const auto scan_steps = [&](int32_t begin, int32_t end, auto&& order_emit,
                              auto&& te_emit) {
    for (int32_t s = begin; s < end; ++s) {
      const GroundStep& step = steps[s];
      remaining0_[s] = static_cast<int>(step.residual.size());
      if (step.kind == GroundStep::Kind::kSetTe) {
        step_te_[s] = dict_->Intern(step.te_value);
      }
      for (int32_t p = 0; p < static_cast<int32_t>(step.residual.size());
           ++p) {
        const GroundPredicate& g = step.residual[p];
        if (g.kind == GroundPredicate::Kind::kOrderPair) {
          order_emit(g, s);
        } else {
          te_emit(g, s, p);
        }
      }
    }
  };
  const auto make_watch = [&](const GroundPredicate& g, int32_t s, int32_t p) {
    return TeWatch{s, p, g.op, dict_->Intern(g.constant)};
  };
  constexpr std::size_t kParallelBuildCutoff = 2048;
  const int shards =
      build_pool != nullptr && steps.size() >= kParallelBuildCutoff
          ? std::min<int>(build_pool->num_threads(),
                          static_cast<int>(steps.size()))
          : 1;
  if (shards <= 1) {
    scan_steps(0, static_cast<int32_t>(steps.size()),
               [&](const GroundPredicate& g, int32_t s) {
                 order_watch_[OrderKey(g.attr, g.i, g.j)].push_back(s);
                 attr_has_order_watch_[g.attr] = 1;
               },
               [&](const GroundPredicate& g, int32_t s, int32_t p) {
                 te_watch_[g.attr].push_back(make_watch(g, s, p));
               });
    return;
  }
  std::vector<WatchShard> parts(static_cast<std::size_t>(shards));
  const int64_t chunk =
      (static_cast<int64_t>(steps.size()) + shards - 1) / shards;
  build_pool->ParallelFor(shards, [&](int64_t w) {
    WatchShard& part = parts[static_cast<std::size_t>(w)];
    part.te_watch.resize(num_attrs_);
    part.attr_has_order_watch.assign(num_attrs_, 0);
    const int32_t begin = static_cast<int32_t>(w * chunk);
    const int32_t end = static_cast<int32_t>(
        std::min<int64_t>((w + 1) * chunk, steps.size()));
    scan_steps(begin, end,
               [&](const GroundPredicate& g, int32_t s) {
                 part.order_watch[OrderKey(g.attr, g.i, g.j)].push_back(s);
                 part.attr_has_order_watch[g.attr] = 1;
               },
               [&](const GroundPredicate& g, int32_t s, int32_t p) {
                 part.te_watch[g.attr].push_back(make_watch(g, s, p));
               });
  });
  for (WatchShard& part : parts) {
    for (auto& [key, watchers] : part.order_watch) {
      std::vector<int32_t>& dst = order_watch_[key];
      dst.insert(dst.end(), watchers.begin(), watchers.end());
    }
    for (AttrId a = 0; a < num_attrs_; ++a) {
      te_watch_[a].insert(te_watch_[a].end(), part.te_watch[a].begin(),
                          part.te_watch[a].end());
      if (part.attr_has_order_watch[a]) attr_has_order_watch_[a] = 1;
    }
  }
}

void ChaseEngine::EmitOrderEvent(RunState* st, AttrId attr, int i,
                                 int j) const {
  auto it = order_watch_.find(OrderKey(attr, i, j));
  if (it == order_watch_.end()) return;
  for (int32_t s : it->second) {
    if (st->dead[s]) continue;
    if (st->trail.enabled) st->trail.remaining_dec.push_back(s);
    if (--st->remaining[s] == 0) st->queue.push_back(s);
  }
}

void ChaseEngine::EmitTeEvent(RunState* st, AttrId attr, TermId v) const {
  for (const TeWatch& w : te_watch_[attr]) {
    const int32_t s = w.step;
    if (st->dead[s]) continue;
    // Interning is canonical (Value equality == id equality), so the
    // dominant kEq/kNe compares run on ids; order comparisons — rare in
    // residuals — fall back to the dictionary values.
    bool holds;
    switch (w.op) {
      case CompareOp::kEq:
        holds = v == w.constant;
        break;
      case CompareOp::kNe:
        holds = v != w.constant;
        break;
      default:
        holds = EvalCompare(w.op, dict_->value(v), dict_->value(w.constant));
        break;
    }
    if (holds) {
      if (st->trail.enabled) st->trail.remaining_dec.push_back(s);
      if (--st->remaining[s] == 0) st->queue.push_back(s);
    } else {
      // te[attr] is immutable once set, so the predicate is permanently
      // false and the step can never fire.
      if (st->trail.enabled) st->trail.dead_set.push_back(s);
      st->dead[s] = 1;
    }
  }
}

std::string ChaseEngine::RuleNameOf(int32_t rule_id) const {
  if (rule_id == kByLambda) return "the lambda greatest-element rule";
  if (rule_id == kByAxiom) return "a built-in axiom";
  if (rule_id == kByDesignated) return "a designated target value";
  if (rule_id >= 0 &&
      rule_id < static_cast<int32_t>(program_->rule_names.size()) &&
      !program_->rule_names[rule_id].empty()) {
    return "rule '" + program_->rule_names[rule_id] + "'";
  }
  return "rule #" + std::to_string(rule_id);
}

bool ChaseEngine::ApplyAddPair(RunState* st, AttrId attr, int i, int j,
                               int32_t rule_id) const {
  st->scratch_pairs.clear();
  bool conflict = false;
  if (!st->orders[attr].AddPair(i, j, &st->scratch_pairs, &conflict)) {
    return true;  // already present: not a chase step
  }
  st->stats.pairs_derived += static_cast<int64_t>(st->scratch_pairs.size());
  if (conflict) {
    // Cross-reference the static analyzer: find the ground step that
    // derives the opposite pair (preferring one from another rule) so
    // the message names the conflicting rule pair like `relacc lint`'s
    // cr-order-conflict does.
    int32_t opposite = rule_id;
    bool found = false;
    for (const GroundStep& step : program_->steps) {
      if (step.kind != GroundStep::Kind::kAddOrder || step.attr != attr ||
          step.i != j || step.j != i) {
        continue;
      }
      if (!found || (opposite == rule_id && step.rule_id != rule_id)) {
        opposite = step.rule_id;
        found = true;
      }
      if (opposite != rule_id) break;
    }
    st->violation = "order conflict on attribute " + schema_->name(attr) +
                    " (pair derived by " + RuleNameOf(rule_id);
    if (found) {
      st->violation += ", opposite order derivable by " + RuleNameOf(opposite);
    }
    st->violation +=
        "); `relacc lint` flags such rule pairs as cr-order-conflict";
    return false;
  }
  // EmitOrderEvent only touches counters/queue, never orders, so the
  // scratch list is stable while we emit from it. Attributes no ground
  // step watches (common for the attributes top-k fills in) skip event
  // emission wholesale — anchors there can derive tens of thousands of
  // pairs per candidate check.
  if (attr_has_order_watch_[attr]) {
    for (const auto& [a, b] : st->scratch_pairs) {
      EmitOrderEvent(st, attr, a, b);
    }
  }
  if (!st->attr_dirty[attr]) {
    st->attr_dirty[attr] = 1;
    st->dirty_list.push_back(attr);
  }
  return true;
}

bool ChaseEngine::ApplySetTe(RunState* st, AttrId attr, TermId v,
                             int32_t rule_id) const {
  TermId& slot = st->te[attr];
  if (slot != kNullTermId) {
    if (slot == v) return true;  // no-op
    st->violation = "conflicting target values for attribute " +
                    schema_->name(attr) + ": " + TermToString(slot) +
                    " (set by " + RuleNameOf(st->te_rule[attr]) + ") vs " +
                    TermToString(v) + " (from " + RuleNameOf(rule_id) +
                    "); `relacc lint` flags such rule pairs as "
                    "cr-assign-conflict";
    return false;
  }
  if (st->trail.enabled) st->trail.te_set.push_back(attr);
  slot = v;
  st->te_rule[attr] = rule_id;
  EmitTeEvent(st, attr, v);
  if (config_.builtin_axioms) {
    // Axiom ϕ8: the defined target value anchors the top of ⪯_attr. The
    // anchored pairs inherit the setter's provenance — a conflict they
    // cause traces back to the rule that set te[attr].
    auto it = value_slot_[attr].find(v);
    if (it != value_slot_[attr].end()) {
      for (int j : value_groups_[attr][it->second]) {
        for (int i = 0; i < n_; ++i) {
          if (i == j) continue;
          if (!ApplyAddPair(st, attr, i, j, rule_id)) return false;
        }
      }
    }
  }
  return true;
}

bool ChaseEngine::FlushLambda(RunState* st) const {
  // λ (Sec. 2.2): whenever ⪯_A gains a greatest element with a non-null
  // value, te[A] takes that value; disagreement with an already-set te[A]
  // is an invalid step. Processing may dirty further attributes (the ϕ8
  // anchor), hence the worklist.
  while (!st->dirty_list.empty()) {
    const AttrId attr = st->dirty_list.back();
    st->dirty_list.pop_back();
    st->attr_dirty[attr] = 0;
    const int g = st->orders[attr].GreatestElement();
    if (g < 0) continue;
    const TermId val = columns_[attr][g];
    if (val == kNullTermId) continue;  // never instantiate te with null
    if (st->te[attr] == kNullTermId) {
      if (!ApplySetTe(st, attr, val, kByLambda)) return false;
    } else if (st->te[attr] != val) {
      st->violation = "lambda would overwrite target attribute " +
                      schema_->name(attr) + ": " +
                      TermToString(st->te[attr]) + " (set by " +
                      RuleNameOf(st->te_rule[attr]) + ") vs " +
                      TermToString(val) +
                      " (the greatest element of the derived order)";
      return false;
    }
  }
  return true;
}

std::string ChaseEngine::TermToString(TermId id) const {
  return dict_->value(id).ToString();
}

Tuple ChaseEngine::MaterializeTe(const std::vector<TermId>& te) const {
  std::vector<Value> values;
  values.reserve(num_attrs_);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    values.push_back(MaterializeAs(*dict_, te[a], schema_->type(a)));
  }
  return Tuple(std::move(values));
}

bool ChaseEngine::InitState(RunState* st_ptr, const Tuple& initial_te) const {
  RunState& st = *st_ptr;
  st.te.assign(num_attrs_, kNullTermId);
  st.te_rule.assign(num_attrs_, kByDesignated);
  st.remaining = remaining0_;
  st.dead.assign(program_->steps.size(), 0);
  // Every attribute starts λ-dirty: a singleton instance has a greatest
  // element before any pair is derived (its only tuple).
  st.attr_dirty.assign(num_attrs_, 1);
  st.orders.reserve(num_attrs_);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    st.orders.emplace_back(columns_[a]);
    st.dirty_list.push_back(a);
  }
  st.stats.ground_steps = static_cast<int64_t>(program_->steps.size());

  // Steps with empty residuals are ready immediately (initial Q).
  for (int32_t s = 0; s < static_cast<int32_t>(program_->steps.size()); ++s) {
    if (st.remaining[s] == 0) st.queue.push_back(s);
  }

  bool ok = true;
  if (config_.builtin_axioms) {
    // Axiom ϕ9 (equal values tie) and ϕ7 (null has lowest accuracy).
    for (AttrId a = 0; a < num_attrs_ && ok; ++a) {
      std::vector<int> nulls;
      for (int i = 0; i < n_; ++i) {
        if (columns_[a][i] == kNullTermId) nulls.push_back(i);
      }
      // ϕ9 over non-null duplicates, in first-seen group order (stable
      // across the row and columnar construction paths).
      for (const std::vector<int>& indices : value_groups_[a]) {
        for (std::size_t x = 0; x < indices.size() && ok; ++x) {
          for (std::size_t y = x + 1; y < indices.size() && ok; ++y) {
            ok = ApplyAddPair(&st, a, indices[x], indices[y], kByAxiom) &&
                 ApplyAddPair(&st, a, indices[y], indices[x], kByAxiom);
          }
        }
        if (!ok) break;
      }
      // ϕ9 over nulls (null = null holds) and ϕ7 null -> non-null.
      for (std::size_t x = 0; x < nulls.size() && ok; ++x) {
        for (std::size_t y = x + 1; y < nulls.size() && ok; ++y) {
          ok = ApplyAddPair(&st, a, nulls[x], nulls[y], kByAxiom) &&
               ApplyAddPair(&st, a, nulls[y], nulls[x], kByAxiom);
        }
      }
      for (std::size_t x = 0; x < nulls.size() && ok; ++x) {
        for (int j = 0; j < n_ && ok; ++j) {
          if (columns_[a][j] != kNullTermId) {
            ok = ApplyAddPair(&st, a, nulls[x], j, kByAxiom);
          }
        }
      }
    }
  }
  // Designated initial target values (all-null for IsCR proper; complete
  // for the candidate-target check; partial after user interaction).
  for (AttrId a = 0; a < num_attrs_ && ok; ++a) {
    if (a < initial_te.size() && !initial_te.at(a).is_null()) {
      ok = ApplySetTe(&st, a, dict_->Intern(initial_te.at(a)), kByDesignated);
    }
  }
  if (ok) ok = FlushLambda(&st);
  return ok;
}

bool ChaseEngine::DrainQueue(RunState* st_ptr) const {
  RunState& st = *st_ptr;
  // Main loop of IsCR (Fig. 4 lines 4-13).
  while (!st.queue.empty()) {
    if (config_.max_actions >= 0 && ++st.actions > config_.max_actions) {
      st.violation = "action budget exceeded";
      return false;
    }
    const int32_t s = st.queue.front();
    st.queue.pop_front();
    if (st.dead[s]) continue;
    const GroundStep& step = program_->steps[s];
    bool applied_ok;
    if (step.kind == GroundStep::Kind::kAddOrder) {
      applied_ok = ApplyAddPair(&st, step.attr, step.i, step.j, step.rule_id);
    } else {
      applied_ok = ApplySetTe(&st, step.attr, step_te_[s], step.rule_id);
    }
    if (applied_ok) applied_ok = FlushLambda(&st);
    if (!applied_ok) return false;
    ++st.stats.steps_applied;
  }
  return true;
}

ChaseOutcome ChaseEngine::Run(const Tuple& initial_te) const {
  RunState st;
  const bool ok = InitState(&st, initial_te) && DrainQueue(&st);
  if (!ok) {
    ChaseOutcome out;
    out.church_rosser = false;
    out.stats = st.stats;
    out.violation = st.violation;
    return out;
  }
  ChaseOutcome out;
  out.church_rosser = true;
  out.target = MaterializeTe(st.te);
  out.stats = st.stats;
  if (config_.keep_orders) out.orders = std::move(st.orders);
  return out;
}

void ChaseEngine::AdoptCheckpointFrom(const ChaseEngine& other) {
  if (!other.EnsureCheckpoint()) {
    checkpoint_failed_ = true;
    checkpoint_violation_ = other.checkpoint_violation_;
    checkpoint_failed_stats_ = other.checkpoint_failed_stats_;
    return;
  }
  checkpoint_ = other.checkpoint_;  // pointer share, not a deep copy
  checkpoint_failed_ = false;
  // Both rebuilt over the adopted checkpoint on demand.
  probe_state_.reset();
  session_state_.reset();
}

bool ChaseEngine::EnsureCheckpoint() const {
  if (checkpoint_ == nullptr && !checkpoint_failed_) {
    auto base = std::make_unique<RunState>();
    Tuple all_null(std::vector<Value>(num_attrs_, Value::Null()));
    if (InitState(base.get(), all_null) && DrainQueue(base.get())) {
      // Frozen from here on: CheckCandidate either copies it (kCopy) or
      // probes a long-lived copy (kTrail); workers share it by pointer.
      checkpoint_ = std::shared_ptr<const RunState>(std::move(base));
    } else {
      checkpoint_failed_ = true;  // base spec is not Church-Rosser
      checkpoint_violation_ = base->violation;
      checkpoint_failed_stats_ = base->stats;
    }
  }
  return !checkpoint_failed_;
}

bool ChaseEngine::ExportCheckpoint(ChaseCheckpoint* out) const {
  *out = ChaseCheckpoint();
  if (!EnsureCheckpoint()) {
    out->ok = false;
    out->violation = checkpoint_violation_;
    out->steps_applied = checkpoint_failed_stats_.steps_applied;
    out->pairs_derived = checkpoint_failed_stats_.pairs_derived;
    return false;
  }
  const RunState& st = *checkpoint_;
  out->ok = true;
  out->te = st.te;
  out->te_rule = st.te_rule;
  out->remaining.assign(st.remaining.begin(), st.remaining.end());
  out->dead.assign(st.dead.begin(), st.dead.end());
  out->order_succ.reserve(st.orders.size());
  for (const PartialOrder& order : st.orders) {
    out->order_succ.push_back(order.successor_words());
  }
  out->steps_applied = st.stats.steps_applied;
  out->pairs_derived = st.stats.pairs_derived;
  out->actions = st.actions;
  return true;
}

Status ChaseEngine::ImportCheckpoint(const ChaseCheckpoint& image) {
  if (!image.ok) {
    checkpoint_ = nullptr;
    checkpoint_failed_ = true;
    checkpoint_violation_ = image.violation;
    checkpoint_failed_stats_ = ChaseStats{};
    checkpoint_failed_stats_.ground_steps =
        static_cast<int64_t>(program_->steps.size());
    checkpoint_failed_stats_.steps_applied = image.steps_applied;
    checkpoint_failed_stats_.pairs_derived = image.pairs_derived;
    probe_state_.reset();
    session_state_.reset();
    return Status::OK();
  }
  const std::size_t steps = program_->steps.size();
  const auto attrs = static_cast<std::size_t>(num_attrs_);
  if (image.te.size() != attrs || image.te_rule.size() != attrs ||
      image.order_succ.size() != attrs || image.remaining.size() != steps ||
      image.dead.size() != steps) {
    return Status::DataLoss(
        "checkpoint image does not match the program/instance shape");
  }
  const std::size_t words =
      static_cast<std::size_t>(n_) *
      ((static_cast<std::size_t>(n_) + 63) / 64);
  for (const std::vector<uint64_t>& succ : image.order_succ) {
    if (succ.size() != words) {
      return Status::DataLoss("checkpoint order matrix has the wrong size");
    }
  }
  for (const TermId id : image.te) {
    if (id >= dict_->size()) {
      return Status::DataLoss("checkpoint te id outside the dictionary");
    }
  }
  auto st = std::make_unique<RunState>();
  st->te = image.te;
  st->te_rule = image.te_rule;
  st->remaining.assign(image.remaining.begin(), image.remaining.end());
  st->dead.assign(image.dead.begin(), image.dead.end());
  st->orders.reserve(attrs);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    st->orders.push_back(PartialOrder::RestoreClosed(
        columns_[a], image.order_succ[static_cast<std::size_t>(a)].data()));
  }
  // The image was taken at a drained state: queue empty, nothing λ-dirty,
  // trail disabled — the invariants EnsureCheckpoint leaves behind.
  st->attr_dirty.assign(attrs, 0);
  st->stats.ground_steps = static_cast<int64_t>(steps);
  st->stats.steps_applied = image.steps_applied;
  st->stats.pairs_derived = image.pairs_derived;
  st->actions = image.actions;
  checkpoint_ = std::shared_ptr<const RunState>(std::move(st));
  checkpoint_failed_ = false;
  checkpoint_violation_.clear();
  probe_state_.reset();
  session_state_.reset();
  return Status::OK();
}

ChaseEngine::RunState* ChaseEngine::EnsureProbeState() const {
  if (probe_state_ == nullptr) {
    probe_state_ = std::make_unique<RunState>(*checkpoint_);
    for (PartialOrder& order : probe_state_->orders) order.EnableTrail();
    probe_state_->trail.enabled = true;
  }
  return probe_state_.get();
}

ChaseEngine::RunState* ChaseEngine::EnsureSessionState() const {
  if (session_state_ == nullptr) {
    session_state_ = std::make_unique<RunState>(*checkpoint_);
    for (PartialOrder& order : session_state_->orders) order.EnableTrail();
    session_state_->trail.enabled = true;
    session_te_.assign(num_attrs_, kNullTermId);
    MarkState(*session_state_, &session_base_);
    MarkState(*session_state_, &session_mark_);
  }
  return session_state_.get();
}

bool ChaseEngine::ExtendsSession(const Tuple& extra_te) const {
  for (AttrId a = 0; a < num_attrs_; ++a) {
    const TermId applied = session_te_[a];
    if (applied == kNullTermId) continue;
    // Id equality is value equality: Intern returns the applied id iff
    // the revision carries an ==-equal value.
    if (a >= extra_te.size() || extra_te.at(a).is_null() ||
        dict_->Intern(extra_te.at(a)) != applied) {
      return false;
    }
  }
  return true;
}

bool ChaseEngine::ContinueWith(RunState* st, const Tuple& te) const {
  bool ok = true;
  for (AttrId a = 0; a < num_attrs_ && ok; ++a) {
    if (a >= te.size() || te.at(a).is_null()) continue;
    ok = ApplySetTe(st, a, dict_->Intern(te.at(a)), kByDesignated);
  }
  if (ok) ok = FlushLambda(st);
  if (ok) ok = DrainQueue(st);
  return ok;
}

void ChaseEngine::MarkState(const RunState& st, StateMark* mark) const {
  const RunState::Trail& trail = st.trail;
  mark->te_set = trail.te_set.size();
  mark->remaining_dec = trail.remaining_dec.size();
  mark->dead_set = trail.dead_set.size();
  mark->order_marks.resize(num_attrs_);
  for (AttrId a = 0; a < num_attrs_; ++a) {
    mark->order_marks[a] = st.orders[a].MarkTrail();
  }
  mark->stats = st.stats;
  mark->actions = st.actions;
}

void ChaseEngine::RollbackTo(RunState* st, const StateMark& mark) const {
  RunState::Trail& trail = st->trail;
  while (trail.te_set.size() > mark.te_set) {
    st->te[trail.te_set.back()] = kNullTermId;
    st->te_rule[trail.te_set.back()] = kByDesignated;
    trail.te_set.pop_back();
  }
  while (trail.remaining_dec.size() > mark.remaining_dec) {
    ++st->remaining[trail.remaining_dec.back()];
    trail.remaining_dec.pop_back();
  }
  while (trail.dead_set.size() > mark.dead_set) {
    st->dead[trail.dead_set.back()] = 0;
    trail.dead_set.pop_back();
  }
  // An aborted continuation can leave ready steps queued and attributes
  // λ-dirty; a successful one drained both. Either way every mark is
  // taken at a drained state, so clearing restores it.
  st->queue.clear();
  for (AttrId a : st->dirty_list) st->attr_dirty[a] = 0;
  st->dirty_list.clear();
  for (AttrId a = 0; a < num_attrs_; ++a) {
    st->orders[a].UndoTo(mark.order_marks[a]);
  }
  st->stats = mark.stats;
  st->actions = mark.actions;
  st->violation.clear();
}

bool ChaseEngine::CheckCandidate(const Tuple& t) const {
  if (!EnsureCheckpoint()) return false;
  if (config_.check_strategy == CheckStrategy::kCopy) {
    RunState st = *checkpoint_;  // deep copy of the terminal all-null state
    return ContinueWith(&st, t);
  }
  // kTrail: chase forward on the shared-checkpoint copy in place, then
  // undo exactly what this probe changed — O(delta), not O(state).
  RunState* st = EnsureProbeState();
  MarkState(*st, &probe_mark_);
  const bool ok = ContinueWith(st, t);
  RollbackTo(st, probe_mark_);
  return ok;
}

namespace {

/// Per-call stats of a resume: only the work done beyond `base` (the
/// checkpoint). ground_steps is |Γ|, a program constant, not additive.
ChaseStats ResumeDelta(const ChaseStats& now, const ChaseStats& base) {
  ChaseStats delta;
  delta.ground_steps = now.ground_steps;
  delta.steps_applied = now.steps_applied - base.steps_applied;
  delta.pairs_derived = now.pairs_derived - base.pairs_derived;
  return delta;
}

}  // namespace

ChaseOutcome ChaseEngine::ResumeWith(const Tuple& extra_te) const {
  ChaseOutcome out;
  if (!EnsureCheckpoint()) {
    out.church_rosser = false;
    out.violation = checkpoint_violation_;
    out.stats = checkpoint_failed_stats_;
    return out;
  }
  if (config_.check_strategy == CheckStrategy::kCopy) {
    RunState st = *checkpoint_;
    const bool ok = ContinueWith(&st, extra_te);
    out.stats = ResumeDelta(st.stats, checkpoint_->stats);
    if (!ok) {
      out.church_rosser = false;
      out.violation = st.violation;
      return out;
    }
    out.church_rosser = true;
    out.target = MaterializeTe(st.te);
    if (config_.keep_orders) out.orders = std::move(st.orders);
    return out;
  }
  // kTrail: resume on the persistent session state. When `extra_te`
  // extends the applied prefix — the framework's case: revisions only
  // accumulate — the continuation starts from the last terminal instance
  // and chases in just the new designated values, O(changes of this
  // revision). Sound for the same reason CheckCandidate's continuation
  // is: orders and te grow monotonically and the chase is Church-Rosser,
  // so the prefix's terminal instance is an intermediate state of the
  // extended chase. Otherwise the session rolls back to the checkpoint
  // through its trail first.
  RunState* st = EnsureSessionState();
  if (!ExtendsSession(extra_te)) {
    RollbackTo(st, session_base_);
    session_te_.assign(num_attrs_, kNullTermId);
    MarkState(*st, &session_mark_);
  }
  const ChaseStats before = st->stats;
  const bool ok = ContinueWith(st, extra_te);
  out.stats = ResumeDelta(st->stats, before);
  if (ok) {
    out.church_rosser = true;
    out.target = MaterializeTe(st->te);
    // Materializing orders copies the bit-matrices — the one O(state)
    // cost left, paid only when the caller asked to keep them. The
    // copies skip the session's journal: callers get the same trail-free
    // orders a from-scratch run returns.
    if (config_.keep_orders) {
      out.orders.reserve(st->orders.size());
      for (const PartialOrder& order : st->orders) {
        out.orders.push_back(order.CopyWithoutTrail());
      }
    }
    // The successful continuation becomes the new session prefix.
    std::vector<TermId> applied(num_attrs_, kNullTermId);
    for (AttrId a = 0; a < num_attrs_; ++a) {
      if (a < extra_te.size() && !extra_te.at(a).is_null()) {
        applied[a] = dict_->Intern(extra_te.at(a));
      }
    }
    session_te_ = std::move(applied);
    MarkState(*st, &session_mark_);
  } else {
    out.church_rosser = false;
    out.violation = st->violation;
    // Extract first, then restore the last valid session state.
    RollbackTo(st, session_mark_);
  }
  return out;
}

ChaseOutcome ChaseEngine::RunFromCheckpoint() const {
  ChaseOutcome out;
  if (!EnsureCheckpoint()) {
    out.church_rosser = false;
    out.violation = checkpoint_violation_;
    out.stats = checkpoint_failed_stats_;
    return out;
  }
  out.church_rosser = true;
  out.target = MaterializeTe(checkpoint_->te);
  out.stats = checkpoint_->stats;
  if (config_.keep_orders) out.orders = checkpoint_->orders;
  return out;
}

ChaseOutcome ChaseEngine::RunFromInitial() const {
  return Run(Tuple(std::vector<Value>(num_attrs_, Value::Null())));
}

ChaseOutcome IsCR(const Specification& spec) {
  const GroundProgram program =
      Instantiate(spec.ie, spec.masters, spec.rules);
  ChaseEngine engine(spec.ie, &program, spec.config);
  return engine.RunFromInitial();
}

bool CheckCandidateTarget(const ChaseEngine& engine, const Tuple& t) {
  // All attributes of t are non-null and te attributes are immutable, so a
  // violation-free continuation necessarily deduces t itself.
  return engine.CheckCandidate(t);
}

}  // namespace relacc
