#ifndef RELACC_CHASE_SPECIFICATION_H_
#define RELACC_CHASE_SPECIFICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/relation.h"
#include "order/partial_order.h"
#include "rules/accuracy_rule.h"

namespace relacc {

/// How ChaseEngine::CheckCandidate restores the shared all-null
/// checkpoint between candidate probes.
enum class CheckStrategy {
  /// Deep-copy the checkpoint per candidate: every PartialOrder bit-matrix
  /// plus the per-step counters, O(attrs · n²/64) words each time. Kept as
  /// the reference implementation the trail path is cross-validated
  /// against (tests/test_check_strategy.cc).
  kCopy,
  /// Chase forward on one long-lived state and roll back through trails in
  /// O(changes the probe made). The default: candidate checks dominate the
  /// top-k algorithms' runtime (bench/trail_vs_copy.cc measures the gap).
  kTrail,
};

/// Canonical name of a strategy ("trail" / "copy") — the single mapping
/// used by the CLI flag, the spec-JSON config and the bench/test labels.
inline const char* CheckStrategyName(CheckStrategy strategy) {
  return strategy == CheckStrategy::kCopy ? "copy" : "trail";
}

/// Inverse of CheckStrategyName; false iff `name` is not a strategy.
inline bool ParseCheckStrategy(const std::string& name, CheckStrategy* out) {
  if (name == "trail") {
    *out = CheckStrategy::kTrail;
    return true;
  }
  if (name == "copy") {
    *out = CheckStrategy::kCopy;
    return true;
  }
  return false;
}

/// Tuning knobs of the chase.
struct ChaseConfig {
  /// Handle the axioms ϕ7 (null lowest), ϕ8 (te anchor) and ϕ9 (equality)
  /// natively instead of requiring them in Σ. Grounding ϕ8 declaratively
  /// costs O(|Ie|²·n) ground steps; the native path is behaviourally
  /// equivalent (cross-validated in tests) and linear-ish.
  bool builtin_axioms = true;

  /// Keep the per-attribute partial orders in the outcome (they are sized
  /// O(n²) bits per attribute; top-k `check` runs don't need them).
  bool keep_orders = false;

  /// Safety valve on internal actions; -1 = unbounded. The chase provably
  /// terminates (Prop. 1), so this only guards against implementation bugs.
  int64_t max_actions = -1;

  /// Candidate-check rollback strategy; ranked top-k output is identical
  /// for both values (guarded by tests/test_check_strategy.cc).
  CheckStrategy check_strategy = CheckStrategy::kTrail;
};

/// A specification S = (D0, Σ, Im, te^{D0}) of an entity (Sec. 2.2):
/// the entity instance, the master relations (index 0 is "the" Im; constant
/// CFDs compile to additional single-purpose master relations), and the ARs.
/// The initial target template is supplied per chase run.
struct Specification {
  Relation ie;
  std::vector<Relation> masters;
  std::vector<AccuracyRule> rules;
  ChaseConfig config;
};

/// Counters reported by a chase run.
struct ChaseStats {
  int64_t ground_steps = 0;    ///< |Γ| after Instantiation
  int64_t steps_applied = 0;   ///< chase steps that changed the instance
  int64_t pairs_derived = 0;   ///< ⪯ pairs added across all attributes
};

/// Result of a chase / IsCR run. When `church_rosser` is false the chase
/// found an invalid step (conflicting orders or an overwrite of a non-null
/// target attribute); `violation` describes it and `target` is meaningless
/// (the paper's IsCR returns nil).
struct ChaseOutcome {
  bool church_rosser = false;
  Tuple target;
  std::vector<PartialOrder> orders;  ///< per attribute, iff keep_orders
  ChaseStats stats;
  std::string violation;
};

}  // namespace relacc

#endif  // RELACC_CHASE_SPECIFICATION_H_
