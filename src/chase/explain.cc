#include "chase/explain.h"

#include <unordered_set>
#include <utility>

#include "rules/axioms.h"
#include "rules/grounding.h"
#include "rules/predicate.h"

namespace relacc {

ExplainedChase::ExplainedChase(const Specification& spec)
    : schema_(spec.ie.schema()), ie_(spec.ie) {
  n_ = ie_.size();
  int num_attrs = schema_.size();
  reach_.assign(num_attrs, std::vector<char>(n_ * n_, 0));
  pair_derivation_.assign(num_attrs, std::vector<int>(n_ * n_, -1));
  te_derivation_.assign(num_attrs, -1);
  target_ = Tuple(std::vector<Value>(num_attrs));
  Run(spec);
}

int ExplainedChase::Record(Derivation d) {
  derivations_.push_back(std::move(d));
  return static_cast<int>(derivations_.size()) - 1;
}

bool ExplainedChase::ApplyAddPair(AttrId attr, int i, int j, DerivationVia via,
                                  const std::string& rule,
                                  std::vector<int> premises) {
  if (i == j || reach_[attr][i * n_ + j]) return true;  // no-op
  // Validity: i ⪯ j with j ⪯ i already present and differing values would
  // make ⪯ fail antisymmetry up to value equality (Sec. 2.2(a)).
  if (reach_[attr][j * n_ + i] && ie_.tuple(i).at(attr) != ie_.tuple(j).at(attr)) {
    church_rosser_ = false;
    if (violation_.empty()) {
      violation_ = "conflicting accuracy orders on [" + schema_.name(attr) +
                   "] between tuples " + std::to_string(i) + " and " +
                   std::to_string(j);
    }
    return false;
  }

  Derivation d;
  d.fact = {ChaseFact::Kind::kOrderPair, attr, i, j, Value()};
  d.via = via;
  d.rule_name = rule;
  d.premises = std::move(premises);
  int base = Record(std::move(d));
  reach_[attr][i * n_ + j] = 1;
  pair_derivation_[attr][i * n_ + j] = base;

  // Incremental transitive closure; every inferred pair recurses through
  // ApplyAddPair so it is validity-checked and recorded itself.
  for (int k = 0; k < n_; ++k) {
    if (reach_[attr][k * n_ + i] && !reach_[attr][k * n_ + j]) {
      if (!ApplyAddPair(attr, k, j, DerivationVia::kTransitivity, "",
                        {pair_derivation_[attr][k * n_ + i], base})) {
        return false;
      }
    }
  }
  for (int k = 0; k < n_; ++k) {
    if (reach_[attr][j * n_ + k] && !reach_[attr][i * n_ + k]) {
      if (!ApplyAddPair(attr, i, k, DerivationVia::kTransitivity, "",
                        {base, pair_derivation_[attr][j * n_ + k]})) {
        return false;
      }
    }
  }
  return UpdateLambda(attr);
}

bool ExplainedChase::UpdateLambda(AttrId attr) {
  // Greatest element: some t with t' ⪯ t for every other t'.
  for (int t = 0; t < n_; ++t) {
    bool greatest = true;
    std::vector<int> premises;
    for (int other = 0; other < n_ && greatest; ++other) {
      if (other == t) continue;
      if (reach_[attr][other * n_ + t]) {
        premises.push_back(pair_derivation_[attr][other * n_ + t]);
      } else {
        greatest = false;
      }
    }
    if (!greatest) continue;
    const Value& v = ie_.tuple(t).at(attr);
    if (v.is_null()) return true;  // λ never assigns null
    return ApplySetTe(attr, v, DerivationVia::kLambda,
                      "t" + std::to_string(t) + " is the greatest element",
                      std::move(premises));
  }
  return true;
}

bool ExplainedChase::ApplySetTe(AttrId attr, const Value& v, DerivationVia via,
                                const std::string& rule,
                                std::vector<int> premises) {
  const Value& current = target_.at(attr);
  if (!current.is_null()) {
    if (current == v) return true;  // no-op
    church_rosser_ = false;
    if (violation_.empty()) {
      violation_ = "target attribute [" + schema_.name(attr) +
                   "] would change from " + current.ToString() + " to " +
                   v.ToString();
    }
    return false;
  }
  Derivation d;
  d.fact = {ChaseFact::Kind::kTeValue, attr, -1, -1, v};
  d.via = via;
  d.rule_name = rule;
  d.premises = std::move(premises);
  te_derivation_[attr] = Record(std::move(d));
  target_.set(attr, v);
  return true;
}

void ExplainedChase::Run(const Specification& spec) {
  // Expand the axioms declaratively so their applications carry names.
  std::vector<AccuracyRule> rules = spec.rules;
  if (spec.config.builtin_axioms) {
    std::vector<AccuracyRule> axioms = ExpandAxioms(schema_);
    rules.insert(rules.end(), axioms.begin(), axioms.end());
  }
  GroundProgram program = Instantiate(ie_, spec.masters, rules);

  // λ applies to the initial empty orders already: a lone tuple (or a set
  // of value-equal tuples once ϕ9 fires) is trivially the greatest element.
  for (AttrId a = 0; a < schema_.size() && church_rosser_; ++a) {
    UpdateLambda(a);
  }

  // Naive fixpoint over the ground steps. Each step fires at most once;
  // a pass that changes nothing ends the loop. Steps whose residual
  // mentions te re-evaluate every pass (te only grows, so no retraction).
  std::vector<char> fired(program.steps.size(), 0);
  bool changed = true;
  while (changed && church_rosser_) {
    changed = false;
    for (size_t s = 0; s < program.steps.size() && church_rosser_; ++s) {
      if (fired[s]) continue;
      const GroundStep& step = program.steps[s];
      bool satisfied = true;
      std::vector<int> premises;
      for (const GroundPredicate& p : step.residual) {
        if (p.kind == GroundPredicate::Kind::kOrderPair) {
          if (!reach_[p.attr][p.i * n_ + p.j]) {
            satisfied = false;
            break;
          }
          premises.push_back(pair_derivation_[p.attr][p.i * n_ + p.j]);
        } else {  // kTeCompare
          const Value& te_v = target_.at(p.attr);
          // te[A] op c with te[A] still null only holds for the null
          // comparisons the first-order semantics admits (null = null).
          if (!EvalCompare(p.op, te_v, p.constant)) {
            satisfied = false;
            break;
          }
          if (te_derivation_[p.attr] >= 0) {
            premises.push_back(te_derivation_[p.attr]);
          }
        }
      }
      if (!satisfied) continue;
      fired[s] = 1;
      changed = true;
      const std::string& rule_name =
          step.rule_id >= 0 && step.rule_id < static_cast<int>(rules.size())
              ? rules[step.rule_id].name
              : "";
      if (step.kind == GroundStep::Kind::kAddOrder) {
        ApplyAddPair(step.attr, step.i, step.j, DerivationVia::kRule,
                     rule_name, std::move(premises));
      } else {
        ApplySetTe(step.attr, step.te_value, DerivationVia::kRule, rule_name,
                   std::move(premises));
      }
    }
  }
}

std::optional<int> ExplainedChase::FindTeDerivation(AttrId attr) const {
  if (attr < 0 || attr >= schema_.size() || te_derivation_[attr] < 0) {
    return std::nullopt;
  }
  return te_derivation_[attr];
}

std::optional<int> ExplainedChase::FindPairDerivation(AttrId attr, int i,
                                                      int j) const {
  if (attr < 0 || attr >= schema_.size() || i < 0 || j < 0 || i >= n_ ||
      j >= n_ || pair_derivation_[attr][i * n_ + j] < 0) {
    return std::nullopt;
  }
  return pair_derivation_[attr][i * n_ + j];
}

std::string ExplainedChase::FactToString(const ChaseFact& fact) const {
  if (fact.kind == ChaseFact::Kind::kTeValue) {
    return "te[" + schema_.name(fact.attr) + "] = " + fact.te_value.ToString();
  }
  std::string out = "t" + std::to_string(fact.i) + " <= t" +
                    std::to_string(fact.j) + " on [" +
                    schema_.name(fact.attr) + "]";
  const Value& vi = ie_.tuple(fact.i).at(fact.attr);
  const Value& vj = ie_.tuple(fact.j).at(fact.attr);
  out += "  {" + (vi.is_null() ? "null" : vi.ToString()) + " <= " +
         (vj.is_null() ? "null" : vj.ToString()) + "}";
  return out;
}

namespace {

const char* ViaLabel(DerivationVia via) {
  switch (via) {
    case DerivationVia::kRule: return "rule";
    case DerivationVia::kTransitivity: return "transitivity";
    case DerivationVia::kLambda: return "lambda";
  }
  return "?";
}

}  // namespace

std::string ExplainedChase::Explain(int derivation_index, int max_depth) const {
  std::string out;
  std::unordered_set<int> printed;

  // Depth-first rendering; `prefix` carries the tree-drawing indent.
  auto render = [&](auto&& self, int index, const std::string& prefix,
                    bool last, int depth) -> void {
    const Derivation& d = derivations_[index];
    std::string line = prefix;
    if (depth > 0) {
      line += last ? "`- " : "|- ";
    }
    line += FactToString(d.fact);
    line += "   [";
    line += ViaLabel(d.via);
    if (!d.rule_name.empty()) line += ": " + d.rule_name;
    line += "]";
    if (printed.count(index) > 0 && !d.premises.empty()) {
      out += line + "  (shown above)\n";
      return;
    }
    printed.insert(index);
    out += line + "\n";
    if (depth >= max_depth && !d.premises.empty()) {
      out += prefix + (depth > 0 ? (last ? "   " : "|  ") : "") + "`- ...\n";
      return;
    }
    for (size_t p = 0; p < d.premises.size(); ++p) {
      std::string child_prefix =
          prefix + (depth > 0 ? (last ? "   " : "|  ") : "");
      self(self, d.premises[p], child_prefix, p + 1 == d.premises.size(),
           depth + 1);
    }
  };

  if (derivation_index < 0 ||
      derivation_index >= static_cast<int>(derivations_.size())) {
    return "(no such derivation)\n";
  }
  render(render, derivation_index, "", true, 0);
  return out;
}

std::string ExplainedChase::ExplainTarget(AttrId attr) const {
  std::optional<int> d = FindTeDerivation(attr);
  if (!d) {
    return "te[" + schema_.name(attr) + "] was not deduced by the chase\n";
  }
  return Explain(*d);
}

}  // namespace relacc
