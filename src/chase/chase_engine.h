#ifndef RELACC_CHASE_CHASE_ENGINE_H_
#define RELACC_CHASE_CHASE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chase/specification.h"
#include "core/columnar.h"
#include "core/dictionary.h"
#include "core/relation.h"
#include "rules/grounding.h"
#include "util/status.h"

namespace relacc {

/// A serializable image of the shared all-null checkpoint — exactly the
/// derived state a snapshot persists so a loaded engine resumes from
/// the chased terminal instance instead of re-running the checkpoint
/// chase. te ids are TermIds of the engine's dictionary (snapshot loads
/// re-intern in id order, so ids are stable); `order_succ` holds each
/// attribute's transitively-closed successor words
/// (PartialOrder::successor_words()) — predecessors, in-degrees and the
/// greatest element are derived on import. When the base specification
/// is not Church-Rosser there is no checkpoint state: ok is false and
/// the violation plus the failing chase's stats round-trip instead, so
/// a loaded service reports the identical failure.
struct ChaseCheckpoint {
  bool ok = false;
  std::vector<TermId> te;                         ///< [attr]
  std::vector<int32_t> te_rule;                   ///< [attr] provenance
  std::vector<int32_t> remaining;                 ///< [ground step]
  std::vector<uint8_t> dead;                      ///< [ground step]
  std::vector<std::vector<uint64_t>> order_succ;  ///< [attr] closed succ
  int64_t steps_applied = 0;
  int64_t pairs_derived = 0;
  int64_t actions = 0;
  std::string violation;  ///< when !ok
};

/// Executes chasing sequences over a pre-grounded program (Sec. 2.2 / 5).
///
/// Construction builds the immutable part of the index H of algorithm IsCR
/// (Fig. 4): watch lists Φδ keyed by order-pair events (attr,i,j) and by
/// target-template events te[A]:=v, plus the initial residual counters nφ.
/// `Run` then simulates one stable chasing sequence from a given initial
/// target template; it is cheap to call repeatedly (the top-k algorithms'
/// `check` runs it once per inspected candidate).
///
/// The engine implements the validity checks of Sec. 2.2 and aborts —
/// reporting not-Church-Rosser — when an applied step would (a) create
/// ti ⪯ tj ∧ tj ⪯ ti with ti[A] ≠ tj[A], or (b) change a non-null te[A]
/// (whether via a form-(2) assignment or via the λ greatest-element rule).
class ChaseEngine {
 public:
  /// `ie` and `program` must outlive the engine. `build_pool` (optional)
  /// parallelizes the construction of the immutable index H — the watch
  /// lists are built over contiguous shards of Γ and merged in shard
  /// order, so the index (and every chase over it) is identical to a
  /// serial build. Construction is the Γ-consuming half of bringing up
  /// the shared all-null checkpoint (the chase itself is inherently
  /// sequential), so large-|Ie| services pass their budget pool here;
  /// the pool is only used during the constructor and not retained.
  ///
  /// Internally the engine is dictionary-encoded end to end: the Ie
  /// columns, the te slots of every run state, the ϕ8/ϕ9 value index and
  /// the residual-constant watch entries are all TermIds interned into
  /// `dict` (Value equality == id equality by the interning contract), so
  /// the chase hot loop compares integers, not Values. Pass a shared
  /// dictionary so sibling engines — checker worker pools, pipeline
  /// windows, serve sessions — intern each distinct term once and can
  /// share checkpoints (AdoptCheckpointFrom requires a common
  /// dictionary); with dict == nullptr the engine owns a private one.
  ChaseEngine(const Relation& ie, const GroundProgram* program,
              ChaseConfig config, ThreadPool* build_pool = nullptr,
              Dictionary* dict = nullptr);

  /// Columnar-native construction: chases `ie` without ever holding a
  /// row copy (the dictionary is ie.mutable_dict()). ie() materializes a
  /// row adapter lazily for the few consumers that still need tuples
  /// (the top-k search-space builders); grounding and chasing never do.
  ChaseEngine(const ColumnarRelation& ie, const GroundProgram* program,
              ChaseConfig config, ThreadPool* build_pool = nullptr);

  ChaseEngine(const ChaseEngine&) = delete;
  ChaseEngine& operator=(const ChaseEngine&) = delete;
  ~ChaseEngine();  // out-of-line: RunState is incomplete here

  /// Runs a chasing sequence to a terminal instance starting from
  /// `initial_te` (arity = schema size; null where unknown). Corresponds to
  /// IsCR when initial_te is all-null, and to the candidate-target `check`
  /// when initial_te is complete.
  ChaseOutcome Run(const Tuple& initial_te) const;

  /// Run with the all-null initial template (the paper's (D0, te^{D0})).
  ChaseOutcome RunFromInitial() const;

  /// Same outcome as RunFromInitial(), but served from (and priming) the
  /// shared all-null checkpoint instead of a throwaway run. Callers that
  /// chase first and then check candidates — the pipeline, the CLI —
  /// should use this so the all-null chase runs once, not twice.
  ChaseOutcome RunFromCheckpoint() const;

  /// Candidate-target check for a complete tuple `t` (Sec. 6's `check`).
  /// Semantically identical to Run(t).church_rosser, but resumes from a
  /// lazily-prepared checkpoint — the terminal instance of the all-null
  /// chase — instead of replaying the axiom closure per candidate. Valid
  /// because orders and te only grow monotonically: every violation the
  /// from-scratch run would find, the continuation finds too.
  ///
  /// Under ChaseConfig::check_strategy == kCopy each call deep-copies the
  /// checkpoint; under kTrail the engine keeps one long-lived probe state,
  /// chases forward in place and rolls every change back in O(changes) —
  /// whether the probe succeeded or aborted mid-chase on a Church-Rosser
  /// violation. Both paths return identical verdicts.
  bool CheckCandidate(const Tuple& t) const;

  /// Shares `other`'s prepared all-null checkpoint with this engine,
  /// building it on `other` first if needed. The checkpoint is a pure
  /// function of (Ie, program, config) and immutable once built, so
  /// engines over the same triple — e.g. the per-worker engines of
  /// topk/batch_check.h — share one instance by pointer instead of each
  /// re-running (or deep-copying) the all-null chase.
  void AdoptCheckpointFrom(const ChaseEngine& other);

  /// Incremental re-chase (Fig. 3 loop): resumes from the all-null
  /// terminal checkpoint, enforcing the (possibly partial) designated
  /// target values of `extra_te` on top. Produces the same outcome as
  /// Run(extra_te) — validated by tests — while skipping the replay of
  /// everything the all-null chase already derived; the interactive
  /// framework calls this once per user revision.
  ///
  /// The resume obeys ChaseConfig::check_strategy. Under kTrail the
  /// engine keeps a persistent *chase session*: a long-lived state —
  /// separate from CheckCandidate's probe state, so checks and resumes
  /// never disturb each other — holding the terminal instance of the
  /// last successful resume. When `extra_te` extends the session's
  /// applied values (the framework's case: revisions only accumulate),
  /// only the new values are chased in, so the call costs O(changes of
  /// this revision); otherwise the session rolls back to the checkpoint
  /// through its trail and re-chases `extra_te` from there. The outcome
  /// (flag, target, stats, orders when keep_orders) is extracted before
  /// any rollback; a resume that aborts mid-chase rolls back to the last
  /// valid session state. Under kCopy each call deep-copies the
  /// checkpoint and replays the whole continuation — the cross-validated
  /// escape hatch. Outcomes are identical on both paths.
  ///
  /// Stats are per-call deltas — the work *this call* performed, so
  /// summing them across framework rounds never double-counts the
  /// checkpoint chase (ground_steps stays |Γ|, a program constant).
  /// Consequently kTrail may legitimately report smaller numbers than
  /// kCopy for session-extending calls: it genuinely does less work.
  /// Exception: when the base spec itself is not Church-Rosser, the
  /// failing all-null chase's own stats are reported.
  ChaseOutcome ResumeWith(const Tuple& extra_te) const;

  /// Fills `out` with an image of the all-null checkpoint, building it
  /// first if needed (so this pays the checkpoint chase exactly when
  /// nothing has). Returns out->ok — false means the base specification
  /// is not Church-Rosser and `out` carries the violation instead.
  bool ExportCheckpoint(ChaseCheckpoint* out) const;

  /// Installs a previously exported image as this engine's checkpoint
  /// without chasing: orders are rebuilt from the closed successor
  /// words over this engine's own columns, the step bookkeeping is
  /// adopted verbatim, and subsequent RunFromCheckpoint /
  /// CheckCandidate / ResumeWith behave exactly as if the engine had
  /// chased the checkpoint itself. The image must come from an engine
  /// over the same (Ie, Γ, config) — shape mismatches (attr count, step
  /// count, order matrix sizes, te ids outside the dictionary) are
  /// rejected with kDataLoss and leave the engine unchanged.
  Status ImportCheckpoint(const ChaseCheckpoint& image);

  /// Row view of Ie. For a row-constructed engine this is the caller's
  /// relation; for a columnar engine a row adapter is materialized (and
  /// cached) on first call — the chase itself never needs it.
  const Relation& ie() const;
  const GroundProgram& program() const { return *program_; }
  const ChaseConfig& config() const { return config_; }

  /// The term dictionary this engine encodes against (shared or owned).
  const Dictionary& dict() const { return *dict_; }
  Dictionary* mutable_dict() const { return dict_; }

 private:
  struct RunState;

  /// A rollback point on a trail-enabled RunState: positions into the
  /// composite journal (te slots, residual decrements, dead flags), one
  /// PartialOrder::Mark per attribute, and the counters in force. Marks
  /// are positions, so they nest — the session mark sits above the
  /// checkpoint mark, and each probe/resume marks on top of those.
  struct StateMark {
    std::size_t te_set = 0;
    std::size_t remaining_dec = 0;
    std::size_t dead_set = 0;
    std::vector<PartialOrder::Mark> order_marks;
    ChaseStats stats;
    int64_t actions = 0;
  };

  // Builds the all-null terminal checkpoint once; false if the base
  // specification is not Church-Rosser.
  bool EnsureCheckpoint() const;

  // The long-lived mutable state the kTrail check probes on, created
  // lazily as one copy of the checkpoint (per engine, not per candidate).
  RunState* EnsureProbeState() const;

  // The kTrail resume session (see ResumeWith): another long-lived copy
  // of the checkpoint, plus session_te_/session_mark_ tracking the
  // applied prefix, created lazily on the first trail resume.
  RunState* EnsureSessionState() const;

  // True iff `extra_te` agrees with every designated value the session
  // has already applied — the continuation can then start from the
  // session state instead of the checkpoint.
  bool ExtendsSession(const Tuple& extra_te) const;

  // Phases of Run(), factored so CheckCandidate can resume mid-way.
  bool InitState(RunState* st, const Tuple& initial_te) const;
  bool DrainQueue(RunState* st) const;

  // Continues a prepared (checkpoint-shaped) state with the designated
  // target values of `te`: ApplySetTe per non-null attribute, λ flush,
  // queue drain. Shared by CheckCandidate and ResumeWith.
  bool ContinueWith(RunState* st, const Tuple& te) const;

  // kTrail rollback bracket: MarkState snapshots a rollback point on a
  // trail-enabled state; RollbackTo undoes everything done since (te
  // slots, residual counters, dead flags, queue, dirty lists, order
  // pairs, stats) in O(changes) — valid on success and mid-chase abort
  // alike, because every mutation is journaled as it happens. MarkState
  // fills a caller-owned mark so steady-state brackets allocate nothing.
  void MarkState(const RunState& st, StateMark* mark) const;
  void RollbackTo(RunState* st, const StateMark& mark) const;

  // Provenance of a chase action, for violation messages that name the
  // rules involved and cross-reference the static `relacc lint` checks.
  // Non-negative ids index the specification's rule list (via
  // GroundProgram::rule_names); negatives are the engine's own actions.
  static constexpr int32_t kByDesignated = -1;  ///< designated target value
  static constexpr int32_t kByLambda = -2;      ///< λ greatest-element rule
  static constexpr int32_t kByAxiom = -3;       ///< built-in axiom ϕ7/ϕ8/ϕ9

  // Human-readable name of the rule (or engine action) behind `rule_id`.
  std::string RuleNameOf(int32_t rule_id) const;

  // Applies "insert i ⪯_attr j, close, λ-update" as one action. Returns
  // false on a validity violation (recorded in state). `rule_id` is the
  // provenance of the pair being inserted.
  bool ApplyAddPair(RunState* st, AttrId attr, int i, int j,
                    int32_t rule_id) const;
  // Applies te[attr] := v (an interned id). Returns false on a violation.
  bool ApplySetTe(RunState* st, AttrId attr, TermId v, int32_t rule_id) const;
  // Re-evaluates λ for attributes whose order changed.
  bool FlushLambda(RunState* st) const;

  void EmitOrderEvent(RunState* st, AttrId attr, int i, int j) const;
  void EmitTeEvent(RunState* st, AttrId attr, TermId v) const;

  // Shared body of both constructors (columns/value groups are already
  // encoded when it runs): watch lists, residual counters, step te ids.
  void BuildIndex(ThreadPool* build_pool);

  // Encodes te ids back into a boundary Tuple, coercing numeric
  // representatives to the schema column type so outcomes are
  // byte-identical to the row path on type-consistent data.
  Tuple MaterializeTe(const std::vector<TermId>& te) const;

  // dict_->value(id).ToString() with null id -> "" (violation messages).
  std::string TermToString(TermId id) const;

  uint64_t OrderKey(AttrId attr, int i, int j) const {
    return (static_cast<uint64_t>(attr) * static_cast<uint64_t>(n_) +
            static_cast<uint64_t>(i)) *
               static_cast<uint64_t>(n_) +
           static_cast<uint64_t>(j);
  }

  /// Exactly one of ie_/cie_ is set at construction; ie() materializes a
  /// cached row adapter for columnar engines on demand.
  const Relation* ie_ = nullptr;
  const ColumnarRelation* cie_ = nullptr;
  mutable std::unique_ptr<Relation> materialized_ie_;
  mutable std::once_flag ie_once_;
  const Schema* schema_;
  /// Shared (caller-owned) or private term dictionary; columns_, watch
  /// constants and every RunState te slot are ids into it.
  Dictionary* dict_;
  std::unique_ptr<Dictionary> owned_dict_;
  const GroundProgram* program_;
  ChaseConfig config_;
  int n_;
  int num_attrs_;

  std::vector<int> remaining0_;  ///< residual sizes per ground step
  std::unordered_map<uint64_t, std::vector<int32_t>> order_watch_;
  /// Per attribute: 1 iff some ground step watches an order pair of it.
  std::vector<char> attr_has_order_watch_;
  /// One entry per residual te-compare: the watching step/predicate plus
  /// the comparison pre-encoded (kEq/kNe run on ids alone; order ops
  /// fall back to the dictionary values).
  struct TeWatch {
    int32_t step;
    int32_t pred;
    CompareOp op;
    TermId constant;
  };
  /// Per attribute: watchers of te[attr].
  std::vector<std::vector<TeWatch>> te_watch_;
  /// kSetTe payloads pre-interned per ground step (kNullTermId for
  /// kAddOrder steps), so DrainQueue never touches a Value.
  std::vector<TermId> step_te_;
  /// Dictionary-encoded column per attribute (orders & the ϕ8 anchor).
  std::vector<std::vector<TermId>> columns_;
  /// Per attribute: groups of tuple indices sharing a non-null value, in
  /// first-seen row order — deterministic and representation-independent
  /// (the row and columnar paths emit ϕ9 pairs in the same order) —
  /// plus an id -> group index for the ϕ8 anchor lookup.
  std::vector<std::vector<std::vector<int>>> value_groups_;
  std::vector<std::unordered_map<TermId, int32_t>> value_slot_;

  /// Lazily-built checkpoint for CheckCandidate (terminal all-null state).
  /// Immutable once built and shared by pointer across the per-worker
  /// engines of a CandidateChecker (AdoptCheckpointFrom).
  mutable std::shared_ptr<const RunState> checkpoint_;
  mutable bool checkpoint_failed_ = false;
  /// Violation + stats of the failed all-null chase (for RunFromCheckpoint).
  mutable std::string checkpoint_violation_;
  mutable ChaseStats checkpoint_failed_stats_;
  /// kTrail probe state; mutated and rolled back by CheckCandidate.
  mutable std::unique_ptr<RunState> probe_state_;
  /// Scratch mark for the per-candidate probe bracket (reused).
  mutable StateMark probe_mark_;
  /// kTrail resume session (ResumeWith): state, applied designated
  /// values (interned; kNullTermId = unset), and the rollback points at
  /// the checkpoint and at the end of the applied prefix.
  mutable std::unique_ptr<RunState> session_state_;
  mutable std::vector<TermId> session_te_;
  mutable StateMark session_base_;
  mutable StateMark session_mark_;
};

/// Convenience wrapper: grounds `spec` and runs IsCR (Fig. 4), returning
/// the unique terminal instance when spec is Church-Rosser.
ChaseOutcome IsCR(const Specification& spec);

/// The candidate-target check (Sec. 3 / 6): `t` must be complete and agree
/// with the deduced target on its non-null attributes (callers guarantee
/// this). True iff (D0, Σ, Im, t) is Church-Rosser and deduces t itself.
bool CheckCandidateTarget(const ChaseEngine& engine, const Tuple& t);

}  // namespace relacc

#endif  // RELACC_CHASE_CHASE_ENGINE_H_
