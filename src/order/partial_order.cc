#include "order/partial_order.h"

#include <unordered_map>

namespace relacc {

PartialOrder::PartialOrder(std::vector<TermId> column)
    : n_(static_cast<int>(column.size())),
      stride_((column.size() + 63) / 64),
      column_(std::move(column)) {
  succ_.assign(static_cast<std::size_t>(n_) * stride_, 0);
  pred_.assign(static_cast<std::size_t>(n_) * stride_, 0);
  in_count_.assign(n_, 0);
  if (n_ == 1) greatest_ = 0;  // a singleton instance is trivially greatest
}

namespace {

/// Local interning for the Value convenience ctor: ids carry exactly the
/// equivalence classes of Value::operator== (ValueHash hashes
/// numeric-equal values identically), nulls all map to kNullTermId.
std::vector<TermId> InternColumn(const std::vector<Value>& column) {
  std::vector<TermId> ids;
  ids.reserve(column.size());
  std::unordered_map<Value, TermId, ValueHash> index;
  TermId next = kNullTermId + 1;
  for (const Value& v : column) {
    if (v.is_null()) {
      ids.push_back(kNullTermId);
      continue;
    }
    auto [it, inserted] = index.try_emplace(v, next);
    if (inserted) ++next;
    ids.push_back(it->second);
  }
  return ids;
}

}  // namespace

PartialOrder::PartialOrder(const std::vector<Value>& column)
    : PartialOrder(InternColumn(column)) {}

bool PartialOrder::AddPair(int i, int j,
                           std::vector<std::pair<int, int>>* new_pairs,
                           bool* conflict) {
  if (i == j || TestBit(succ_, i, j)) return false;
  // Sources: i plus everything that reaches i (snapshot — pred_[i] row may
  // gain bits mid-loop only when i is also a target, which the snapshot
  // makes safe). Targets: j plus everything j reaches (that row is stable:
  // it only mutates when the source equals j, where the missing-bit scan
  // is empty). The snapshot buffer is a member so a warmed-up insertion
  // allocates nothing — anchor cascades call AddPair O(n·|dup|) times
  // per chase continuation.
  std::vector<int>& sources = sources_scratch_;
  sources.clear();
  sources.push_back(i);
  {
    const uint64_t* row = &pred_[Row(i)];
    for (std::size_t w = 0; w < stride_; ++w) {
      uint64_t bits = row[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        sources.push_back(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }

  for (int a : sources) {
    auto consider = [&](int b) {
      if (a == b || TestBit(succ_, a, b)) return;
      SetBit(succ_, a, b);
      SetBit(pred_, b, a);
      if (trail_on_) trail_.emplace_back(a, b);
      if (++in_count_[b] == n_ - 1) {
        if (trail_on_) greatest_trail_.emplace_back(trail_.size(), greatest_);
        greatest_ = b;
      }
      new_pairs->emplace_back(a, b);
      if (TestBit(succ_, b, a) && column_[a] != column_[b]) {
        *conflict = true;
      }
    };
    consider(j);
    // Missing targets for a: succ_[j] \ succ_[a] (word-parallel scan).
    const std::size_t row_a = Row(a);
    const std::size_t row_j = Row(j);
    for (std::size_t w = 0; w < stride_; ++w) {
      uint64_t bits = succ_[row_j + w] & ~succ_[row_a + w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        consider(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }
  // Leave the scratch empty (capacity retained): a deep copy of this
  // order — the kCopy strategy's per-candidate cost — must not pay for
  // a stale snapshot.
  sources.clear();
  return true;
}

void PartialOrder::UndoTo(Mark mark) {
  while (trail_.size() > mark) {
    const auto [a, b] = trail_.back();
    trail_.pop_back();
    ClearBit(succ_, a, b);
    ClearBit(pred_, b, a);
    --in_count_[b];
  }
  // Replay the greatest-element history backwards; the last assignment is
  // the value in force at the mark.
  while (!greatest_trail_.empty() && greatest_trail_.back().first > mark) {
    greatest_ = greatest_trail_.back().second;
    greatest_trail_.pop_back();
  }
}

PartialOrder PartialOrder::CopyWithoutTrail() const {
  PartialOrder copy(column_);
  copy.succ_ = succ_;
  copy.pred_ = pred_;
  copy.in_count_ = in_count_;
  copy.greatest_ = greatest_;
  return copy;
}

PartialOrder PartialOrder::RestoreClosed(std::vector<TermId> column,
                                         const uint64_t* succ_words) {
  PartialOrder order(std::move(column));
  const std::size_t words = static_cast<std::size_t>(order.n_) * order.stride_;
  order.succ_.assign(succ_words, succ_words + words);
  for (int i = 0; i < order.n_; ++i) {
    const std::size_t row = order.Row(i);
    for (std::size_t w = 0; w < order.stride_; ++w) {
      uint64_t bits = order.succ_[row + w];
      while (bits) {
        const int j = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        bits &= bits - 1;
        order.SetBit(order.pred_, j, i);
        ++order.in_count_[j];
      }
    }
  }
  for (int j = 0; j < order.n_; ++j) {
    if (order.in_count_[j] == order.n_ - 1) {
      order.greatest_ = j;
      break;
    }
  }
  return order;
}

std::size_t PartialOrder::PairCount() const {
  std::size_t total = 0;
  for (uint64_t w : succ_) {
    total += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return total;
}

}  // namespace relacc
