#ifndef RELACC_ORDER_PARTIAL_ORDER_H_
#define RELACC_ORDER_PARTIAL_ORDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dictionary.h"
#include "core/value.h"

namespace relacc {

/// The accuracy order ⪯_A over the tuples of one entity instance for one
/// attribute A (Sec. 2.1). Stored as a transitively-closed directed graph
/// over tuple indices; the strict order ≺_A is derived:
///     ti ≺_A tj   iff   ti ⪯_A tj  and  ti[A] ≠ tj[A].
///
/// Invariants maintained:
///  * transitivity (closure is taken incrementally on every insertion);
///  * a *conflict* — ti ⪯ tj ∧ tj ⪯ ti with ti[A] ≠ tj[A], i.e. a violation
///    of anti-symmetry of ≺ — is reported to the caller, who treats it as a
///    Church-Rosser violation (an invalid chase step).
///
/// The greatest element (a tuple t with t' ⪯ t for every other t') drives
/// the λ assignment of te[A] (Sec. 2.2); it is maintained in O(1) via
/// in-degree counting.
///
/// Representation: successor and predecessor adjacency bit-matrices in two
/// flat word arrays (row stride = ⌈n/64⌉). The flat layout keeps the
/// kCopy check strategy cheap — one PartialOrder copy is two memcpys, not
/// 2n vector allocations — while the kTrail strategy avoids the copy
/// entirely: with the trail enabled, every inserted pair (and every
/// greatest-element change) is journaled, so Mark()/UndoTo() roll a probe
/// back in O(pairs inserted since the mark) instead of O(n²/64) words.
class PartialOrder {
 public:
  /// `column` holds the interned term id of ti[A] for every tuple (nulls
  /// as kNullTermId); equal ids mean equal values, which defines
  /// strictness & conflicts. This is the storage-native constructor —
  /// the chase engine hands its dictionary-encoded columns in directly.
  explicit PartialOrder(std::vector<TermId> column);

  /// Convenience over raw Values: interns the column into local ids with
  /// exactly Value::operator== equivalence (cross-type numeric equality
  /// included) and delegates to the TermId constructor.
  explicit PartialOrder(const std::vector<Value>& column);

  int n() const { return n_; }

  /// ti ⪯_A tj? (Irreflexive storage: Reaches(i,i) is false by convention;
  /// reflexivity is immaterial to the chase.)
  bool Reaches(int i, int j) const {
    return i != j && TestBit(succ_, i, j);
  }

  /// ti ≺_A tj, derived per the class comment (id equality == value
  /// equality by the interning contract).
  bool Precedes(int i, int j) const {
    return Reaches(i, j) && column_[i] != column_[j];
  }

  /// Inserts i ⪯ j and transitively closes. Every newly derived pair
  /// (including (i,j) itself) is appended to `new_pairs`. If any new pair
  /// completes a cycle over differing values, *conflict is set (the
  /// structure is left closed but the chase must abort). Returns false —
  /// touching nothing — when the pair is already present or i == j.
  bool AddPair(int i, int j, std::vector<std::pair<int, int>>* new_pairs,
               bool* conflict);

  /// A tuple index t with t' ⪯ t for all t' ≠ t, or -1 if none. When
  /// several exist they carry equal values (otherwise a conflict would have
  /// been reported), so any witness is as good as another.
  int GreatestElement() const { return greatest_; }

  /// Number of ⪯ pairs currently stored (excluding the implicit diagonal).
  std::size_t PairCount() const;

  /// Opaque rollback point for the trail (see EnableTrail).
  using Mark = std::size_t;

  /// Starts journaling insertions so they can be undone. Typically called
  /// once, on the long-lived probe state the candidate check mutates in
  /// place; the all-null base chase never records (nothing undoes it).
  void EnableTrail() { trail_on_ = true; }
  bool trail_enabled() const { return trail_on_; }

  /// A copy of the current order without the journal: trail disabled,
  /// nothing to roll back. For materializing orders out of a
  /// trail-enabled state — e.g. a resume outcome under keep_orders — so
  /// the result matches the trail-free orders of a from-scratch run
  /// instead of paying for (and carrying) a journal nobody will ever
  /// undo.
  PartialOrder CopyWithoutTrail() const;

  /// The transitively-closed successor bit-matrix (n·stride words,
  /// row-major; stride = ⌈n/64⌉) — the only derived state a snapshot
  /// persists: predecessors are its transpose, in-degrees its column
  /// popcounts, and the greatest element the node of full in-degree,
  /// all recomputed by RestoreClosed.
  const std::vector<uint64_t>& successor_words() const { return succ_; }
  std::size_t stride() const { return stride_; }

  /// Rebuilds an order from its column and `n·stride` closed successor
  /// words previously exported with successor_words(): pred_ is the
  /// transpose, in-degrees and the greatest element are re-derived, the
  /// trail starts empty — the construction a snapshot load uses instead
  /// of replaying the chase that produced the pairs. Any full-in-degree
  /// witness is a valid greatest element (several can only coexist with
  /// equal values, hence equal TermIds, so λ is unaffected).
  static PartialOrder RestoreClosed(std::vector<TermId> column,
                                    const uint64_t* succ_words);

  /// Current trail position. Pairs inserted after a mark can be removed
  /// again with UndoTo(mark); marks are positions, so they nest naturally.
  Mark MarkTrail() const { return trail_.size(); }

  /// Rolls back every pair inserted since `mark` — bits, in-degrees and
  /// the greatest element — in O(pairs since mark). Requires the trail to
  /// have been enabled before those insertions.
  void UndoTo(Mark mark);

 private:
  std::size_t Row(int i) const {
    return static_cast<std::size_t>(i) * stride_;
  }
  bool TestBit(const std::vector<uint64_t>& m, int i, int j) const {
    return (m[Row(i) + (static_cast<unsigned>(j) >> 6)] >> (j & 63)) & 1u;
  }
  void SetBit(std::vector<uint64_t>& m, int i, int j) {
    m[Row(i) + (static_cast<unsigned>(j) >> 6)] |= uint64_t{1} << (j & 63);
  }
  void ClearBit(std::vector<uint64_t>& m, int i, int j) {
    m[Row(i) + (static_cast<unsigned>(j) >> 6)] &= ~(uint64_t{1} << (j & 63));
  }

  int n_ = 0;
  std::size_t stride_ = 0;  ///< words per row
  std::vector<TermId> column_;  ///< interned ti[A] per tuple
  std::vector<uint64_t> succ_;  ///< succ bit (i,j) <=> i ⪯ j
  std::vector<uint64_t> pred_;  ///< pred bit (j,i) <=> i ⪯ j
  std::vector<int> in_count_;   ///< predecessors per node
  int greatest_ = -1;

  bool trail_on_ = false;
  /// Reused by AddPair for its source-set snapshot (see the comment
  /// there); holding it here keeps warmed-up insertions allocation-free.
  std::vector<int> sources_scratch_;
  /// Journaled insertions, in order; entry k is pair (a ⪯ b).
  std::vector<std::pair<int32_t, int32_t>> trail_;
  /// (trail size right after the causing insertion, previous greatest).
  std::vector<std::pair<std::size_t, int32_t>> greatest_trail_;
};

}  // namespace relacc

#endif  // RELACC_ORDER_PARTIAL_ORDER_H_
