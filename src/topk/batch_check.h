#ifndef RELACC_TOPK_BATCH_CHECK_H_
#define RELACC_TOPK_BATCH_CHECK_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "rules/grounding.h"
#include "util/thread_pool.h"

namespace relacc {

/// Fans the per-candidate `check` chase (CheckCandidateTarget, Sec. 6) out
/// over a ThreadPool. A ChaseEngine holds mutable run state — the kTrail
/// probe state that CheckCandidate chases on and rolls back — so engines
/// must not be shared between workers: the checker owns one engine per
/// worker slot, all built over the same (Ie, ground program, config) as
/// the prototype engine and sharing its immutable all-null checkpoint by
/// pointer. Worker engines live as long as the current binding (see
/// Rebind), so within one prototype each worker pays the one-time
/// probe-state copy once, then O(delta) per candidate; the thread pool
/// itself lives as long as the checker and serves every binding.
///
/// Verdicts are returned in candidate order, so callers consuming them in
/// order observe results independent of thread count and scheduling.
class CandidateChecker {
 public:
  /// `prototype` supplies Ie, the ground program and the chase config; it
  /// must outlive the checker (or be replaced via Rebind before the next
  /// CheckAll). `num_threads <= 1` means check inline on `prototype`
  /// itself: no pool and no per-worker engines are built.
  CandidateChecker(const ChaseEngine& prototype, int num_threads);

  CandidateChecker(const CandidateChecker&) = delete;
  CandidateChecker& operator=(const CandidateChecker&) = delete;
  ~CandidateChecker();

  /// Points the checker at a new prototype — typically the next entity of
  /// a pipeline — keeping the thread pool (the expensive part: C spawned
  /// OS threads) alive across prototypes instead of tearing it down per
  /// entity. Worker engines are bound to (Ie, program, config) and so are
  /// always dropped here and lazily rebuilt over the new prototype on
  /// the next fan-out — never skipped on pointer equality, since
  /// `prototype` may be a new engine reusing a destroyed one's address;
  /// dropping them never touches the previous prototype or its program,
  /// so Rebind is safe to call after those have been destroyed.
  void Rebind(const ChaseEngine& prototype);

  /// The engine the checker is currently bound to; CheckAll verdicts are
  /// against this engine's specification.
  const ChaseEngine& prototype() const { return *prototype_; }

  int num_threads() const { return num_threads_; }

  /// How many candidates to gather before a CheckAll call: enough to keep
  /// every worker busy, small enough to bound the speculative checks past
  /// the k-th accepted target.
  int batch_size() const { return std::max(1, num_threads_ * 4); }

  /// Per-round gather cap for a search that still needs `remaining`
  /// accepts. 1 with one thread — the caller's loop then replays the
  /// paper's strictly sequential algorithm, stats and all; otherwise a
  /// pool-filling batch, shrunk toward `remaining` (never below the pool
  /// width) so a nearly-finished search does not speculate a full batch
  /// past its last accepted target.
  int RoundCap(int remaining) const {
    if (num_threads_ == 1) return 1;
    return std::min(batch_size(), std::max(num_threads_, remaining));
  }

  /// CheckCandidateTarget for every candidate; verdicts[i] corresponds to
  /// candidates[i]. Candidates must satisfy the CheckCandidateTarget
  /// contract (complete, agreeing with the deduced target on its non-null
  /// attributes). Not itself thread-safe: one orchestrating caller at a
  /// time (the top-k search loops are sequential around it).
  std::vector<char> CheckAll(const std::vector<Tuple>& candidates) const;

 private:
  /// Spawns the pool (once per checker lifetime) and the per-slot engines
  /// (once per bound prototype) on the first batch that actually fans
  /// out, so callers that end up checking one candidate at a time never
  /// pay for idle workers.
  void EnsureWorkers() const;

  const ChaseEngine* prototype_;
  int num_threads_;
  mutable std::unique_ptr<ThreadPool> pool_;  ///< null until EnsureWorkers
  mutable std::vector<std::unique_ptr<ChaseEngine>> engines_;
};

/// Resolves which checker a top-k call runs its checks through: the
/// caller-injected one (TopKOptions::checker) when usable, else a
/// privately owned one over TopKOptions::num_threads. skip_check always
/// gets a private width-1 checker — it is never consulted for verdicts,
/// but its RoundCap shapes batching and the stats counters, which must
/// not depend on whether an outer caller happened to inject a pool.
class CheckerHandle {
 public:
  CheckerHandle(const ChaseEngine& engine, bool skip_check,
                int num_threads, const CandidateChecker* injected) {
    if (!skip_check && injected != nullptr &&
        &injected->prototype() == &engine) {
      checker_ = injected;
      return;
    }
    // An injected checker bound to some other engine would compute
    // verdicts against the wrong specification; assert loudly in debug
    // builds and fall back to a correct private checker in release
    // (slower, never wrong).
    assert(injected == nullptr || skip_check ||
           &injected->prototype() == &engine);
    owned_.emplace(engine, skip_check ? 1 : num_threads);
    checker_ = &*owned_;
  }

  const CandidateChecker& get() const { return *checker_; }

 private:
  std::optional<CandidateChecker> owned_;
  const CandidateChecker* checker_ = nullptr;
};

/// The batch form of Sec. 6's `check` over a whole specification: grounds
/// `spec` once, fans the candidates out over `num_threads` workers (one
/// ChaseEngine each) and returns the verdicts in input order.
///
/// Deprecated: now a shim that builds a one-call AccuracyService. New
/// code should hold the service so the grounding, checkpoint and worker
/// pool persist across calls (api/accuracy_service.h).
[[deprecated(
    "use AccuracyService::CheckCandidates (api/accuracy_service.h)")]]
std::vector<char> CheckCandidates(const Specification& spec,
                                  const std::vector<Tuple>& candidates,
                                  int num_threads);

/// Completions of `te` in odometer order over the active domains of its
/// null attributes, capped at `limit`; empty if some domain is empty (no
/// complete candidate can exist). This is the materialized form of the
/// streaming enumeration inside TopKBruteForce (which cannot afford to
/// materialize the product) — tests and benchmarks build their candidate
/// pools from it.
std::vector<Tuple> EnumerateCandidateProduct(
    const Relation& ie, const std::vector<Relation>& masters,
    const Tuple& te, bool include_default_values, std::size_t limit);

}  // namespace relacc

#endif  // RELACC_TOPK_BATCH_CHECK_H_
