#include "topk/rank_join.h"

#include <limits>

namespace relacc {
namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

ListStream::ListStream(std::vector<std::pair<Value, double>> entries)
    : entries_(std::move(entries)) {}

std::optional<ScoredRow> ListStream::Next() {
  if (pos_ >= entries_.size()) return std::nullopt;
  ScoredRow row;
  row.values = {entries_[pos_].first};
  row.score = entries_[pos_].second;
  ++pos_;
  return row;
}

double ListStream::UpperBound() const {
  if (pos_ >= entries_.size()) return kNegInf;
  return entries_[pos_].second;
}

HrjnOperator::HrjnOperator(std::unique_ptr<RankedStream> left,
                           std::unique_ptr<RankedStream> right)
    : left_(std::move(left)), right_(std::move(right)) {}

bool HrjnOperator::PullLeft() {
  auto row = left_->Next();
  if (!row.has_value()) {
    left_done_ = true;
    left_cur_ = kNegInf;
    return false;
  }
  if (left_buf_.empty()) left_top_ = row->score;
  left_cur_ = row->score;
  for (const ScoredRow& r : right_buf_) {
    ScoredRow joined;
    joined.values = row->values;
    joined.values.insert(joined.values.end(), r.values.begin(),
                         r.values.end());
    joined.score = row->score + r.score;
    output_.push(std::move(joined));
    ++combinations_built_;
  }
  left_buf_.push_back(std::move(*row));
  return true;
}

bool HrjnOperator::PullRight() {
  auto row = right_->Next();
  if (!row.has_value()) {
    right_done_ = true;
    right_cur_ = kNegInf;
    return false;
  }
  if (right_buf_.empty()) right_top_ = row->score;
  right_cur_ = row->score;
  for (const ScoredRow& l : left_buf_) {
    ScoredRow joined;
    joined.values = l.values;
    joined.values.insert(joined.values.end(), row->values.begin(),
                         row->values.end());
    joined.score = l.score + row->score;
    output_.push(std::move(joined));
    ++combinations_built_;
  }
  right_buf_.push_back(std::move(*row));
  return true;
}

double HrjnOperator::Threshold() const {
  if (!pulled_any_) return std::numeric_limits<double>::infinity();
  const double a = left_done_ ? kNegInf : left_top_ + right_cur_;
  const double b = right_done_ ? kNegInf : left_cur_ + right_top_;
  // Symmetric form: a future output pairs an unseen row from one side with
  // a (possibly seen) row from the other, bounded by top + cur.
  const double c = left_done_ ? kNegInf : left_cur_ + right_top_;
  const double d = right_done_ ? kNegInf : left_top_ + right_cur_;
  double t = kNegInf;
  for (double x : {a, b, c, d}) t = std::max(t, x);
  return t;
}

std::optional<ScoredRow> HrjnOperator::Next() {
  if (!pulled_any_) {
    pulled_any_ = true;
    PullLeft();
    PullRight();
  }
  for (;;) {
    const double t = Threshold();
    if (!output_.empty() &&
        (output_.top().score >= t || (left_done_ && right_done_))) {
      ScoredRow out = output_.top();
      output_.pop();
      return out;
    }
    if (left_done_ && right_done_) return std::nullopt;
    // Pull from the side with the larger current score (HRJN's heuristic
    // for tightening the threshold fastest).
    bool advanced;
    if (right_done_ || (!left_done_ && left_cur_ >= right_cur_)) {
      advanced = PullLeft();
      if (!advanced && !right_done_) advanced = PullRight();
    } else {
      advanced = PullRight();
      if (!advanced && !left_done_) advanced = PullLeft();
    }
    if (!advanced && left_done_ && right_done_ && output_.empty()) {
      return std::nullopt;
    }
  }
}

double HrjnOperator::UpperBound() const {
  const double t = Threshold();
  if (!output_.empty()) return std::max(t, output_.top().score);
  return t;
}

std::unique_ptr<RankedStream> BuildRankJoinTree(
    std::vector<std::vector<std::pair<Value, double>>> lists) {
  std::unique_ptr<RankedStream> root;
  for (auto& list : lists) {
    auto leaf = std::make_unique<ListStream>(std::move(list));
    if (root == nullptr) {
      root = std::move(leaf);
    } else {
      root = std::make_unique<HrjnOperator>(std::move(root), std::move(leaf));
    }
  }
  return root;
}

}  // namespace relacc
