#include "topk/preference.h"

#include <limits>

namespace relacc {

PreferenceModel PreferenceModel::FromOccurrences(
    const Relation& ie, const std::vector<Relation>& masters,
    double master_bonus) {
  PreferenceModel model(ie.schema().size());
  for (AttrId a = 0; a < ie.schema().size(); ++a) {
    auto& col = model.weights_[a];
    for (const Tuple& t : ie.tuples()) {
      const Value& v = t.at(a);
      if (!v.is_null()) col[v] += 1.0;
    }
    for (const Relation& im : masters) {
      const auto ma = im.schema().IndexOf(ie.schema().name(a));
      if (!ma.has_value()) continue;
      // Presence bonus: each distinct master value counts once, however
      // many master rows carry it — master data is curated, but its row
      // multiplicities say nothing about *this* entity.
      for (const Value& v : im.ColumnDomain(*ma)) col[v] += master_bonus;
    }
  }
  return model;
}

double PreferenceModel::Weight(AttrId a, const Value& v) const {
  if (a < 0 || a >= num_attrs()) return default_weight_;
  const auto it = weights_[a].find(v);
  return it == weights_[a].end() ? default_weight_ : it->second;
}

void PreferenceModel::SetWeight(AttrId a, const Value& v, double w) {
  weights_[a][v] = w;
}

double PreferenceModel::Score(const Tuple& t) const {
  double s = 0.0;
  for (AttrId a = 0; a < t.size() && a < num_attrs(); ++a) {
    if (!t.at(a).is_null()) s += Weight(a, t.at(a));
  }
  return s;
}

Value MakeDefaultValue(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      // An implausible sentinel far outside generated domains.
      return Value::Int(std::numeric_limits<int64_t>::min() / 2);
    case ValueType::kDouble:
      return Value::Real(-1.7976931348623157e308);
    case ValueType::kString:
      return Value::Str("\x01_bottom");
    case ValueType::kBool:
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

std::vector<Value> ActiveDomain(const Relation& ie,
                                const std::vector<Relation>& masters,
                                AttrId a, bool include_default) {
  const ValueType type = ie.schema().type(a);
  if (type == ValueType::kBool) {
    return {Value::Bool(true), Value::Bool(false)};
  }
  std::vector<Value> domain = ie.ColumnDomain(a);
  auto contains = [&](const Value& v) {
    for (const Value& u : domain) {
      if (u == v) return true;
    }
    return false;
  };
  for (const Relation& im : masters) {
    const auto ma = im.schema().IndexOf(ie.schema().name(a));
    if (!ma.has_value()) continue;
    for (const Tuple& tm : im.tuples()) {
      const Value& v = tm.at(*ma);
      if (!v.is_null() && !contains(v)) domain.push_back(v);
    }
  }
  if (include_default) {
    const Value def = MakeDefaultValue(type);
    if (!def.is_null() && !contains(def)) domain.push_back(def);
  }
  return domain;
}

}  // namespace relacc
