#ifndef RELACC_TOPK_VALUE_HEAP_H_
#define RELACC_TOPK_VALUE_HEAP_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/value.h"

namespace relacc {

/// The heap Hi of TopKCT (Sec. 6.2): holds the active-domain values of one
/// null attribute; pops them in non-increasing weight order. Built in
/// linear time (std::make_heap), each pop costs O(log n) — exactly the
/// contract the instance-optimality argument of Prop. 7 counts.
class ValueHeap {
 public:
  ValueHeap() = default;

  /// Takes (value, weight) entries in any order.
  explicit ValueHeap(std::vector<std::pair<Value, double>> entries)
      : entries_(std::move(entries)) {
    std::make_heap(entries_.begin(), entries_.end(), Less);
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Removes and returns the max-weight entry. Precondition: !empty().
  std::pair<Value, double> Pop() {
    std::pop_heap(entries_.begin(), entries_.end(), Less);
    auto out = std::move(entries_.back());
    entries_.pop_back();
    ++pops_;
    return out;
  }

  /// Number of pops performed so far (the instance-optimality cost metric).
  int64_t pops() const { return pops_; }

 private:
  static bool Less(const std::pair<Value, double>& a,
                   const std::pair<Value, double>& b) {
    if (a.second != b.second) return a.second < b.second;
    // Deterministic tie-break keeps experiments reproducible.
    return b.first.TotalLess(a.first);
  }

  std::vector<std::pair<Value, double>> entries_;
  int64_t pops_ = 0;
};

}  // namespace relacc

#endif  // RELACC_TOPK_VALUE_HEAP_H_
