#include "topk/batch_check.h"

#include "api/accuracy_service.h"
#include "topk/preference.h"

namespace relacc {

CandidateChecker::CandidateChecker(const ChaseEngine& prototype,
                                   int num_threads)
    : prototype_(&prototype), num_threads_(std::max(1, num_threads)) {}

CandidateChecker::~CandidateChecker() = default;

void CandidateChecker::Rebind(const ChaseEngine& prototype) {
  // Unconditionally drop the workers — no address-identity shortcut: a
  // new engine allocated where a destroyed one lived would alias it, and
  // keeping workers bound to the old engine's freed program would be a
  // use-after-free on the next fan-out. The stale workers reference the
  // previous prototype's Ie and program but own every byte they free, so
  // clearing is safe even when that prototype is already gone. The pool
  // survives: its threads are the reuse win.
  engines_.clear();
  prototype_ = &prototype;
}

void CandidateChecker::EnsureWorkers() const {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
  if (!engines_.empty()) return;
  engines_.reserve(num_threads_);
  for (int w = 0; w < num_threads_; ++w) {
    // Workers must share the prototype's dictionary: the adopted
    // checkpoint below carries TermId-encoded state, and ids are only
    // meaningful within one dictionary.
    auto engine = std::make_unique<ChaseEngine>(
        prototype_->ie(), &prototype_->program(), prototype_->config(),
        nullptr, prototype_->mutable_dict());
    // The checkpoint is the dominant per-engine setup cost; adopting the
    // prototype's shares it by pointer (it is immutable once built)
    // instead of re-running the all-null chase per worker. Each worker
    // engine then grows its own long-lived probe state from it — marked
    // and rolled back per candidate under the kTrail strategy — so the
    // per-candidate cost is O(changes), not O(state copy).
    engine->AdoptCheckpointFrom(*prototype_);
    engines_.push_back(std::move(engine));
  }
}

std::vector<char> CandidateChecker::CheckAll(
    const std::vector<Tuple>& candidates) const {
  std::vector<char> verdicts(candidates.size(), 0);
  // Checks are pure per candidate, so the inline path and the pooled path
  // produce identical verdict vectors. Only single-candidate batches skip
  // the pool (nothing to overlap); ParallelForSlots caps the slots at the
  // batch size, so small batches still fan out.
  if (num_threads_ == 1 || candidates.size() <= 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      verdicts[i] = CheckCandidateTarget(*prototype_, candidates[i]) ? 1 : 0;
    }
    return verdicts;
  }
  EnsureWorkers();
  pool_->ParallelForSlots(
      static_cast<int64_t>(candidates.size()), [&](int slot, int64_t i) {
        verdicts[i] =
            CheckCandidateTarget(*engines_[slot], candidates[i]) ? 1 : 0;
      });
  return verdicts;
}

std::vector<char> CheckCandidates(const Specification& spec,
                                  const std::vector<Tuple>& candidates,
                                  int num_threads) {
  ServiceOptions options;
  options.num_threads = std::max(1, num_threads);
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(spec, std::move(options));
  if (!service.ok()) return std::vector<char>(candidates.size(), 0);
  Result<std::vector<char>> verdicts =
      service.value()->CheckCandidates(candidates);
  if (!verdicts.ok()) return std::vector<char>(candidates.size(), 0);
  return std::move(verdicts).value();
}

std::vector<Tuple> EnumerateCandidateProduct(
    const Relation& ie, const std::vector<Relation>& masters,
    const Tuple& te, bool include_default_values, std::size_t limit) {
  std::vector<AttrId> z;
  std::vector<std::vector<Value>> domains;
  for (AttrId a = 0; a < ie.schema().size(); ++a) {
    if (!te.at(a).is_null()) continue;
    z.push_back(a);
    domains.push_back(ActiveDomain(ie, masters, a, include_default_values));
    if (domains.back().empty()) return {};
  }
  std::vector<Tuple> out;
  std::vector<std::size_t> idx(z.size(), 0);
  while (out.size() < limit) {
    Tuple t = te;
    for (std::size_t i = 0; i < z.size(); ++i) {
      t.set(z[i], domains[i][idx[i]]);
    }
    out.push_back(std::move(t));
    // Odometer increment over the product space.
    std::size_t i = 0;
    for (; i < z.size(); ++i) {
      if (++idx[i] < domains[i].size()) break;
      idx[i] = 0;
    }
    if (i == z.size() || z.empty()) break;
  }
  return out;
}

}  // namespace relacc
