#include "topk/topk_ct.h"

#include <algorithm>
#include <unordered_set>

#include "topk/pairing_heap.h"
#include "topk/value_heap.h"

namespace relacc {
namespace {

/// The search object o of Fig. 5: indices into the per-attribute buffers
/// Bi, plus the score o.w. The concrete tuple o.t is materialized lazily.
struct Obj {
  std::vector<int32_t> p;
  double w = 0.0;
};

struct ObjLess {
  bool operator()(const Obj& a, const Obj& b) const {
    if (a.w != b.w) return a.w < b.w;
    // Deterministic tie-break: lexicographically smaller index vector wins.
    return b.p < a.p;
  }
};

struct IndexVectorHash {
  std::size_t operator()(const std::vector<int32_t>& v) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (int32_t x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// Shared set-up for the top-k algorithms: the null attributes Z of te and
/// their weighted active domains.
struct SearchSpace {
  std::vector<AttrId> z;                   ///< null attributes of te
  std::vector<std::vector<std::pair<Value, double>>> domains;  ///< per z-attr
};

SearchSpace BuildSearchSpace(const Relation& ie,
                             const std::vector<Relation>& masters,
                             const Tuple& te, const PreferenceModel& pref,
                             const TopKOptions& opts) {
  SearchSpace space;
  for (AttrId a = 0; a < ie.schema().size(); ++a) {
    if (!te.at(a).is_null()) continue;
    space.z.push_back(a);
    std::vector<std::pair<Value, double>> dom;
    for (Value& v :
         ActiveDomain(ie, masters, a, opts.include_default_values)) {
      const double w = pref.Weight(a, v);
      dom.emplace_back(std::move(v), w);
    }
    space.domains.push_back(std::move(dom));
  }
  return space;
}

Tuple Materialize(const Tuple& te, const SearchSpace& space,
                  const std::vector<std::vector<std::pair<Value, double>>>& b,
                  const Obj& o) {
  Tuple t = te;
  for (std::size_t i = 0; i < space.z.size(); ++i) {
    t.set(space.z[i], b[i][o.p[i]].first);
  }
  return t;
}

}  // namespace

TopKResult TopKCT(const ChaseEngine& engine,
                  const std::vector<Relation>& masters,
                  const Tuple& deduced_te, const PreferenceModel& pref, int k,
                  const TopKOptions& opts) {
  TopKResult result;
  if (k <= 0) return result;
  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);
  const std::size_t m = space.z.size();
  const double base_score = pref.Score(deduced_te);

  if (m == 0) {
    // te is already complete; it is its own (sole) candidate target.
    ++result.checks;
    if (opts.skip_check || CheckCandidateTarget(engine, deduced_te)) {
      result.targets.push_back(deduced_te);
      result.scores.push_back(base_score);
    }
    return result;
  }

  // Heaps Hi over the active domains; buffers Bi of popped values (Fig. 5
  // lines 2, 10-11). An empty domain means no candidate target can exist.
  std::vector<ValueHeap> heaps;
  heaps.reserve(m);
  std::vector<std::vector<std::pair<Value, double>>> buffers(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (space.domains[i].empty()) return result;
    heaps.emplace_back(space.domains[i]);
    buffers[i].push_back(heaps[i].Pop());
  }

  PairingHeap<Obj, ObjLess> queue;
  std::unordered_set<std::vector<int32_t>, IndexVectorHash> seen;
  {
    Obj o;
    o.p.assign(m, 0);
    o.w = base_score;
    for (std::size_t i = 0; i < m; ++i) o.w += buffers[i][0].second;
    seen.insert(o.p);
    queue.Push(std::move(o));
  }

  while (static_cast<int>(result.targets.size()) < k && !queue.empty()) {
    if (opts.max_expansions >= 0 && result.queue_pops >= opts.max_expansions) {
      result.exhausted_budget = true;
      break;
    }
    const Obj o = queue.Pop();
    ++result.queue_pops;
    Tuple t = Materialize(deduced_te, space, buffers, o);
    ++result.checks;
    if (opts.skip_check || CheckCandidateTarget(engine, t)) {
      result.targets.push_back(std::move(t));
      result.scores.push_back(o.w);
    }
    // Expand: successors differing from o in exactly one attribute, taking
    // the next-best value of that attribute (Fig. 5 lines 10-15).
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t next = static_cast<std::size_t>(o.p[i]) + 1;
      if (next >= buffers[i].size()) {
        if (heaps[i].empty()) continue;  // domain exhausted in dimension i
        buffers[i].push_back(heaps[i].Pop());
      }
      Obj succ = o;
      succ.p[i] = static_cast<int32_t>(next);
      succ.w = o.w - buffers[i][o.p[i]].second + buffers[i][next].second;
      if (seen.insert(succ.p).second) queue.Push(std::move(succ));
    }
  }
  for (const ValueHeap& h : heaps) result.heap_pops += h.pops();
  return result;
}

TopKResult TopKCTh(const ChaseEngine& engine,
                   const std::vector<Relation>& masters,
                   const Tuple& deduced_te, const PreferenceModel& pref,
                   int k, const TopKOptions& opts) {
  // Phase 1: k unvalidated seeds (TopKCT without the check step).
  TopKOptions seed_opts = opts;
  seed_opts.skip_check = true;
  TopKResult seeds = TopKCT(engine, masters, deduced_te, pref, k, seed_opts);

  TopKResult result;
  result.queue_pops = seeds.queue_pops;
  result.heap_pops = seeds.heap_pops;

  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);

  auto try_accept = [&](Tuple t, double score) {
    for (const Tuple& prev : result.targets) {
      if (prev == t) return false;  // dedup revised seeds
    }
    ++result.checks;
    if (CheckCandidateTarget(engine, t)) {
      result.targets.push_back(std::move(t));
      result.scores.push_back(score);
      return true;
    }
    return false;
  };

  for (std::size_t s = 0; s < seeds.targets.size() &&
                          static_cast<int>(result.targets.size()) < k;
       ++s) {
    Tuple t = seeds.targets[s];
    if (try_accept(t, seeds.scores[s])) continue;
    // Phase 2: greedy repair — revisit each null attribute in turn and try
    // the remaining active-domain values in weight order until the check
    // passes (Sec. 6.3). At most O(m · |dom|) checks per seed.
    bool accepted = false;
    for (std::size_t i = 0; i < space.z.size() && !accepted; ++i) {
      // Values sorted by descending weight for the greedy order.
      std::vector<std::pair<Value, double>> dom = space.domains[i];
      std::sort(dom.begin(), dom.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first.TotalLess(b.first);
      });
      const Value original = t.at(space.z[i]);
      int tried = 0;
      for (const auto& [v, w] : dom) {
        if (opts.max_repair_values >= 0 && tried >= opts.max_repair_values) {
          break;
        }
        if (v == original) continue;
        ++tried;
        Tuple revised = t;
        revised.set(space.z[i], v);
        const double score = seeds.scores[s] -
                             pref.Weight(space.z[i], original) + w;
        if (try_accept(std::move(revised), score)) {
          accepted = true;
          break;
        }
      }
    }
  }
  return result;
}

TopKResult TopKBruteForce(const ChaseEngine& engine,
                          const std::vector<Relation>& masters,
                          const Tuple& deduced_te, const PreferenceModel& pref,
                          int k, const TopKOptions& opts) {
  TopKResult result;
  if (k <= 0) return result;
  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);
  const std::size_t m = space.z.size();

  std::vector<std::pair<double, Tuple>> accepted;
  std::vector<std::size_t> idx(m, 0);
  for (;;) {
    Tuple t = deduced_te;
    bool valid_combo = true;
    double score = pref.Score(deduced_te);
    for (std::size_t i = 0; i < m; ++i) {
      if (space.domains[i].empty()) {
        valid_combo = false;
        break;
      }
      t.set(space.z[i], space.domains[i][idx[i]].first);
      score += space.domains[i][idx[i]].second;
    }
    if (!valid_combo) break;
    ++result.checks;
    if (CheckCandidateTarget(engine, t)) accepted.emplace_back(score, t);
    // Odometer increment over the product space.
    std::size_t i = 0;
    for (; i < m; ++i) {
      if (++idx[i] < space.domains[i].size()) break;
      idx[i] = 0;
    }
    if (i == m || m == 0) break;
  }
  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return false;
                   });
  for (std::size_t i = 0;
       i < accepted.size() && static_cast<int>(result.targets.size()) < k;
       ++i) {
    result.targets.push_back(accepted[i].second);
    result.scores.push_back(accepted[i].first);
  }
  (void)opts;
  return result;
}

}  // namespace relacc
