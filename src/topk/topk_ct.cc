#include "topk/topk_ct.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "topk/batch_check.h"
#include "topk/pairing_heap.h"
#include "topk/value_heap.h"

namespace relacc {
namespace {

/// The search object o of Fig. 5: indices into the per-attribute buffers
/// Bi, plus the score o.w. The concrete tuple o.t is materialized lazily.
struct Obj {
  std::vector<int32_t> p;
  double w = 0.0;
};

struct ObjLess {
  bool operator()(const Obj& a, const Obj& b) const {
    if (a.w != b.w) return a.w < b.w;
    // Deterministic tie-break: lexicographically smaller index vector wins.
    return b.p < a.p;
  }
};

struct IndexVectorHash {
  std::size_t operator()(const std::vector<int32_t>& v) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (int32_t x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// Shared set-up for the top-k algorithms: the null attributes Z of te and
/// their weighted active domains.
struct SearchSpace {
  std::vector<AttrId> z;                   ///< null attributes of te
  std::vector<std::vector<std::pair<Value, double>>> domains;  ///< per z-attr
};

SearchSpace BuildSearchSpace(const Relation& ie,
                             const std::vector<Relation>& masters,
                             const Tuple& te, const PreferenceModel& pref,
                             const TopKOptions& opts) {
  SearchSpace space;
  for (AttrId a = 0; a < ie.schema().size(); ++a) {
    if (!te.at(a).is_null()) continue;
    space.z.push_back(a);
    std::vector<std::pair<Value, double>> dom;
    for (Value& v :
         ActiveDomain(ie, masters, a, opts.include_default_values)) {
      const double w = pref.Weight(a, v);
      dom.emplace_back(std::move(v), w);
    }
    space.domains.push_back(std::move(dom));
  }
  return space;
}

Tuple Materialize(const Tuple& te, const SearchSpace& space,
                  const std::vector<std::vector<std::pair<Value, double>>>& b,
                  const Obj& o) {
  Tuple t = te;
  for (std::size_t i = 0; i < space.z.size(); ++i) {
    t.set(space.z[i], b[i][o.p[i]].first);
  }
  return t;
}

}  // namespace

void RunBatchedAcceptLoop(const CandidateChecker& checker,
                          const TopKOptions& opts, int k,
                          const std::function<bool()>& has_more,
                          const std::function<bool(Tuple*, double*)>& produce,
                          TopKResult* result) {
  std::vector<Tuple> batch;
  std::vector<double> batch_scores;
  bool done = false;
  while (static_cast<int>(result->targets.size()) < k && !done) {
    const int round_cap =
        checker.RoundCap(k - static_cast<int>(result->targets.size()));
    batch.clear();
    batch_scores.clear();
    bool budget_hit = false;
    while (static_cast<int>(batch.size()) < round_cap) {
      if (opts.max_expansions >= 0 &&
          result->queue_pops >= opts.max_expansions) {
        if (!has_more()) {
          done = true;  // space ran out at the boundary: not a budget stop
        } else {
          budget_hit = true;
        }
        break;
      }
      Tuple t;
      double score = 0.0;
      if (!produce(&t, &score)) {
        done = true;
        break;
      }
      ++result->queue_pops;
      batch.push_back(std::move(t));
      batch_scores.push_back(score);
    }
    result->checks += static_cast<int64_t>(batch.size());
    const std::vector<char> verdicts =
        opts.skip_check ? std::vector<char>(batch.size(), 1)
                        : checker.CheckAll(batch);
    for (std::size_t i = 0;
         i < batch.size() && static_cast<int>(result->targets.size()) < k;
         ++i) {
      if (!verdicts[i]) continue;
      result->targets.push_back(std::move(batch[i]));
      result->scores.push_back(batch_scores[i]);
    }
    if (budget_hit && static_cast<int>(result->targets.size()) < k) {
      result->exhausted_budget = true;
      break;
    }
  }
}

TopKResult TopKCT(const ChaseEngine& engine,
                  const std::vector<Relation>& masters,
                  const Tuple& deduced_te, const PreferenceModel& pref, int k,
                  const TopKOptions& opts) {
  TopKResult result;
  if (k <= 0) return result;
  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);
  const std::size_t m = space.z.size();
  const double base_score = pref.Score(deduced_te);

  if (m == 0) {
    // te is already complete; it is its own (sole) candidate target.
    ++result.checks;
    if (opts.skip_check || CheckCandidateTarget(engine, deduced_te)) {
      result.targets.push_back(deduced_te);
      result.scores.push_back(base_score);
    }
    return result;
  }

  // Heaps Hi over the active domains; buffers Bi of popped values (Fig. 5
  // lines 2, 10-11). An empty domain means no candidate target can exist.
  std::vector<ValueHeap> heaps;
  heaps.reserve(m);
  std::vector<std::vector<std::pair<Value, double>>> buffers(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (space.domains[i].empty()) return result;
    heaps.emplace_back(space.domains[i]);
    buffers[i].push_back(heaps[i].Pop());
  }

  PairingHeap<Obj, ObjLess> queue;
  std::unordered_set<std::vector<int32_t>, IndexVectorHash> seen;
  {
    Obj o;
    o.p.assign(m, 0);
    o.w = base_score;
    for (std::size_t i = 0; i < m; ++i) o.w += buffers[i][0].second;
    seen.insert(o.p);
    queue.Push(std::move(o));
  }

  // Under skip_check the checker is never consulted, so don't build a
  // pool or per-worker engines (TopKCTh's seed phase lands here); an
  // injected checker (opts.checker) is reused instead of owned.
  const CheckerHandle checker(engine, opts.skip_check, opts.num_threads,
                              opts.checker);
  // Pop and expand in the exact sequential best-first order (Fig. 5 lines
  // 10-15); only the `check` is deferred and batched.
  RunBatchedAcceptLoop(
      checker.get(), opts, k, [&] { return !queue.empty(); },
      [&](Tuple* t, double* score) {
        if (queue.empty()) return false;
        const Obj o = queue.Pop();
        *score = o.w;
        *t = Materialize(deduced_te, space, buffers, o);
        // Expand: successors differing from o in exactly one attribute,
        // taking the next-best value of that attribute.
        for (std::size_t i = 0; i < m; ++i) {
          const std::size_t next = static_cast<std::size_t>(o.p[i]) + 1;
          if (next >= buffers[i].size()) {
            if (heaps[i].empty()) continue;  // domain exhausted in dim i
            buffers[i].push_back(heaps[i].Pop());
          }
          Obj succ = o;
          succ.p[i] = static_cast<int32_t>(next);
          succ.w = o.w - buffers[i][o.p[i]].second + buffers[i][next].second;
          if (seen.insert(succ.p).second) queue.Push(std::move(succ));
        }
        return true;
      },
      &result);
  for (const ValueHeap& h : heaps) result.heap_pops += h.pops();
  return result;
}

TopKResult TopKCTh(const ChaseEngine& engine,
                   const std::vector<Relation>& masters,
                   const Tuple& deduced_te, const PreferenceModel& pref,
                   int k, const TopKOptions& opts) {
  // Phase 1: k unvalidated seeds (TopKCT without the check step).
  TopKOptions seed_opts = opts;
  seed_opts.skip_check = true;
  TopKResult seeds = TopKCT(engine, masters, deduced_te, pref, k, seed_opts);

  TopKResult result;
  result.queue_pops = seeds.queue_pops;
  result.heap_pops = seeds.heap_pops;

  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);
  const CheckerHandle handle(engine, /*skip_check=*/false, opts.num_threads,
                             opts.checker);
  const CandidateChecker& checker = handle.get();
  // A seed needs exactly one accept, so rounds never speculate past the
  // pool width.
  const int round_cap = checker.RoundCap(1);

  auto is_dup = [&](const Tuple& t) {
    for (const Tuple& prev : result.targets) {
      if (prev == t) return true;  // dedup revised seeds
    }
    return false;
  };

  // With a pool, check all seeds in one parallel round up front: verdicts
  // are pure per candidate, so replaying the accept/repair decisions in
  // seed order below gives the same ranked output as checking one seed at
  // a time (only the checks counter sees the speculation).
  std::vector<char> seed_verdicts;
  if (checker.num_threads() > 1 && seeds.targets.size() > 1) {
    seed_verdicts = checker.CheckAll(seeds.targets);
    result.checks += static_cast<int64_t>(seeds.targets.size());
  }

  for (std::size_t s = 0; s < seeds.targets.size() &&
                          static_cast<int>(result.targets.size()) < k;
       ++s) {
    const Tuple& t = seeds.targets[s];
    if (!is_dup(t)) {
      bool pass;
      if (seed_verdicts.empty()) {
        ++result.checks;
        pass = checker.CheckAll({t})[0] != 0;
      } else {
        pass = seed_verdicts[s] != 0;
      }
      if (pass) {
        result.targets.push_back(t);
        result.scores.push_back(seeds.scores[s]);
        continue;
      }
    }
    // Phase 2: greedy repair — revisit each null attribute in turn and try
    // the remaining active-domain values in weight order until the check
    // passes (Sec. 6.3). At most O(m · |dom|) checks per seed. Revisions
    // are generated lazily, one round_cap-sized batch at a time (later
    // domains are never even sorted once one passes), and the first
    // revision that passes wins — exactly as in the one-at-a-time loop.
    // Accepting a revision is what ends a seed, so the dedup set cannot
    // change mid-seed and filtering duplicates at generation time is
    // equivalent to skipping them inline.
    bool accepted = false;
    std::vector<Tuple> batch;
    std::vector<double> batch_scores;
    for (std::size_t i = 0; i < space.z.size() && !accepted; ++i) {
      // Values sorted by descending weight for the greedy order.
      std::vector<std::pair<Value, double>> dom = space.domains[i];
      std::sort(dom.begin(), dom.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first.TotalLess(b.first);
      });
      const Value original = t.at(space.z[i]);
      int tried = 0;
      std::size_t next = 0;
      while (!accepted) {
        batch.clear();
        batch_scores.clear();
        while (next < dom.size() &&
               static_cast<int>(batch.size()) < round_cap) {
          if (opts.max_repair_values >= 0 &&
              tried >= opts.max_repair_values) {
            break;
          }
          const auto& [v, w] = dom[next];
          ++next;
          if (v == original) continue;
          ++tried;
          Tuple revised = t;
          revised.set(space.z[i], v);
          if (is_dup(revised)) continue;
          batch_scores.push_back(seeds.scores[s] -
                                 pref.Weight(space.z[i], original) + w);
          batch.push_back(std::move(revised));
        }
        if (batch.empty()) break;  // attribute exhausted
        result.checks += static_cast<int64_t>(batch.size());
        const std::vector<char> verdicts = checker.CheckAll(batch);
        for (std::size_t j = 0; j < batch.size(); ++j) {
          if (!verdicts[j]) continue;
          result.targets.push_back(std::move(batch[j]));
          result.scores.push_back(batch_scores[j]);
          accepted = true;
          break;
        }
      }
    }
  }
  return result;
}

TopKResult TopKBruteForce(const ChaseEngine& engine,
                          const std::vector<Relation>& masters,
                          const Tuple& deduced_te, const PreferenceModel& pref,
                          int k, const TopKOptions& opts) {
  TopKResult result;
  if (k <= 0) return result;
  const SearchSpace space =
      BuildSearchSpace(engine.ie(), masters, deduced_te, pref, opts);
  const std::size_t m = space.z.size();

  const CheckerHandle handle(engine, /*skip_check=*/false, opts.num_threads,
                             opts.checker);
  const CandidateChecker& checker = handle.get();
  // The oracle checks the whole product space anyway, so batches can be
  // large; enumeration order is preserved by indexing.
  const std::size_t batch_cap =
      std::max<std::size_t>(64, static_cast<std::size_t>(checker.batch_size()));

  std::vector<std::pair<double, Tuple>> accepted;
  std::vector<Tuple> batch;
  std::vector<double> batch_scores;
  auto flush = [&] {
    result.checks += static_cast<int64_t>(batch.size());
    const std::vector<char> verdicts = checker.CheckAll(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (verdicts[i]) {
        accepted.emplace_back(batch_scores[i], std::move(batch[i]));
      }
    }
    batch.clear();
    batch_scores.clear();
  };

  std::vector<std::size_t> idx(m, 0);
  for (;;) {
    Tuple t = deduced_te;
    bool valid_combo = true;
    double score = pref.Score(deduced_te);
    for (std::size_t i = 0; i < m; ++i) {
      if (space.domains[i].empty()) {
        valid_combo = false;
        break;
      }
      t.set(space.z[i], space.domains[i][idx[i]].first);
      score += space.domains[i][idx[i]].second;
    }
    if (!valid_combo) break;
    batch.push_back(std::move(t));
    batch_scores.push_back(score);
    if (batch.size() >= batch_cap) flush();
    // Odometer increment over the product space.
    std::size_t i = 0;
    for (; i < m; ++i) {
      if (++idx[i] < space.domains[i].size()) break;
      idx[i] = 0;
    }
    if (i == m || m == 0) break;
  }
  flush();
  std::stable_sort(accepted.begin(), accepted.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return false;
                   });
  for (std::size_t i = 0;
       i < accepted.size() && static_cast<int>(result.targets.size()) < k;
       ++i) {
    result.targets.push_back(accepted[i].second);
    result.scores.push_back(accepted[i].first);
  }
  return result;
}

}  // namespace relacc
