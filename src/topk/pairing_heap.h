#ifndef RELACC_TOPK_PAIRING_HEAP_H_
#define RELACC_TOPK_PAIRING_HEAP_H_

#include <cstddef>
#include <deque>
#include <utility>

namespace relacc {

/// A max-priority queue with O(1) push/meld and O(log n) amortized pop.
///
/// The paper's TopKCT uses a Brodal queue [Brodal, SODA'96] for its
/// worst-case bounds. TopKCT's cost analysis (Sec. 6.2) is phrased in total
/// operation counts, for which a pairing heap delivers the same amortized
/// complexity with far smaller constants; the structure is swappable (see
/// bench/ablation_queue, which compares against std::priority_queue).
/// Documented as a substitution in DESIGN.md §5.
///
/// Compare(a, b) returns true when `a` has *lower* priority than `b`
/// (std::less semantics → max-heap), matching std::priority_queue.
template <typename T, typename Compare>
class PairingHeap {
 public:
  explicit PairingHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_; }

  /// O(1).
  void Push(T value) {
    Node* node = NewNode(std::move(value));
    root_ = Merge(root_, node);
    ++size_;
  }

  /// Highest-priority element. Precondition: !empty().
  const T& Top() const { return root_->value; }

  /// Removes and returns the highest-priority element. O(log n) amortized.
  T Pop() {
    Node* old_root = root_;
    root_ = MergePairs(old_root->child);
    --size_;
    T out = std::move(old_root->value);
    free_list_.push_back(old_root);
    return out;
  }

  /// Destructive meld: `other` becomes empty. O(1).
  void Meld(PairingHeap* other) {
    root_ = Merge(root_, other->root_);
    size_ += other->size_;
    other->root_ = nullptr;
    other->size_ = 0;
    // Note: nodes of `other` stay owned by other's pool; keep `other`
    // alive while this heap is in use, or use a shared pool. TopKCT only
    // needs single-heap operation; Meld exists for the rank-join substrate.
  }

 private:
  struct Node {
    T value;
    Node* child = nullptr;    ///< leftmost child
    Node* sibling = nullptr;  ///< next sibling
    explicit Node(T v) : value(std::move(v)) {}
  };

  Node* NewNode(T value) {
    if (!free_list_.empty()) {
      Node* n = free_list_.back();
      free_list_.pop_back();
      n->value = std::move(value);
      n->child = nullptr;
      n->sibling = nullptr;
      return n;
    }
    pool_.emplace_back(std::move(value));
    return &pool_.back();
  }

  Node* Merge(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (cmp_(a->value, b->value)) std::swap(a, b);  // a wins (max at root)
    b->sibling = a->child;
    a->child = b;
    return a;
  }

  /// Two-pass pairing of a sibling list.
  Node* MergePairs(Node* first) {
    if (first == nullptr || first->sibling == nullptr) return first;
    Node* second = first->sibling;
    Node* rest = second->sibling;
    first->sibling = nullptr;
    second->sibling = nullptr;
    return Merge(Merge(first, second), MergePairs(rest));
  }

  Compare cmp_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::deque<Node> pool_;
  std::deque<Node*> free_list_;
};

}  // namespace relacc

#endif  // RELACC_TOPK_PAIRING_HEAP_H_
