#ifndef RELACC_TOPK_RANK_JOIN_H_
#define RELACC_TOPK_RANK_JOIN_H_

#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/value.h"

namespace relacc {

/// A row flowing through the rank-join pipeline: the values contributed by
/// the lists joined so far (in list order) and their summed score.
struct ScoredRow {
  std::vector<Value> values;
  double score = 0.0;
};

/// Pull-based stream of rows in non-increasing score order.
class RankedStream {
 public:
  virtual ~RankedStream() = default;

  /// Next row, or nullopt when exhausted.
  virtual std::optional<ScoredRow> Next() = 0;

  /// Upper bound on the score of any not-yet-returned row; meaningless
  /// after exhaustion.
  virtual double UpperBound() const = 0;
};

/// Leaf stream over one pre-sorted (descending weight) value list — the
/// ranked lists Li that RankJoinCT takes as input (Sec. 6.1).
class ListStream : public RankedStream {
 public:
  /// `entries` must be sorted by descending weight.
  explicit ListStream(std::vector<std::pair<Value, double>> entries);

  std::optional<ScoredRow> Next() override;
  double UpperBound() const override;

 private:
  std::vector<std::pair<Value, double>> entries_;
  std::size_t pos_ = 0;
};

/// Binary HRJN-style rank-join operator [Ilyas et al., VLDB J. 13(3)]
/// specialized to the cross join with an additive score (the top-k
/// candidate problem joins independent attribute domains; there is no join
/// predicate). Maintains input buffers and emits a joined row only once its
/// score provably dominates every row producible from unseen inputs
/// (threshold T = max(ltop + rcur, lcur + rtop)).
///
/// The operator is a RankedStream itself, so left-deep trees compose m-way
/// joins; it is reusable as a standalone top-k rank-join substrate.
class HrjnOperator : public RankedStream {
 public:
  HrjnOperator(std::unique_ptr<RankedStream> left,
               std::unique_ptr<RankedStream> right);

  std::optional<ScoredRow> Next() override;
  double UpperBound() const override;

  /// Join combinations materialized so far (cost accounting).
  int64_t combinations_built() const { return combinations_built_; }

 private:
  bool PullLeft();
  bool PullRight();
  double Threshold() const;

  std::unique_ptr<RankedStream> left_;
  std::unique_ptr<RankedStream> right_;
  std::vector<ScoredRow> left_buf_;
  std::vector<ScoredRow> right_buf_;
  bool left_done_ = false;
  bool right_done_ = false;
  double left_top_ = 0.0;   ///< score of the first left row
  double right_top_ = 0.0;
  double left_cur_ = 0.0;   ///< score of the last pulled left row
  double right_cur_ = 0.0;
  bool pulled_any_ = false;
  int64_t combinations_built_ = 0;

  struct RowLess {
    bool operator()(const ScoredRow& a, const ScoredRow& b) const {
      return a.score < b.score;
    }
  };
  std::priority_queue<ScoredRow, std::vector<ScoredRow>, RowLess> output_;
};

/// Builds a left-deep HRJN tree over `lists` (each sorted descending).
/// Returns a stream of full combinations in non-increasing score order.
std::unique_ptr<RankedStream> BuildRankJoinTree(
    std::vector<std::vector<std::pair<Value, double>>> lists);

}  // namespace relacc

#endif  // RELACC_TOPK_RANK_JOIN_H_
