#include "topk/rank_join_ct.h"

#include <algorithm>
#include <utility>

#include "topk/batch_check.h"
#include "topk/rank_join.h"

namespace relacc {

TopKResult RankJoinCT(const ChaseEngine& engine,
                      const std::vector<Relation>& masters,
                      const Tuple& deduced_te, const PreferenceModel& pref,
                      int k, const TopKOptions& opts) {
  TopKResult result;
  if (k <= 0) return result;

  // Null attributes of te and their ranked lists Li (sorted up front —
  // the cost RankJoinCT pays that TopKCT avoids).
  std::vector<AttrId> z;
  std::vector<std::vector<std::pair<Value, double>>> lists;
  const Relation& ie = engine.ie();
  for (AttrId a = 0; a < ie.schema().size(); ++a) {
    if (!deduced_te.at(a).is_null()) continue;
    z.push_back(a);
    std::vector<std::pair<Value, double>> list;
    for (Value& v :
         ActiveDomain(ie, masters, a, opts.include_default_values)) {
      const double w = pref.Weight(a, v);
      list.emplace_back(std::move(v), w);
    }
    if (list.empty()) return result;  // no candidate can exist
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first.TotalLess(y.first);
    });
    lists.push_back(std::move(list));
  }

  const double base_score = pref.Score(deduced_te);
  if (z.empty()) {
    ++result.checks;
    if (opts.skip_check || CheckCandidateTarget(engine, deduced_te)) {
      result.targets.push_back(deduced_te);
      result.scores.push_back(base_score);
    }
    return result;
  }

  // Consume join results in output order; the shared loop batches the
  // checks and keeps the ranked output identical for every thread count.
  const CheckerHandle checker(engine, opts.skip_check, opts.num_threads,
                              opts.checker);
  std::unique_ptr<RankedStream> stream = BuildRankJoinTree(std::move(lists));
  RunBatchedAcceptLoop(
      // RankedStream has no non-consuming peek; the pre-batching loop
      // checked the budget before Next() too, so budget-first is the
      // original semantics here.
      checker.get(), opts, k, [] { return true; },
      [&](Tuple* t, double* score) {
        auto row = stream->Next();
        if (!row.has_value()) return false;
        *t = deduced_te;
        for (std::size_t i = 0; i < z.size(); ++i) {
          t->set(z[i], row->values[i]);
        }
        *score = base_score + row->score;
        return true;
      },
      &result);
  return result;
}

}  // namespace relacc
