#ifndef RELACC_TOPK_RANK_JOIN_CT_H_
#define RELACC_TOPK_RANK_JOIN_CT_H_

#include "topk/topk_ct.h"

namespace relacc {

/// Algorithm RankJoinCT (Sec. 6.1): extends top-k rank-join processing
/// [21, 26] to the candidate-target problem. Sorts the active domain of
/// every null attribute of `deduced_te` into a ranked list, joins the lists
/// with a left-deep HRJN tree, and checks every join result in output
/// order until k candidate targets pass.
///
/// Exact, early-terminating (Prop. 6), but — as the paper observes — it
/// must sort the domains up front and invokes `check` on every join result
/// in score order, so TopKCT dominates it in practice (Exp-4).
TopKResult RankJoinCT(const ChaseEngine& engine,
                      const std::vector<Relation>& masters,
                      const Tuple& deduced_te, const PreferenceModel& pref,
                      int k, const TopKOptions& opts = {});

}  // namespace relacc

#endif  // RELACC_TOPK_RANK_JOIN_CT_H_
