#ifndef RELACC_TOPK_PREFERENCE_H_
#define RELACC_TOPK_PREFERENCE_H_

#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "core/value.h"

namespace relacc {

/// The preference model (k, p(·)) of Sec. 3: a monotone scoring function
/// p(Te) = Σ_{t∈Te} Σ_{Ai} w_Ai(t[Ai]) defined by per-attribute value
/// weights. Weights can be
///  * occurrence counts in the Ie column (the paper's default, used by
///    Exps 1-4 and the `voting`-preference row of Table 4), or
///  * probabilities produced by a truth-discovery algorithm such as
///    copyCEF (Table 4 last row), or
///  * user-supplied confidences.
/// Values outside every table share `default_weight` (the paper: for an
/// infinite domain, w is constant outside Ie and Im).
class PreferenceModel {
 public:
  PreferenceModel() = default;
  explicit PreferenceModel(int num_attrs) : weights_(num_attrs) {}

  /// Occurrence-count weights over the Ie columns; values that also appear
  /// in a master column of the same attribute name get +master_bonus
  /// (master data is curated, so its values deserve at least a tie-break).
  static PreferenceModel FromOccurrences(const Relation& ie,
                                         const std::vector<Relation>& masters,
                                         double master_bonus = 1.0);

  /// Weight w_Ai(v).
  double Weight(AttrId a, const Value& v) const;

  /// Overrides / defines one weight.
  void SetWeight(AttrId a, const Value& v, double w);

  void set_default_weight(double w) { default_weight_ = w; }
  double default_weight() const { return default_weight_; }

  /// p({t}) = Σ_Ai w_Ai(t[Ai]). Null attributes contribute 0.
  double Score(const Tuple& t) const;

  int num_attrs() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<std::unordered_map<Value, double, ValueHash>> weights_;
  double default_weight_ = 0.0;
};

/// The active domain of attribute `a` (Sec. 6.1): all values of the Ie
/// column, plus values of any master column with the same attribute name,
/// plus — for infinite domains, when `include_default` — one synthetic
/// "default value" ⊥_a standing for everything outside the tables. Booleans
/// are a finite domain: both constants are enumerated and no default is
/// added.
std::vector<Value> ActiveDomain(const Relation& ie,
                                const std::vector<Relation>& masters,
                                AttrId a, bool include_default);

/// The synthetic default value for an attribute (distinct per type).
Value MakeDefaultValue(ValueType type);

}  // namespace relacc

#endif  // RELACC_TOPK_PREFERENCE_H_
