#ifndef RELACC_TOPK_TOPK_CT_H_
#define RELACC_TOPK_TOPK_CT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "topk/preference.h"

namespace relacc {

class CandidateChecker;  // topk/batch_check.h

/// Options shared by the top-k algorithms.
struct TopKOptions {
  /// Include the synthetic default value ⊥ in infinite active domains
  /// (Sec. 6.1: "at most one more distinct value from dom(Ai)").
  bool include_default_values = false;

  /// Safety cap on priority-queue pops / join results inspected; the
  /// problem is NPO-complete (Thm. 5) so worst cases are exponential.
  /// -1 = unbounded.
  int64_t max_expansions = 1'000'000;

  /// Skip the candidate-target check (used internally by TopKCTh to obtain
  /// its unvalidated seeds; exposed for ablations).
  bool skip_check = false;

  /// TopKCTh only: greedy repair tries at most this many replacement values
  /// per attribute per seed (the heuristic trades completeness for time,
  /// Sec. 6.3); -1 = unbounded.
  int max_repair_values = 4;

  /// Workers for the candidate-target `check` (see topk/batch_check.h).
  /// With 1 the algorithms run their original strictly-sequential loops;
  /// with more, checks are batched and fanned out over a thread pool with
  /// one ChaseEngine per worker (each holding a long-lived probe state
  /// under ChaseConfig::check_strategy == kTrail, all sharing the
  /// prototype's checkpoint by pointer). Ranked results (targets and
  /// scores) are identical for every thread count and check strategy; the
  /// stats counters may report more work with >1 threads because batch
  /// members past the k-th accepted target are checked speculatively.
  /// <= 0 is treated as 1. Superseded by `checker` when that is set.
  int num_threads = 1;

  /// External candidate checker to run the `check` chases through. When
  /// set it must be bound (CandidateChecker ctor / Rebind) to the same
  /// engine passed to the algorithm, and its width supersedes
  /// `num_threads`; the algorithm then reuses its thread pool and warm
  /// per-worker probe states instead of building and tearing down its
  /// own per call — the pipeline rebinds one checker per entity and the
  /// interactive framework keeps one across revision rounds. Null: each
  /// call owns a private checker over `num_threads`. Internal seed
  /// phases that skip the check (TopKCTh) always use a private inline
  /// checker so their stats stay identical with and without injection.
  const CandidateChecker* checker = nullptr;
};

/// Result of a top-k computation.
struct TopKResult {
  std::vector<Tuple> targets;      ///< accepted candidate targets, best first
  std::vector<double> scores;      ///< p({t}) for each target
  int64_t queue_pops = 0;          ///< priority-queue / join-result pops
  int64_t heap_pops = 0;           ///< total ValueHeap pops (Prop. 7 metric)
  int64_t checks = 0;              ///< candidate-target chase runs
  bool exhausted_budget = false;   ///< stopped by max_expansions
};

/// Algorithm TopKCT (Fig. 5): Brodal-queue-based best-first search over the
/// lattice of value combinations for the null attributes of the deduced
/// target `te`. Does not require ranked lists; instance optimal w.r.t.
/// ValueHeap pops (Prop. 7), with the early-termination property.
///
/// `engine` supplies Ie (and runs the `check`); `masters` contributes the
/// master portion of the active domains.
TopKResult TopKCT(const ChaseEngine& engine,
                  const std::vector<Relation>& masters,
                  const Tuple& deduced_te, const PreferenceModel& pref, int k,
                  const TopKOptions& opts = {});

/// Algorithm TopKCTh (Sec. 6.3): PTIME heuristic — runs TopKCT without the
/// check to obtain k seeds, then greedily repairs each seed with active-
/// domain values until the check passes. Accepted tuples are guaranteed
/// candidate targets but not necessarily of maximal score.
TopKResult TopKCTh(const ChaseEngine& engine,
                   const std::vector<Relation>& masters,
                   const Tuple& deduced_te, const PreferenceModel& pref,
                   int k, const TopKOptions& opts = {});

/// Shared by TopKCT and RankJoinCT: the deterministic gather-check-accept
/// loop around a CandidateChecker. `produce` yields the next candidate
/// (tuple + score) in the algorithm's sequential inspection order, false
/// when the search space is exhausted; each produced candidate counts one
/// queue_pop against opts.max_expansions. Candidates are checked in
/// RoundCap-sized batches and accepted in production order until k pass,
/// so the ranked result is identical for every thread count — batch
/// members past the k-th acceptance are speculative and discarded.
///
/// `has_more` is consulted (without consuming) only when the pop budget
/// runs out, to decide whether exhausted_budget is honest: a source that
/// is empty at that exact boundary completed its search and reports
/// false, matching the pre-batching loops. Sources without a cheap peek
/// may return true unconditionally (budget-first semantics).
void RunBatchedAcceptLoop(const CandidateChecker& checker,
                          const TopKOptions& opts, int k,
                          const std::function<bool()>& has_more,
                          const std::function<bool(Tuple*, double*)>& produce,
                          TopKResult* result);

/// Exhaustive reference oracle for tests: enumerates the full product of
/// active domains, checks every combination, and returns the k best.
/// Exponential; only usable on tiny instances.
TopKResult TopKBruteForce(const ChaseEngine& engine,
                          const std::vector<Relation>& masters,
                          const Tuple& deduced_te, const PreferenceModel& pref,
                          int k, const TopKOptions& opts = {});

}  // namespace relacc

#endif  // RELACC_TOPK_TOPK_CT_H_
