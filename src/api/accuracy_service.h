#ifndef RELACC_API_ACCURACY_SERVICE_H_
#define RELACC_API_ACCURACY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "core/columnar.h"
#include "core/dictionary.h"
#include "core/relation.h"
#include "pipeline/pipeline.h"
#include "snapshot/memo_cache.h"
#include "topk/preference.h"
#include "topk/topk_ct.h"
#include "util/status.h"

namespace relacc {

class CandidateChecker;  // topk/batch_check.h
class ThreadPool;        // util/thread_pool.h

namespace snapshot {
class SnapshotReader;  // snapshot/reader.h
}  // namespace snapshot

class PipelineSession;
class InteractionSession;

/// Options fixed for the lifetime of an AccuracyService.
struct ServiceOptions {
  /// Total worker-thread budget shared by everything the service runs —
  /// entity-parallel chasing and the candidate-check fan-out time-multiplex
  /// it, never multiply it. <= 0 selects the hardware concurrency.
  int num_threads = 0;

  /// Chase configuration override. When set it replaces the `config`
  /// embedded in the Specification; when empty the spec's own config
  /// governs. An optional (rather than a plain ChaseConfig) so a
  /// spec-pinned check strategy is never silently clobbered by a
  /// default-constructed option.
  std::optional<ChaseConfig> chase;

  /// Default completion policy for pipeline sessions and one-shot runs.
  CompletionPolicy completion = CompletionPolicy::kBestCandidate;

  /// Default streaming window: the maximum number of in-flight completion
  /// engines a PipelineSession keeps alive at once (each holds a warm
  /// all-null checkpoint, O(attrs·n²) bits). Memory is O(window), not
  /// O(entities). Must be >= 1.
  int64_t window = 64;

  /// Shard count for grounding the service's own specification —
  /// Instantiate over rule×Ie row partitions plus the sharded engine
  /// index build that consumes Γ (see rules/grounding.h). 0 derives the
  /// count from the thread budget; 1 forces the serial path. The
  /// GroundProgram (and therefore every chase) is identical for every
  /// value; only AccuracyService::Create/first-use latency changes.
  int ground_shards = 0;

  /// Run the static analyzer (analysis/analyzer.h) over the
  /// specification in Create. Error-severity findings — unknown
  /// attribute ids, unresolvable master references — make Create return
  /// kInvalidArgument carrying the full formatted diagnostic list;
  /// warnings and notes never reject (run `relacc lint` for those).
  /// Off by default: programmatic callers often assemble specs that are
  /// correct by construction and should not pay the analysis.
  bool validate_spec = false;

  /// Store and chase the spec's entity instances dictionary-encoded
  /// (core/columnar.h): terms are interned once into the service
  /// dictionary, and grounding/chasing run on integer columns. Reports
  /// and outcomes are byte-identical to the row path for every setting
  /// (enforced by tests); what changes is the memory and cache profile —
  /// O(distinct terms) Values plus 4-byte ids instead of a Value per
  /// cell. The row Relation stays the public-API boundary either way.
  bool columnar_storage = false;

  /// The term dictionary the service interns into. Null (the default)
  /// makes the service create its own; pass one to share terms across
  /// services or to reuse a dictionary built at parse time
  /// (SpecDocument::dict). Used by both storage modes — the engines'
  /// TermId-encoded checkpoints are shared across workers and sessions,
  /// which requires a common dictionary regardless of storage layout.
  std::shared_ptr<Dictionary> dictionary;

  /// Path to a snapshot artifact (src/snapshot/) to load the service
  /// from instead of grounding + chasing the Specification: Create
  /// ignores the passed spec and restores dictionary, entity instance,
  /// masters (zero-copy, mmap-backed), rules, config, grounded program
  /// and the chased all-null checkpoint from the file. Incompatible
  /// with `chase`, `dictionary`, `validate_spec` and `columnar_storage
  /// == false` being meaningful — those describe a from-scratch build,
  /// so Create rejects the combinations with kInvalidArgument.
  /// Version or CRC problems surface as kInvalidArgument / kDataLoss;
  /// a service is never half-built from a bad artifact.
  std::string snapshot_path;

  /// Graceful degradation for serving: when loading `snapshot_path`
  /// fails (corrupt file, version mismatch, missing file), fall back to
  /// a cold columnar build from the passed Specification instead of
  /// refusing to start. The fallback service reports degraded() ==
  /// true with the load error as its reason; `relacc serve` logs the
  /// warning and carries on (opt out with --snapshot-strict). Ignored
  /// when snapshot_path is empty. With fallback enabled the spec AND
  /// the snapshot options may both be supplied — the usual mutual
  /// exclusions still apply to the snapshot attempt itself.
  bool snapshot_fallback = false;

  /// Capacity (entries) of the in-service verdict memo cache: repeated
  /// CheckCandidates batches and repeated ad-hoc DeduceEntity calls —
  /// the serve daemon's retried/replayed load — are answered from the
  /// memo instead of re-chasing. 0 (the default) disables the cache.
  std::size_t memo_cache_entries = 0;
};

/// Per-session options of AccuracyService::StartPipeline.
struct PipelineSessionOptions {
  /// Completion policy; empty means the service default.
  std::optional<CompletionPolicy> completion;

  /// Streaming window override; 0 means the service default. See
  /// ServiceOptions::window.
  int64_t window = 0;

  /// Per-entity top-k knobs (max_expansions, include_default_values, ...).
  /// `num_threads` and `checker` are managed by the service thread plan:
  /// setting them here is rejected with kInvalidArgument instead of being
  /// silently overridden (set ServiceOptions::num_threads instead).
  TopKOptions topk;

  /// Occurrence-count preference weights are built per entity (plus
  /// masters) unless a model is supplied here.
  const PreferenceModel* preference = nullptr;

  /// Serve every completion through the service's persistent checker
  /// slot pool (one CandidateChecker per completion worker, rebound per
  /// entity) instead of building and tearing one down per entity.
  /// Reports are identical either way; false restores the per-entity
  /// teardown for A/B measurement.
  bool reuse_checkers = true;

  /// Phase-2 entity-level parallelism: how many in-flight entities
  /// complete concurrently, each through its own slot-pooled checker of
  /// width budget/workers (see PipelineThreadPlan). 0 derives
  /// `completion_workers` from the thread plan per window — one worker
  /// per pending incomplete entity up to the budget, so a window with a
  /// single incomplete entity hands that entity's checker the whole
  /// budget; 1 forces the one-entity-at-a-time completion loop (whose
  /// single checker then gets the whole budget) for every window.
  /// Reports are byte-identical for every value — the reduction is by
  /// input index, and per-entity completion is a pure function of the
  /// entity.
  int completion_workers = 0;

  /// Process full windows synchronously on the Submit caller's thread
  /// instead of handing them to the background completion driver. Submit
  /// then blocks for the windows it completes, and the session spawns no
  /// thread of its own — which is exactly what an external scheduler
  /// wants when it time-slices ONE executor thread across many sessions
  /// (serve/scheduler.h: each window becomes one batch quantum, and the
  /// service's internal thread budget is the only parallelism). Reports
  /// are byte-identical to the driver path.
  bool inline_windows = false;
};

/// Options of an interactive session (the Fig. 3 loop).
struct InteractionOptions {
  int k = 15;  ///< candidates per Suggest() (paper default)

  /// Re-chase after a revision via the engine's persistent trail session
  /// (ChaseEngine::ResumeWith) instead of replaying the full chase.
  /// Identical outcomes; see framework/framework.h.
  bool incremental = true;

  /// Top-k knobs for Suggest(). As with PipelineSessionOptions::topk,
  /// `num_threads`/`checker` are managed by the service and rejected when
  /// set.
  TopKOptions topk;

  /// Preference model for ranking; null builds occurrence-count weights
  /// over the session's entity instance (plus masters) once at start.
  const PreferenceModel* preference = nullptr;
};

/// What one Suggest() round shows the user: the deduced target under the
/// current template, and — when it is incomplete — the ranked candidates.
struct Suggestion {
  bool church_rosser = false;
  std::string violation;  ///< when !church_rosser
  Tuple deduced_target;
  bool complete = false;
  TopKResult candidates;  ///< empty when complete or !church_rosser
};

/// Which top-k algorithm a one-shot AccuracyService::TopK call runs.
enum class TopKAlgorithm {
  kTopKCT,      ///< Fig. 5 best-first search (instance optimal)
  kHeuristic,   ///< TopKCTh, the PTIME greedy-repair heuristic (Sec. 6.3)
  kRankJoin,    ///< RankJoinCT over ranked attribute lists
  kBruteForce,  ///< exhaustive oracle; tiny instances only
};

/// The streaming, session-oriented entry point of the library: one
/// long-lived object constructed from a Specification (entity instance,
/// master relations, accuracy rules, chase config) plus a ServiceOptions,
/// owning for its whole lifetime
///
///   * the grounded program and chase engine of the spec's own entity
///     instance — and with them the shared all-null *checkpoint* every
///     deduction, candidate check and interactive resume starts from
///     (built lazily on first use, so pipeline-only services over a
///     placeholder instance never pay for it);
///   * the persistent CandidateCheckers (and their thread pools): one
///     service-wide checker for one-shot calls and interactive sessions,
///     plus a slot pool of completion checkers — one per completion
///     worker — all rebound across entities, sessions and one-shot calls
///     instead of being rebuilt per call; and
///   * the thread plan: ServiceOptions::num_threads is the single budget
///     that entity-parallel chasing, entity-parallel completion and
///     candidate-check fan-out time-multiplex (see PipelineThreadPlan in
///     pipeline/pipeline.h; completion_workers × check_threads never
///     exceeds the budget).
///
/// Work is exposed as sessions:
///
///   * StartPipeline() — a streaming whole-database run: Submit entity
///     batches as they arrive, Poll/Drain per-entity reports as they
///     complete, Finish() for the aggregate PipelineReport. At most
///     `window` completion engines are in flight, so memory is bounded by
///     the window, not by the number of entities; the report is
///     byte-identical to the legacy batch RunPipeline for every window,
///     budget and check strategy.
///   * StartInteraction() — the Fig. 3 user loop as a stateful object:
///     Suggest()/Revise()/Accept() over a persistent chase session
///     (ChaseEngine::ResumeWith), so each accumulating revision costs
///     O(its own changes).
///   * DeduceEntity()/TopK() — one-shot conveniences routed through the
///     same shared checkpoint and checker.
///
/// Error handling: every fallible path returns Status / Result<T>; the
/// service never writes to stderr or exits the process. Domain outcomes
/// (a non-Church-Rosser spec, an incomplete target) are reported in the
/// returned values, not as errors — except where a call is meaningless
/// without them (TopK on a non-CR spec is kFailedPrecondition).
///
/// Threading and ownership: the service and its sessions are not
/// internally synchronized — drive them from one thread at a time (the
/// parallelism lives *inside*, governed by the budget). Sessions hold
/// pointers into the service and must not outlive it. The service is
/// immovable; the Specification is copied in and owned.
class AccuracyService {
 public:
  /// Validates `options` and takes ownership of `spec`. When
  /// `options.chase` is set it replaces spec.config.
  static Result<std::unique_ptr<AccuracyService>> Create(
      Specification spec, ServiceOptions options = {});

  AccuracyService(const AccuracyService&) = delete;
  AccuracyService& operator=(const AccuracyService&) = delete;
  ~AccuracyService();

  const Specification& specification() const { return spec_; }

  /// The resolved worker-thread budget (hardware concurrency when
  /// ServiceOptions::num_threads was <= 0).
  int thread_budget() const { return budget_; }

  /// The resolved default streaming window.
  int64_t default_window() const { return options_.window; }

  /// The service-wide term dictionary (ServiceOptions::dictionary or
  /// service-created): every engine the service builds interns into it,
  /// so TermId-encoded checkpoints stay portable across the default
  /// engine, checker worker engines, completion slots and sessions.
  Dictionary* dictionary() const { return dict_.get(); }

  /// Whether entity instances are stored and chased dictionary-encoded.
  bool columnar_storage() const { return options_.columnar_storage; }

  /// How this service stores its data: "row", "columnar", or
  /// "snapshot" (mmap-backed artifact). Serve stats and bench rows
  /// report this label.
  const char* storage_mode() const {
    if (reader_ != nullptr) return "snapshot";
    return options_.columnar_storage ? "columnar" : "row";
  }

  /// Terms currently interned in the service dictionary (including the
  /// reserved null slot).
  std::size_t dictionary_terms() const { return dict_->size(); }

  /// True when this service is the cold-build fallback of a failed
  /// snapshot load (ServiceOptions::snapshot_fallback): results are
  /// identical, only the O(1) warm start was lost.
  bool degraded() const { return degraded_; }
  /// The snapshot-load error behind degraded(); empty otherwise.
  const std::string& degraded_reason() const { return degraded_reason_; }

  /// Counters of the verdict memo cache; all zero when the cache is
  /// disabled (ServiceOptions::memo_cache_entries == 0).
  snapshot::MemoCache::Stats memo_stats() const;

  /// Serializes the service's full derived state — dictionary, encoded
  /// entity instance, masters, rules, config, grounded program, chased
  /// all-null checkpoint — into a snapshot artifact at `path`, building
  /// the engine and checkpoint first if needed. Requires columnar
  /// storage (the artifact ships dictionary-encoded columns);
  /// kFailedPrecondition otherwise. A snapshot-loaded service can
  /// re-export.
  Status WriteSnapshot(const std::string& path);

  /// Opens a streaming pipeline session. Rejects managed TopKOptions
  /// knobs (num_threads/checker) and negative windows with
  /// kInvalidArgument.
  Result<std::unique_ptr<PipelineSession>> StartPipeline(
      PipelineSessionOptions options = {});

  /// Opens an interactive session over the spec's own entity instance.
  /// The session shares the service checkpoint (no second all-null
  /// chase).
  Result<std::unique_ptr<InteractionSession>> StartInteraction(
      InteractionOptions options = {});

  /// Opens an interactive session over a caller-supplied entity instance
  /// (grounded against the service's masters and rules; the relation is
  /// copied into the session).
  Result<std::unique_ptr<InteractionSession>> StartInteraction(
      Relation entity, InteractionOptions options = {});

  /// IsCR over the spec's own entity instance, served from (and priming)
  /// the shared checkpoint. The Church-Rosser verdict and any violation
  /// live in the returned ChaseOutcome; Status is for service-level
  /// failures only.
  Result<ChaseOutcome> DeduceEntity();

  /// IsCR over a caller-supplied entity instance (grounded fresh against
  /// the service's masters and rules; no state is retained).
  Result<ChaseOutcome> DeduceEntity(const Relation& entity);

  /// Top-k candidate targets for the spec's own deduced target, through
  /// the shared checkpoint and checker. An already-complete deduced
  /// target is returned (check-verified) as its own sole candidate.
  /// kFailedPrecondition when the spec is not Church-Rosser;
  /// kInvalidArgument for k < 1 or managed topk knobs. `preference` null
  /// builds occurrence-count weights over (ie, masters).
  Result<TopKResult> TopK(int k, TopKAlgorithm algo = TopKAlgorithm::kTopKCT,
                          TopKOptions topk = {},
                          const PreferenceModel* preference = nullptr);

  /// The candidate-target `check` (Sec. 6) for every candidate against
  /// the spec's own entity instance, fanned out through the shared
  /// checker; verdicts[i] corresponds to candidates[i]. Candidates must
  /// satisfy the CheckCandidateTarget contract (complete, agreeing with
  /// the deduced target on its non-null attributes).
  Result<std::vector<char>> CheckCandidates(
      const std::vector<Tuple>& candidates);

 private:
  friend class PipelineSession;
  friend class InteractionSession;

  AccuracyService(Specification spec, ServiceOptions options, int budget);

  /// Shared tail of both StartInteraction overloads: validates options
  /// and wires a session over either the service's own relation and
  /// program (own_ie null: checkpoint adopted from the service engine)
  /// or a session-owned relation grounded here.
  Result<std::unique_ptr<InteractionSession>> StartInteractionImpl(
      InteractionOptions options, std::unique_ptr<Relation> own_ie);

  /// Grounds the spec's own entity instance and builds its engine, once.
  /// On a snapshot-loaded service this deserializes the stored program
  /// and installs the stored checkpoint instead of re-grounding and
  /// re-chasing.
  Status EnsureDefaultEngine();

  /// Restores the service's state from options_.snapshot_path; called
  /// once by Create, before the service is handed out.
  Status LoadFromSnapshot();

  /// Materializes spec_.masters rows from the mmap-backed columnar
  /// masters of a snapshot-loaded service, once, on the first call
  /// that actually needs row masters (top-k search spaces, grounding
  /// ad-hoc entities, pipelines). The warm deduce path never does.
  Status EnsureMasters();

  /// FNV fingerprint of the service's own entity instance, computed
  /// once (memo-cache key half).
  uint64_t OwnEntityFingerprint();

  /// The shared chase pool (width = budget), built on first use.
  ThreadPool& ChasePool();

  /// Hands out the persistent CandidateChecker bound to `engine`,
  /// rebinding only when the binding token changed. Tokens are unique per
  /// engine binding (NewBindingToken), never reused, so a token match
  /// guarantees the checker is still bound to this very engine — pointer
  /// equality alone could be fooled by a new engine reusing a freed
  /// address.
  const CandidateChecker& AcquireChecker(const ChaseEngine& engine,
                                         uint64_t token);
  uint64_t NewBindingToken() { return next_token_.fetch_add(1); }

  /// Grows the completion-checker slot pool to at least `workers` slots.
  /// Called single-threaded (by a session's completion driver) before a
  /// parallel completion fan-out.
  void EnsureCompletionSlots(int workers);

  /// Hands out slot `slot`'s persistent completion checker, rebound to
  /// `engine` (a fresh engine every call, so no token bookkeeping: the
  /// pool survives the rebind, which is the reuse win). Recreates the
  /// checker when `width` changed since the slot was built. Distinct
  /// slots are called concurrently — each call touches only its own
  /// slot, and the vector itself is only grown by EnsureCompletionSlots
  /// between fan-outs.
  const CandidateChecker& AcquireCompletionChecker(int slot, int width,
                                                   const ChaseEngine& engine);

  /// The resolved grounding shard count (ServiceOptions::ground_shards;
  /// 0 means the budget).
  int GroundShardCount() const {
    return options_.ground_shards > 0 ? options_.ground_shards : budget_;
  }

  Specification spec_;
  ServiceOptions options_;
  int budget_;

  /// Set by Create on the snapshot-fallback path (see
  /// ServiceOptions::snapshot_fallback).
  bool degraded_ = false;
  std::string degraded_reason_;

  /// The service-wide dictionary; never null after construction.
  std::shared_ptr<Dictionary> dict_;

  std::unique_ptr<ThreadPool> pool_;

  // Lazily-grounded state of the spec's own entity instance; engine_
  // owns the shared all-null checkpoint. Under columnar storage, cie_
  // is the dictionary-encoded spec_.ie the engine reads its columns
  // from (and must outlive the engine).
  std::unique_ptr<ColumnarRelation> cie_;
  std::unique_ptr<GroundProgram> program_;
  std::unique_ptr<ChaseEngine> engine_;
  uint64_t engine_token_ = 0;

  // Snapshot mode (reader_ != nullptr): the open artifact — it owns
  // the mapping the borrowed master columns alias, so it outlives
  // them — plus the decoded checkpoint image (consumed lazily by
  // EnsureDefaultEngine), the pre-materialized all-null outcome the
  // O(1) warm DeduceEntity serves, and the zero-copy masters that
  // EnsureMasters row-materializes on demand.
  std::unique_ptr<snapshot::SnapshotReader> reader_;
  std::unique_ptr<ChaseCheckpoint> checkpoint_image_;
  std::unique_ptr<ChaseOutcome> snapshot_outcome_;
  std::vector<ColumnarRelation> cmasters_;
  bool masters_loaded_ = false;

  // The verdict memo (ServiceOptions::memo_cache_entries); null when
  // disabled.
  std::unique_ptr<snapshot::MemoCache> memo_;
  uint64_t own_entity_fp_ = 0;
  bool own_entity_fp_set_ = false;

  std::unique_ptr<CandidateChecker> checker_;
  uint64_t bound_token_ = 0;   ///< token of the engine checker_ is bound to
  /// 0 is never handed out. Atomic: parallel completion workers mint
  /// interaction-style tokens never, but sessions and one-shot calls may
  /// interleave with a driver thread that is between windows.
  std::atomic<uint64_t> next_token_{1};

  /// Phase-2 completion slot pool: one persistent CandidateChecker (and
  /// thread pool) per completion worker, rebound across entities,
  /// sessions and windows.
  std::vector<std::unique_ptr<CandidateChecker>> completion_checkers_;
};

/// A streaming whole-database run (the incremental form of the legacy
/// RunPipeline): submit entity batches as they arrive, poll per-entity
/// reports as they complete, finish for the aggregate. Entities are
/// processed in windows — phase-1 entity-parallel chase, then phase-2
/// completion across the plan's completion-worker slots with an
/// input-order reduction — so at most `window` completion engines are
/// ever alive (stats().peak_in_flight_engines proves it).
///
/// Full windows are handed to a background *completion driver* thread,
/// so Submit returns promptly while the window chases and completes
/// concurrently with the producer; Poll/Drain surface reports as the
/// driver finishes them, still strictly in input order. The hand-off
/// queue is bounded (a producer far ahead of the driver blocks in
/// Submit), so buffered input stays O(window) no matter how fast
/// entities arrive. While submitted work is still in flight the driver
/// owns the service's pipeline state — interleave other service calls
/// only after Finish() (or between sessions), exactly as the
/// one-session-at-a-time contract has always required.
///
/// Reports come back in input order and are byte-identical to the legacy
/// batch path for every window size, thread budget, completion-worker
/// count, reuse setting and check strategy (enforced by
/// tests/test_accuracy_service.cc and bench/pipeline_scaling.cc).
class PipelineSession {
 public:
  struct Stats {
    int64_t submitted = 0;  ///< entities accepted by Submit
    int64_t processed = 0;  ///< entities chased + completed so far
    int64_t windows = 0;    ///< windows processed
    /// Peak number of simultaneously-alive phase-2 completion engines;
    /// <= window by construction.
    int64_t peak_in_flight_engines = 0;
  };

  PipelineSession(const PipelineSession&) = delete;
  PipelineSession& operator=(const PipelineSession&) = delete;

  /// Stops the completion driver. Windows already handed off are still
  /// processed (their reports are simply never observed); buffered
  /// entities that never filled a window are dropped — call Finish() to
  /// flush them.
  ~PipelineSession();

  /// Appends entities to the stream; any full windows they complete are
  /// handed to the completion driver (their reports become Poll()able as
  /// the driver finishes them). kFailedPrecondition after Finish();
  /// kInvalidArgument on a schema arity mismatch with the first
  /// submitted entity (nothing from the batch is accepted then).
  Status Submit(std::vector<EntityInstance> batch);
  Status Submit(EntityInstance entity);

  /// Next completed per-entity report in input order, if one is ready.
  std::optional<EntityReport> Poll();

  /// Every completed-but-unpolled report, in input order.
  std::vector<EntityReport> Drain();

  /// Flushes the final partial window, waits for the driver to drain,
  /// and returns the aggregate report (identical to RunPipeline over the
  /// same entities). The session refuses further Submit/Finish calls
  /// afterwards; Poll/Drain keep working on what completed.
  Result<PipelineReport> Finish();

  bool finished() const { return finished_; }
  int64_t window() const { return window_; }

  /// Synchronized snapshot (the driver updates counters concurrently).
  Stats stats() const;

 private:
  friend class AccuracyService;

  /// How many full windows may sit in the hand-off queue before Submit
  /// blocks: enough to keep the driver fed across a batch boundary,
  /// small enough that buffered input stays O(window).
  static constexpr std::size_t kMaxQueuedWindows = 2;

  PipelineSession(AccuracyService* service, PipelineSessionOptions options,
                  CompletionPolicy completion, int64_t window);

  /// One window, start to finish: entity-parallel chase, then
  /// completion of the incomplete entities across the completion-worker
  /// slots. Reports are reduced by input index, so the result is
  /// byte-identical to the serial loop for every worker count.
  struct WindowResult {
    std::vector<EntityReport> reports;
    int64_t in_flight_engines = 0;
  };
  WindowResult ProcessWindow(const std::vector<EntityInstance>& entities);

  /// Publishes a finished window's reports and counters (under mu_).
  void CommitWindow(WindowResult result, std::size_t entity_count);

  /// Hands a full window to the driver, starting it on first use;
  /// blocks while kMaxQueuedWindows are already pending.
  void EnqueueWindow(std::vector<EntityInstance> batch);

  void DriverLoop();

  AccuracyService* service_;
  PipelineSessionOptions options_;
  CompletionPolicy completion_;
  int64_t window_;

  // Caller-thread state (Submit/Finish only).
  Schema schema_;
  bool have_schema_ = false;
  std::vector<EntityInstance> buffer_;  ///< submitted, not yet windowed
  bool finished_ = false;

  // Cross-thread state: the caller thread produces windows and polls
  // reports; the driver thread consumes windows and appends reports.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< driver: a window arrived / shutdown
  std::condition_variable space_cv_;  ///< producer: queue has room again
  std::condition_variable idle_cv_;   ///< Finish: driver drained everything
  std::deque<std::vector<EntityInstance>> queued_;
  bool driver_busy_ = false;
  bool shutdown_ = false;
  std::thread driver_;
  std::vector<EntityReport> reports_;  ///< processed, input order
  std::size_t next_poll_ = 0;
  Stats stats_;
};

/// The Fig. 3 interactive loop as a stateful object, replacing the inline
/// UserOracle wiring of the legacy RunFramework: Suggest() chases the
/// current target template (via the engine's persistent trail session, so
/// accumulating revisions cost O(their own changes)) and ranks candidate
/// targets when the deduced target is incomplete; Revise() folds a
/// user-supplied value into the template; Accept() finalizes on a
/// suggested candidate. A completing Suggest() finalizes the session by
/// itself.
class InteractionSession {
 public:
  InteractionSession(const InteractionSession&) = delete;
  InteractionSession& operator=(const InteractionSession&) = delete;
  ~InteractionSession();

  /// One deduction round: chases the current template and — when the
  /// result is incomplete — computes the top-k candidates. Not an error
  /// when the spec is not Church-Rosser: the Suggestion carries the
  /// verdict and violation. kFailedPrecondition once finished.
  Result<Suggestion> Suggest();

  /// Folds the accurate value of one attribute into the target template
  /// (the user's Fig. 3 "revise" move). kInvalidArgument for an
  /// out-of-range attribute or a null value; kFailedPrecondition once
  /// finished. Invalidates the previous Suggestion for Accept().
  Status Revise(AttrId attr, Value value);

  /// Accepts candidate `index` of the latest Suggest() as the final
  /// target. kFailedPrecondition when finished or no suggestion is
  /// outstanding; kOutOfRange for a bad index.
  Result<Tuple> Accept(int index);

  /// True once a complete target was deduced or accepted.
  bool finished() const { return finished_; }

  /// The final target; meaningful once finished().
  const Tuple& final_target() const { return final_target_; }

  /// The current (partial) target template the next Suggest() chases.
  const Tuple& target_template() const { return template_; }

  /// Revisions applied so far (h of the paper's Exp-3).
  int revisions() const { return revisions_; }

 private:
  friend class AccuracyService;

  InteractionSession(AccuracyService* service, InteractionOptions options);

  AccuracyService* service_;
  InteractionOptions options_;

  // For sessions over a caller-supplied entity; default-entity sessions
  // borrow the service's relation and program instead. Under columnar
  // storage, own_cie_ is the encoded form the session engine reads
  // (interned into the service dictionary).
  std::unique_ptr<Relation> own_ie_;
  std::unique_ptr<ColumnarRelation> own_cie_;
  std::unique_ptr<GroundProgram> own_program_;

  std::unique_ptr<ChaseEngine> engine_;  ///< always session-owned
  uint64_t token_ = 0;
  PreferenceModel own_pref_;             ///< used when options_.preference null

  Tuple template_;
  std::optional<Suggestion> last_;  ///< latest Suggest, for Accept
  Tuple final_target_;
  bool finished_ = false;
  int revisions_ = 0;
};

}  // namespace relacc

#endif  // RELACC_API_ACCURACY_SERVICE_H_
