#ifndef RELACC_API_VERSION_H_
#define RELACC_API_VERSION_H_

namespace relacc {

/// Library version (also the CMake package version; keep the two in
/// sync). Bumped whenever the installed public API changes shape —
/// `relacc --version` prints it so bug reports can name the exact API
/// surface they ran against, and bench::JsonReport stamps it into every
/// BENCH_*.json so perf rows are attributable to an API generation.
inline constexpr const char kRelaccVersion[] = "0.10.0";

}  // namespace relacc

/// Brackets a region that intentionally calls the library's
/// [[deprecated]] legacy entry points (the batch shims over
/// AccuracyService). The identity tests and A/B benches pin the shims to
/// the service behaviour, so they must keep calling them without
/// tripping -Werror; one macro pair replaces the copy-pasted
/// diagnostic-pragma blocks those files used to carry. GCC and Clang
/// both accept the GCC spelling of the pragma.
#define RELACC_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")         \
  _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define RELACC_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")

#endif  // RELACC_API_VERSION_H_
