#ifndef RELACC_API_VERSION_H_
#define RELACC_API_VERSION_H_

namespace relacc {

/// Library version (also the CMake package version; keep the two in
/// sync). Bumped whenever the installed public API changes shape —
/// `relacc --version` prints it so bug reports can name the exact API
/// surface they ran against.
inline constexpr const char kRelaccVersion[] = "0.4.0";

}  // namespace relacc

#endif  // RELACC_API_VERSION_H_
