#include "api/accuracy_service.h"

#include <algorithm>
#include <iterator>
#include <thread>
#include <utility>

#include "analysis/analyzer.h"
#include "api/version.h"
#include "rules/grounding.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "topk/batch_check.h"
#include "topk/rank_join_ct.h"
#include "util/thread_pool.h"

namespace relacc {

namespace {

/// Phase-2 carry-over for one incomplete entity: the grounded program
/// and the engine with its warm all-null checkpoint, kept alive across
/// the phase boundary so completion never re-grounds or re-chases.
/// Under columnar storage the encoded relation rides along too — the
/// engine reads its columns until phase 2 retires it.
struct PendingCompletion {
  std::unique_ptr<ColumnarRelation> columnar;
  std::unique_ptr<GroundProgram> program;
  std::unique_ptr<ChaseEngine> engine;  ///< references *program
};

/// Phase 1 for one entity: ground and run the checkpoint chase. When the
/// target stays incomplete (and completion is enabled), the engine is
/// handed back via `pending` for phase 2. Pure function of its inputs
/// (`dict` only accretes interned terms, thread-safely); called
/// concurrently. A non-null `dict` selects dictionary-encoded storage:
/// the entity is interned into it and grounded/chased on integer
/// columns — the report is byte-identical either way.
EntityReport ChaseEntityPhase(const EntityInstance& entity,
                              const std::vector<Relation>& masters,
                              const std::vector<AccuracyRule>& rules,
                              const ChaseConfig& chase,
                              CompletionPolicy completion, Dictionary* dict,
                              std::unique_ptr<PendingCompletion>* pending) {
  EntityReport report;
  report.entity_id = entity.entity_id();
  report.num_tuples = entity.size();

  std::unique_ptr<ColumnarRelation> columnar;
  std::unique_ptr<GroundProgram> program;
  std::unique_ptr<ChaseEngine> engine;
  if (dict != nullptr) {
    columnar = std::make_unique<ColumnarRelation>(
        ColumnarRelation::FromRelation(entity, dict));
    program = std::make_unique<GroundProgram>(
        Instantiate(*columnar, masters, rules));
    engine = std::make_unique<ChaseEngine>(*columnar, program.get(), chase);
  } else {
    program =
        std::make_unique<GroundProgram>(Instantiate(entity, masters, rules));
    engine = std::make_unique<ChaseEngine>(entity, program.get(), chase);
  }
  // Serve the all-null chase from the engine's checkpoint: the candidate
  // completion of phase 2 checks against the same checkpoint, so each
  // entity is chased once, not twice.
  ChaseOutcome outcome = engine->RunFromCheckpoint();
  if (!outcome.church_rosser) {
    report.violation = outcome.violation;
    return report;
  }
  report.church_rosser = true;
  report.deduced_attrs = outcome.target.size() - outcome.target.NullCount();
  report.target = outcome.target;
  report.complete = outcome.target.IsComplete();
  if (!report.complete && completion != CompletionPolicy::kLeaveNull) {
    auto p = std::make_unique<PendingCompletion>();
    p->columnar = std::move(columnar);
    p->program = std::move(program);
    p->engine = std::move(engine);
    *pending = std::move(p);
  }
  return report;
}

/// Phase 2 for one incomplete entity (Sec. 6): top-1 candidate target.
/// `checker` is already bound to `engine` and runs every check chase.
void CompleteEntityPhase(const EntityInstance& entity,
                         const std::vector<Relation>& masters,
                         CompletionPolicy completion,
                         const TopKOptions& topk_options,
                         const PreferenceModel* preference,
                         const ChaseEngine& engine,
                         const CandidateChecker& checker,
                         EntityReport* report) {
  PreferenceModel local_pref;
  const PreferenceModel* pref = preference;
  if (pref == nullptr) {
    local_pref = PreferenceModel::FromOccurrences(entity, masters);
    pref = &local_pref;
  }
  TopKOptions topk_opts = topk_options;
  topk_opts.checker = &checker;
  TopKResult topk =
      completion == CompletionPolicy::kHeuristic
          ? TopKCTh(engine, masters, report->target, *pref, 1, topk_opts)
          : TopKCT(engine, masters, report->target, *pref, 1, topk_opts);
  if (!topk.targets.empty()) {
    report->target = topk.targets[0];
    report->used_candidate = true;
  }
  report->complete = report->target.IsComplete();
}

/// The option-audit gate (see ISSUE 4): top-k threading is owned by the
/// service plan, so caller-set values that the legacy batch functions
/// used to override silently are rejected loudly instead.
Status ValidateManagedTopK(const TopKOptions& topk, const char* where) {
  if (topk.checker != nullptr) {
    return Status::InvalidArgument(
        std::string(where) +
        ": TopKOptions::checker is managed by the service (it injects its "
        "own persistent checker); leave it null");
  }
  if (topk.num_threads != 1) {  // 1 is the TopKOptions default
    return Status::InvalidArgument(
        std::string(where) +
        ": TopKOptions::num_threads is governed by the service thread "
        "budget; leave it at its default and set "
        "ServiceOptions::num_threads instead");
  }
  return Status::OK();
}

int ResolveBudget(int num_threads) {
  if (num_threads > 0) return num_threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

// ---------------------------------------------------------- AccuracyService

AccuracyService::AccuracyService(Specification spec, ServiceOptions options,
                                 int budget)
    : spec_(std::move(spec)), options_(std::move(options)), budget_(budget) {
  dict_ = options_.dictionary != nullptr ? options_.dictionary
                                         : std::make_shared<Dictionary>();
  if (options_.memo_cache_entries > 0) {
    memo_ =
        std::make_unique<snapshot::MemoCache>(options_.memo_cache_entries);
  }
}

AccuracyService::~AccuracyService() = default;

Result<std::unique_ptr<AccuracyService>> AccuracyService::Create(
    Specification spec, ServiceOptions options) {
  if (options.window < 1) {
    return Status::InvalidArgument(
        "ServiceOptions::window must be >= 1, got " +
        std::to_string(options.window));
  }
  if (options.ground_shards < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::ground_shards must be >= 0 (0 = thread budget), "
        "got " +
        std::to_string(options.ground_shards));
  }
  if (options.validate_spec) {
    // Static analysis at the door (analysis/analyzer.h): reject on
    // error-severity findings; warnings are lint's business.
    std::vector<Diagnostic> diagnostics = AnalyzeSpecification(spec);
    std::string errors;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity != Severity::kError) continue;
      if (!errors.empty()) errors += "; ";
      errors += d.message + " [" + d.check_id + "]";
    }
    if (!errors.empty()) {
      return Status::InvalidArgument("specification failed validation: " +
                                     errors);
    }
  }
  if (!options.snapshot_path.empty()) {
    // A snapshot restores dictionary, config and derived state wholesale;
    // options that describe a from-scratch build contradict it.
    if (options.chase.has_value()) {
      return Status::InvalidArgument(
          "ServiceOptions::snapshot_path and ::chase are mutually "
          "exclusive: the chase config is part of the artifact");
    }
    if (options.dictionary != nullptr) {
      return Status::InvalidArgument(
          "ServiceOptions::snapshot_path and ::dictionary are mutually "
          "exclusive: the artifact restores its own dictionary (id "
          "stability requires a fresh one)");
    }
    if (options.validate_spec) {
      return Status::InvalidArgument(
          "ServiceOptions::snapshot_path and ::validate_spec are mutually "
          "exclusive: the artifact was validated when it was built");
    }
    options.columnar_storage = true;  // the artifact is dictionary-encoded
    const int budget = ResolveBudget(options.num_threads);
    ServiceOptions snap_options = options;  // the attempt; `options` is
                                            // retained for the fallback
    auto service = std::unique_ptr<AccuracyService>(
        new AccuracyService(Specification(), std::move(snap_options), budget));
    const Status loaded = service->LoadFromSnapshot();
    if (loaded.ok()) return service;
    if (!options.snapshot_fallback) return loaded;
    // Graceful degradation: a corrupt/mismatched artifact must not keep
    // the daemon down when the spec can rebuild the same state cold.
    // columnar_storage stays true, so results are bit-for-bit what the
    // snapshot would have served — only the O(1) start is lost.
    service.reset();  // drop the half-open reader before rebuilding
    options.snapshot_path.clear();
    auto cold = std::unique_ptr<AccuracyService>(
        new AccuracyService(std::move(spec), std::move(options), budget));
    cold->degraded_ = true;
    cold->degraded_reason_ = loaded.ToString();
    return cold;
  }
  if (options.chase.has_value()) spec.config = *options.chase;
  const int budget = ResolveBudget(options.num_threads);
  return std::unique_ptr<AccuracyService>(
      new AccuracyService(std::move(spec), std::move(options), budget));
}

Status AccuracyService::LoadFromSnapshot() {
  auto reader_res = snapshot::SnapshotReader::Open(options_.snapshot_path);
  if (!reader_res.ok()) return reader_res.status();
  reader_ = std::move(reader_res).value();
  const snapshot::SnapshotReader::Info& info = reader_->info();

  RELACC_RETURN_NOT_OK(reader_->LoadDictionary(dict_.get()));

  auto entity_res = reader_->LoadEntity(dict_.get());
  if (!entity_res.ok()) return entity_res.status();
  cie_ = std::make_unique<ColumnarRelation>(std::move(entity_res).value());

  auto rules_res = reader_->LoadRules();
  if (!rules_res.ok()) return rules_res.status();
  spec_.rules = std::move(rules_res).value();
  spec_.config = info.config;
  // The public Specification keeps the row boundary: Ie rows are
  // materialized here (the entity instance is modest next to the
  // masters), the masters stay zero-copy until something needs rows.
  spec_.ie = cie_->ToRelation();
  cmasters_.reserve(static_cast<std::size_t>(info.num_masters));
  for (int m = 0; m < info.num_masters; ++m) {
    auto master_res = reader_->LoadMaster(m, dict_.get());
    if (!master_res.ok()) return master_res.status();
    cmasters_.push_back(std::move(master_res).value());
  }

  auto cp_res = reader_->LoadCheckpoint();
  if (!cp_res.ok()) return cp_res.status();
  checkpoint_image_ =
      std::make_unique<ChaseCheckpoint>(std::move(cp_res).value());

  // Pre-materialize the all-null outcome the warm DeduceEntity serves
  // without ever building an engine — identical, field for field, to
  // what RunFromCheckpoint returns after an ImportCheckpoint.
  snapshot_outcome_ = std::make_unique<ChaseOutcome>();
  ChaseOutcome& out = *snapshot_outcome_;
  out.stats.ground_steps = info.program_steps;
  out.stats.steps_applied = checkpoint_image_->steps_applied;
  out.stats.pairs_derived = checkpoint_image_->pairs_derived;
  if (checkpoint_image_->ok) {
    out.church_rosser = true;
    const Schema& schema = cie_->schema();
    std::vector<Value> te;
    te.reserve(static_cast<std::size_t>(schema.size()));
    for (AttrId a = 0; a < schema.size(); ++a) {
      te.push_back(MaterializeAs(
          *dict_, checkpoint_image_->te[static_cast<std::size_t>(a)],
          schema.type(a)));
    }
    out.target = Tuple(std::move(te));
  } else {
    out.church_rosser = false;
    out.violation = checkpoint_image_->violation;
  }
  return Status::OK();
}

Status AccuracyService::EnsureMasters() {
  if (reader_ == nullptr || masters_loaded_) return Status::OK();
  spec_.masters.reserve(cmasters_.size());
  for (const ColumnarRelation& master : cmasters_) {
    spec_.masters.push_back(master.ToRelation());
  }
  masters_loaded_ = true;
  return Status::OK();
}

Status AccuracyService::WriteSnapshot(const std::string& path) {
  if (!options_.columnar_storage) {
    return Status::FailedPrecondition(
        "WriteSnapshot: the artifact stores dictionary-encoded columns; "
        "create the service with ServiceOptions::columnar_storage = true");
  }
  // Interning order matters: the engine build (step payloads, residual
  // constants) and the master encodings below all intern into dict_
  // BEFORE the dictionary section is written, so the ids embedded in
  // the checkpoint and the columns are ids of the serialized dict.
  RELACC_RETURN_NOT_OK(EnsureDefaultEngine());
  ChaseCheckpoint checkpoint;
  engine_->ExportCheckpoint(&checkpoint);  // !ok is a serializable state

  std::vector<ColumnarRelation> owned_masters;
  snapshot::SnapshotContents contents;
  if (reader_ != nullptr) {
    for (const ColumnarRelation& master : cmasters_) {
      contents.masters.push_back(&master);
    }
  } else {
    owned_masters.reserve(spec_.masters.size());
    for (const Relation& master : spec_.masters) {
      owned_masters.push_back(
          ColumnarRelation::FromRelation(master, dict_.get()));
    }
    for (const ColumnarRelation& master : owned_masters) {
      contents.masters.push_back(&master);
    }
  }
  contents.dict = dict_.get();
  contents.entity = cie_.get();
  contents.rules = &spec_.rules;
  contents.config = &spec_.config;
  contents.program = program_.get();
  contents.checkpoint = &checkpoint;
  contents.tool_version = kRelaccVersion;
  return snapshot::WriteSnapshotFile(contents, path);
}

snapshot::MemoCache::Stats AccuracyService::memo_stats() const {
  if (memo_ == nullptr) return snapshot::MemoCache::Stats();
  return memo_->stats();
}

uint64_t AccuracyService::OwnEntityFingerprint() {
  if (!own_entity_fp_set_) {
    own_entity_fp_ =
        snapshot::FingerprintRelation(snapshot::kFnvOffset, spec_.ie);
    own_entity_fp_set_ = true;
  }
  return own_entity_fp_;
}

Status AccuracyService::EnsureDefaultEngine() {
  if (engine_ != nullptr) return Status::OK();
  // Sharded bring-up (the large-|Ie| startup path): grounding and the
  // engine's index build both fan out over the budget pool; the chase to
  // the checkpoint itself stays sequential (and lazy).
  const int shards = GroundShardCount();
  ThreadPool* pool = shards > 1 ? &ChasePool() : nullptr;
  if (reader_ != nullptr) {
    // Snapshot path: the program and the chased checkpoint come from the
    // artifact — no grounding, no chase. The engine is still only built
    // on demand (TopK, candidate checks, interactions); the default
    // DeduceEntity never gets here.
    auto program_res = reader_->LoadProgram();
    if (!program_res.ok()) return program_res.status();
    program_ =
        std::make_unique<GroundProgram>(std::move(program_res).value());
    engine_ = std::make_unique<ChaseEngine>(*cie_, program_.get(),
                                            spec_.config, pool);
    Status imported = engine_->ImportCheckpoint(*checkpoint_image_);
    if (!imported.ok()) {
      engine_.reset();
      program_.reset();
      return imported;
    }
    engine_token_ = NewBindingToken();
    return Status::OK();
  }
  if (options_.columnar_storage) {
    cie_ = std::make_unique<ColumnarRelation>(
        ColumnarRelation::FromRelation(spec_.ie, dict_.get()));
    program_ = std::make_unique<GroundProgram>(
        Instantiate(*cie_, spec_.masters, spec_.rules, shards, pool));
    engine_ = std::make_unique<ChaseEngine>(*cie_, program_.get(),
                                            spec_.config, pool);
  } else {
    program_ = std::make_unique<GroundProgram>(
        Instantiate(spec_.ie, spec_.masters, spec_.rules, shards, pool));
    engine_ = std::make_unique<ChaseEngine>(spec_.ie, program_.get(),
                                            spec_.config, pool, dict_.get());
  }
  engine_token_ = NewBindingToken();
  return Status::OK();
}

ThreadPool& AccuracyService::ChasePool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(budget_);
  return *pool_;
}

const CandidateChecker& AccuracyService::AcquireChecker(
    const ChaseEngine& engine, uint64_t token) {
  if (checker_ == nullptr) {
    checker_ = std::make_unique<CandidateChecker>(engine, budget_);
    bound_token_ = token;
  } else if (bound_token_ != token) {
    checker_->Rebind(engine);
    bound_token_ = token;
  }
  return *checker_;
}

void AccuracyService::EnsureCompletionSlots(int workers) {
  if (static_cast<int>(completion_checkers_.size()) < workers) {
    completion_checkers_.resize(static_cast<std::size_t>(workers));
  }
}

const CandidateChecker& AccuracyService::AcquireCompletionChecker(
    int slot, int width, const ChaseEngine& engine) {
  std::unique_ptr<CandidateChecker>& holder =
      completion_checkers_[static_cast<std::size_t>(slot)];
  if (holder == nullptr || holder->num_threads() != width) {
    // First use of the slot, or a session with a different per-worker
    // width: (re)spawn the slot's pool at the right width.
    holder = std::make_unique<CandidateChecker>(engine, width);
  } else {
    // The common case: the pool survives, only the worker engines are
    // dropped and lazily rebuilt over the new entity.
    holder->Rebind(engine);
  }
  return *holder;
}

Result<ChaseOutcome> AccuracyService::DeduceEntity() {
  if (reader_ != nullptr && engine_ == nullptr && !spec_.config.keep_orders) {
    // The artifact carries the chased all-null checkpoint, so the warm
    // answer needs neither grounding nor an engine: O(1) in |Γ| and in
    // the master sizes. keep_orders falls through — the caller asked
    // for the closed orders, which only the engine materializes.
    return *snapshot_outcome_;
  }
  RELACC_RETURN_NOT_OK(EnsureDefaultEngine());
  return engine_->RunFromCheckpoint();
}

Result<ChaseOutcome> AccuracyService::DeduceEntity(const Relation& entity) {
  RELACC_RETURN_NOT_OK(EnsureMasters());
  const bool memoize =
      memo_ != nullptr && memo_->enabled() && !spec_.config.keep_orders;
  uint64_t key = 0;
  if (memoize) {
    key = snapshot::MemoKey(snapshot::MemoKind::kDeduce,
                            snapshot::FingerprintRelation(
                                snapshot::kFnvOffset, entity),
                            0);
    if (auto hit = memo_->Lookup(key)) return hit->outcome;
  }
  const int shards = GroundShardCount();
  ThreadPool* pool = shards > 1 ? &ChasePool() : nullptr;
  ChaseOutcome outcome;
  if (options_.columnar_storage) {
    // One-shot: a call-local dictionary, so no state (or memory) is
    // retained by the service for ad-hoc entities.
    Dictionary local_dict;
    const ColumnarRelation cie =
        ColumnarRelation::FromRelation(entity, &local_dict);
    const GroundProgram program =
        Instantiate(cie, spec_.masters, spec_.rules, shards, pool);
    ChaseEngine engine(cie, &program, spec_.config, pool);
    outcome = engine.RunFromInitial();
  } else {
    const GroundProgram program =
        Instantiate(entity, spec_.masters, spec_.rules, shards, pool);
    ChaseEngine engine(entity, &program, spec_.config, pool);
    outcome = engine.RunFromInitial();
  }
  if (memoize) {
    auto entry = std::make_shared<snapshot::MemoEntry>();
    entry->outcome = outcome;
    memo_->Insert(key, std::move(entry));
  }
  return outcome;
}

Result<TopKResult> AccuracyService::TopK(int k, TopKAlgorithm algo,
                                         TopKOptions topk,
                                         const PreferenceModel* preference) {
  if (k < 1) {
    return Status::InvalidArgument("TopK: k must be >= 1, got " +
                                   std::to_string(k));
  }
  RELACC_RETURN_NOT_OK(ValidateManagedTopK(topk, "AccuracyService::TopK"));
  RELACC_RETURN_NOT_OK(EnsureMasters());
  RELACC_RETURN_NOT_OK(EnsureDefaultEngine());
  const ChaseOutcome outcome = engine_->RunFromCheckpoint();
  if (!outcome.church_rosser) {
    return Status::FailedPrecondition(
        "specification is not Church-Rosser: " + outcome.violation);
  }
  // A complete deduced target is not an error: the algorithms verify it
  // and return it as its own sole candidate (their m == 0 branch).
  PreferenceModel local_pref;
  if (preference == nullptr) {
    local_pref = PreferenceModel::FromOccurrences(spec_.ie, spec_.masters);
    preference = &local_pref;
  }
  topk.num_threads = budget_;
  topk.checker = &AcquireChecker(*engine_, engine_token_);
  switch (algo) {
    case TopKAlgorithm::kHeuristic:
      return TopKCTh(*engine_, spec_.masters, outcome.target, *preference, k,
                     topk);
    case TopKAlgorithm::kRankJoin:
      return RankJoinCT(*engine_, spec_.masters, outcome.target, *preference,
                        k, topk);
    case TopKAlgorithm::kBruteForce:
      return TopKBruteForce(*engine_, spec_.masters, outcome.target,
                            *preference, k, topk);
    case TopKAlgorithm::kTopKCT:
      break;
  }
  return TopKCT(*engine_, spec_.masters, outcome.target, *preference, k,
                topk);
}

Result<std::vector<char>> AccuracyService::CheckCandidates(
    const std::vector<Tuple>& candidates) {
  const bool memoize = memo_ != nullptr && memo_->enabled();
  uint64_t key = 0;
  if (memoize) {
    key = snapshot::MemoKey(
        snapshot::MemoKind::kVerdicts, OwnEntityFingerprint(),
        snapshot::FingerprintTuples(snapshot::kFnvOffset, candidates));
    if (auto hit = memo_->Lookup(key)) return hit->verdicts;
  }
  RELACC_RETURN_NOT_OK(EnsureDefaultEngine());
  std::vector<char> verdicts =
      AcquireChecker(*engine_, engine_token_).CheckAll(candidates);
  if (memoize) {
    auto entry = std::make_shared<snapshot::MemoEntry>();
    entry->verdicts = verdicts;
    memo_->Insert(key, std::move(entry));
  }
  return verdicts;
}

Result<std::unique_ptr<PipelineSession>> AccuracyService::StartPipeline(
    PipelineSessionOptions options) {
  RELACC_RETURN_NOT_OK(
      ValidateManagedTopK(options.topk, "AccuracyService::StartPipeline"));
  RELACC_RETURN_NOT_OK(EnsureMasters());
  if (options.window < 0) {
    return Status::InvalidArgument(
        "PipelineSessionOptions::window must be >= 0 (0 = service default), "
        "got " +
        std::to_string(options.window));
  }
  if (options.completion_workers < 0) {
    return Status::InvalidArgument(
        "PipelineSessionOptions::completion_workers must be >= 0 "
        "(0 = thread plan), got " +
        std::to_string(options.completion_workers));
  }
  const int64_t window =
      options.window == 0 ? options_.window : options.window;
  const CompletionPolicy completion =
      options.completion.value_or(options_.completion);
  return std::unique_ptr<PipelineSession>(
      new PipelineSession(this, std::move(options), completion, window));
}

Result<std::unique_ptr<InteractionSession>>
AccuracyService::StartInteractionImpl(InteractionOptions options,
                                      std::unique_ptr<Relation> own_ie) {
  if (options.k < 1) {
    return Status::InvalidArgument(
        "InteractionOptions::k must be >= 1, got " +
        std::to_string(options.k));
  }
  RELACC_RETURN_NOT_OK(
      ValidateManagedTopK(options.topk, "AccuracyService::StartInteraction"));
  RELACC_RETURN_NOT_OK(EnsureMasters());
  auto session = std::unique_ptr<InteractionSession>(
      new InteractionSession(this, std::move(options)));
  const Relation* ie;
  const ColumnarRelation* cie = nullptr;
  const GroundProgram* program;
  if (own_ie == nullptr) {
    RELACC_RETURN_NOT_OK(EnsureDefaultEngine());
    ie = &spec_.ie;
    cie = cie_.get();
    program = program_.get();
  } else {
    session->own_ie_ = std::move(own_ie);
    const int shards = GroundShardCount();
    ThreadPool* pool = shards > 1 ? &ChasePool() : nullptr;
    ie = session->own_ie_.get();
    if (options_.columnar_storage) {
      session->own_cie_ = std::make_unique<ColumnarRelation>(
          ColumnarRelation::FromRelation(*ie, dict_.get()));
      cie = session->own_cie_.get();
      session->own_program_ = std::make_unique<GroundProgram>(
          Instantiate(*cie, spec_.masters, spec_.rules, shards, pool));
    } else {
      session->own_program_ = std::make_unique<GroundProgram>(Instantiate(
          *session->own_ie_, spec_.masters, spec_.rules, shards, pool));
    }
    program = session->own_program_.get();
  }
  // Session-owned engine either way: the ResumeWith trail session is
  // engine state, so concurrent interactions must not share one engine.
  // Default-entity sessions still share the service checkpoint by
  // pointer (no second all-null chase) — which requires the session
  // engine to intern into the same dictionary as the service engine.
  if (cie != nullptr) {
    session->engine_ =
        std::make_unique<ChaseEngine>(*cie, program, spec_.config);
  } else {
    session->engine_ = std::make_unique<ChaseEngine>(
        *ie, program, spec_.config, nullptr, dict_.get());
  }
  if (session->own_ie_ == nullptr) {
    session->engine_->AdoptCheckpointFrom(*engine_);
  }
  session->token_ = NewBindingToken();
  session->template_ =
      Tuple(std::vector<Value>(ie->schema().size(), Value::Null()));
  if (session->options_.preference == nullptr) {
    session->own_pref_ = PreferenceModel::FromOccurrences(*ie, spec_.masters);
  }
  return session;
}

Result<std::unique_ptr<InteractionSession>> AccuracyService::StartInteraction(
    InteractionOptions options) {
  return StartInteractionImpl(std::move(options), nullptr);
}

Result<std::unique_ptr<InteractionSession>> AccuracyService::StartInteraction(
    Relation entity, InteractionOptions options) {
  return StartInteractionImpl(std::move(options),
                              std::make_unique<Relation>(std::move(entity)));
}

// ---------------------------------------------------------- PipelineSession

PipelineSession::PipelineSession(AccuracyService* service,
                                 PipelineSessionOptions options,
                                 CompletionPolicy completion, int64_t window)
    : service_(service),
      options_(std::move(options)),
      completion_(completion),
      window_(window) {}

PipelineSession::~PipelineSession() {
  if (driver_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    driver_.join();
  }
}

Status PipelineSession::Submit(EntityInstance entity) {
  std::vector<EntityInstance> batch;
  batch.push_back(std::move(entity));
  return Submit(std::move(batch));
}

Status PipelineSession::Submit(std::vector<EntityInstance> batch) {
  if (finished_) {
    return Status::FailedPrecondition(
        "PipelineSession::Submit after Finish()");
  }
  // Validate the whole batch before accepting any of it, so a failed
  // Submit leaves the stream exactly as it was.
  {
    bool have = have_schema_;
    AttrId arity = have ? schema_.size() : 0;
    for (const EntityInstance& e : batch) {
      if (!have) {
        have = true;
        arity = e.schema().size();
        continue;
      }
      if (e.schema().size() != arity) {
        return Status::InvalidArgument(
            "PipelineSession::Submit: entity " +
            std::to_string(e.entity_id()) + " has schema arity " +
            std::to_string(e.schema().size()) + ", stream started with " +
            std::to_string(arity));
      }
    }
  }
  const int64_t accepted = static_cast<int64_t>(batch.size());
  for (EntityInstance& e : batch) {
    if (!have_schema_) {
      schema_ = e.schema();
      have_schema_ = true;
    }
    buffer_.push_back(std::move(e));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.submitted += accepted;
  }
  // Hand every full window to the completion driver and return: the
  // producer keeps streaming while the driver chases and completes. The
  // bounded hand-off queue keeps in-flight engines (and buffered input)
  // O(window) no matter how large a batch arrives. Under inline_windows
  // the same windows are processed right here on the caller's thread
  // instead — no driver, identical reports.
  std::size_t pos = 0;
  while (static_cast<int64_t>(buffer_.size() - pos) >= window_) {
    const auto begin = buffer_.begin() + static_cast<std::ptrdiff_t>(pos);
    std::vector<EntityInstance> window(
        std::make_move_iterator(begin),
        std::make_move_iterator(begin +
                                static_cast<std::ptrdiff_t>(window_)));
    if (options_.inline_windows) {
      CommitWindow(ProcessWindow(window), window.size());
    } else {
      EnqueueWindow(std::move(window));
    }
    pos += static_cast<std::size_t>(window_);
  }
  if (pos > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return Status::OK();
}

void PipelineSession::EnqueueWindow(std::vector<EntityInstance> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!driver_.joinable()) {
    driver_ = std::thread([this] { DriverLoop(); });
  }
  space_cv_.wait(lock, [this] { return queued_.size() < kMaxQueuedWindows; });
  queued_.push_back(std::move(batch));
  work_cv_.notify_one();
}

void PipelineSession::DriverLoop() {
  for (;;) {
    std::vector<EntityInstance> window;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutdown_ || !queued_.empty(); });
      // Shutdown drains the queue first: hand-offs are owed processing
      // even when the session is torn down without Finish.
      if (queued_.empty()) return;
      window = std::move(queued_.front());
      queued_.pop_front();
      driver_busy_ = true;
    }
    space_cv_.notify_one();
    WindowResult result = ProcessWindow(window);
    CommitWindow(std::move(result), window.size());
  }
}

void PipelineSession::CommitWindow(WindowResult result,
                                   std::size_t entity_count) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (EntityReport& r : result.reports) {
      reports_.push_back(std::move(r));
    }
    stats_.processed += static_cast<int64_t>(entity_count);
    ++stats_.windows;
    stats_.peak_in_flight_engines = std::max(stats_.peak_in_flight_engines,
                                             result.in_flight_engines);
    driver_busy_ = false;
  }
  idle_cv_.notify_all();
}

PipelineSession::WindowResult PipelineSession::ProcessWindow(
    const std::vector<EntityInstance>& entities) {
  const Specification& spec = service_->spec_;
  const int64_t count = static_cast<int64_t>(entities.size());
  WindowResult result;
  result.reports.resize(entities.size());
  std::vector<std::unique_ptr<PendingCompletion>> pending(entities.size());
  Dictionary* const dict =
      service_->options_.columnar_storage ? service_->dict_.get() : nullptr;
  service_->ChasePool().ParallelFor(count, [&](int64_t k) {
    result.reports[static_cast<std::size_t>(k)] = ChaseEntityPhase(
        entities[static_cast<std::size_t>(k)], spec.masters, spec.rules,
        spec.config, completion_, dict,
        &pending[static_cast<std::size_t>(k)]);
  });

  std::vector<int64_t> todo;
  for (int64_t k = 0; k < count; ++k) {
    if (pending[static_cast<std::size_t>(k)] != nullptr) todo.push_back(k);
  }
  result.in_flight_engines = static_cast<int64_t>(todo.size());
  if (todo.empty()) return result;

  // The two-dimensional completion split, resolved against what this
  // window actually carries into phase 2: entity-level workers up to
  // the pending count, the rest of the budget as per-worker check
  // width. A window with a single incomplete entity therefore hands
  // that entity's checker the whole budget — exactly the pre-plan
  // one-wide-checker schedule — while a full window goes maximally
  // entity-parallel. A forced worker count (the serial baseline and the
  // determinism matrix) keeps the product invariant by shrinking the
  // width instead.
  const int workers =
      options_.completion_workers > 0
          ? std::min(options_.completion_workers, service_->budget_)
          : ComputePipelineThreadPlan(service_->budget_,
                                      static_cast<int64_t>(todo.size()))
                .completion_workers;
  const int check_width = std::max(1, service_->budget_ / workers);

  // Entity-parallel across the completion-worker slots: each slot
  // completes whole entities through its own persistent checker
  // (Rebind-reused across entities; a slot checker may still be bound to
  // an engine that is already gone — Rebind is documented safe for
  // that). Every per-entity completion is a pure function of the entity
  // and its engine, and results land at the entity's input index, so the
  // reduction is byte-identical to the serial loop for every worker
  // count and check width.
  TopKOptions topk = options_.topk;
  topk.num_threads = check_width;
  if (options_.reuse_checkers) {
    service_->EnsureCompletionSlots(workers);
  }
  service_->ChasePool().ParallelForSlots(
      static_cast<int64_t>(todo.size()), workers,
      [&](int slot, int64_t t) {
        const std::size_t k =
            static_cast<std::size_t>(todo[static_cast<std::size_t>(t)]);
        std::unique_ptr<PendingCompletion>& p = pending[k];
        const ChaseEngine& engine = *p->engine;
        std::unique_ptr<CandidateChecker> fresh;
        const CandidateChecker* checker;
        if (options_.reuse_checkers) {
          checker = &service_->AcquireCompletionChecker(slot, check_width,
                                                        engine);
        } else {
          fresh = std::make_unique<CandidateChecker>(engine, check_width);
          checker = fresh.get();
        }
        CompleteEntityPhase(entities[k], spec.masters, completion_, topk,
                            options_.preference, engine, *checker,
                            &result.reports[k]);
        p.reset();  // free the checkpoint/probe memory as we go
      });
  return result;
}

std::optional<EntityReport> PipelineSession::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_poll_ >= reports_.size()) return std::nullopt;
  return reports_[next_poll_++];
}

std::vector<EntityReport> PipelineSession::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntityReport> out(
      reports_.begin() + static_cast<std::ptrdiff_t>(next_poll_),
      reports_.end());
  next_poll_ = reports_.size();
  return out;
}

PipelineSession::Stats PipelineSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<PipelineReport> PipelineSession::Finish() {
  if (finished_) {
    return Status::FailedPrecondition(
        "PipelineSession::Finish called twice");
  }
  if (!buffer_.empty()) {
    std::vector<EntityInstance> tail;
    tail.swap(buffer_);
    if (driver_.joinable()) {
      // Keep the strict window order: the tail goes through the same
      // queue as every full window.
      EnqueueWindow(std::move(tail));
    } else {
      // No window ever filled — the whole stream is this tail; process
      // it inline rather than spinning up a driver to retire one chunk.
      CommitWindow(ProcessWindow(tail), tail.size());
    }
  }
  if (driver_.joinable()) {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock,
                  [this] { return queued_.empty() && !driver_busy_; });
  }
  finished_ = true;

  // Deterministic aggregation in input order — field for field what the
  // legacy batch RunPipeline produced, including the thread plan it
  // would have computed for this entity count.
  PipelineReport report;
  report.entities = reports_;
  report.plan =
      ComputePipelineThreadPlan(service_->budget_, stats_.submitted);
  const Schema schema = have_schema_ ? schema_ : Schema();
  report.targets = Relation(schema);
  int64_t attrs_total = 0;
  int64_t attrs_deduced = 0;
  for (std::size_t i = 0; i < report.entities.size(); ++i) {
    const EntityReport& e = report.entities[i];
    report.total_tuples += e.num_tuples;
    if (!e.church_rosser) {
      ++report.num_non_church_rosser;
      continue;
    }
    ++report.num_church_rosser;
    attrs_total += schema.size();
    attrs_deduced += e.deduced_attrs;
    if (e.complete && !e.used_candidate) ++report.num_complete_by_chase;
    if (e.complete && e.used_candidate) ++report.num_completed_by_candidates;
    if (!e.complete) ++report.num_incomplete;
    report.targets.Add(e.target);
    report.row_entity.push_back(static_cast<int>(i));
  }
  report.deduced_attr_fraction =
      attrs_total > 0 ? static_cast<double>(attrs_deduced) /
                            static_cast<double>(attrs_total)
                      : 0.0;
  return report;
}

// ------------------------------------------------------- InteractionSession

InteractionSession::InteractionSession(AccuracyService* service,
                                       InteractionOptions options)
    : service_(service), options_(std::move(options)) {}

InteractionSession::~InteractionSession() = default;

Result<Suggestion> InteractionSession::Suggest() {
  if (finished_) {
    return Status::FailedPrecondition(
        "InteractionSession::Suggest after the session finished");
  }
  Suggestion s;
  const ChaseOutcome outcome = options_.incremental
                                   ? engine_->ResumeWith(template_)
                                   : engine_->Run(template_);
  s.church_rosser = outcome.church_rosser;
  if (!outcome.church_rosser) {
    s.violation = outcome.violation;
    last_.reset();
    return s;
  }
  s.deduced_target = outcome.target;
  s.complete = outcome.target.IsComplete();
  if (s.complete) {
    finished_ = true;
    final_target_ = outcome.target;
    last_.reset();
    return s;
  }
  const PreferenceModel* pref = options_.preference != nullptr
                                    ? options_.preference
                                    : &own_pref_;
  TopKOptions topk = options_.topk;
  topk.num_threads = service_->budget_;
  topk.checker = &service_->AcquireChecker(*engine_, token_);
  s.candidates =
      TopKCT(*engine_, service_->spec_.masters, s.deduced_target, *pref,
             options_.k, topk);
  last_ = s;
  return s;
}

Status InteractionSession::Revise(AttrId attr, Value value) {
  if (finished_) {
    return Status::FailedPrecondition(
        "InteractionSession::Revise after the session finished");
  }
  if (attr < 0 || attr >= template_.size()) {
    return Status::InvalidArgument(
        "Revise: attribute " + std::to_string(attr) +
        " out of range [0, " + std::to_string(template_.size()) + ")");
  }
  if (value.is_null()) {
    return Status::InvalidArgument(
        "Revise: a revision supplies a known value; got null");
  }
  template_.set(attr, std::move(value));
  ++revisions_;
  last_.reset();  // the previous candidates no longer match the template
  return Status::OK();
}

Result<Tuple> InteractionSession::Accept(int index) {
  if (finished_) {
    return Status::FailedPrecondition(
        "InteractionSession::Accept after the session finished");
  }
  if (!last_.has_value()) {
    return Status::FailedPrecondition(
        "Accept: no suggestion outstanding; call Suggest() first");
  }
  if (index < 0 ||
      index >= static_cast<int>(last_->candidates.targets.size())) {
    return Status::OutOfRange(
        "Accept: candidate index " + std::to_string(index) +
        " out of range [0, " +
        std::to_string(last_->candidates.targets.size()) + ")");
  }
  finished_ = true;
  final_target_ = last_->candidates.targets[index];
  return final_target_;
}

}  // namespace relacc
