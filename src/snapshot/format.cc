#include "snapshot/format.h"

#include <array>

namespace relacc {
namespace snapshot {

namespace {

/// 8 slicing tables for the reflected IEEE polynomial, built once.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, std::size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Word-at-a-time main loop (little-endian load; the artifact and the
  // supported hosts are both LE by the format.h static_assert).
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
          t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
          t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
          t[1][(word >> 48) & 0xFFu] ^ t[0][word >> 56];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

namespace {

/// GF(2) 32x32 matrix times vector (matrices represent the effect of
/// shifting a CRC register over zero bytes).
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace

uint32_t Crc32Combine(uint32_t crc1, uint32_t crc2, uint64_t len2) {
  if (len2 == 0) return crc1;  // Crc32 of an empty suffix changes nothing
  uint32_t even[32];
  uint32_t odd[32];

  // Operator for one zero bit: the polynomial in row 0, shifts above.
  odd[0] = 0xEDB88320u;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // 2 zero bits
  Gf2MatrixSquare(odd, even);  // 4 zero bits; first squaring below is 8 = 1 byte

  // Advance crc1 over len2 zero bytes, squaring the operator per bit of
  // len2 (so the loop is O(log len2) matrix squarings).
  do {
    Gf2MatrixSquare(even, odd);
    if (len2 & 1u) crc1 = Gf2MatrixTimes(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len2 & 1u) crc1 = Gf2MatrixTimes(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

void ByteSink::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      I64(v.as_int());
      break;
    case ValueType::kDouble:
      F64(v.as_double());
      break;
    case ValueType::kString:
      Str(v.as_string());
      break;
    case ValueType::kBool:
      U8(v.as_bool() ? 1 : 0);
      break;
  }
}

void ByteSink::AlignTo(std::size_t alignment) {
  while (bytes_.size() % alignment != 0) bytes_.push_back(0);
}

std::string ByteCursor::Str() {
  const uint32_t len = U32();
  const auto* p = reinterpret_cast<const char*>(data_ + pos_);
  if (failed_ || size_ - pos_ < len) {
    failed_ = true;
    return std::string();
  }
  pos_ += len;
  return std::string(p, len);
}

Value ByteCursor::Val() {
  switch (static_cast<ValueType>(U8())) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value::Int(I64());
    case ValueType::kDouble:
      return Value::Real(F64());
    case ValueType::kString:
      return Value::Str(Str());
    case ValueType::kBool:
      return Value::Bool(U8() != 0);
  }
  failed_ = true;
  return Value::Null();
}

}  // namespace snapshot
}  // namespace relacc
