#include "snapshot/writer.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "snapshot/format.h"

namespace relacc {
namespace snapshot {

namespace {

void EncodeSchema(const Schema& schema, ByteSink* out) {
  out->U32(static_cast<uint32_t>(schema.size()));
  for (AttrId a = 0; a < schema.size(); ++a) {
    out->Str(schema.name(a));
    out->U8(static_cast<uint8_t>(schema.type(a)));
  }
}

/// One columnar relation: schema, row count, then the fixed-width
/// payloads each 8-aligned *within the section* — sections are
/// 8-aligned in the file, so section-relative alignment is absolute
/// alignment and the reader can hand the arrays to
/// ColumnarRelation::FromBorrowed in place.
void EncodeColumnar(const ColumnarRelation& rel, ByteSink* out) {
  EncodeSchema(rel.schema(), out);
  const auto rows = static_cast<std::size_t>(rel.size());
  out->U64(rows);
  for (AttrId a = 0; a < rel.schema().size(); ++a) {
    out->AlignTo(8);
    out->Raw(rel.column(a).data(), rows * sizeof(TermId));
  }
  const std::size_t words = (rows + 63) / 64;
  for (AttrId a = 0; a < rel.schema().size(); ++a) {
    out->AlignTo(8);
    out->Raw(rel.nulls(a).words(), words * sizeof(uint64_t));
  }
  out->AlignTo(8);
  out->Raw(rel.row_ids().data(), rows * sizeof(int64_t));
  out->AlignTo(8);
  out->Raw(rel.row_sources().data(), rows * sizeof(int32_t));
  out->AlignTo(4);
  out->Raw(rel.row_snapshots().data(), rows * sizeof(int32_t));
}

void EncodeDict(const Dictionary& dict, ByteSink* out) {
  const uint64_t count = dict.size();
  out->U64(count);
  for (TermId id = kNullTermId + 1; id < count; ++id) {
    out->Val(dict.value(id));
  }
}

void EncodeRules(const std::vector<AccuracyRule>& rules, ByteSink* out) {
  out->U32(static_cast<uint32_t>(rules.size()));
  for (const AccuracyRule& rule : rules) {
    out->U8(static_cast<uint8_t>(rule.form));
    out->Str(rule.name);
    out->U8(static_cast<uint8_t>(rule.provenance));
    out->I32(rule.line);
    out->I32(rule.column);
    out->U32(static_cast<uint32_t>(rule.lhs.size()));
    for (const TuplePairPredicate& p : rule.lhs) {
      out->U8(static_cast<uint8_t>(p.kind));
      out->I32(p.which);
      out->I32(p.left_attr);
      out->I32(p.right_attr);
      out->U8(static_cast<uint8_t>(p.op));
      out->Val(p.constant);
      out->U8(p.strict ? 1 : 0);
    }
    out->I32(rule.rhs_attr);
    out->I32(rule.master_index);
    out->U32(static_cast<uint32_t>(rule.master_lhs.size()));
    for (const MasterPredicate& p : rule.master_lhs) {
      out->U8(static_cast<uint8_t>(p.kind));
      out->I32(p.te_attr);
      out->I32(p.master_attr);
      out->U8(static_cast<uint8_t>(p.op));
      out->Val(p.constant);
    }
    out->U32(static_cast<uint32_t>(rule.assignments.size()));
    for (const auto& [te_attr, tm_attr] : rule.assignments) {
      out->I32(te_attr);
      out->I32(tm_attr);
    }
  }
}

/// Ground steps carry their Values directly (tag + payload, not TermId
/// references): decoding then never depends on dictionary state, and
/// the loaded program is GroundProgram::operator==-identical to the
/// one Instantiate produced — the identity tests diff them directly.
void EncodeProgram(const GroundProgram& program, ByteSink* out) {
  out->U32(static_cast<uint32_t>(program.num_tuples));
  out->U32(static_cast<uint32_t>(program.num_attrs));
  out->U64(program.steps.size());
  for (const GroundStep& step : program.steps) {
    out->U8(static_cast<uint8_t>(step.kind));
    out->I32(step.attr);
    out->I32(step.i);
    out->I32(step.j);
    out->Val(step.te_value);
    out->I32(step.rule_id);
    out->U32(static_cast<uint32_t>(step.residual.size()));
    for (const GroundPredicate& p : step.residual) {
      out->U8(static_cast<uint8_t>(p.kind));
      out->I32(p.attr);
      out->I32(p.i);
      out->I32(p.j);
      out->U8(static_cast<uint8_t>(p.op));
      out->Val(p.constant);
    }
  }
  out->U32(static_cast<uint32_t>(program.rule_names.size()));
  for (const std::string& name : program.rule_names) out->Str(name);
}

void EncodeCheckpoint(const ChaseCheckpoint& cp, ByteSink* out) {
  out->U8(cp.ok ? 1 : 0);
  if (!cp.ok) {
    out->Str(cp.violation);
    out->I64(cp.steps_applied);
    out->I64(cp.pairs_derived);
    return;
  }
  out->U32(static_cast<uint32_t>(cp.te.size()));
  out->U64(cp.remaining.size());
  out->AlignTo(8);
  out->Raw(cp.te.data(), cp.te.size() * sizeof(TermId));
  out->AlignTo(8);
  out->Raw(cp.te_rule.data(), cp.te_rule.size() * sizeof(int32_t));
  out->AlignTo(8);
  out->Raw(cp.remaining.data(), cp.remaining.size() * sizeof(int32_t));
  out->AlignTo(8);
  out->Raw(cp.dead.data(), cp.dead.size() * sizeof(uint8_t));
  for (const std::vector<uint64_t>& succ : cp.order_succ) {
    out->AlignTo(8);
    out->U64(succ.size());
    out->Raw(succ.data(), succ.size() * sizeof(uint64_t));
  }
  out->I64(cp.steps_applied);
  out->I64(cp.pairs_derived);
  out->I64(cp.actions);
}

void EncodeMeta(const SnapshotContents& c, ByteSink* out) {
  out->Str(c.tool_version);
  out->U8(c.config->builtin_axioms ? 1 : 0);
  out->U8(c.config->keep_orders ? 1 : 0);
  out->I64(c.config->max_actions);
  out->U8(static_cast<uint8_t>(c.config->check_strategy));
  out->U32(static_cast<uint32_t>(c.entity->schema().size()));
  out->U64(static_cast<uint64_t>(c.entity->size()));
  out->U32(static_cast<uint32_t>(c.masters.size()));
  out->U64(c.dict->size());
  out->U64(c.program->steps.size());
  out->U8(c.checkpoint->ok ? 1 : 0);
}

}  // namespace

Status WriteSnapshotFile(const SnapshotContents& c, const std::string& path) {
  if (c.dict == nullptr || c.entity == nullptr || c.rules == nullptr ||
      c.config == nullptr || c.program == nullptr || c.checkpoint == nullptr) {
    return Status::InvalidArgument(
        "WriteSnapshotFile: incomplete SnapshotContents");
  }

  // Assemble every section payload in memory first; the masters
  // dominate and are written as raw column copies, so the transient
  // footprint is roughly one copy of the columnar data.
  struct Section {
    SectionType type;
    ByteSink payload;
  };
  std::vector<Section> sections;
  sections.resize(7);
  sections[0].type = SectionType::kMeta;
  EncodeMeta(c, &sections[0].payload);
  sections[1].type = SectionType::kDict;
  EncodeDict(*c.dict, &sections[1].payload);
  sections[2].type = SectionType::kEntity;
  EncodeColumnar(*c.entity, &sections[2].payload);
  sections[3].type = SectionType::kMasters;
  {
    ByteSink& out = sections[3].payload;
    out.U32(static_cast<uint32_t>(c.masters.size()));
    for (const ColumnarRelation* master : c.masters) {
      out.AlignTo(8);
      EncodeColumnar(*master, &out);
    }
  }
  sections[4].type = SectionType::kRules;
  EncodeRules(*c.rules, &sections[4].payload);
  sections[5].type = SectionType::kProgram;
  EncodeProgram(*c.program, &sections[5].payload);
  sections[6].type = SectionType::kCheckpoint;
  EncodeCheckpoint(*c.checkpoint, &sections[6].payload);

  // Lay out the file: header, table, 8-aligned payloads.
  const std::size_t table_bytes = kSectionEntryBytes * sections.size();
  std::vector<SectionEntry> table(sections.size());
  uint64_t offset = kHeaderBytes + table_bytes;
  for (std::size_t s = 0; s < sections.size(); ++s) {
    offset = (offset + 7) & ~uint64_t{7};
    table[s].type = sections[s].type;
    table[s].offset = offset;
    table[s].size = sections[s].payload.size();
    table[s].crc = Crc32(sections[s].payload.bytes().data(),
                         sections[s].payload.size());
    offset += table[s].size;
  }
  const uint64_t file_size = offset;

  ByteSink head;
  head.Raw(kMagic, sizeof(kMagic));
  head.U32(kFormatVersion);
  head.U32(static_cast<uint32_t>(sections.size()));
  head.U64(file_size);
  // Header CRC covers bytes [0, 24) plus the whole table; encode the
  // table first, then splice the CRC into its slot.
  ByteSink table_sink;
  for (const SectionEntry& e : table) {
    table_sink.U32(static_cast<uint32_t>(e.type));
    table_sink.U32(0);
    table_sink.U64(e.offset);
    table_sink.U64(e.size);
    table_sink.U32(e.crc);
    table_sink.U32(0);
  }
  uint32_t head_crc = Crc32(head.bytes().data(), head.size());
  head_crc = Crc32(table_sink.bytes().data(), table_sink.size(), head_crc);
  head.U32(head_crc);
  head.U32(0);  // reserved

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("snapshot: cannot open " + tmp + " for writing");
  }
  auto write_all = [&](const void* data, std::size_t size) {
    return size == 0 || std::fwrite(data, 1, size, f) == size;
  };
  bool ok = write_all(head.bytes().data(), head.size()) &&
            write_all(table_sink.bytes().data(), table_sink.size());
  uint64_t written = kHeaderBytes + table_bytes;
  static const char kZeros[8] = {0};
  for (std::size_t s = 0; ok && s < sections.size(); ++s) {
    const uint64_t pad = table[s].offset - written;
    ok = write_all(kZeros, static_cast<std::size_t>(pad)) &&
         write_all(sections[s].payload.bytes().data(),
                   sections[s].payload.size());
    written = table[s].offset + table[s].size;
  }
  ok = ok && std::fflush(f) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot: cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace snapshot
}  // namespace relacc
