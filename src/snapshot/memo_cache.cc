#include "snapshot/memo_cache.h"

#include <utility>

namespace relacc {
namespace snapshot {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

uint64_t FingerprintBytes(uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FingerprintValue(uint64_t h, const Value& v) {
  const auto tag = static_cast<uint8_t>(v.type());
  h = FingerprintBytes(h, &tag, 1);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      const int64_t i = v.as_int();
      h = FingerprintBytes(h, &i, sizeof(i));
      break;
    }
    case ValueType::kDouble: {
      const double d = v.as_double();
      h = FingerprintBytes(h, &d, sizeof(d));
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.as_string();
      const uint64_t len = s.size();
      h = FingerprintBytes(h, &len, sizeof(len));
      h = FingerprintBytes(h, s.data(), s.size());
      break;
    }
    case ValueType::kBool: {
      const uint8_t b = v.as_bool() ? 1 : 0;
      h = FingerprintBytes(h, &b, 1);
      break;
    }
  }
  return h;
}

uint64_t FingerprintTuple(uint64_t h, const Tuple& t) {
  const int64_t id = t.id();
  const int32_t source = t.source();
  const int32_t snapshot = t.snapshot();
  h = FingerprintBytes(h, &id, sizeof(id));
  h = FingerprintBytes(h, &source, sizeof(source));
  h = FingerprintBytes(h, &snapshot, sizeof(snapshot));
  for (AttrId a = 0; a < t.size(); ++a) {
    h = FingerprintValue(h, t.at(a));
  }
  return h;
}

uint64_t FingerprintTuples(uint64_t h, const std::vector<Tuple>& tuples) {
  const uint64_t count = tuples.size();
  h = FingerprintBytes(h, &count, sizeof(count));
  for (const Tuple& t : tuples) h = FingerprintTuple(h, t);
  return h;
}

uint64_t FingerprintRelation(uint64_t h, const Relation& rel) {
  const uint64_t rows = static_cast<uint64_t>(rel.size());
  h = FingerprintBytes(h, &rows, sizeof(rows));
  for (const Tuple& t : rel.tuples()) h = FingerprintTuple(h, t);
  return h;
}

uint64_t MemoKey(MemoKind kind, uint64_t entity_fp, uint64_t payload_fp) {
  uint64_t h = kFnvOffset;
  const uint64_t tag = static_cast<uint64_t>(kind);
  h = FingerprintBytes(h, &tag, sizeof(tag));
  h = FingerprintBytes(h, &entity_fp, sizeof(entity_fp));
  h = FingerprintBytes(h, &payload_fp, sizeof(payload_fp));
  return h;
}

std::shared_ptr<const MemoEntry> MemoCache::Lookup(uint64_t key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

void MemoCache::Insert(uint64_t key, std::shared_ptr<const MemoEntry> entry) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Node{key, std::move(entry)});
  index_[key] = lru_.begin();
  stats_.entries = static_cast<int64_t>(lru_.size());
}

MemoCache::Stats MemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = static_cast<int64_t>(lru_.size());
  return s;
}

}  // namespace snapshot
}  // namespace relacc
