#ifndef RELACC_SNAPSHOT_MEMO_CACHE_H_
#define RELACC_SNAPSHOT_MEMO_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"
#include "core/tuple.h"

namespace relacc {
namespace snapshot {

/// What one memo entry caches: the verdict vector of a CheckCandidates
/// call, or the full outcome of an ad-hoc DeduceEntity. Entries are
/// immutable once inserted and handed out by shared_ptr, so a hit
/// costs one ref-count bump and eviction never invalidates a reader.
struct MemoEntry {
  std::vector<char> verdicts;  ///< MemoKind::kVerdicts
  ChaseOutcome outcome;        ///< MemoKind::kDeduce
};

/// Namespaces the key space so a verdict fingerprint can never alias a
/// deduce fingerprint.
enum class MemoKind : uint64_t {
  kDeduce = 1,    ///< entity fingerprint -> chase outcome
  kVerdicts = 2,  ///< (entity, candidate set) fingerprint -> verdicts
};

/// FNV-1a (64-bit) accumulators for memo keys. Fingerprints fold the
/// value type tag with the payload bytes, so `int 1` and `"1"` (and
/// null vs. empty string) never collide structurally; distinct inputs
/// colliding at 64 bits is the usual 2^-64 birthday risk a memo cache
/// accepts.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

uint64_t FingerprintBytes(uint64_t h, const void* data, std::size_t size);
uint64_t FingerprintValue(uint64_t h, const Value& v);
uint64_t FingerprintTuple(uint64_t h, const Tuple& t);
uint64_t FingerprintTuples(uint64_t h, const std::vector<Tuple>& tuples);
uint64_t FingerprintRelation(uint64_t h, const Relation& rel);

/// Combines the namespace tag with the entity and payload fingerprints
/// into one cache key.
uint64_t MemoKey(MemoKind kind, uint64_t entity_fp, uint64_t payload_fp);

/// A bounded, thread-safe LRU memo for chase verdicts: the service
/// consults it before fanning a candidate batch out to the checker (or
/// grounding an ad-hoc entity), and repeated requests — the serve
/// daemon's bread and butter under replayed or retried load — skip the
/// chase entirely. Capacity 0 disables the cache (Lookup always
/// misses and counts nothing; Insert drops), which is the default for
/// embedded services; `relacc serve --memo-cache N` turns it on.
class MemoCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;
    int64_t evictions = 0;
  };

  explicit MemoCache(std::size_t capacity) : capacity_(capacity) {}

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  bool enabled() const { return capacity_ > 0; }

  /// The entry under `key`, refreshing its LRU position; null on miss.
  std::shared_ptr<const MemoEntry> Lookup(uint64_t key);

  /// Inserts (or refreshes) `key`, evicting the least recently used
  /// entry when at capacity.
  void Insert(uint64_t key, std::shared_ptr<const MemoEntry> entry);

  Stats stats() const;

 private:
  struct Node {
    uint64_t key;
    std::shared_ptr<const MemoEntry> entry;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  ///< front = most recent
  std::unordered_map<uint64_t, std::list<Node>::iterator> index_;
  Stats stats_;
};

}  // namespace snapshot
}  // namespace relacc

#endif  // RELACC_SNAPSHOT_MEMO_CACHE_H_
