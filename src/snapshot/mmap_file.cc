#include "snapshot/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace relacc {
namespace snapshot {

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("snapshot: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("snapshot: cannot stat " + path + ": " + err);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("snapshot: cannot mmap " + path + ": " + err);
    }
    data = static_cast<const uint8_t*>(mapped);
  }
  // The mapping pins the inode; the descriptor is no longer needed.
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(path, data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace snapshot
}  // namespace relacc
