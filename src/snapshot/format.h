#ifndef RELACC_SNAPSHOT_FORMAT_H_
#define RELACC_SNAPSHOT_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/status.h"

// The relacc snapshot artifact: one little-endian binary file holding
// everything `AccuracyService::Create` otherwise recomputes — the term
// dictionary, the columnar entity instance and master relations, the
// compiled rules, the grounded program and the chased all-null
// checkpoint — so a service starts by mapping the file instead of
// grounding + chasing, and N replicas (threads or processes) share one
// physical copy of the master columns through the page cache.
//
// Layout:
//   [header: 32 bytes][section table: 32 bytes x N][sections, 8-aligned]
//
// header:
//   0..7   magic "RELACCSN"
//   8..11  u32 format version (kFormatVersion)
//   12..15 u32 section count
//   16..23 u64 file size (redundant with stat(); catches truncation of
//          the final section, whose table entry is otherwise valid)
//   24..27 u32 CRC-32 of bytes [0, 24) plus the whole section table
//   28..31 u32 reserved (zero)
//
// Every section carries its own CRC-32 in the table, verified at open
// (kDataLoss on mismatch — a service is never half-built from a bad
// artifact). Sections are self-describing byte streams decoded with
// ByteCursor; fixed-width TermId / null-bitmap payloads are 8-aligned
// so `ColumnarRelation` can view them in place, zero-copy.
//
// Versioning policy: kFormatVersion bumps on ANY layout change — there
// are no minor in-place extensions. A reader rejects every version it
// was not built for with kInvalidArgument and the caller re-builds the
// artifact (`relacc snapshot build` is cheap relative to shipping
// compatibility shims for a cache file).

static_assert(std::endian::native == std::endian::little,
              "snapshot artifacts are little-endian and read in place; "
              "big-endian hosts would need byte-swapping load paths");

namespace relacc {
namespace snapshot {

inline constexpr char kMagic[8] = {'R', 'E', 'L', 'A', 'C', 'C', 'S', 'N'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kSectionEntryBytes = 32;

/// Section identifiers. The table may list them in any order; exactly
/// one of each is required (kMasters covers all master relations).
enum class SectionType : uint32_t {
  kMeta = 1,        ///< versions, ChaseConfig, counts
  kDict = 2,        ///< interned terms, id order 1..n-1
  kEntity = 3,      ///< columnar entity instance Ie
  kMasters = 4,     ///< columnar master relations Im
  kRules = 5,       ///< compiled AccuracyRule set
  kProgram = 6,     ///< grounded program Γ
  kCheckpoint = 7,  ///< chased all-null checkpoint state
};

/// One decoded section-table row (in-memory form; on disk each row is
/// kSectionEntryBytes: u32 type, u32 reserved, u64 offset, u64 size,
/// u32 crc, u32 reserved).
struct SectionEntry {
  SectionType type = SectionType::kMeta;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// CRC-32 (IEEE, reflected 0xEDB88320 — the zlib/PNG polynomial),
/// slicing-by-8 so verifying a mapped gigabyte costs a fraction of the
/// page faults it guards. `seed` chains partial computations.
uint32_t Crc32(const void* data, std::size_t size, uint32_t seed = 0);

/// CRC of a concatenation from the CRCs of its halves: with
/// crc1 = Crc32(A) and crc2 = Crc32(B), returns Crc32(A‖B) for
/// len2 = |B| (the zlib crc32_combine construction — crc1 is advanced
/// by len2 zero bytes via GF(2) matrix exponentiation, then xored with
/// crc2). This is what lets the reader verify one large section as
/// independent chunks on several threads and stitch the results.
uint32_t Crc32Combine(uint32_t crc1, uint32_t crc2, uint64_t len2);

/// Append-only little-endian encoder for section payloads.
class ByteSink {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  void Raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// u32 length + bytes.
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  /// Value as u8 ValueType tag + typed payload (exact, not interned —
  /// decoding never depends on dictionary state).
  void Val(const Value& v);

  /// Pads with zero bytes to the next multiple of `alignment`.
  void AlignTo(std::size_t alignment);

  std::size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a mapped section. Every
/// read fails softly past the end (sticky error; numeric reads return
/// 0), so a decoder loop checks ok() once at the end instead of
/// plumbing a Status through every field — the section CRC already
/// vouches for content, the cursor guards against structural bugs.
class ByteCursor {
 public:
  ByteCursor(const void* data, std::size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  uint8_t U8() { return Fixed<uint8_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }
  int32_t I32() { return Fixed<int32_t>(); }
  int64_t I64() { return Fixed<int64_t>(); }
  double F64() { return Fixed<double>(); }

  std::string Str();
  Value Val();

  /// Pointer to `count` elements of T at the (aligned) current offset,
  /// advancing past them — the zero-copy view used for TermId columns
  /// and bitmap words. nullptr (and the sticky error) when out of
  /// bounds or misaligned.
  template <typename T>
  const T* Array(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (failed_ || size_ - pos_ < bytes || (pos_ % alignof(T)) != 0) {
      failed_ = true;
      return nullptr;
    }
    const T* p = reinterpret_cast<const T*>(data_ + pos_);
    pos_ += bytes;
    return p;
  }

  /// Skips zero padding up to the next multiple of `alignment`.
  void AlignTo(std::size_t alignment) {
    const std::size_t rem = pos_ % alignment;
    if (rem != 0) Skip(alignment - rem);
  }

  void Skip(std::size_t bytes) {
    if (failed_ || size_ - pos_ < bytes) {
      failed_ = true;
      return;
    }
    pos_ += bytes;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return !failed_ && pos_ == size_; }
  std::size_t pos() const { return pos_; }

  /// The sticky error as a Status for the enclosing loader.
  Status ToStatus(const std::string& what) const {
    if (!failed_) return Status::OK();
    return Status::DataLoss("snapshot: malformed " + what + " section");
  }

 private:
  template <typename T>
  T Fixed() {
    T v{};
    if (failed_ || size_ - pos_ < sizeof(T)) {
      failed_ = true;
      return v;
    }
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace snapshot
}  // namespace relacc

#endif  // RELACC_SNAPSHOT_FORMAT_H_
