#include "snapshot/reader.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <utility>

namespace relacc {
namespace snapshot {

namespace {

constexpr uint32_t kMaxSectionType = 7;
constexpr uint32_t kMaxSections = 64;  // sanity bound, format has 7

/// Chunk size for parallel CRC verification at open. Large enough that
/// per-chunk thread overhead vanishes, small enough that a ~300 MB
/// program section splits across every worker.
constexpr uint64_t kCrcChunkBytes = uint64_t{16} << 20;

Status Corrupt(const std::string& what) {
  return Status::DataLoss("snapshot: " + what);
}

/// Pointers into the mapping for one encoded columnar relation; decoded
/// once, consumed either zero-copy (masters) or by an owning copy
/// (the entity instance).
struct ColumnarView {
  Schema schema;
  std::size_t rows = 0;
  std::vector<const TermId*> columns;
  std::vector<const uint64_t*> null_words;
  const int64_t* row_ids = nullptr;
  const int32_t* row_sources = nullptr;
  const int32_t* row_snapshots = nullptr;
};

bool DecodeSchema(ByteCursor* cur, Schema* out) {
  const uint32_t arity = cur->U32();
  if (!cur->ok() || arity > 4096) return false;
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (uint32_t a = 0; a < arity; ++a) {
    Attribute attr;
    attr.name = cur->Str();
    const uint8_t type = cur->U8();
    if (!cur->ok() || type > static_cast<uint8_t>(ValueType::kBool)) {
      return false;
    }
    attr.type = static_cast<ValueType>(type);
    attrs.push_back(std::move(attr));
  }
  *out = Schema(std::move(attrs));
  return cur->ok();
}

bool DecodeColumnarView(ByteCursor* cur, ColumnarView* out) {
  if (!DecodeSchema(cur, &out->schema)) return false;
  const uint64_t rows = cur->U64();
  if (!cur->ok() || rows > (uint64_t{1} << 31)) return false;
  out->rows = static_cast<std::size_t>(rows);
  const int arity = out->schema.size();
  out->columns.resize(static_cast<std::size_t>(arity));
  out->null_words.resize(static_cast<std::size_t>(arity));
  for (int a = 0; a < arity; ++a) {
    cur->AlignTo(8);
    out->columns[static_cast<std::size_t>(a)] =
        cur->Array<TermId>(out->rows);
  }
  const std::size_t words = (out->rows + 63) / 64;
  for (int a = 0; a < arity; ++a) {
    cur->AlignTo(8);
    out->null_words[static_cast<std::size_t>(a)] =
        cur->Array<uint64_t>(words);
  }
  cur->AlignTo(8);
  out->row_ids = cur->Array<int64_t>(out->rows);
  cur->AlignTo(8);
  out->row_sources = cur->Array<int32_t>(out->rows);
  cur->AlignTo(4);
  out->row_snapshots = cur->Array<int32_t>(out->rows);
  return cur->ok();
}

bool DecodeCompareOp(uint8_t raw, CompareOp* out) {
  if (raw > static_cast<uint8_t>(CompareOp::kGe)) return false;
  *out = static_cast<CompareOp>(raw);
  return true;
}

}  // namespace

Result<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  auto file_res = MmapFile::Open(path);
  if (!file_res.ok()) return file_res.status();
  std::shared_ptr<MmapFile> file = std::move(file_res).value();
  const uint8_t* data = file->data();
  const std::size_t size = file->size();

  if (size < kHeaderBytes) {
    return Corrupt("file truncated before the header (" +
                   std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "snapshot: " + path + " is not a relacc snapshot (bad magic)");
  }
  ByteCursor head(data + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  const uint32_t version = head.U32();
  const uint32_t section_count = head.U32();
  const uint64_t stated_size = head.U64();
  const uint32_t stated_crc = head.U32();
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "snapshot: format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kFormatVersion) + "); rebuild the artifact with "
        "`relacc snapshot build`");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Corrupt("implausible section count " +
                   std::to_string(section_count));
  }
  if (stated_size != size) {
    return Corrupt("file size " + std::to_string(size) +
                   " does not match the header (" +
                   std::to_string(stated_size) + "); truncated?");
  }
  const std::size_t table_bytes = kSectionEntryBytes * section_count;
  if (size - kHeaderBytes < table_bytes) {
    return Corrupt("file truncated inside the section table");
  }
  uint32_t crc = Crc32(data, 24);
  crc = Crc32(data + kHeaderBytes, table_bytes, crc);
  if (crc != stated_crc) {
    return Corrupt("header/table CRC mismatch");
  }

  auto reader = std::unique_ptr<SnapshotReader>(new SnapshotReader());
  reader->file_ = std::move(file);
  reader->by_type_.resize(kMaxSectionType + 1);
  std::vector<bool> seen(kMaxSectionType + 1, false);
  ByteCursor table(data + kHeaderBytes, table_bytes);
  for (uint32_t s = 0; s < section_count; ++s) {
    SectionEntry e;
    const uint32_t type = table.U32();
    table.U32();  // reserved
    e.offset = table.U64();
    e.size = table.U64();
    e.crc = table.U32();
    table.U32();  // reserved
    if (type == 0 || type > kMaxSectionType) {
      return Corrupt("unknown section type " + std::to_string(type));
    }
    e.type = static_cast<SectionType>(type);
    if (seen[type]) {
      return Corrupt("duplicate section type " + std::to_string(type));
    }
    seen[type] = true;
    if (e.offset < kHeaderBytes + table_bytes || e.offset > size ||
        size - e.offset < e.size) {
      return Corrupt("section " + std::to_string(type) +
                     " extends past the end of the file");
    }
    reader->by_type_[type] = e;
    reader->info_.sections.push_back(e);
  }
  for (uint32_t t = 1; t <= kMaxSectionType; ++t) {
    if (!seen[t]) {
      return Corrupt("required section type " + std::to_string(t) +
                     " is missing");
    }
  }

  // Content pass: verify every section CRC. Open is CRC-bound on large
  // artifacts (the program section alone can run to hundreds of MB), so
  // payloads are cut into kCrcChunkBytes chunks fanned across threads
  // and the per-chunk CRCs are stitched back with Crc32Combine. Small
  // files never leave this thread.
  struct Chunk {
    uint64_t offset;
    uint64_t size;
    uint32_t crc;
  };
  std::vector<Chunk> chunks;
  for (const SectionEntry& e : reader->info_.sections) {
    uint64_t off = 0;
    do {
      const uint64_t len = std::min<uint64_t>(kCrcChunkBytes, e.size - off);
      chunks.push_back(Chunk{e.offset + off, len, 0});
      off += len;
    } while (off < e.size);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = std::min<std::size_t>(
      {chunks.size(), hw == 0 ? std::size_t{1} : hw, std::size_t{8}});
  std::atomic<std::size_t> next{0};
  const auto crc_worker = [&chunks, &next, data] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < chunks.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      Chunk& c = chunks[i];
      c.crc = Crc32(data + c.offset, static_cast<std::size_t>(c.size));
    }
  };
  if (workers > 1) {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(crc_worker);
    crc_worker();
    for (std::thread& t : pool) t.join();
  } else {
    crc_worker();
  }
  std::size_t ci = 0;
  for (const SectionEntry& e : reader->info_.sections) {
    uint32_t section_crc = chunks[ci].crc;
    uint64_t covered = chunks[ci].size;
    ++ci;
    while (covered < e.size) {
      section_crc = Crc32Combine(section_crc, chunks[ci].crc, chunks[ci].size);
      covered += chunks[ci].size;
      ++ci;
    }
    if (section_crc != e.crc) {
      return Corrupt("section " +
                     std::to_string(static_cast<uint32_t>(e.type)) +
                     " CRC mismatch");
    }
  }

  // Decode the verified meta section into the Info summary.
  Info& info = reader->info_;
  info.file_size = size;
  ByteCursor meta = reader->SectionCursor(SectionType::kMeta);
  info.tool_version = meta.Str();
  info.config.builtin_axioms = meta.U8() != 0;
  info.config.keep_orders = meta.U8() != 0;
  info.config.max_actions = meta.I64();
  const uint8_t strategy = meta.U8();
  info.num_attrs = static_cast<int>(meta.U32());
  info.entity_rows = static_cast<int64_t>(meta.U64());
  info.num_masters = static_cast<int>(meta.U32());
  info.dict_terms = static_cast<int64_t>(meta.U64());
  info.program_steps = static_cast<int64_t>(meta.U64());
  info.checkpoint_ok = meta.U8() != 0;
  if (!meta.AtEnd() ||
      strategy > static_cast<uint8_t>(CheckStrategy::kTrail)) {
    return Corrupt("malformed meta section");
  }
  info.config.check_strategy = static_cast<CheckStrategy>(strategy);
  return reader;
}

ByteCursor SnapshotReader::SectionCursor(SectionType type) const {
  const SectionEntry& e = by_type_[static_cast<uint32_t>(type)];
  return ByteCursor(file_->data() + e.offset,
                    static_cast<std::size_t>(e.size));
}

Status SnapshotReader::LoadDictionary(Dictionary* dict) const {
  if (dict->size() != 1) {
    return Status::FailedPrecondition(
        "snapshot: LoadDictionary needs a fresh dictionary (only the null "
        "slot assigned); got " +
        std::to_string(dict->size()) + " terms");
  }
  ByteCursor cur = SectionCursor(SectionType::kDict);
  const uint64_t count = cur.U64();
  // Bulk path: one move into the shelf per term, no hashing — the
  // lookup index is rebuilt lazily iff something interns later (an
  // engine build); the pure read path never pays for it. The stream is
  // distinct-by-construction and CRC-vouched, so the only structural
  // check left is that no stored representative is null (null ids are
  // bitmap state, never dictionary entries — a null here would alias
  // kNullTermId and break id stability).
  for (uint64_t id = kNullTermId + 1; cur.ok() && id < count; ++id) {
    Value v = cur.Val();
    if (!cur.ok()) break;
    if (v.is_null()) {
      return Corrupt("dictionary stream holds a null representative");
    }
    if (dict->AppendForLoad(std::move(v)) != static_cast<TermId>(id)) {
      return Corrupt("dictionary stream is not in first-intern order");
    }
  }
  if (!cur.ok() || !cur.AtEnd() || dict->size() != count) {
    return Corrupt("malformed dict section");
  }
  return Status::OK();
}

Result<ColumnarRelation> SnapshotReader::LoadEntity(Dictionary* dict) const {
  ByteCursor cur = SectionCursor(SectionType::kEntity);
  ColumnarView view;
  if (!DecodeColumnarView(&cur, &view) || !cur.AtEnd()) {
    return Corrupt("malformed entity section");
  }
  // Owned copy with id validation: the entity is modest next to the
  // masters and the engine copies its columns regardless.
  const std::size_t terms = dict->size();
  ColumnarRelation rel(view.schema, dict);
  const int arity = view.schema.size();
  std::vector<TermId> ids(static_cast<std::size_t>(arity));
  for (std::size_t row = 0; row < view.rows; ++row) {
    for (int a = 0; a < arity; ++a) {
      const TermId id = view.columns[static_cast<std::size_t>(a)][row];
      if (id >= terms) {
        return Corrupt("entity term id outside the dictionary");
      }
      ids[static_cast<std::size_t>(a)] = id;
    }
    rel.AddEncoded(ids, view.row_ids[row],
                   static_cast<int>(view.row_sources[row]),
                   static_cast<int>(view.row_snapshots[row]));
  }
  return rel;
}

Result<ColumnarRelation> SnapshotReader::LoadMaster(int index,
                                                    Dictionary* dict) const {
  if (index < 0 || index >= info_.num_masters) {
    return Status::InvalidArgument(
        "snapshot: master index " + std::to_string(index) +
        " out of range [0, " + std::to_string(info_.num_masters) + ")");
  }
  ByteCursor cur = SectionCursor(SectionType::kMasters);
  const uint32_t count = cur.U32();
  if (!cur.ok() || static_cast<int>(count) != info_.num_masters) {
    return Corrupt("malformed masters section");
  }
  ColumnarView view;
  for (int m = 0; m <= index; ++m) {
    cur.AlignTo(8);
    if (!DecodeColumnarView(&cur, &view)) {
      return Corrupt("malformed masters section");
    }
  }
  return ColumnarRelation::FromBorrowed(
      view.schema, dict, static_cast<int>(view.rows), view.columns,
      view.null_words, view.row_ids, view.row_sources, view.row_snapshots);
}

Result<std::vector<AccuracyRule>> SnapshotReader::LoadRules() const {
  ByteCursor cur = SectionCursor(SectionType::kRules);
  const uint32_t count = cur.U32();
  std::vector<AccuracyRule> rules;
  if (cur.ok()) rules.reserve(count);
  for (uint32_t r = 0; cur.ok() && r < count; ++r) {
    AccuracyRule rule;
    const uint8_t form = cur.U8();
    if (form > static_cast<uint8_t>(AccuracyRule::Form::kMaster)) {
      return Corrupt("malformed rules section (bad form)");
    }
    rule.form = static_cast<AccuracyRule::Form>(form);
    rule.name = cur.Str();
    const uint8_t provenance = cur.U8();
    if (provenance > static_cast<uint8_t>(RuleProvenance::kCfd)) {
      return Corrupt("malformed rules section (bad provenance)");
    }
    rule.provenance = static_cast<RuleProvenance>(provenance);
    rule.line = cur.I32();
    rule.column = cur.I32();
    const uint32_t lhs = cur.U32();
    if (!cur.ok() || lhs > (1u << 20)) {
      return Corrupt("malformed rules section");
    }
    rule.lhs.reserve(lhs);
    for (uint32_t p = 0; p < lhs; ++p) {
      TuplePairPredicate pred;
      const uint8_t kind = cur.U8();
      if (kind > static_cast<uint8_t>(TuplePairPredicate::Kind::kOrder)) {
        return Corrupt("malformed rules section (bad predicate kind)");
      }
      pred.kind = static_cast<TuplePairPredicate::Kind>(kind);
      pred.which = cur.I32();
      pred.left_attr = cur.I32();
      pred.right_attr = cur.I32();
      if (!DecodeCompareOp(cur.U8(), &pred.op)) {
        return Corrupt("malformed rules section (bad compare op)");
      }
      pred.constant = cur.Val();
      pred.strict = cur.U8() != 0;
      rule.lhs.push_back(std::move(pred));
    }
    rule.rhs_attr = cur.I32();
    rule.master_index = cur.I32();
    const uint32_t master_lhs = cur.U32();
    if (!cur.ok() || master_lhs > (1u << 20)) {
      return Corrupt("malformed rules section");
    }
    rule.master_lhs.reserve(master_lhs);
    for (uint32_t p = 0; p < master_lhs; ++p) {
      MasterPredicate pred;
      const uint8_t kind = cur.U8();
      if (kind > static_cast<uint8_t>(MasterPredicate::Kind::kMasterConst)) {
        return Corrupt("malformed rules section (bad master predicate)");
      }
      pred.kind = static_cast<MasterPredicate::Kind>(kind);
      pred.te_attr = cur.I32();
      pred.master_attr = cur.I32();
      if (!DecodeCompareOp(cur.U8(), &pred.op)) {
        return Corrupt("malformed rules section (bad compare op)");
      }
      pred.constant = cur.Val();
      rule.master_lhs.push_back(std::move(pred));
    }
    const uint32_t assignments = cur.U32();
    if (!cur.ok() || assignments > (1u << 20)) {
      return Corrupt("malformed rules section");
    }
    rule.assignments.reserve(assignments);
    for (uint32_t p = 0; p < assignments; ++p) {
      const AttrId te_attr = cur.I32();
      const AttrId tm_attr = cur.I32();
      rule.assignments.emplace_back(te_attr, tm_attr);
    }
    rules.push_back(std::move(rule));
  }
  if (!cur.ok() || !cur.AtEnd()) return Corrupt("malformed rules section");
  return rules;
}

Result<GroundProgram> SnapshotReader::LoadProgram() const {
  ByteCursor cur = SectionCursor(SectionType::kProgram);
  GroundProgram program;
  program.num_tuples = static_cast<int>(cur.U32());
  program.num_attrs = static_cast<int>(cur.U32());
  const uint64_t steps = cur.U64();
  if (!cur.ok() || steps > (uint64_t{1} << 40)) {
    return Corrupt("malformed program section");
  }
  program.steps.reserve(static_cast<std::size_t>(steps));
  for (uint64_t s = 0; cur.ok() && s < steps; ++s) {
    GroundStep step;
    const uint8_t kind = cur.U8();
    if (kind > static_cast<uint8_t>(GroundStep::Kind::kSetTe)) {
      return Corrupt("malformed program section (bad step kind)");
    }
    step.kind = static_cast<GroundStep::Kind>(kind);
    step.attr = cur.I32();
    step.i = cur.I32();
    step.j = cur.I32();
    step.te_value = cur.Val();
    step.rule_id = cur.I32();
    const uint32_t residual = cur.U32();
    if (!cur.ok() || residual > (1u << 24)) {
      return Corrupt("malformed program section");
    }
    step.residual.reserve(residual);
    for (uint32_t p = 0; p < residual; ++p) {
      GroundPredicate pred;
      const uint8_t pkind = cur.U8();
      if (pkind > static_cast<uint8_t>(GroundPredicate::Kind::kTeCompare)) {
        return Corrupt("malformed program section (bad predicate kind)");
      }
      pred.kind = static_cast<GroundPredicate::Kind>(pkind);
      pred.attr = cur.I32();
      pred.i = cur.I32();
      pred.j = cur.I32();
      if (!DecodeCompareOp(cur.U8(), &pred.op)) {
        return Corrupt("malformed program section (bad compare op)");
      }
      pred.constant = cur.Val();
      step.residual.push_back(std::move(pred));
    }
    program.steps.push_back(std::move(step));
  }
  const uint32_t names = cur.U32();
  if (!cur.ok() || names > (1u << 20)) {
    return Corrupt("malformed program section");
  }
  program.rule_names.reserve(names);
  for (uint32_t n = 0; n < names; ++n) {
    program.rule_names.push_back(cur.Str());
  }
  if (!cur.ok() || !cur.AtEnd()) return Corrupt("malformed program section");
  return program;
}

Result<ChaseCheckpoint> SnapshotReader::LoadCheckpoint() const {
  ByteCursor cur = SectionCursor(SectionType::kCheckpoint);
  ChaseCheckpoint cp;
  cp.ok = cur.U8() != 0;
  if (!cp.ok) {
    cp.violation = cur.Str();
    cp.steps_applied = cur.I64();
    cp.pairs_derived = cur.I64();
    if (!cur.ok() || !cur.AtEnd()) {
      return Corrupt("malformed checkpoint section");
    }
    return cp;
  }
  const uint32_t attrs = cur.U32();
  const uint64_t steps = cur.U64();
  if (!cur.ok() || attrs > 4096 || steps > (uint64_t{1} << 40)) {
    return Corrupt("malformed checkpoint section");
  }
  cur.AlignTo(8);
  const TermId* te = cur.Array<TermId>(attrs);
  cur.AlignTo(8);
  const int32_t* te_rule = cur.Array<int32_t>(attrs);
  cur.AlignTo(8);
  const int32_t* remaining =
      cur.Array<int32_t>(static_cast<std::size_t>(steps));
  cur.AlignTo(8);
  const uint8_t* dead = cur.Array<uint8_t>(static_cast<std::size_t>(steps));
  if (!cur.ok()) return Corrupt("malformed checkpoint section");
  cp.te.assign(te, te + attrs);
  cp.te_rule.assign(te_rule, te_rule + attrs);
  cp.remaining.assign(remaining, remaining + steps);
  cp.dead.assign(dead, dead + steps);
  cp.order_succ.reserve(attrs);
  for (uint32_t a = 0; a < attrs; ++a) {
    cur.AlignTo(8);
    const uint64_t words = cur.U64();
    if (!cur.ok() || words > (uint64_t{1} << 40)) {
      return Corrupt("malformed checkpoint section");
    }
    const uint64_t* succ = cur.Array<uint64_t>(static_cast<std::size_t>(words));
    if (!cur.ok()) return Corrupt("malformed checkpoint section");
    cp.order_succ.emplace_back(succ, succ + words);
  }
  cp.steps_applied = cur.I64();
  cp.pairs_derived = cur.I64();
  cp.actions = cur.I64();
  if (!cur.ok() || !cur.AtEnd()) {
    return Corrupt("malformed checkpoint section");
  }
  return cp;
}

}  // namespace snapshot
}  // namespace relacc
