#ifndef RELACC_SNAPSHOT_READER_H_
#define RELACC_SNAPSHOT_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "core/columnar.h"
#include "core/dictionary.h"
#include "rules/accuracy_rule.h"
#include "rules/grounding.h"
#include "snapshot/format.h"
#include "snapshot/mmap_file.h"
#include "util/status.h"

namespace relacc {
namespace snapshot {

/// Read side of the artifact: Open maps the file, validates the header
/// (magic / version -> kInvalidArgument; truncation, table bounds or
/// any CRC mismatch -> kDataLoss — a service is never half-built from
/// a bad artifact) and verifies every section CRC eagerly. The typed
/// loaders then decode individual sections on demand; LoadMaster hands
/// back a zero-copy ColumnarRelation whose columns alias the mapping,
/// so the reader (which keeps the MmapFile alive) must outlive every
/// borrowed relation it produced.
class SnapshotReader {
 public:
  /// Summary facts decoded from the kMeta section at Open (also what
  /// `relacc snapshot info` prints).
  struct Info {
    std::string tool_version;
    ChaseConfig config;
    int num_attrs = 0;
    int64_t entity_rows = 0;
    int num_masters = 0;
    int64_t dict_terms = 0;
    int64_t program_steps = 0;
    bool checkpoint_ok = false;
    uint64_t file_size = 0;
    std::vector<SectionEntry> sections;  ///< table order as stored
  };

  static Result<std::unique_ptr<SnapshotReader>> Open(
      const std::string& path);

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  const Info& info() const { return info_; }
  const std::string& path() const { return file_->path(); }

  /// Re-interns every stored term into `dict` in id order. On a fresh
  /// dictionary this reproduces the writer's ids exactly (append-only
  /// first-intern-order assignment), which is what makes every TermId
  /// in the entity/master/checkpoint sections valid after load.
  /// Rejects a non-fresh dictionary (size() != 1) with
  /// kFailedPrecondition, since id stability cannot hold there.
  Status LoadDictionary(Dictionary* dict) const;

  /// The entity instance Ie as an *owned* columnar relation over
  /// `dict` (the engine copies its columns anyway and the service
  /// materializes Ie rows for the public Specification).
  Result<ColumnarRelation> LoadEntity(Dictionary* dict) const;

  /// Master relation `index` as a *borrowed* columnar relation: TermId
  /// columns, null words and side columns all alias the mapping —
  /// O(1) regardless of row count, physically shared (via the page
  /// cache) with every other process mapping this artifact.
  Result<ColumnarRelation> LoadMaster(int index, Dictionary* dict) const;

  Result<std::vector<AccuracyRule>> LoadRules() const;
  Result<GroundProgram> LoadProgram() const;
  Result<ChaseCheckpoint> LoadCheckpoint() const;

 private:
  SnapshotReader() = default;

  /// The payload bytes of the section of `type` (exactly one of each
  /// exists after Open's validation).
  ByteCursor SectionCursor(SectionType type) const;

  std::shared_ptr<MmapFile> file_;
  Info info_;
  std::vector<SectionEntry> by_type_;  ///< indexed by SectionType value
};

}  // namespace snapshot
}  // namespace relacc

#endif  // RELACC_SNAPSHOT_READER_H_
