#ifndef RELACC_SNAPSHOT_MMAP_FILE_H_
#define RELACC_SNAPSHOT_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace relacc {
namespace snapshot {

/// A read-only memory-mapped file (PROT_READ, MAP_SHARED): the byte
/// substrate every snapshot section is viewed through. MAP_SHARED makes
/// the kernel's page cache the single physical copy — N services in N
/// processes mapping the same artifact share the master columns the way
/// N threads sharing one heap allocation would, and an unmapped page
/// costs nothing until first touch, which is what makes a million-tuple
/// load O(1).
///
/// The mapping lives until destruction; consumers that view it
/// zero-copy (ColumnarRelation borrowed columns, the program/checkpoint
/// loaders) hold the owning shared_ptr so views can never dangle.
class MmapFile {
 public:
  /// Maps `path` read-only. kIoError when the file cannot be opened or
  /// mapped; an empty file maps successfully with size() == 0.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MmapFile(std::string path, const uint8_t* data, std::size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_;
  std::size_t size_;
};

}  // namespace snapshot
}  // namespace relacc

#endif  // RELACC_SNAPSHOT_MMAP_FILE_H_
