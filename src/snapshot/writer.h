#ifndef RELACC_SNAPSHOT_WRITER_H_
#define RELACC_SNAPSHOT_WRITER_H_

#include <string>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "core/columnar.h"
#include "core/dictionary.h"
#include "rules/accuracy_rule.h"
#include "rules/grounding.h"
#include "util/status.h"

namespace relacc {
namespace snapshot {

/// Everything one artifact serializes — borrowed pointers, the caller
/// owns the objects for the duration of the write. All TermIds in
/// `entity`, `masters` and `checkpoint` must be ids of `dict` *at call
/// time*: the dictionary is written as-is, so intern everything (rule
/// constants, engine step payloads, master terms) before building the
/// contents. AccuracyService::WriteSnapshot enforces that ordering.
struct SnapshotContents {
  const Dictionary* dict = nullptr;
  const ColumnarRelation* entity = nullptr;
  std::vector<const ColumnarRelation*> masters;
  const std::vector<AccuracyRule>* rules = nullptr;
  const ChaseConfig* config = nullptr;
  const GroundProgram* program = nullptr;
  const ChaseCheckpoint* checkpoint = nullptr;
  std::string tool_version;  ///< recorded in kMeta, informational only
};

/// Serializes `contents` into one snapshot artifact at `path`
/// (format.h layout: header, section table, 8-aligned CRC-guarded
/// sections). The file is written to `path + ".tmp"` and renamed into
/// place, so a crashed or failed build never leaves a torn artifact
/// where a loader would find it. kIoError on filesystem failures.
Status WriteSnapshotFile(const SnapshotContents& contents,
                         const std::string& path);

}  // namespace snapshot
}  // namespace relacc

#endif  // RELACC_SNAPSHOT_WRITER_H_
