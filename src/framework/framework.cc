#include "framework/framework.h"

#include <algorithm>
#include <utility>

#include "api/accuracy_service.h"

namespace relacc {

UserOracle::Response SimulatedUser::Inspect(
    const Tuple& deduced_te, const std::vector<Tuple>& candidates) {
  Response r;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    if (candidates[i] == truth_) {
      r.accepted_candidate = i;
      return r;
    }
  }
  // Reveal the true value of the first still-null attribute (Exp-3 picks
  // one at random; a deterministic pick keeps runs reproducible and is
  // statistically equivalent under our generators' symmetric noise).
  for (AttrId a = 0; a < deduced_te.size(); ++a) {
    if (deduced_te.at(a).is_null() && !truth_.at(a).is_null()) {
      ++revisions_;
      r.revision = {a, truth_.at(a)};
      return r;
    }
  }
  return r;  // nothing to reveal: give up
}

FrameworkResult DriveInteraction(InteractionSession& session,
                                 UserOracle* user, int max_rounds) {
  FrameworkResult result;
  for (int round = 0; round <= max_rounds; ++round) {
    Result<Suggestion> suggested = session.Suggest();
    if (!suggested.ok()) {
      // Finished or otherwise unusable session; report what we have.
      result.interaction_rounds = round;
      return result;
    }
    const Suggestion& s = suggested.value();
    if (!s.church_rosser) {
      // Step (4) "No" branch: a real deployment asks the user to revise Σ;
      // the driver has no rule editing, so report failure.
      result.church_rosser = false;
      return result;
    }
    result.church_rosser = true;
    if (round == 0) {
      result.automatic_attrs =
          s.deduced_target.size() - s.deduced_target.NullCount();
    }
    if (s.complete) {
      result.found_complete_target = true;
      result.target = s.deduced_target;
      result.interaction_rounds = round;
      return result;
    }
    result.last_topk = s.candidates;
    const UserOracle::Response resp =
        user->Inspect(s.deduced_target, s.candidates.targets);
    if (resp.accepted_candidate.has_value()) {
      Result<Tuple> accepted = session.Accept(*resp.accepted_candidate);
      result.interaction_rounds = round;
      if (accepted.ok()) {
        result.found_complete_target = true;
        result.target = std::move(accepted).value();
      } else {
        result.target = s.deduced_target;  // oracle pointed out of range
      }
      return result;
    }
    if (!resp.revision.has_value()) {
      result.target = s.deduced_target;
      result.interaction_rounds = round;
      return result;  // user gave up; return the partial target
    }
    const Status revised =
        session.Revise(resp.revision->first, resp.revision->second);
    if (!revised.ok()) {
      result.target = s.deduced_target;
      result.interaction_rounds = round;
      return result;  // oracle produced an unusable revision
    }
  }
  result.interaction_rounds = max_rounds;
  return result;
}

FrameworkResult RunFramework(const Specification& spec,
                             const PreferenceModel& pref, UserOracle* user,
                             const FrameworkOptions& opts) {
  // One service per call: its budget is the historical checker width
  // (opts.topk.num_threads), and its engine/checkpoint/checker persist
  // across every round of the loop exactly as the old inline
  // implementation kept them.
  ServiceOptions service_options;
  service_options.num_threads = std::max(1, opts.topk.num_threads);
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(spec, std::move(service_options));
  if (!service.ok()) return {};

  InteractionOptions session_options;
  session_options.k = std::max(1, opts.k);
  session_options.incremental = opts.incremental;
  session_options.preference = &pref;
  session_options.topk = opts.topk;
  // Managed by the service plan; the legacy contract overrode any
  // caller-set checker silently (it would be bound to the wrong engine),
  // and the width moved into ServiceOptions::num_threads above.
  session_options.topk.num_threads = 1;
  session_options.topk.checker = nullptr;
  Result<std::unique_ptr<InteractionSession>> session =
      service.value()->StartInteraction(std::move(session_options));
  if (!session.ok()) return {};
  return DriveInteraction(*session.value(), user, opts.max_rounds);
}

}  // namespace relacc
