#include "framework/framework.h"

#include "topk/batch_check.h"

namespace relacc {

UserOracle::Response SimulatedUser::Inspect(
    const Tuple& deduced_te, const std::vector<Tuple>& candidates) {
  Response r;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    if (candidates[i] == truth_) {
      r.accepted_candidate = i;
      return r;
    }
  }
  // Reveal the true value of the first still-null attribute (Exp-3 picks
  // one at random; a deterministic pick keeps runs reproducible and is
  // statistically equivalent under our generators' symmetric noise).
  for (AttrId a = 0; a < deduced_te.size(); ++a) {
    if (deduced_te.at(a).is_null() && !truth_.at(a).is_null()) {
      ++revisions_;
      r.revision = {a, truth_.at(a)};
      return r;
    }
  }
  return r;  // nothing to reveal: give up
}

FrameworkResult RunFramework(const Specification& spec,
                             const PreferenceModel& pref, UserOracle* user,
                             const FrameworkOptions& opts) {
  FrameworkResult result;
  const GroundProgram program =
      Instantiate(spec.ie, spec.masters, spec.rules);
  ChaseEngine engine(spec.ie, &program, spec.config);

  // One candidate checker serves every round's top-k call: the engine —
  // and with it the shared checkpoint and the warm per-worker probe
  // states — is the same across rounds, so candidate checking reuses the
  // thread pool instead of rebuilding it per user revision. Overrides
  // any checker a caller put into opts.topk: that one would be bound to
  // a different engine.
  const CandidateChecker checker(engine, opts.topk.num_threads);
  TopKOptions topk_opts = opts.topk;
  topk_opts.checker = &checker;

  Tuple initial_te(
      std::vector<Value>(spec.ie.schema().size(), Value::Null()));

  for (int round = 0; round <= opts.max_rounds; ++round) {
    // Step (1)+(2): Church-Rosser check and target deduction (IsCR). The
    // incremental path resumes from the shared all-null checkpoint, which
    // the TopKCT `check` calls below warm up anyway.
    const ChaseOutcome outcome = opts.incremental
                                     ? engine.ResumeWith(initial_te)
                                     : engine.Run(initial_te);
    if (!outcome.church_rosser) {
      // Step (4) "No" branch: a real deployment asks the user to revise Σ;
      // the simulated loop has no rule editing, so report failure.
      result.church_rosser = false;
      return result;
    }
    result.church_rosser = true;
    if (round == 0) {
      result.automatic_attrs =
          outcome.target.size() - outcome.target.NullCount();
    }
    if (outcome.target.IsComplete()) {
      result.found_complete_target = true;
      result.target = outcome.target;
      result.interaction_rounds = round;
      return result;
    }
    // Step (3): top-k candidate targets.
    result.last_topk = TopKCT(engine, spec.masters, outcome.target, pref,
                              opts.k, topk_opts);
    // Step (4): user feedback.
    const UserOracle::Response resp =
        user->Inspect(outcome.target, result.last_topk.targets);
    if (resp.accepted_candidate.has_value()) {
      result.found_complete_target = true;
      result.target = result.last_topk.targets[*resp.accepted_candidate];
      result.interaction_rounds = round;
      return result;
    }
    if (!resp.revision.has_value()) {
      result.target = outcome.target;
      result.interaction_rounds = round;
      return result;  // user gave up; return the partial target
    }
    initial_te.set(resp.revision->first, resp.revision->second);
  }
  result.interaction_rounds = opts.max_rounds;
  return result;
}

}  // namespace relacc
