#ifndef RELACC_FRAMEWORK_FRAMEWORK_H_
#define RELACC_FRAMEWORK_FRAMEWORK_H_

#include <functional>
#include <optional>
#include <vector>

#include "chase/chase_engine.h"
#include "chase/specification.h"
#include "topk/topk_ct.h"

namespace relacc {

/// The user side of the Fig. 3 loop. Given the current (incomplete) target
/// and the suggested top-k candidates, the user either picks a candidate,
/// or supplies the accurate value for one null attribute (revising S), or
/// gives up for this round.
class UserOracle {
 public:
  virtual ~UserOracle() = default;

  struct Response {
    /// Candidate index the user accepted, or nullopt.
    std::optional<int> accepted_candidate;
    /// Otherwise: a (attribute, value) revision for the target template.
    std::optional<std::pair<AttrId, Value>> revision;
  };

  virtual Response Inspect(const Tuple& deduced_te,
                           const std::vector<Tuple>& candidates) = 0;
};

/// Simulates the Exp-3 protocol: accepts a candidate iff it equals the
/// ground-truth tuple; otherwise reveals the true value of one
/// (deterministically chosen) null attribute of te per round.
class SimulatedUser : public UserOracle {
 public:
  explicit SimulatedUser(Tuple ground_truth)
      : truth_(std::move(ground_truth)) {}

  Response Inspect(const Tuple& deduced_te,
                   const std::vector<Tuple>& candidates) override;

  int revisions_made() const { return revisions_; }

 private:
  Tuple truth_;
  int revisions_ = 0;
};

/// Outcome of the interactive framework.
struct FrameworkResult {
  bool church_rosser = false;
  bool found_complete_target = false;
  Tuple target;                     ///< final target (complete on success)
  int interaction_rounds = 0;       ///< user revisions performed (h of Exp-3)
  int automatic_attrs = 0;          ///< attrs deduced before any interaction
  TopKResult last_topk;             ///< candidates of the final round
};

/// Options of the framework loop.
struct FrameworkOptions {
  int k = 15;                       ///< candidates per round (paper default)
  int max_rounds = 32;              ///< hard stop on interaction
  /// Re-chase after a user revision by resuming from the all-null terminal
  /// checkpoint (ChaseEngine::ResumeWith) instead of replaying the full
  /// chase; under ChaseConfig::check_strategy == kTrail the engine keeps
  /// a persistent session (separate from the candidate-check probe
  /// state), so each accumulating revision costs O(its own changes).
  /// Identical outcomes (tested); see bench/ablation_incremental and
  /// bench/iscr_timing.
  bool incremental = true;
  TopKOptions topk;
};

class InteractionSession;  // api/accuracy_service.h

/// Drives an AccuracyService interaction session with a UserOracle,
/// reproducing the legacy RunFramework loop exactly: Suggest; on an
/// incomplete target consult the user; Accept an approved candidate or
/// fold the revealed value back via Revise; stop after `max_rounds`
/// revisions. The adapter between callback-style oracles (SimulatedUser,
/// the CLI console) and the session API.
FrameworkResult DriveInteraction(InteractionSession& session,
                                 UserOracle* user, int max_rounds = 32);

/// The deducing framework of Fig. 3: check Church-Rosser; chase to the
/// deduced target; if incomplete, compute top-k candidates (TopKCT) and
/// consult the user; fold the user's revision back into the initial target
/// template and repeat until a complete target is found.
///
/// Deprecated: now a shim over AccuracyService::StartInteraction +
/// DriveInteraction (api/accuracy_service.h). New code should hold the
/// service and session objects — they keep the chase session, checkpoint
/// and checker warm across calls instead of rebuilding them per entity.
[[deprecated(
    "use AccuracyService::StartInteraction (api/accuracy_service.h)")]]
FrameworkResult RunFramework(const Specification& spec,
                             const PreferenceModel& pref, UserOracle* user,
                             const FrameworkOptions& opts = {});

}  // namespace relacc

#endif  // RELACC_FRAMEWORK_FRAMEWORK_H_
