#ifndef RELACC_DSL_LEXER_H_
#define RELACC_DSL_LEXER_H_

#include <string>
#include <vector>

#include "dsl/token.h"
#include "util/status.h"

namespace relacc {

/// Lexer for the rule DSL. Whitespace separates tokens; `#` starts a
/// comment running to end of line. Attribute references are bracketed and
/// lexed raw — `[J#]` and `[closed?]` are single kAttrRef tokens whose text
/// is everything between the brackets (leading/trailing blanks trimmed), so
/// attribute names may contain any character except `]` and newline.
class Lexer {
 public:
  explicit Lexer(const std::string& input);

  /// Lexes the next token, or a ParseError naming line/column on bad input
  /// (unterminated string, stray character, malformed number).
  Result<Token> Next();

  /// Lexes the whole input. On error the tokens already produced are lost;
  /// use Next() for resumable scanning.
  Result<std::vector<Token>> Tokenize();

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= static_cast<int>(input_.size()); }
  void SkipWhitespaceAndComments();

  Status ErrorHere(const std::string& message) const;

  Result<Token> LexString(Token token);
  Result<Token> LexNumber(Token token);
  Result<Token> LexAttrRef(Token token);
  Result<Token> LexIdentOrKeyword(Token token);

  const std::string& input_;
  int pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace relacc

#endif  // RELACC_DSL_LEXER_H_
