#include "dsl/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace relacc {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kAttrRef: return "attribute reference";
    case TokenKind::kString: return "string literal";
    case TokenKind::kInt: return "integer literal";
    case TokenKind::kReal: return "real literal";
    case TokenKind::kKwRule: return "'rule'";
    case TokenKind::kKwForall: return "'forall'";
    case TokenKind::kKwIn: return "'in'";
    case TokenKind::kKwAnd: return "'and'";
    case TokenKind::kKwOn: return "'on'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwNull: return "'null'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

Lexer::Lexer(const std::string& input) : input_(input) {}

char Lexer::Peek(int ahead) const {
  int p = pos_ + ahead;
  if (p >= static_cast<int>(input_.size())) return '\0';
  return input_[p];
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else {
      break;
    }
  }
}

Status Lexer::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

Result<Token> Lexer::LexString(Token token) {
  Advance();  // opening quote
  std::string out;
  while (true) {
    if (AtEnd() || Peek() == '\n') {
      return ErrorHere("unterminated string literal");
    }
    char c = Advance();
    if (c == '"') break;
    if (c == '\\') {
      if (AtEnd()) return ErrorHere("unterminated escape");
      char e = Advance();
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default:
          return ErrorHere(std::string("unknown escape '\\") + e + "'");
      }
    } else {
      out.push_back(c);
    }
  }
  token.kind = TokenKind::kString;
  token.text = std::move(out);
  return token;
}

Result<Token> Lexer::LexNumber(Token token) {
  std::string text;
  if (Peek() == '-' || Peek() == '+') text.push_back(Advance());
  bool is_real = false;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      text.push_back(Advance());
    } else if (c == '.' && !is_real) {
      is_real = true;
      text.push_back(Advance());
    } else if ((c == 'e' || c == 'E') &&
               std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_real = true;
      text.push_back(Advance());
      text.push_back(Advance());
    } else {
      break;
    }
  }
  if (text.empty() || text == "-" || text == "+") {
    return ErrorHere("malformed number");
  }
  if (is_real) {
    token.kind = TokenKind::kReal;
    token.real_value = std::strtod(text.c_str(), nullptr);
  } else {
    token.kind = TokenKind::kInt;
    token.int_value = std::strtoll(text.c_str(), nullptr, 10);
  }
  token.text = std::move(text);
  return token;
}

Result<Token> Lexer::LexAttrRef(Token token) {
  Advance();  // '['
  std::string out;
  while (true) {
    if (AtEnd() || Peek() == '\n') {
      return ErrorHere("unterminated attribute reference (missing ']')");
    }
    char c = Advance();
    if (c == ']') break;
    out.push_back(c);
  }
  token.kind = TokenKind::kAttrRef;
  token.text = std::string(Trim(out));
  if (token.text.empty()) return ErrorHere("empty attribute reference");
  return token;
}

Result<Token> Lexer::LexIdentOrKeyword(Token token) {
  std::string text;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      text.push_back(Advance());
    } else {
      break;
    }
  }
  token.text = std::move(text);
  if (token.text == "rule") token.kind = TokenKind::kKwRule;
  else if (token.text == "forall") token.kind = TokenKind::kKwForall;
  else if (token.text == "in") token.kind = TokenKind::kKwIn;
  else if (token.text == "and") token.kind = TokenKind::kKwAnd;
  else if (token.text == "on") token.kind = TokenKind::kKwOn;
  else if (token.text == "true") token.kind = TokenKind::kKwTrue;
  else if (token.text == "false") token.kind = TokenKind::kKwFalse;
  else if (token.text == "null") token.kind = TokenKind::kKwNull;
  else token.kind = TokenKind::kIdent;
  return token;
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token token;
  token.line = line_;
  token.column = column_;
  if (AtEnd()) {
    token.kind = TokenKind::kEnd;
    return token;
  }
  char c = Peek();
  if (c == '"') return LexString(std::move(token));
  if (c == '[') return LexAttrRef(std::move(token));
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      ((c == '-' || c == '+') &&
       std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    return LexNumber(std::move(token));
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return LexIdentOrKeyword(std::move(token));
  }
  Advance();
  switch (c) {
    case '(': token.kind = TokenKind::kLParen; return token;
    case ')': token.kind = TokenKind::kRParen; return token;
    case ',': token.kind = TokenKind::kComma; return token;
    case ';': token.kind = TokenKind::kSemicolon; return token;
    case '@': token.kind = TokenKind::kAt; return token;
    case ':':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kAssign;
      } else {
        token.kind = TokenKind::kColon;
      }
      return token;
    case '-':
      if (Peek() == '>') {
        Advance();
        token.kind = TokenKind::kArrow;
        return token;
      }
      return ErrorHere("stray '-' (expected '->')");
    case '=':
      if (Peek() == '=') Advance();  // accept '==' as '='
      token.kind = TokenKind::kEq;
      return token;
    case '!':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kNe;
        return token;
      }
      return ErrorHere("stray '!' (expected '!=')");
    case '<':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kLe;
      } else {
        token.kind = TokenKind::kLt;
      }
      return token;
    case '>':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kGe;
      } else {
        token.kind = TokenKind::kGt;
      }
      return token;
    default:
      return ErrorHere(std::string("unexpected character '") + c + "'");
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Result<Token> token = Next();
    if (!token.ok()) return token.status();
    bool done = token.value().kind == TokenKind::kEnd;
    tokens.push_back(std::move(token).value());
    if (done) break;
  }
  return tokens;
}

}  // namespace relacc
