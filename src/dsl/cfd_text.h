#ifndef RELACC_DSL_CFD_TEXT_H_
#define RELACC_DSL_CFD_TEXT_H_

#include <string>

#include "core/schema.h"
#include "dsl/parse_issue.h"
#include "rules/cfd.h"
#include "util/status.h"

namespace relacc {

/// Textual form of a constant CFD (Sec. 2.1 Remark), lexed with the rule
/// DSL's lexer:
///
///   [team] = "Chicago Bulls" and [league] = "NBA" -> [arena] = "United Center"
///
/// i.e. one or more `[attr] = <literal>` conditions joined by `and`, then
/// `->`, then exactly one `[attr] = <literal>` conclusion. Attribute names
/// are validated against `schema`; integer literals coerce to double for
/// real-typed attributes (as in the rule DSL).
/// On failure, `issue` (when non-null) receives the structured form of
/// the error — message, source span and the analyzer check id it maps to
/// (parse-syntax or schema-unknown-attr) — for `relacc lint`.
Result<ConstantCfd> ParseConstantCfd(const std::string& text,
                                     const Schema& schema,
                                     const std::string& name = "",
                                     ParseIssue* issue = nullptr);

/// Renders `cfd` in the syntax above (round-trips through ParseConstantCfd).
std::string FormatConstantCfd(const ConstantCfd& cfd, const Schema& schema);

}  // namespace relacc

#endif  // RELACC_DSL_CFD_TEXT_H_
