#include "dsl/cfd_text.h"

#include <utility>
#include <vector>

#include "dsl/lexer.h"

namespace relacc {

namespace {

/// Records the structured issue (when requested) and builds the
/// positioned parse error.
Status ErrorAt(const Token& token, const std::string& message,
               ParseIssue* issue, const char* check_id = "parse-syntax") {
  if (issue != nullptr) {
    *issue = ParseIssue{check_id, message, token.line, token.column};
  }
  return Status::ParseError(message + " at line " + std::to_string(token.line) +
                            ", column " + std::to_string(token.column));
}

/// Parses `[attr] = <literal>`; advances *pos past it.
Result<std::pair<AttrId, Value>> ParseEquality(
    const std::vector<Token>& tokens, size_t* pos, const Schema& schema,
    ParseIssue* issue) {
  const Token& attr = tokens[*pos];
  if (attr.kind != TokenKind::kAttrRef) {
    return ErrorAt(attr, "expected an [attribute] reference", issue);
  }
  std::optional<AttrId> id = schema.IndexOf(attr.text);
  if (!id) {
    return ErrorAt(attr, "unknown attribute '" + attr.text + "'", issue,
                   "schema-unknown-attr");
  }
  ++*pos;
  if (tokens[*pos].kind != TokenKind::kEq) {
    return ErrorAt(tokens[*pos], "expected '='", issue);
  }
  ++*pos;
  const Token& lit = tokens[*pos];
  Value value;
  switch (lit.kind) {
    case TokenKind::kString: value = Value::Str(lit.text); break;
    case TokenKind::kInt:
      value = schema.type(*id) == ValueType::kDouble
                  ? Value::Real(static_cast<double>(lit.int_value))
                  : Value::Int(lit.int_value);
      break;
    case TokenKind::kReal: value = Value::Real(lit.real_value); break;
    case TokenKind::kKwTrue: value = Value::Bool(true); break;
    case TokenKind::kKwFalse: value = Value::Bool(false); break;
    default:
      return ErrorAt(lit, "expected a literal after '='", issue);
  }
  ++*pos;
  return std::make_pair(*id, std::move(value));
}

}  // namespace

Result<ConstantCfd> ParseConstantCfd(const std::string& text,
                                     const Schema& schema,
                                     const std::string& name,
                                     ParseIssue* issue) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens_or = lexer.Tokenize();
  if (!tokens_or.ok()) {
    if (issue != nullptr) {
      issue->check_id = "parse-syntax";
      issue->message = tokens_or.status().message();
      issue->line = 0;
      issue->column = 0;
    }
    return tokens_or.status();
  }
  const std::vector<Token>& tokens = tokens_or.value();

  ConstantCfd cfd;
  cfd.name = name;
  size_t pos = 0;
  while (true) {
    Result<std::pair<AttrId, Value>> eq =
        ParseEquality(tokens, &pos, schema, issue);
    if (!eq.ok()) return eq.status();
    cfd.conditions.push_back(eq.value());
    if (tokens[pos].kind == TokenKind::kKwAnd) {
      ++pos;
      continue;
    }
    break;
  }
  if (tokens[pos].kind != TokenKind::kArrow) {
    return ErrorAt(tokens[pos], "expected '->' after the condition(s)", issue);
  }
  ++pos;
  const Token& then_token = tokens[pos];  // the conclusion's [attr] token
  Result<std::pair<AttrId, Value>> then =
      ParseEquality(tokens, &pos, schema, issue);
  if (!then.ok()) return then.status();
  cfd.then_attr = then.value().first;
  cfd.then_value = then.value().second;
  if (tokens[pos].kind != TokenKind::kEnd) {
    return ErrorAt(tokens[pos], "trailing input after the conclusion", issue);
  }
  for (const auto& [attr, value] : cfd.conditions) {
    (void)value;
    if (attr == cfd.then_attr) {
      // Semantic, not syntactic — but positioned all the same, on the
      // conclusion's attribute token.
      return ErrorAt(then_token,
                     "CFD conclusion attribute '" + schema.name(attr) +
                         "' also appears in the condition",
                     issue);
    }
  }
  return cfd;
}

std::string FormatConstantCfd(const ConstantCfd& cfd, const Schema& schema) {
  auto literal = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kString: {
        std::string out = "\"";
        for (char c : v.as_string()) {
          if (c == '"' || c == '\\') out.push_back('\\');
          out.push_back(c);
        }
        return out + "\"";
      }
      case ValueType::kBool: return std::string(v.as_bool() ? "true" : "false");
      default: return v.ToString();
    }
  };
  std::string out;
  for (size_t i = 0; i < cfd.conditions.size(); ++i) {
    if (i > 0) out += " and ";
    out += "[" + schema.name(cfd.conditions[i].first) + "] = " +
           literal(cfd.conditions[i].second);
  }
  out += " -> [" + schema.name(cfd.then_attr) + "] = " +
         literal(cfd.then_value);
  return out;
}

}  // namespace relacc
