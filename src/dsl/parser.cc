#include "dsl/parser.h"

#include <cctype>
#include <cstdio>
#include <optional>
#include <utility>

#include "dsl/lexer.h"

namespace relacc {

namespace {

/// A parsed body term: an attribute of a tuple variable (t1/t2/tm), of the
/// target template te, or a literal.
struct Term {
  enum class Kind { kVarAttr, kTeAttr, kLiteral };
  Kind kind = Kind::kLiteral;
  int which = 0;          ///< 1 or 2 for entity variables; 0 for tm
  AttrId attr = -1;
  Value literal;
  Token at;               ///< for diagnostics
};

Result<CompareOp> ToCompareOp(const Token& token) {
  switch (token.kind) {
    case TokenKind::kEq: return CompareOp::kEq;
    case TokenKind::kNe: return CompareOp::kNe;
    case TokenKind::kLt: return CompareOp::kLt;
    case TokenKind::kLe: return CompareOp::kLe;
    case TokenKind::kGt: return CompareOp::kGt;
    case TokenKind::kGe: return CompareOp::kGe;
    default:
      return Status::ParseError(
          std::string("expected comparison operator, got ") +
          TokenKindName(token.kind) + " at line " + std::to_string(token.line) +
          ", column " + std::to_string(token.column));
  }
}

Result<RuleProvenance> ToProvenance(const Token& tag) {
  const std::string& t = tag.text;
  if (t == "generic") return RuleProvenance::kGeneric;
  if (t == "currency") return RuleProvenance::kCurrency;
  if (t == "correlation") return RuleProvenance::kCorrelation;
  if (t == "null_axiom") return RuleProvenance::kNullAxiom;
  if (t == "te_anchor") return RuleProvenance::kTeAnchorAxiom;
  if (t == "equality") return RuleProvenance::kEqualityAxiom;
  if (t == "master") return RuleProvenance::kMaster;
  if (t == "cfd") return RuleProvenance::kCfd;
  return Status::ParseError("unknown provenance tag '@" + t + "' at line " +
                            std::to_string(tag.line));
}

const char* ProvenanceTag(RuleProvenance p) {
  switch (p) {
    case RuleProvenance::kGeneric: return "generic";
    case RuleProvenance::kCurrency: return "currency";
    case RuleProvenance::kCorrelation: return "correlation";
    case RuleProvenance::kNullAxiom: return "null_axiom";
    case RuleProvenance::kTeAnchorAxiom: return "te_anchor";
    case RuleProvenance::kEqualityAxiom: return "equality";
    case RuleProvenance::kMaster: return "master";
    case RuleProvenance::kCfd: return "cfd";
  }
  return "generic";
}

/// Coerces an integer literal to double when the attribute it is compared
/// against is real-typed; otherwise returns the literal unchanged.
Value CoerceLiteral(Value literal, const Schema& schema, AttrId attr) {
  if (attr >= 0 && attr < schema.size() &&
      schema.type(attr) == ValueType::kDouble &&
      literal.type() == ValueType::kInt) {
    return Value::Real(static_cast<double>(literal.as_int()));
  }
  return literal;
}

std::string FormatLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return v.as_bool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(v.as_int());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
      std::string s(buf);
      // Keep reals lexically distinguishable from ints.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "\"";
      for (char c : v.as_string()) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
      }
      out += "\"";
      return out;
    }
  }
  return "null";
}

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "=";
}

/// Rule names pass through the lexer on re-parse, so non-identifier
/// characters (axiom names like "phi7(FN)") are mapped to '_'.
std::string SanitizeName(const std::string& name) {
  if (name.empty()) return "r";
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, "r_");
  return out;
}

}  // namespace

class RuleParser::Impl {
 public:
  Impl(const Schema& entity_schema, const std::string& entity_name,
       const std::vector<NamedMaster>& masters, std::vector<Token> tokens)
      : entity_schema_(entity_schema),
        entity_name_(entity_name),
        masters_(masters),
        tokens_(std::move(tokens)) {}

  Result<std::vector<AccuracyRule>> ParseProgram() {
    std::vector<AccuracyRule> rules;
    while (Peek().kind != TokenKind::kEnd) {
      Result<AccuracyRule> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      rules.push_back(std::move(rule).value());
    }
    return rules;
  }

  ParsedProgram ParseLenient() {
    ParsedProgram out;
    while (Peek().kind != TokenKind::kEnd) {
      last_issue_.reset();
      const int start = pos_;
      Result<AccuracyRule> rule = ParseOneRule();
      if (rule.ok()) {
        out.rules.push_back(std::move(rule).value());
        continue;
      }
      if (last_issue_) {
        out.issues.push_back(*last_issue_);
      } else {
        // Error paths that bypass ErrorAt (ToCompareOp, ToProvenance)
        // embed the position in the message; keep it, span unknown.
        ParseIssue issue;
        issue.message = rule.status().message();
        out.issues.push_back(std::move(issue));
      }
      // Resync at the next rule. The progress guard covers a failure on
      // the `rule` keyword itself (pos_ unmoved, Peek() still kKwRule).
      if (pos_ == start) Advance();
      while (Peek().kind != TokenKind::kEnd &&
             Peek().kind != TokenKind::kKwRule) {
        Advance();
      }
    }
    return out;
  }

  Result<AccuracyRule> ParseSingle() {
    Result<AccuracyRule> rule = ParseOneRule();
    if (!rule.ok()) return rule;
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorAt(Peek(), "trailing input after rule");
    }
    return rule;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    int p = pos_ + ahead;
    if (p >= static_cast<int>(tokens_.size())) return tokens_.back();
    return tokens_[p];
  }
  const Token& Advance() { return tokens_[pos_ < static_cast<int>(tokens_.size()) - 1 ? pos_++ : pos_]; }

  /// Builds the positioned parse error and records a structured issue
  /// for lenient mode. `check_id` classifies the failure for lint
  /// (name-resolution sites pass the schema-* ids).
  Status ErrorAt(const Token& token, const std::string& message,
                 const char* check_id = "parse-syntax") {
    last_issue_ = ParseIssue{check_id, message, token.line, token.column};
    return Status::ParseError(message + " at line " +
                              std::to_string(token.line) + ", column " +
                              std::to_string(token.column));
  }

  Result<Token> Expect(TokenKind kind, const std::string& what) {
    const Token& token = Peek();
    if (token.kind != kind) {
      return ErrorAt(token, "expected " + what + ", got " +
                                std::string(TokenKindName(token.kind)) +
                                (token.text.empty() ? "" : " '" + token.text + "'"));
    }
    return Advance();
  }

  Result<AttrId> EntityAttr(const Token& ref) {
    std::optional<AttrId> id = entity_schema_.IndexOf(ref.text);
    if (!id) {
      return ErrorAt(ref, "unknown entity attribute '" + ref.text + "'",
                     "schema-unknown-attr");
    }
    return *id;
  }

  Result<AccuracyRule> ParseOneRule() {
    Result<Token> kw = Expect(TokenKind::kKwRule, "'rule'");
    if (!kw.ok()) return kw.status();
    Result<Token> name = Expect(TokenKind::kIdent, "rule name");
    if (!name.ok()) return name.status();

    RuleProvenance provenance = RuleProvenance::kGeneric;
    if (Peek().kind == TokenKind::kAt) {
      Advance();
      Result<Token> tag = Expect(TokenKind::kIdent, "provenance tag");
      if (!tag.ok()) return tag.status();
      Result<RuleProvenance> p = ToProvenance(tag.value());
      if (!p.ok()) return p.status();
      provenance = p.value();
    }
    Result<Token> colon = Expect(TokenKind::kColon, "':'");
    if (!colon.ok()) return colon.status();
    Result<Token> fa = Expect(TokenKind::kKwForall, "'forall'");
    if (!fa.ok()) return fa.status();

    Result<Token> var1 = Expect(TokenKind::kIdent, "variable name");
    if (!var1.ok()) return var1.status();
    bool two_vars = false;
    Token var2;
    if (Peek().kind == TokenKind::kComma) {
      Advance();
      Result<Token> v2 = Expect(TokenKind::kIdent, "variable name");
      if (!v2.ok()) return v2.status();
      var2 = v2.value();
      two_vars = true;
    }
    Result<Token> in = Expect(TokenKind::kKwIn, "'in'");
    if (!in.ok()) return in.status();
    Result<Token> rel = Expect(TokenKind::kIdent, "relation name");
    if (!rel.ok()) return rel.status();

    AccuracyRule rule;
    rule.name = name.value().text;
    rule.provenance = provenance;
    rule.line = name.value().line;
    rule.column = name.value().column;

    Status body_status;
    if (two_vars) {
      if (var1.value().text == "te" || var2.text == "te" ||
          var1.value().text == var2.text) {
        return ErrorAt(var1.value(),
                       "form-(1) rules need two distinct tuple "
                       "variables other than 'te'");
      }
      if (!entity_name_.empty() && rel.value().text != entity_name_) {
        return ErrorAt(rel.value(),
                       "form-(1) rules range over the entity relation '" +
                           entity_name_ + "', got '" + rel.value().text + "'");
      }
      rule.form = AccuracyRule::Form::kTuplePair;
      body_status = ParseForm1Body(var1.value().text, var2.text, &rule);
    } else {
      if (var1.value().text == "te") {
        return ErrorAt(var1.value(), "the master variable may not be named 'te'");
      }
      const NamedMaster* master = nullptr;
      for (const NamedMaster& m : masters_) {
        if (m.name == rel.value().text) { master = &m; break; }
      }
      if (master == nullptr) {
        return ErrorAt(rel.value(),
                       "unknown master relation '" + rel.value().text + "'",
                       "schema-unknown-master");
      }
      rule.form = AccuracyRule::Form::kMaster;
      rule.master_index = master->index;
      body_status = ParseForm2Body(var1.value().text, *master, &rule);
    }
    if (!body_status.ok()) return body_status;

    if (Peek().kind == TokenKind::kSemicolon) Advance();
    return rule;
  }

  // --- form (1) -----------------------------------------------------------

  Status ParseForm1Body(const std::string& v1, const std::string& v2,
                        AccuracyRule* rule) {
    Result<Token> lp = Expect(TokenKind::kLParen, "'('");
    if (!lp.ok()) return lp.status();

    while (Peek().kind != TokenKind::kArrow) {  // empty ω allowed: (-> ...)
      TuplePairPredicate pred;
      Status st = ParseForm1Predicate(v1, v2, &pred);
      if (!st.ok()) return st;
      rule->lhs.push_back(std::move(pred));
      if (Peek().kind == TokenKind::kKwAnd) {
        Advance();
        continue;
      }
      break;
    }

    Result<Token> arrow = Expect(TokenKind::kArrow, "'->'");
    if (!arrow.ok()) return arrow.status();

    // Conclusion: v1 <= v2 on [A]
    Result<Token> c1 = Expect(TokenKind::kIdent, "variable in conclusion");
    if (!c1.ok()) return c1.status();
    if (c1.value().text != v1) {
      return ErrorAt(c1.value(), "conclusion must start with '" + v1 + "'");
    }
    Result<Token> le = Expect(TokenKind::kLe, "'<=' in conclusion");
    if (!le.ok()) return le.status();
    Result<Token> c2 = Expect(TokenKind::kIdent, "variable in conclusion");
    if (!c2.ok()) return c2.status();
    if (c2.value().text != v2) {
      return ErrorAt(c2.value(), "conclusion must be '" + v1 + " <= " + v2 + "'");
    }
    Result<Token> on = Expect(TokenKind::kKwOn, "'on'");
    if (!on.ok()) return on.status();
    Result<Token> attr = Expect(TokenKind::kAttrRef, "attribute reference");
    if (!attr.ok()) return attr.status();
    Result<AttrId> id = EntityAttr(attr.value());
    if (!id.ok()) return id.status();
    rule->rhs_attr = id.value();

    Result<Token> rp = Expect(TokenKind::kRParen, "')'");
    if (!rp.ok()) return rp.status();
    return Status::OK();
  }

  Status ParseForm1Predicate(const std::string& v1, const std::string& v2,
                             TuplePairPredicate* pred) {
    // Order predicate: v1 (< | <=) v2 on [A]. Detected by a bare variable
    // (no '[' follows).
    if (Peek().kind == TokenKind::kIdent &&
        (Peek(1).kind == TokenKind::kLt || Peek(1).kind == TokenKind::kLe) &&
        Peek(2).kind == TokenKind::kIdent) {
      Token a = Advance();
      Token op = Advance();
      Token b = Advance();
      if (a.text != v1 || b.text != v2) {
        return ErrorAt(a, "order predicates must be written '" + v1 +
                              " < " + v2 + " on [A]' (or '<=')");
      }
      Result<Token> on = Expect(TokenKind::kKwOn, "'on'");
      if (!on.ok()) return on.status();
      Result<Token> attr = Expect(TokenKind::kAttrRef, "attribute reference");
      if (!attr.ok()) return attr.status();
      Result<AttrId> id = EntityAttr(attr.value());
      if (!id.ok()) return id.status();
      pred->kind = TuplePairPredicate::Kind::kOrder;
      pred->left_attr = id.value();
      pred->strict = op.kind == TokenKind::kLt;
      return Status::OK();
    }

    Result<Term> left = ParseForm1Term(v1, v2);
    if (!left.ok()) return left.status();
    Result<CompareOp> o = ToCompareOp(Peek());
    if (!o.ok()) return o.status();
    CompareOp op = o.value();
    Advance();
    Result<Term> right = ParseForm1Term(v1, v2);
    if (!right.ok()) return right.status();
    return BuildForm1Predicate(left.value(), op, right.value(), pred);
  }

  Result<Term> ParseForm1Term(const std::string& v1, const std::string& v2) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdent: {
        Token var = Advance();
        Result<Token> attr =
            Expect(TokenKind::kAttrRef, "attribute reference after '" +
                                            var.text + "'");
        if (!attr.ok()) return attr.status();
        Result<AttrId> id = EntityAttr(attr.value());
        if (!id.ok()) return id.status();
        Term term;
        term.at = var;
        term.attr = id.value();
        if (var.text == "te") {
          term.kind = Term::Kind::kTeAttr;
        } else if (var.text == v1) {
          term.kind = Term::Kind::kVarAttr;
          term.which = 1;
        } else if (var.text == v2) {
          term.kind = Term::Kind::kVarAttr;
          term.which = 2;
        } else {
          return ErrorAt(var, "unknown variable '" + var.text + "'");
        }
        return term;
      }
      case TokenKind::kString: {
        Token lit = Advance();
        Term term;
        term.at = lit;
        term.literal = Value::Str(lit.text);
        return term;
      }
      case TokenKind::kInt: {
        Token lit = Advance();
        Term term;
        term.at = lit;
        term.literal = Value::Int(lit.int_value);
        return term;
      }
      case TokenKind::kReal: {
        Token lit = Advance();
        Term term;
        term.at = lit;
        term.literal = Value::Real(lit.real_value);
        return term;
      }
      case TokenKind::kKwTrue:
      case TokenKind::kKwFalse: {
        Token lit = Advance();
        Term term;
        term.at = lit;
        term.literal = Value::Bool(lit.kind == TokenKind::kKwTrue);
        return term;
      }
      case TokenKind::kKwNull: {
        Token lit = Advance();
        Term term;
        term.at = lit;
        term.literal = Value::Null();
        return term;
      }
      default:
        return ErrorAt(token, std::string("expected a term, got ") +
                                  TokenKindName(token.kind));
    }
  }

  Status BuildForm1Predicate(const Term& left, CompareOp op, const Term& right,
                             TuplePairPredicate* pred) {
    using K = Term::Kind;
    // Normalize literal-first / te-first spellings by flipping.
    if ((left.kind == K::kLiteral && right.kind != K::kLiteral) ||
        (left.kind == K::kTeAttr && right.kind == K::kVarAttr)) {
      return BuildForm1Predicate(right, FlipCompareOp(op), left, pred);
    }
    if (left.kind == K::kVarAttr && right.kind == K::kVarAttr) {
      if (left.which == right.which) {
        return ErrorAt(left.at,
                       "a predicate may not compare a variable with itself");
      }
      if (left.which == 2) {
        return BuildForm1Predicate(right, FlipCompareOp(op), left, pred);
      }
      pred->kind = TuplePairPredicate::Kind::kAttrAttr;
      pred->left_attr = left.attr;
      pred->right_attr = right.attr;
      pred->op = op;
      return Status::OK();
    }
    if (left.kind == K::kVarAttr && right.kind == K::kLiteral) {
      pred->kind = TuplePairPredicate::Kind::kAttrConst;
      pred->which = left.which;
      pred->left_attr = left.attr;
      pred->op = op;
      pred->constant = CoerceLiteral(right.literal, entity_schema_, left.attr);
      return Status::OK();
    }
    if (left.kind == K::kVarAttr && right.kind == K::kTeAttr) {
      pred->kind = TuplePairPredicate::Kind::kAttrTe;
      pred->which = left.which;
      pred->left_attr = left.attr;
      pred->right_attr = right.attr;
      pred->op = op;
      return Status::OK();
    }
    if (left.kind == K::kTeAttr && right.kind == K::kLiteral) {
      pred->kind = TuplePairPredicate::Kind::kTeConst;
      pred->left_attr = left.attr;
      pred->op = op;
      pred->constant = CoerceLiteral(right.literal, entity_schema_, left.attr);
      return Status::OK();
    }
    return ErrorAt(left.at, "unsupported predicate shape");
  }

  // --- form (2) -----------------------------------------------------------

  Status ParseForm2Body(const std::string& tm, const NamedMaster& master,
                        AccuracyRule* rule) {
    Result<Token> lp = Expect(TokenKind::kLParen, "'('");
    if (!lp.ok()) return lp.status();

    while (Peek().kind != TokenKind::kArrow) {  // empty ω allowed: (-> ...)
      MasterPredicate pred;
      Status st = ParseForm2Predicate(tm, master, &pred);
      if (!st.ok()) return st;
      rule->master_lhs.push_back(std::move(pred));
      if (Peek().kind == TokenKind::kKwAnd) {
        Advance();
        continue;
      }
      break;
    }

    Result<Token> arrow = Expect(TokenKind::kArrow, "'->'");
    if (!arrow.ok()) return arrow.status();

    while (true) {
      // te[A] := tm[B]
      Result<Token> te = Expect(TokenKind::kIdent, "'te' in assignment");
      if (!te.ok()) return te.status();
      if (te.value().text != "te") {
        return ErrorAt(te.value(), "assignments must target 'te'");
      }
      Result<Token> te_attr = Expect(TokenKind::kAttrRef, "attribute reference");
      if (!te_attr.ok()) return te_attr.status();
      Result<AttrId> te_id = EntityAttr(te_attr.value());
      if (!te_id.ok()) return te_id.status();
      Result<Token> assign = Expect(TokenKind::kAssign, "':='");
      if (!assign.ok()) return assign.status();
      Result<Token> tmv = Expect(TokenKind::kIdent, "'" + tm + "' in assignment");
      if (!tmv.ok()) return tmv.status();
      if (tmv.value().text != tm) {
        return ErrorAt(tmv.value(),
                       "assignment source must be '" + tm + "[...]'");
      }
      Result<Token> tm_attr = Expect(TokenKind::kAttrRef, "attribute reference");
      if (!tm_attr.ok()) return tm_attr.status();
      std::optional<AttrId> tm_id = master.schema->IndexOf(tm_attr.value().text);
      if (!tm_id) {
        return ErrorAt(tm_attr.value(),
                       "unknown master attribute '" + tm_attr.value().text +
                           "'",
                       "schema-unknown-master");
      }
      rule->assignments.emplace_back(te_id.value(), *tm_id);
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }

    Result<Token> rp = Expect(TokenKind::kRParen, "')'");
    if (!rp.ok()) return rp.status();
    return Status::OK();
  }

  Status ParseForm2Predicate(const std::string& tm, const NamedMaster& master,
                             MasterPredicate* pred) {
    // Term: te[A] | tm[B] | literal, joined by a comparison operator.
    struct M {
      enum class Kind { kTe, kMaster, kLiteral } kind = Kind::kLiteral;
      AttrId attr = -1;
      Value literal;
      Token at;
    };
    auto parse_term = [&]() -> Result<M> {
      const Token& token = Peek();
      M m;
      m.at = token;
      switch (token.kind) {
        case TokenKind::kIdent: {
          Token var = Advance();
          Result<Token> attr = Expect(TokenKind::kAttrRef,
                                      "attribute reference after '" +
                                          var.text + "'");
          if (!attr.ok()) return attr.status();
          if (var.text == "te") {
            Result<AttrId> id = EntityAttr(attr.value());
            if (!id.ok()) return id.status();
            m.kind = M::Kind::kTe;
            m.attr = id.value();
          } else if (var.text == tm) {
            std::optional<AttrId> id = master.schema->IndexOf(attr.value().text);
            if (!id) {
              return ErrorAt(attr.value(),
                             "unknown master attribute '" +
                                 attr.value().text + "'",
                             "schema-unknown-master");
            }
            m.kind = M::Kind::kMaster;
            m.attr = *id;
          } else {
            return ErrorAt(var, "unknown variable '" + var.text + "'");
          }
          return m;
        }
        case TokenKind::kString:
          m.literal = Value::Str(Advance().text);
          return m;
        case TokenKind::kInt:
          m.literal = Value::Int(Advance().int_value);
          return m;
        case TokenKind::kReal:
          m.literal = Value::Real(Advance().real_value);
          return m;
        case TokenKind::kKwTrue:
        case TokenKind::kKwFalse:
          m.literal = Value::Bool(Advance().kind == TokenKind::kKwTrue);
          return m;
        case TokenKind::kKwNull:
          Advance();
          m.literal = Value::Null();
          return m;
        default:
          return ErrorAt(token, std::string("expected a term, got ") +
                                    TokenKindName(token.kind));
      }
    };

    Result<M> left = parse_term();
    if (!left.ok()) return left.status();
    Result<CompareOp> op = ToCompareOp(Peek());
    if (!op.ok()) return op.status();
    Advance();
    Result<M> right = parse_term();
    if (!right.ok()) return right.status();

    M l = left.value();
    CompareOp o = op.value();
    M r = right.value();
    // Normalize literal-first and master-first-vs-te spellings.
    if ((l.kind == M::Kind::kLiteral && r.kind != M::Kind::kLiteral) ||
        (l.kind == M::Kind::kMaster && r.kind == M::Kind::kTe)) {
      std::swap(l, r);
      o = FlipCompareOp(o);
    }
    if (l.kind == M::Kind::kTe && r.kind == M::Kind::kMaster) {
      if (o != CompareOp::kEq) {
        return ErrorAt(l.at, "te/master predicates must use '='");
      }
      pred->kind = MasterPredicate::Kind::kTeMaster;
      pred->te_attr = l.attr;
      pred->master_attr = r.attr;
      pred->op = CompareOp::kEq;
      return Status::OK();
    }
    if (l.kind == M::Kind::kTe && r.kind == M::Kind::kLiteral) {
      if (o != CompareOp::kEq) {
        return ErrorAt(l.at, "te predicates must use '='");
      }
      pred->kind = MasterPredicate::Kind::kTeConst;
      pred->te_attr = l.attr;
      pred->op = CompareOp::kEq;
      pred->constant = CoerceLiteral(r.literal, entity_schema_, l.attr);
      return Status::OK();
    }
    if (l.kind == M::Kind::kMaster && r.kind == M::Kind::kLiteral) {
      pred->kind = MasterPredicate::Kind::kMasterConst;
      pred->master_attr = l.attr;
      pred->op = o;
      pred->constant = CoerceLiteral(r.literal, *master.schema, l.attr);
      return Status::OK();
    }
    return ErrorAt(l.at, "unsupported predicate shape");
  }

  const Schema& entity_schema_;
  const std::string& entity_name_;
  const std::vector<NamedMaster>& masters_;
  std::vector<Token> tokens_;
  int pos_ = 0;
  std::optional<ParseIssue> last_issue_;  ///< set by ErrorAt, lenient mode
};

RuleParser::RuleParser(const Schema& entity_schema, std::string entity_name,
                       std::vector<NamedMaster> masters)
    : entity_schema_(entity_schema),
      entity_name_(std::move(entity_name)),
      masters_(std::move(masters)) {}

Result<std::vector<AccuracyRule>> RuleParser::ParseProgram(
    const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Impl impl(entity_schema_, entity_name_, masters_,
            std::move(tokens).value());
  return impl.ParseProgram();
}

Result<AccuracyRule> RuleParser::ParseRule(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Impl impl(entity_schema_, entity_name_, masters_,
            std::move(tokens).value());
  return impl.ParseSingle();
}

ParsedProgram RuleParser::ParseProgramLenient(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    // A lexer failure poisons the whole program; its message carries the
    // position in text form.
    ParsedProgram out;
    ParseIssue issue;
    issue.message = tokens.status().message();
    out.issues.push_back(std::move(issue));
    return out;
  }
  Impl impl(entity_schema_, entity_name_, masters_,
            std::move(tokens).value());
  return impl.ParseLenient();
}

// --- formatting -----------------------------------------------------------

namespace {

std::string AttrRef(const Schema& schema, AttrId attr) {
  return "[" + schema.name(attr) + "]";
}

std::string FormatForm1Predicate(const TuplePairPredicate& pred,
                                 const Schema& schema) {
  using K = TuplePairPredicate::Kind;
  switch (pred.kind) {
    case K::kAttrAttr:
      return "t1" + AttrRef(schema, pred.left_attr) + " " + OpText(pred.op) +
             " t2" + AttrRef(schema, pred.right_attr);
    case K::kAttrConst:
      return "t" + std::to_string(pred.which) +
             AttrRef(schema, pred.left_attr) + " " + OpText(pred.op) + " " +
             FormatLiteral(pred.constant);
    case K::kAttrTe:
      return "t" + std::to_string(pred.which) +
             AttrRef(schema, pred.left_attr) + " " + OpText(pred.op) + " te" +
             AttrRef(schema, pred.right_attr);
    case K::kTeConst:
      return "te" + AttrRef(schema, pred.left_attr) + " " + OpText(pred.op) +
             " " + FormatLiteral(pred.constant);
    case K::kOrder:
      return std::string("t1 ") + (pred.strict ? "<" : "<=") + " t2 on " +
             AttrRef(schema, pred.left_attr);
  }
  return "";
}

std::string FormatForm2Predicate(const MasterPredicate& pred,
                                 const Schema& entity_schema,
                                 const Schema& master_schema,
                                 const std::string& tm) {
  using K = MasterPredicate::Kind;
  switch (pred.kind) {
    case K::kTeConst:
      return "te" + AttrRef(entity_schema, pred.te_attr) + " = " +
             FormatLiteral(pred.constant);
    case K::kTeMaster:
      return "te" + AttrRef(entity_schema, pred.te_attr) + " = " + tm +
             AttrRef(master_schema, pred.master_attr);
    case K::kMasterConst:
      return tm + AttrRef(master_schema, pred.master_attr) + " " +
             OpText(pred.op) + " " + FormatLiteral(pred.constant);
  }
  return "";
}

}  // namespace

std::string FormatRuleDsl(const AccuracyRule& rule, const Schema& entity_schema,
                          const std::vector<NamedMaster>& masters,
                          const std::string& entity_name) {
  std::string out = "rule " + SanitizeName(rule.name);
  if (rule.provenance != RuleProvenance::kGeneric) {
    out += std::string(" @") + ProvenanceTag(rule.provenance);
  }
  out += ":\n";
  if (rule.form == AccuracyRule::Form::kTuplePair) {
    out += "  forall t1, t2 in " +
           (entity_name.empty() ? std::string("R") : entity_name) + "\n  (";
    for (size_t i = 0; i < rule.lhs.size(); ++i) {
      if (i > 0) out += "\n   and ";
      out += FormatForm1Predicate(rule.lhs[i], entity_schema);
    }
    out += "\n   -> t1 <= t2 on " + AttrRef(entity_schema, rule.rhs_attr) + ")\n";
    return out;
  }
  // Form (2).
  const NamedMaster* master = nullptr;
  for (const NamedMaster& m : masters) {
    if (m.index == rule.master_index) { master = &m; break; }
  }
  std::string master_name =
      master ? master->name : "m" + std::to_string(rule.master_index);
  const Schema* master_schema = master ? master->schema : &entity_schema;
  out += "  forall tm in " + master_name + "\n  (";
  for (size_t i = 0; i < rule.master_lhs.size(); ++i) {
    if (i > 0) out += "\n   and ";
    out += FormatForm2Predicate(rule.master_lhs[i], entity_schema,
                                *master_schema, "tm");
  }
  out += "\n   -> ";
  for (size_t i = 0; i < rule.assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += "te" + AttrRef(entity_schema, rule.assignments[i].first) + " := tm" +
           AttrRef(*master_schema, rule.assignments[i].second);
  }
  out += ")\n";
  return out;
}

std::string FormatProgramDsl(const std::vector<AccuracyRule>& rules,
                             const Schema& entity_schema,
                             const std::vector<NamedMaster>& masters,
                             const std::string& entity_name) {
  std::string out;
  for (const AccuracyRule& rule : rules) {
    out += FormatRuleDsl(rule, entity_schema, masters, entity_name);
    out += "\n";
  }
  return out;
}

}  // namespace relacc
