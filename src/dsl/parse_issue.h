#ifndef RELACC_DSL_PARSE_ISSUE_H_
#define RELACC_DSL_PARSE_ISSUE_H_

#include <string>

namespace relacc {

/// One structured problem found while parsing rule-DSL or CFD text: the
/// machine-readable companion of the human-readable ParseError Status the
/// strict parsers return. `check_id` uses the static-analyzer vocabulary
/// (analysis/analyzer.h) so parser findings and analyzer findings share
/// one diagnostic surface: "parse-syntax" for grammar errors,
/// "schema-unknown-attr" / "schema-unknown-master" for name-resolution
/// failures. `line`/`column` are 1-based; 0 means unknown (e.g. a lexer
/// failure before any token existed).
struct ParseIssue {
  std::string check_id = "parse-syntax";
  std::string message;  ///< without the " at line L, column C" suffix
  int line = 0;
  int column = 0;
};

}  // namespace relacc

#endif  // RELACC_DSL_PARSE_ISSUE_H_
