#ifndef RELACC_DSL_PARSER_H_
#define RELACC_DSL_PARSER_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "dsl/parse_issue.h"
#include "dsl/token.h"
#include "rules/accuracy_rule.h"
#include "util/status.h"

namespace relacc {

/// A named master relation schema visible to the parser. `index` is the
/// position of that relation in Specification::masters.
struct NamedMaster {
  std::string name;
  const Schema* schema = nullptr;
  int index = 0;
};

/// Parser for the rule DSL, an ASCII rendition of the paper's AR notation
/// (Sec. 2.1, Table 3). A program is a sequence of rules; `#` comments and
/// blank lines are free. Two rule forms, dispatched on the quantified
/// variables:
///
/// Form (1) — two tuple variables over the entity relation:
///
///   rule phi1 @currency:
///     forall t1, t2 in stat
///     (t1[league] = t2[league] and t1[rnds] < t2[rnds] -> t1 <= t2 on [rnds])
///
///   Body conjuncts:  t1[A] op t2[B]   |  t1[A] op <literal>  |
///                    t1[A] op te[B]   |  te[A] op <literal>  |
///                    t1 < t2 on [A]   |  t1 <= t2 on [A]
///   with op in {=, !=, <, <=, >, >=} (both sides may be written in either
///   order; the parser normalizes). Conclusion: t1 <= t2 on [A].
///
/// Form (2) — one master variable over a declared master relation:
///
///   rule phi6 @master:
///     forall tm in nba
///     (tm[FN] = te[FN] and tm[LN] = te[LN] and tm[season] = "1994-95"
///      -> te[league] := tm[league], te[team] := tm[team])
///
///   Body conjuncts:  te[A] = tm[B]  |  te[A] = <literal>  |
///                    tm[B] op <literal>
///   Conclusion: a comma-separated list of te[A] := tm[B] assignments.
///
/// Literals: "string", integers, reals, true/false, null. Where the target
/// attribute has a numeric type, integer literals coerce per the schema.
/// The optional `@tag` after the rule name sets RuleProvenance; tags are
/// currency, correlation, master, cfd, generic.
///
/// Attribute names are validated against the schemas and reported with
/// line/column positions on error.
///
/// Parsed rules carry the source span of their name token
/// (AccuracyRule::line/column) for static-analysis diagnostics.

/// Result of ParseProgramLenient: every rule that parsed, plus one
/// structured issue per rule (or lexer failure) that did not.
struct ParsedProgram {
  std::vector<AccuracyRule> rules;
  std::vector<ParseIssue> issues;
};

class RuleParser {
 public:
  /// `entity_schema` and the schemas in `masters` must outlive the parser.
  /// `entity_name` is the relation name expected after `in` for form-(1)
  /// rules; pass "" to accept any name.
  RuleParser(const Schema& entity_schema, std::string entity_name = "",
             std::vector<NamedMaster> masters = {});

  /// Parses a whole program (zero or more rules).
  Result<std::vector<AccuracyRule>> ParseProgram(const std::string& text);

  /// Parses exactly one rule (trailing input is an error).
  Result<AccuracyRule> ParseRule(const std::string& text);

  /// Error-tolerant variant of ParseProgram for `relacc lint`: on a
  /// rule-level failure the issue is recorded (with the analyzer check id
  /// it maps to — parse-syntax, schema-unknown-attr or
  /// schema-unknown-master) and parsing resumes at the next `rule`
  /// keyword, so one broken rule does not hide issues in later ones.
  ParsedProgram ParseProgramLenient(const std::string& text);

 private:
  class Impl;

  const Schema& entity_schema_;
  std::string entity_name_;
  std::vector<NamedMaster> masters_;
};

/// Renders `rule` in DSL syntax such that RuleParser parses it back to an
/// equivalent rule (round-trip property, tested). `masters[i]` names the
/// master relation with Specification index i; form-(2) rules whose
/// master_index is out of range render with a synthesized name `m<i>`.
std::string FormatRuleDsl(const AccuracyRule& rule, const Schema& entity_schema,
                          const std::vector<NamedMaster>& masters = {},
                          const std::string& entity_name = "R");

/// Formats a whole program, one rule per stanza.
std::string FormatProgramDsl(const std::vector<AccuracyRule>& rules,
                             const Schema& entity_schema,
                             const std::vector<NamedMaster>& masters = {},
                             const std::string& entity_name = "R");

}  // namespace relacc

#endif  // RELACC_DSL_PARSER_H_
