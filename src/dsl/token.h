#ifndef RELACC_DSL_TOKEN_H_
#define RELACC_DSL_TOKEN_H_

#include <string>

namespace relacc {

/// Token kinds produced by the rule-DSL lexer (src/dsl/lexer.h). The DSL is
/// an ASCII rendition of the paper's AR notation (Table 3); see
/// docs in parser.h for the grammar.
enum class TokenKind {
  kEnd = 0,       ///< end of input
  kIdent,         ///< bare identifier (rule names, variables, relation names)
  kAttrRef,       ///< `[...]` attribute reference; text is the raw inside
  kString,        ///< double-quoted string literal (escapes resolved)
  kInt,           ///< integer literal
  kReal,          ///< floating-point literal
  kKwRule,        ///< `rule`
  kKwForall,      ///< `forall`
  kKwIn,          ///< `in`
  kKwAnd,         ///< `and`
  kKwOn,          ///< `on`
  kKwTrue,        ///< `true`
  kKwFalse,       ///< `false`
  kKwNull,        ///< `null`
  kLParen,        ///< `(`
  kRParen,        ///< `)`
  kComma,         ///< `,`
  kColon,         ///< `:`
  kSemicolon,     ///< `;`
  kAt,            ///< `@` (provenance annotation)
  kArrow,         ///< `->`
  kAssign,        ///< `:=`
  kEq,            ///< `=` (also accepts `==`)
  kNe,            ///< `!=`
  kLt,            ///< `<`
  kLe,            ///< `<=`
  kGt,            ///< `>`
  kGe,            ///< `>=`
};

/// Name of a token kind for diagnostics ("identifier", "'('", ...).
const char* TokenKindName(TokenKind kind);

/// One lexed token with its source position (1-based line/column of the
/// first character) for error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< raw payload for ident/attr-ref/string literals
  int64_t int_value = 0;
  double real_value = 0.0;
  int line = 1;
  int column = 1;
};

}  // namespace relacc

#endif  // RELACC_DSL_TOKEN_H_
