#ifndef RELACC_PIPELINE_PIPELINE_H_
#define RELACC_PIPELINE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"
#include "er/resolver.h"
#include "topk/preference.h"
#include "topk/topk_ct.h"

namespace relacc {

/// How the pipeline fills target attributes the chase leaves null.
enum class CompletionPolicy {
  kLeaveNull,      ///< report the incomplete target as-is
  kBestCandidate,  ///< take the top-1 candidate target (TopKCT, k=1)
  kHeuristic,      ///< TopKCTh top-1 (PTIME; for wide-open targets)
};

/// Options of the whole-database accuracy pipeline.
struct PipelineOptions {
  /// Worker threads; <= 0 selects hardware concurrency.
  int num_threads = 0;
  CompletionPolicy completion = CompletionPolicy::kBestCandidate;
  TopKOptions topk;
  ChaseConfig chase;
  /// Occurrence-count preference weights are built per entity instance
  /// (plus masters) unless the caller supplies a model via `preference`.
  const PreferenceModel* preference = nullptr;
};

/// Per-entity outcome of the pipeline.
struct EntityReport {
  int64_t entity_id = -1;
  int num_tuples = 0;
  bool church_rosser = false;
  bool complete = false;          ///< target complete after completion policy
  bool used_candidate = false;    ///< completion policy filled some attribute
  int deduced_attrs = 0;          ///< non-null attrs deduced by the chase alone
  Tuple target;
  std::string violation;          ///< when !church_rosser
};

/// Aggregate outcome: one report per entity (input order), a relation of
/// the final targets (one row per Church-Rosser entity, aligned with
/// `row_entity`), and summary counters.
struct PipelineReport {
  std::vector<EntityReport> entities;
  Relation targets;
  std::vector<int> row_entity;    ///< targets row -> index into `entities`

  int64_t total_tuples = 0;
  int num_church_rosser = 0;
  int num_complete_by_chase = 0;  ///< complete with no candidate needed
  int num_completed_by_candidates = 0;
  int num_incomplete = 0;         ///< still null somewhere at the end
  int num_non_church_rosser = 0;

  /// Fraction of attributes (over CR entities) deduced by the chase alone —
  /// the pipeline-level analogue of Fig. 6(e).
  double deduced_attr_fraction = 0.0;
};

/// The whole-database accuracy pipeline — the paper's future-work scenario
/// ("improving the accuracy of data in a database", Sec. 8) built from the
/// library's parts: per entity, ground Σ, run IsCR, and complete the target
/// per `options.completion`. Entities are processed in parallel
/// (options.num_threads); reports are ordered deterministically by input
/// position regardless of scheduling.
PipelineReport RunPipeline(const std::vector<EntityInstance>& entities,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options = {});

/// Convenience entry point from a flat relation: resolve entities first
/// (src/er), then run the pipeline over the clusters.
PipelineReport RunPipelineOnFlat(const Relation& flat,
                                 const ResolverConfig& resolver_config,
                                 const std::vector<Relation>& masters,
                                 const std::vector<AccuracyRule>& rules,
                                 const PipelineOptions& options = {});

}  // namespace relacc

#endif  // RELACC_PIPELINE_PIPELINE_H_
