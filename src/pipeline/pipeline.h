#ifndef RELACC_PIPELINE_PIPELINE_H_
#define RELACC_PIPELINE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"
#include "er/resolver.h"
#include "topk/preference.h"
#include "topk/topk_ct.h"

namespace relacc {

/// How the pipeline fills target attributes the chase leaves null.
enum class CompletionPolicy {
  kLeaveNull,      ///< report the incomplete target as-is
  kBestCandidate,  ///< take the top-1 candidate target (TopKCT, k=1)
  kHeuristic,      ///< TopKCTh top-1 (PTIME; for wide-open targets)
};

/// How the pipeline spends its single thread budget. The two phases run
/// non-overlapping — entity-parallel chasing first, then candidate
/// completion — so they time-multiplex the budget instead of multiplying
/// it (the pre-budget behaviour could spawn entity pool ×
/// topk.num_threads checker threads, one pool per in-flight entity).
///
/// The completion phase is itself two-dimensional: `completion_workers`
/// entities complete concurrently (one slot-pooled CandidateChecker per
/// worker, Rebind-reused across entities), and each worker's checker
/// fans its candidate batches out over `check_threads` engines. The
/// budget invariant is therefore
///
///   chase_threads <= budget  and
///   completion_workers * check_threads <= budget,
///
/// i.e. at most `budget` threads are ever doing chase work at once in
/// either phase.
struct PipelineThreadPlan {
  int chase_threads = 1;       ///< entity slots of the phase-1 chase pool
  int completion_workers = 1;  ///< entities completed concurrently (phase 2)
  int check_threads = 1;       ///< per-worker candidate-check fan-out width
};

/// Splits `budget` (<= 0: hardware concurrency) for `num_entities`: the
/// chase phase takes one slot per entity up to the budget; the
/// completion phase prefers entity-level parallelism — one worker per
/// entity up to the budget, since the per-entity serial costs
/// (preference model, candidate enumeration, checker rebind) dominate
/// for small entities — and hands each worker an equal share of the
/// remaining width for its check batches (the whole budget when a
/// single entity is in flight, reproducing the old one-wide-checker
/// schedule).
PipelineThreadPlan ComputePipelineThreadPlan(int budget,
                                             int64_t num_entities);

/// Options of the whole-database accuracy pipeline.
struct PipelineOptions {
  /// Total worker-thread budget for the whole run; <= 0 selects hardware
  /// concurrency. ComputePipelineThreadPlan turns it into the two-phase
  /// plan above; this is the only threading knob the pipeline honours.
  int num_threads = 0;
  CompletionPolicy completion = CompletionPolicy::kBestCandidate;
  /// Per-entity top-k knobs. `topk.num_threads` and `topk.checker` are
  /// overridden by the thread plan — the budget above is the only
  /// threading knob the pipeline honours.
  TopKOptions topk;
  ChaseConfig chase;
  /// Occurrence-count preference weights are built per entity instance
  /// (plus masters) unless the caller supplies a model via `preference`.
  const PreferenceModel* preference = nullptr;
  /// Serve every completion-phase top-k call from one persistent
  /// CandidateChecker (and one thread pool), rebound per entity
  /// (CandidateChecker::Rebind), instead of building and tearing one
  /// down per entity. Reports are identical either way; false restores
  /// the per-entity teardown for A/B measurement
  /// (bench/pipeline_scaling.cc).
  bool reuse_checkers = true;
};

/// Per-entity outcome of the pipeline.
struct EntityReport {
  int64_t entity_id = -1;
  int num_tuples = 0;
  bool church_rosser = false;
  bool complete = false;          ///< target complete after completion policy
  bool used_candidate = false;    ///< completion policy filled some attribute
  int deduced_attrs = 0;          ///< non-null attrs deduced by the chase alone
  Tuple target;
  std::string violation;          ///< when !church_rosser
};

/// Aggregate outcome: one report per entity (input order), a relation of
/// the final targets (one row per Church-Rosser entity, aligned with
/// `row_entity`), and summary counters.
struct PipelineReport {
  std::vector<EntityReport> entities;
  Relation targets;
  std::vector<int> row_entity;    ///< targets row -> index into `entities`

  /// The thread split this run used (tests assert the budget invariant).
  PipelineThreadPlan plan;

  int64_t total_tuples = 0;
  int num_church_rosser = 0;
  int num_complete_by_chase = 0;  ///< complete with no candidate needed
  int num_completed_by_candidates = 0;
  int num_incomplete = 0;         ///< still null somewhere at the end
  int num_non_church_rosser = 0;

  /// Fraction of attributes (over CR entities) deduced by the chase alone —
  /// the pipeline-level analogue of Fig. 6(e).
  double deduced_attr_fraction = 0.0;
};

/// The whole-database accuracy pipeline — the paper's future-work scenario
/// ("improving the accuracy of data in a database", Sec. 8) built from the
/// library's parts, in two phases under one thread budget
/// (options.num_threads; see PipelineThreadPlan):
///
///  1. chase — per entity, ground Σ and run IsCR, entity-parallel. The
///     engine (grounding, indexes, warm all-null checkpoint) of every
///     entity whose target stays incomplete is kept alive for phase 2
///     instead of being torn down and rebuilt.
///  2. completion — incomplete entities complete concurrently across the
///     plan's `completion_workers` slots (reports reduced in input
///     order); each slot's candidate `check` chases run through a
///     slot-pooled CandidateChecker of `check_threads` width, rebound
///     per entity.
///
/// The phases alternate over bounded windows of entities, so the peak
/// number of kept-alive engines is independent of how many targets stay
/// incomplete.
///
/// Reports are ordered deterministically by input position and identical
/// for every budget, completion-phase width and reuse setting.
///
/// Deprecated: this is now a thin shim — one AccuracyService pipeline
/// session submitted in a single batch (api/accuracy_service.h). New code
/// should create the service once and stream entities through
/// StartPipeline(), which bounds memory by the window instead of the
/// input size and reports errors as Status rather than silently
/// overriding caller-set TopKOptions threading knobs the way this entry
/// point historically did.
[[deprecated(
    "use AccuracyService::StartPipeline (api/accuracy_service.h)")]]
PipelineReport RunPipeline(const std::vector<EntityInstance>& entities,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options = {});

/// Convenience entry point from a flat relation: resolve entities first
/// (src/er), then run the pipeline over the clusters. Deprecated like
/// RunPipeline; resolve with ResolveEntities and stream the clusters
/// through AccuracyService::StartPipeline instead.
[[deprecated(
    "use ResolveEntities + AccuracyService::StartPipeline "
    "(api/accuracy_service.h)")]]
PipelineReport RunPipelineOnFlat(const Relation& flat,
                                 const ResolverConfig& resolver_config,
                                 const std::vector<Relation>& masters,
                                 const std::vector<AccuracyRule>& rules,
                                 const PipelineOptions& options = {});

}  // namespace relacc

#endif  // RELACC_PIPELINE_PIPELINE_H_
