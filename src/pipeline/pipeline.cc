#include "pipeline/pipeline.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "chase/chase_engine.h"
#include "rules/grounding.h"
#include "topk/batch_check.h"
#include "util/thread_pool.h"

namespace relacc {

namespace {

/// Phase-2 carry-over for one incomplete entity: the grounded program
/// and the engine with its warm all-null checkpoint, kept alive across
/// the phase boundary so completion never re-grounds or re-chases.
struct PendingCompletion {
  std::unique_ptr<GroundProgram> program;
  std::unique_ptr<ChaseEngine> engine;  ///< references *program
};

/// Phase 1 for one entity: ground and run the checkpoint chase. When the
/// target stays incomplete (and completion is enabled), the engine is
/// handed back via `pending` for phase 2. Pure function of its inputs;
/// called concurrently.
EntityReport ChaseEntityPhase(const EntityInstance& entity,
                              const std::vector<Relation>& masters,
                              const std::vector<AccuracyRule>& rules,
                              const PipelineOptions& options,
                              std::unique_ptr<PendingCompletion>* pending) {
  EntityReport report;
  report.entity_id = entity.entity_id();
  report.num_tuples = entity.size();

  auto program =
      std::make_unique<GroundProgram>(Instantiate(entity, masters, rules));
  auto engine =
      std::make_unique<ChaseEngine>(entity, program.get(), options.chase);
  // Serve the all-null chase from the engine's checkpoint: the candidate
  // completion of phase 2 checks against the same checkpoint, so each
  // entity is chased once, not twice.
  ChaseOutcome outcome = engine->RunFromCheckpoint();
  if (!outcome.church_rosser) {
    report.violation = outcome.violation;
    return report;
  }
  report.church_rosser = true;
  report.deduced_attrs = outcome.target.size() - outcome.target.NullCount();
  report.target = outcome.target;
  report.complete = outcome.target.IsComplete();
  if (!report.complete && options.completion != CompletionPolicy::kLeaveNull) {
    auto p = std::make_unique<PendingCompletion>();
    p->program = std::move(program);
    p->engine = std::move(engine);
    *pending = std::move(p);
  }
  return report;
}

/// Phase 2 for one incomplete entity (Sec. 6): top-1 candidate target.
/// `checker` is already bound to `engine` and runs every check chase.
void CompleteEntityPhase(const EntityInstance& entity,
                         const std::vector<Relation>& masters,
                         const PipelineOptions& options,
                         const ChaseEngine& engine,
                         const CandidateChecker& checker,
                         EntityReport* report) {
  PreferenceModel local_pref;
  const PreferenceModel* pref = options.preference;
  if (pref == nullptr) {
    local_pref = PreferenceModel::FromOccurrences(entity, masters);
    pref = &local_pref;
  }
  TopKOptions topk_opts = options.topk;
  topk_opts.checker = &checker;
  TopKResult topk =
      options.completion == CompletionPolicy::kHeuristic
          ? TopKCTh(engine, masters, report->target, *pref, 1, topk_opts)
          : TopKCT(engine, masters, report->target, *pref, 1, topk_opts);
  if (!topk.targets.empty()) {
    report->target = topk.targets[0];
    report->used_candidate = true;
  }
  report->complete = report->target.IsComplete();
}

}  // namespace

PipelineThreadPlan ComputePipelineThreadPlan(int budget,
                                             int64_t num_entities) {
  if (budget <= 0) {
    budget = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  PipelineThreadPlan plan;
  plan.chase_threads = static_cast<int>(std::clamp<int64_t>(
      num_entities, 1, static_cast<int64_t>(budget)));
  plan.check_threads = budget;
  return plan;
}

PipelineReport RunPipeline(const std::vector<EntityInstance>& entities,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options) {
  PipelineReport report;
  report.entities.resize(entities.size());
  report.plan = ComputePipelineThreadPlan(
      options.num_threads, static_cast<int64_t>(entities.size()));

  // The plan is the single source of threading truth from here on:
  // whatever the caller put in topk.num_threads/topk.checker is replaced
  // so entity-level and check-level parallelism cannot multiply past the
  // budget.
  PipelineOptions planned = options;
  planned.topk.num_threads = report.plan.check_threads;
  planned.topk.checker = nullptr;

  // The two phases alternate over windows of entities so the peak count
  // of alive PendingCompletion engines (checkpoint bit-matrices are
  // O(attrs·n²) bits each) is bounded by the window, not by the number
  // of incomplete entities in the whole input. Within a window: phase 1
  // chases entity-parallel, phase 2 completes sequentially in input
  // order through the shared checker, whose candidate batches fan out
  // over its own pool. The chase pool sleeps while the checker works and
  // vice versa, so at most `budget` threads are ever *active* — the two
  // levels time-multiplex the budget rather than multiplying it.
  //
  // Between entities — and after the loop — the shared checker may be
  // bound to an engine that is already gone; Rebind and destruction are
  // documented safe for that. reuse_checkers=false tears a fresh checker
  // down per entity instead (the A/B baseline for the bench).
  const int64_t num_entities = static_cast<int64_t>(entities.size());
  const int64_t window =
      std::max<int64_t>(64, 8 * report.plan.chase_threads);
  ThreadPool pool(report.plan.chase_threads);
  std::unique_ptr<CandidateChecker> shared;
  std::vector<std::unique_ptr<PendingCompletion>> pending(entities.size());
  for (int64_t begin = 0; begin < num_entities; begin += window) {
    const int64_t end = std::min(num_entities, begin + window);
    pool.ParallelFor(end - begin, [&](int64_t k) {
      const int64_t i = begin + k;
      report.entities[i] = ChaseEntityPhase(entities[i], masters, rules,
                                            planned, &pending[i]);
    });
    for (int64_t i = begin; i < end; ++i) {
      if (pending[i] == nullptr) continue;
      const ChaseEngine& engine = *pending[i]->engine;
      std::unique_ptr<CandidateChecker> fresh;
      const CandidateChecker* checker;
      if (planned.reuse_checkers) {
        if (shared == nullptr) {
          shared = std::make_unique<CandidateChecker>(
              engine, report.plan.check_threads);
        } else {
          shared->Rebind(engine);
        }
        checker = shared.get();
      } else {
        fresh = std::make_unique<CandidateChecker>(
            engine, report.plan.check_threads);
        checker = fresh.get();
      }
      CompleteEntityPhase(entities[i], masters, planned, engine, *checker,
                          &report.entities[i]);
      pending[i].reset();  // free the checkpoint/probe memory as we go
    }
  }

  // Deterministic aggregation in input order.
  Schema schema = entities.empty() ? Schema() : entities[0].schema();
  report.targets = Relation(schema);
  int64_t attrs_total = 0;
  int64_t attrs_deduced = 0;
  for (size_t i = 0; i < report.entities.size(); ++i) {
    const EntityReport& e = report.entities[i];
    report.total_tuples += e.num_tuples;
    if (!e.church_rosser) {
      ++report.num_non_church_rosser;
      continue;
    }
    ++report.num_church_rosser;
    attrs_total += schema.size();
    attrs_deduced += e.deduced_attrs;
    if (e.complete && !e.used_candidate) ++report.num_complete_by_chase;
    if (e.complete && e.used_candidate) ++report.num_completed_by_candidates;
    if (!e.complete) ++report.num_incomplete;
    report.targets.Add(e.target);
    report.row_entity.push_back(static_cast<int>(i));
  }
  report.deduced_attr_fraction =
      attrs_total > 0 ? static_cast<double>(attrs_deduced) /
                            static_cast<double>(attrs_total)
                      : 0.0;
  return report;
}

PipelineReport RunPipelineOnFlat(const Relation& flat,
                                 const ResolverConfig& resolver_config,
                                 const std::vector<Relation>& masters,
                                 const std::vector<AccuracyRule>& rules,
                                 const PipelineOptions& options) {
  ResolutionResult resolution = ResolveEntities(flat, resolver_config);
  return RunPipeline(resolution.entities, masters, rules, options);
}

}  // namespace relacc
