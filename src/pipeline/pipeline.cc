#include "pipeline/pipeline.h"

#include <utility>

#include "chase/chase_engine.h"
#include "rules/grounding.h"
#include "util/thread_pool.h"

namespace relacc {

namespace {

/// Processes one entity instance: chase, then optional candidate
/// completion. Pure function of its inputs; called concurrently.
EntityReport ProcessEntity(const EntityInstance& entity,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options) {
  EntityReport report;
  report.entity_id = entity.entity_id();
  report.num_tuples = entity.size();

  const GroundProgram program = Instantiate(entity, masters, rules);
  ChaseEngine engine(entity, &program, options.chase);
  // Serve the all-null chase from the engine's checkpoint: the candidate
  // completion below checks against the same checkpoint, so the worker
  // reuses one chase (and one probe state) instead of chasing twice.
  ChaseOutcome outcome = engine.RunFromCheckpoint();
  if (!outcome.church_rosser) {
    report.violation = outcome.violation;
    return report;
  }
  report.church_rosser = true;
  report.deduced_attrs = outcome.target.size() - outcome.target.NullCount();
  report.target = outcome.target;
  if (outcome.target.IsComplete() ||
      options.completion == CompletionPolicy::kLeaveNull) {
    report.complete = outcome.target.IsComplete();
    return report;
  }

  // Candidate completion (Sec. 6): top-1 candidate target.
  PreferenceModel local_pref;
  const PreferenceModel* pref = options.preference;
  if (pref == nullptr) {
    local_pref = PreferenceModel::FromOccurrences(entity, masters);
    pref = &local_pref;
  }
  TopKResult topk =
      options.completion == CompletionPolicy::kHeuristic
          ? TopKCTh(engine, masters, outcome.target, *pref, 1, options.topk)
          : TopKCT(engine, masters, outcome.target, *pref, 1, options.topk);
  if (!topk.targets.empty()) {
    report.target = topk.targets[0];
    report.used_candidate = true;
  }
  report.complete = report.target.IsComplete();
  return report;
}

}  // namespace

PipelineReport RunPipeline(const std::vector<EntityInstance>& entities,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options) {
  PipelineReport report;
  report.entities.resize(entities.size());

  ThreadPool pool(options.num_threads);
  pool.ParallelFor(static_cast<int64_t>(entities.size()), [&](int64_t i) {
    report.entities[i] = ProcessEntity(entities[i], masters, rules, options);
  });

  // Deterministic aggregation in input order.
  Schema schema = entities.empty() ? Schema() : entities[0].schema();
  report.targets = Relation(schema);
  int64_t attrs_total = 0;
  int64_t attrs_deduced = 0;
  for (size_t i = 0; i < report.entities.size(); ++i) {
    const EntityReport& e = report.entities[i];
    report.total_tuples += e.num_tuples;
    if (!e.church_rosser) {
      ++report.num_non_church_rosser;
      continue;
    }
    ++report.num_church_rosser;
    attrs_total += schema.size();
    attrs_deduced += e.deduced_attrs;
    if (e.complete && !e.used_candidate) ++report.num_complete_by_chase;
    if (e.complete && e.used_candidate) ++report.num_completed_by_candidates;
    if (!e.complete) ++report.num_incomplete;
    report.targets.Add(e.target);
    report.row_entity.push_back(static_cast<int>(i));
  }
  report.deduced_attr_fraction =
      attrs_total > 0 ? static_cast<double>(attrs_deduced) /
                            static_cast<double>(attrs_total)
                      : 0.0;
  return report;
}

PipelineReport RunPipelineOnFlat(const Relation& flat,
                                 const ResolverConfig& resolver_config,
                                 const std::vector<Relation>& masters,
                                 const std::vector<AccuracyRule>& rules,
                                 const PipelineOptions& options) {
  ResolutionResult resolution = ResolveEntities(flat, resolver_config);
  return RunPipeline(resolution.entities, masters, rules, options);
}

}  // namespace relacc
