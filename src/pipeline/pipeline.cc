#include "pipeline/pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "api/accuracy_service.h"

namespace relacc {

PipelineThreadPlan ComputePipelineThreadPlan(int budget,
                                             int64_t num_entities) {
  if (budget <= 0) {
    budget = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  PipelineThreadPlan plan;
  plan.chase_threads = static_cast<int>(std::clamp<int64_t>(
      num_entities, 1, static_cast<int64_t>(budget)));
  plan.completion_workers = plan.chase_threads;
  plan.check_threads = std::max(1, budget / plan.completion_workers);
  return plan;
}

namespace {

/// The batch entry points are one streaming session submitted in one go:
/// build a service over (masters, rules, config), stream every entity
/// through a PipelineSession with the legacy window, finish. Report
/// identity with the historical in-place implementation is enforced by
/// tests/test_accuracy_service.cc across windows, budgets and strategies.
PipelineReport RunPipelineViaService(
    const std::vector<EntityInstance>& entities,
    const std::vector<Relation>& masters,
    const std::vector<AccuracyRule>& rules, const PipelineOptions& options) {
  Specification spec;
  spec.ie = Relation(entities.empty() ? Schema() : entities[0].schema());
  spec.masters = masters;
  spec.rules = rules;
  spec.config = options.chase;

  ServiceOptions service_options;
  service_options.num_threads = options.num_threads;
  service_options.completion = options.completion;
  // The historical window: engines of at most this many entities were
  // alive across the two-phase boundary.
  const PipelineThreadPlan plan = ComputePipelineThreadPlan(
      options.num_threads, static_cast<int64_t>(entities.size()));
  service_options.window = std::max<int64_t>(64, 8 * plan.chase_threads);
  // None of the calls below can fail for inputs the historical batch
  // function accepted (the window is >= 64, the managed topk knobs are
  // cleared, and mixed-arity entity batches aborted inside
  // Relation::Add before this refactor too) — so a failure here is a
  // caller error the old contract answered with an abort, not a Status.
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(std::move(spec), std::move(service_options));
  if (!service.ok()) std::abort();

  PipelineSessionOptions session_options;
  session_options.reuse_checkers = options.reuse_checkers;
  session_options.preference = options.preference;
  session_options.topk = options.topk;
  // The legacy contract: whatever the caller put in topk.num_threads /
  // topk.checker is replaced by the thread plan. The service API rejects
  // these knobs instead of overriding them — the shim keeps the historical
  // silent-override behaviour for source compatibility.
  session_options.topk.num_threads = 1;
  session_options.topk.checker = nullptr;
  Result<std::unique_ptr<PipelineSession>> session =
      service.value()->StartPipeline(std::move(session_options));
  if (!session.ok()) std::abort();

  Status submitted = session.value()->Submit(entities);
  if (!submitted.ok()) std::abort();
  Result<PipelineReport> report = session.value()->Finish();
  if (!report.ok()) std::abort();
  return std::move(report).value();
}

}  // namespace

PipelineReport RunPipeline(const std::vector<EntityInstance>& entities,
                           const std::vector<Relation>& masters,
                           const std::vector<AccuracyRule>& rules,
                           const PipelineOptions& options) {
  return RunPipelineViaService(entities, masters, rules, options);
}

PipelineReport RunPipelineOnFlat(const Relation& flat,
                                 const ResolverConfig& resolver_config,
                                 const std::vector<Relation>& masters,
                                 const std::vector<AccuracyRule>& rules,
                                 const PipelineOptions& options) {
  ResolutionResult resolution = ResolveEntities(flat, resolver_config);
  return RunPipelineViaService(resolution.entities, masters, rules, options);
}

}  // namespace relacc
