#include "datagen/rest_generator.h"

#include <algorithm>

#include "rules/rule_builder.h"
#include "util/rng.h"

namespace relacc {

EntityInstance RestDataset::InstanceFor(int restaurant) const {
  EntityInstance inst(restaurant, schema);
  const std::string name = "rest-" + std::to_string(restaurant);
  const std::string phone = "555-" + std::to_string(1000 + restaurant % 9000);
  for (int s = 0; s < claims.num_sources(); ++s) {
    for (int idx : claims.CellClaims(restaurant, s)) {
      const Claim& cl = claims.claim(idx);
      std::vector<Value> row(schema.size());
      row[0] = Value::Int(s);
      row[1] = Value::Int(cl.snapshot);
      row[2] = cl.value;
      row[3] = Value::Str(name);
      row[4] = Value::Str(phone);
      Tuple t(std::move(row));
      t.set_source(s);
      t.set_snapshot(cl.snapshot);
      inst.Add(std::move(t));
    }
  }
  return inst;
}

RestDataset GenerateRest(const RestConfig& c) {
  Rng rng(c.seed);
  RestDataset ds;
  ds.claims = ClaimSet(c.num_restaurants, c.num_sources, c.num_snapshots);
  ds.schema = Schema({{"source", ValueType::kInt},
                      {"snapshot", ValueType::kInt},
                      {"closed", ValueType::kBool},
                      {"name", ValueType::kString},
                      {"phone", ValueType::kString}});

  // --- world: closure snapshot per restaurant (absorbing), early-biased --
  // close_at[o] = snapshot from which the restaurant is closed; INT_MAX-ish
  // when it never closes inside the window.
  std::vector<int> close_at(c.num_restaurants, c.num_snapshots + 1);
  ds.truly_closed.assign(c.num_restaurants, false);
  for (int o = 0; o < c.num_restaurants; ++o) {
    if (!rng.Bernoulli(c.close_prob)) continue;
    // Early bias: min of two uniforms over [1, S-1].
    const int a = static_cast<int>(rng.UniformInt(1, c.num_snapshots - 1));
    const int b = static_cast<int>(rng.UniformInt(1, c.num_snapshots - 1));
    close_at[o] = std::min(a, b);
    ds.truly_closed[o] = true;
  }
  auto state_at = [&](int o, int t) { return t >= close_at[o]; };

  // --- sources: trackers, casuals, copiers -------------------------------
  ds.copies_from.assign(c.num_sources, -1);
  // The last `num_copiers` casual sources copy one of the first casual
  // sources (never a tracker; copiers of authoritative data are less
  // interesting for copy detection).
  const int first_casual = c.num_trackers;
  for (int i = 0; i < c.num_copiers; ++i) {
    const int copier = c.num_sources - 1 - i;
    if (copier <= first_casual) break;
    ds.copies_from[copier] = first_casual + static_cast<int>(rng.NextBelow(
                                 static_cast<uint64_t>(
                                     std::max(1, copier - first_casual))));
  }

  auto observe = [&](int o, int t, double fp, double fn) {
    const bool closed = state_at(o, t);
    bool claim = closed;
    if (closed && rng.Bernoulli(fn)) claim = false;
    if (!closed && rng.Bernoulli(fp)) claim = true;
    return claim;
  };

  // Per (source, object): the snapshots at which the source emits a claim.
  for (int s = 0; s < c.num_sources; ++s) {
    const bool tracker = s < c.num_trackers;
    const double coverage = tracker ? c.tracker_coverage : c.casual_coverage;
    const double fp = tracker ? c.tracker_fp : c.casual_fp;
    const double fn = tracker ? c.tracker_fn : c.casual_fn;
    for (int o = 0; o < c.num_restaurants; ++o) {
      if (!rng.Bernoulli(coverage)) continue;
      if (tracker) {
        // Trackers re-crawl every snapshot.
        for (int t = 0; t < c.num_snapshots; ++t) {
          ds.claims.Add({o, s, t, Value::Bool(observe(o, t, fp, fn))});
        }
      } else if (ds.copies_from[s] >= 0 && rng.Bernoulli(c.copy_rate)) {
        // Copier: replicate the parent's latest visible claim at a random
        // snapshot (errors included). The parent may not cover o.
        const int parent = ds.copies_from[s];
        const int t =
            static_cast<int>(rng.NextBelow(
                static_cast<uint64_t>(c.num_snapshots)));
        Value copied = Value::Null();
        for (int idx : ds.claims.CellClaims(o, parent)) {
          const Claim& cl = ds.claims.claim(idx);
          if (cl.snapshot <= t) copied = cl.value;
        }
        if (copied.is_null()) {
          ds.claims.Add({o, s, t, Value::Bool(observe(o, t, fp, fn))});
        } else {
          ds.claims.Add({o, s, t, copied});
        }
      } else {
        // Casual source: 1-2 independent observations at random snapshots.
        const int obs = static_cast<int>(
            rng.UniformInt(c.casual_obs_min, c.casual_obs_max));
        for (int i = 0; i < obs; ++i) {
          const int t = static_cast<int>(rng.NextBelow(
              static_cast<uint64_t>(c.num_snapshots)));
          ds.claims.Add({o, s, t, Value::Bool(observe(o, t, fp, fn))});
        }
      }
    }
  }

  // --- accuracy rules (all form (1), Sec. 7) ------------------------------
  // Snapshot currency (ϕ1 style).
  ds.rules.push_back(RuleBuilder(ds.schema, "rest:snapshot")
                         .WhereAttrs("snapshot", CompareOp::kLt, "snapshot")
                         .Currency()
                         .Concludes("snapshot"));
  // Closures are absorbing: within one source, a "closed" claim after an
  // "open" claim supersedes it. (The reverse — reopening — is not assumed,
  // so an erroneous open-after-closed does not poison the instance.)
  ds.rules.push_back(RuleBuilder(ds.schema, "rest:closed-monotone")
                         .WhereAttrs("source", CompareOp::kEq, "source")
                         .WhereAttrs("snapshot", CompareOp::kLt, "snapshot")
                         .WhereConst(1, "closed", CompareOp::kEq,
                                     Value::Bool(false))
                         .WhereConst(2, "closed", CompareOp::kEq,
                                     Value::Bool(true))
                         .Currency()
                         .Concludes("closed"));
  return ds;
}

}  // namespace relacc
