#ifndef RELACC_DATAGEN_REST_GENERATOR_H_
#define RELACC_DATAGEN_REST_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"
#include "rules/accuracy_rule.h"
#include "truth/claims.h"

namespace relacc {

/// Synthetic equivalent of the paper's Rest dataset (Dong et al.'s
/// restaurant snapshots: 5149 Manhattan restaurants, 12 web sources, 8
/// weekly snapshots; the Boolean attribute closed? is to be determined).
///
/// World model: each restaurant may close once (closures are absorbing and
/// biased toward the early snapshots). Two "tracker" sources re-crawl every
/// snapshot with high exactness but cover few restaurants — they supply the
/// false→true transitions that currency reasoning (DeduceOrder) can use.
/// The remaining "casual" sources observe each covered restaurant at only a
/// couple of random snapshots, with asymmetric noise (a missing listing is
/// misread as "closed" more often than the reverse); some casual sources
/// copy another source's claims, errors included — the structure copyCEF's
/// copy detection exploits.
struct RestConfig {
  uint64_t seed = 11;
  int num_restaurants = 5149;
  int num_sources = 12;
  int num_snapshots = 8;

  double close_prob = 0.22;      ///< P(restaurant closes inside the window)
  int num_trackers = 2;
  double tracker_coverage = 0.18;
  double tracker_fp = 0.005;      ///< P(open misread as closed)
  double tracker_fn = 0.03;      ///< P(closed misread as open)

  double casual_coverage = 0.6;
  /// Casual sources list a restaurant once or twice; with the default of a
  /// single observation they never witness a closure *transition*, which
  /// pins DeduceOrder to the trackers (paper: precision 1.0, recall 0.15).
  int casual_obs_min = 1;
  int casual_obs_max = 1;
  double casual_fp = 0.15;
  double casual_fn = 0.10;

  int num_copiers = 3;
  double copy_rate = 0.85;       ///< P(copier copies rather than observes)
};

/// The generated Rest workload.
struct RestDataset {
  ClaimSet claims;                    ///< closed? claims, for the truth module
  std::vector<bool> truly_closed;     ///< ground truth (G of Table 4)
  std::vector<int> copies_from;       ///< per source: copied source or -1
  Schema schema;                      ///< source | snapshot | closed | name | phone
  std::vector<AccuracyRule> rules;    ///< all form (1), per the paper
  ChaseConfig chase_config;

  RestDataset() : claims(0, 0, 0) {}

  /// Entity-instance view of one restaurant (tuples = its claims) for the
  /// chase/top-k protocols of Exp-5.
  EntityInstance InstanceFor(int restaurant) const;
};

RestDataset GenerateRest(const RestConfig& config);

}  // namespace relacc

#endif  // RELACC_DATAGEN_REST_GENERATOR_H_
