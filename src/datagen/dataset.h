#ifndef RELACC_DATAGEN_DATASET_H_
#define RELACC_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "chase/specification.h"
#include "core/relation.h"
#include "rules/accuracy_rule.h"

namespace relacc {

/// Σ ablation used by Exps 1-2 (Figs 6(b), 6(e), 6(f)).
enum class RuleFormFilter { kBoth, kForm1Only, kForm2Only };

/// A generated benchmark dataset: many entity instances over one schema,
/// parallel ground-truth tuples, shared master relations, and a shared AR
/// set. This is the substitute for the paper's proprietary Med / crawled
/// CFP data (DESIGN.md §5): the chase only ever sees tuples + orders +
/// rules, so the generators control exactly the coverage structure the
/// experiments measure.
struct EntityDataset {
  std::string name;
  Schema schema;
  std::vector<EntityInstance> entities;
  std::vector<Tuple> truths;          ///< ground-truth target per entity
  std::vector<Relation> masters;
  std::vector<AccuracyRule> rules;
  ChaseConfig chase_config;

  /// Rules surviving `filter`.
  std::vector<AccuracyRule> FilteredRules(RuleFormFilter filter) const;

  /// Master list truncated to `size` tuples of masters[0] (Figs 6(c)/(g):
  /// varying ‖Im‖). Other master relations (CFD patterns) are kept.
  std::vector<Relation> TruncatedMasters(int size) const;

  /// Owning specification for entity `i` (copies; prefer the explicit
  /// Instantiate/ChaseEngine route plus shared `masters` in hot loops).
  Specification SpecFor(int i, RuleFormFilter filter = RuleFormFilter::kBoth)
      const;
};

}  // namespace relacc

#endif  // RELACC_DATAGEN_DATASET_H_
