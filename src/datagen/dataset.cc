#include "datagen/dataset.h"

namespace relacc {

std::vector<AccuracyRule> EntityDataset::FilteredRules(
    RuleFormFilter filter) const {
  std::vector<AccuracyRule> out;
  for (const AccuracyRule& r : rules) {
    const bool is_form1 = r.form == AccuracyRule::Form::kTuplePair;
    if (filter == RuleFormFilter::kForm1Only && !is_form1) continue;
    if (filter == RuleFormFilter::kForm2Only && is_form1) continue;
    out.push_back(r);
  }
  return out;
}

std::vector<Relation> EntityDataset::TruncatedMasters(int size) const {
  std::vector<Relation> out = masters;
  if (!out.empty()) {
    Relation truncated(out[0].schema());
    for (int i = 0; i < out[0].size() && i < size; ++i) {
      truncated.Add(out[0].tuple(i));
    }
    out[0] = std::move(truncated);
  }
  return out;
}

Specification EntityDataset::SpecFor(int i, RuleFormFilter filter) const {
  Specification spec;
  spec.ie = entities[i];
  spec.masters = masters;
  spec.rules = FilteredRules(filter);
  spec.config = chase_config;
  return spec;
}

}  // namespace relacc
