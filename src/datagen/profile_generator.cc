#include "datagen/profile_generator.h"

#include <algorithm>
#include <cmath>

#include "rules/rule_builder.h"
#include "util/rng.h"

namespace relacc {
namespace {

/// Deterministic value vocabulary: attribute `attr` of entity `e` takes
/// "w<h>" where h mixes the coordinates. Small per-attribute vocabularies
/// give realistic duplicate values across entities.
std::string Vocab(const std::string& ds, int attr, uint64_t h, int vocab) {
  const uint64_t mixed =
      (h * 0x9e3779b97f4a7c15ULL) ^ (static_cast<uint64_t>(attr) << 32);
  return ds + "_a" + std::to_string(attr) + "_v" +
         std::to_string(mixed % static_cast<uint64_t>(vocab));
}

struct Layout {
  int key = 0;
  int version = 1;
  int cur_begin, cur_end;    // [begin, end)
  int mst_begin, mst_end;
  int dep_begin, dep_end;
  int free_begin, free_end;
  int total;
};

Layout MakeLayout(const ProfileConfig& c) {
  Layout l;
  l.cur_begin = 2;
  l.cur_end = l.cur_begin + c.num_currency_attrs;
  l.mst_begin = l.cur_end;
  l.mst_end = l.mst_begin + c.num_master_attrs;
  l.dep_begin = l.mst_end;
  l.dep_end = l.dep_begin + c.num_dep_attrs;
  l.free_begin = l.dep_end;
  l.free_end = l.free_begin + c.num_free_attrs;
  l.total = l.free_end;
  return l;
}

Schema MakeSchema(const Layout& l) {
  std::vector<Attribute> attrs(l.total);
  attrs[l.key] = {"key", ValueType::kString};
  attrs[l.version] = {"version", ValueType::kInt};
  for (int a = l.cur_begin; a < l.cur_end; ++a) {
    attrs[a] = {"cur_" + std::to_string(a - l.cur_begin), ValueType::kString};
  }
  for (int a = l.mst_begin; a < l.mst_end; ++a) {
    attrs[a] = {"mst_" + std::to_string(a - l.mst_begin), ValueType::kString};
  }
  for (int a = l.dep_begin; a < l.dep_end; ++a) {
    attrs[a] = {"dep_" + std::to_string(a - l.dep_begin), ValueType::kString};
  }
  for (int a = l.free_begin; a < l.free_end; ++a) {
    attrs[a] = {"free_" + std::to_string(a - l.free_begin),
                ValueType::kString};
  }
  return Schema(std::move(attrs));
}

}  // namespace

ProfileConfig MedConfig(uint64_t seed) {
  ProfileConfig c;
  c.name = "med";
  c.seed = seed;
  c.num_entities = 2700;
  c.mean_extra_tuples = 3.0;
  c.max_tuples = 83;
  c.num_currency_attrs = 9;
  c.num_master_attrs = 4;
  c.num_dep_attrs = 13;
  c.num_free_attrs = 2;  // 30 attributes total
  c.master_size = 2400;
  c.num_form2_rules = 15;
  c.form1_variants = 3;  // ~90 form-1 rules incl. variants
  c.null_prob = 0.02;
  c.free_corruption_prob = 0.05;
  c.mst_noise_prob = 0.45;
  return c;
}

ProfileConfig CfpConfig(uint64_t seed) {
  ProfileConfig c;
  c.name = "cfp";
  c.seed = seed;
  c.num_entities = 100;
  c.mean_extra_tuples = 4.0;  // ~5 tuples on average, 1..15
  c.max_tuples = 15;
  c.num_currency_attrs = 8;
  c.num_master_attrs = 4;
  c.num_dep_attrs = 6;
  c.num_free_attrs = 2;  // 22 attributes total
  c.master_size = 55;
  c.num_form2_rules = 15;
  c.form1_variants = 1;  // 28 form-1 rules in the paper; fewer variants
  c.null_prob = 0.015;
  c.free_corruption_prob = 0.03;
  c.mst_noise_prob = 0.22;
  return c;
}

EntityDataset GenerateProfile(const ProfileConfig& c) {
  const Layout l = MakeLayout(c);
  EntityDataset ds;
  ds.name = c.name;
  ds.schema = MakeSchema(l);
  Rng rng(c.seed);

  // --- master relation ---------------------------------------------------
  // Schema: key | bucket | mst_0..mst_{M-1}. `bucket` partitions Im so the
  // bucketed form-(2) rule variants stay semantically disjoint.
  Schema master_schema = [&] {
    std::vector<Attribute> attrs;
    attrs.push_back({"key", ValueType::kString});
    attrs.push_back({"bucket", ValueType::kInt});
    for (int a = l.mst_begin; a < l.mst_end; ++a) {
      attrs.push_back({ds.schema.name(a), ValueType::kString});
    }
    return Schema(std::move(attrs));
  }();

  const int buckets_per_attr =
      std::max(1, (c.num_form2_rules + c.num_master_attrs - 1) /
                      std::max(1, c.num_master_attrs));

  // Entities covered by master data: a random subset of size master_size.
  std::vector<int> entity_order(c.num_entities);
  for (int i = 0; i < c.num_entities; ++i) entity_order[i] = i;
  rng.Shuffle(&entity_order);
  std::vector<char> covered(c.num_entities, 0);
  for (int i = 0; i < c.num_entities && i < c.master_size; ++i) {
    covered[entity_order[i]] = 1;
  }

  Relation master(master_schema);

  // --- entities ------------------------------------------------------------
  ds.entities.reserve(c.num_entities);
  ds.truths.reserve(c.num_entities);
  for (int e = 0; e < c.num_entities; ++e) {
    const std::string key = c.name + "-e" + std::to_string(e);
    const uint64_t eh = static_cast<uint64_t>(e) + 1;

    // Tuple count: min + exponential tail, clamped (Med: 1..83, mean ~4).
    int t_count = c.min_tuples +
                  static_cast<int>(
                      -c.mean_extra_tuples *
                      std::log(std::max(1e-12, rng.UniformDouble())));
    t_count = std::min(std::max(t_count, c.min_tuples), c.max_tuples);

    // Observed versions; the ground truth is defined at the *maximum
    // observed* version (the target draws values from Ie, Sec. 1).
    std::vector<int64_t> versions(t_count);
    int64_t vmax = 1;
    for (int t = 0; t < t_count; ++t) {
      versions[t] = rng.UniformInt(1, c.max_version);
      vmax = std::max(vmax, versions[t]);
    }

    // The version is embedded in the value so that a currency-ordered
    // attribute never *recurs* to an earlier value — recurrence would make
    // the currency rule genuinely conflicting (non-Church-Rosser), which
    // real hand-written ARs avoid by construction.
    auto cur_value = [&](int attr, int64_t v) {
      return Value::Str("v" + std::to_string(v) + "_" +
                        Vocab(c.name, attr, eh * 131, c.values_per_attr));
    };
    auto true_value = [&](int attr) {
      return Value::Str(Vocab(c.name, attr, eh * 977, c.values_per_attr));
    };

    // Ground-truth tuple.
    std::vector<Value> truth(l.total, Value::Null());
    truth[l.key] = Value::Str(key);
    truth[l.version] = Value::Int(vmax);
    for (int a = l.cur_begin; a < l.cur_end; ++a) truth[a] = cur_value(a, vmax);
    for (int a = l.mst_begin; a < l.free_end; ++a) truth[a] = true_value(a);

    // Master tuple for covered entities.
    if (covered[e]) {
      std::vector<Value> m(master_schema.size());
      m[0] = Value::Str(key);
      m[1] = Value::Int(static_cast<int64_t>(eh % buckets_per_attr));
      for (int a = l.mst_begin; a < l.mst_end; ++a) {
        m[2 + (a - l.mst_begin)] = truth[a];
      }
      master.Add(Tuple(std::move(m)));
    }

    // Entity-level corruption of free attributes: a corrupted attribute
    // has a wrong variant circulating among ~half of its observations.
    std::vector<char> free_corrupted(l.total, 0);
    for (int a = l.free_begin; a < l.free_end; ++a) {
      free_corrupted[a] = rng.Bernoulli(c.free_corruption_prob) ? 1 : 0;
    }

    // Pre-draw the mst observation plan, guaranteeing at least one correct
    // observation per attribute. Without that guarantee, a column whose
    // only non-null observation is wrong would λ-assign the wrong value to
    // te and *conflict* with the master rule — a non-Church-Rosser
    // specification, which hand-curated rule sets avoid (Sec. 3).
    enum class MstObs : char { kNull, kWrong, kCorrect };
    std::vector<std::vector<MstObs>> mst_plan(
        c.num_master_attrs, std::vector<MstObs>(t_count, MstObs::kNull));
    for (int m = 0; m < c.num_master_attrs; ++m) {
      bool has_correct = false;
      for (int t = 0; t < t_count; ++t) {
        if (rng.Bernoulli(c.null_prob)) {
          mst_plan[m][t] = MstObs::kNull;
        } else if (rng.Bernoulli(c.mst_noise_prob)) {
          mst_plan[m][t] = MstObs::kWrong;
        } else {
          mst_plan[m][t] = MstObs::kCorrect;
          has_correct = true;
        }
      }
      if (!has_correct) {
        mst_plan[m][static_cast<std::size_t>(
            rng.NextBelow(static_cast<uint64_t>(t_count)))] =
            MstObs::kCorrect;
      }
    }

    // Observations.
    EntityInstance inst(e, ds.schema);
    for (int t = 0; t < t_count; ++t) {
      std::vector<Value> row(l.total, Value::Null());
      row[l.key] = Value::Str(key);
      row[l.version] = Value::Int(versions[t]);
      for (int a = l.cur_begin; a < l.cur_end; ++a) {
        if (rng.Bernoulli(c.null_prob)) continue;  // stays null
        row[a] = cur_value(a, versions[t]);
      }
      // Master-covered attributes: noisy observations per the pre-drawn
      // plan; a wrong observation is a distinct per-tuple variant so wrong
      // values do not accidentally form majorities.
      for (int a = l.mst_begin; a < l.mst_end; ++a) {
        switch (mst_plan[a - l.mst_begin][t]) {
          case MstObs::kNull:
            break;
          case MstObs::kWrong:
            // A systematic wrong variant (one per entity-attribute): real
            // dirty data repeats the same stale/mistyped value, which makes
            // it a genuine competitor in the preference model (the paper's
            // top-k curves rise gradually with k for exactly this reason).
            row[a] = Value::Str(truth[a].as_string() + "~alt");
            break;
          case MstObs::kCorrect:
            row[a] = truth[a];
            break;
        }
      }
      // Dependent attributes follow the health of their parent mst
      // attribute (arena follows team): tuples with the wrong parent carry
      // a stale dependent value.
      for (int a = l.dep_begin; a < l.dep_end; ++a) {
        if (rng.Bernoulli(c.null_prob)) continue;
        const int parent = l.mst_begin + (a - l.dep_begin) %
                                             std::max(1, c.num_master_attrs);
        const bool parent_ok =
            !row[parent].is_null() && row[parent] == truth[parent];
        if (parent_ok) {
          row[a] = truth[a];
        } else {
          row[a] = Value::Str(truth[a].as_string() + "~stale");
        }
      }
      for (int a = l.free_begin; a < l.free_end; ++a) {
        if (rng.Bernoulli(c.null_prob)) continue;
        if (free_corrupted[a] && rng.Bernoulli(0.5)) {
          row[a] = Value::Str(truth[a].as_string() + "~alt");
        } else {
          row[a] = truth[a];
        }
      }
      Tuple tuple(std::move(row));
      tuple.set_id(t);
      inst.Add(std::move(tuple));
    }
    ds.entities.push_back(std::move(inst));
    ds.truths.emplace_back(std::move(truth));
  }
  ds.masters.push_back(std::move(master));

  // --- accuracy rules ------------------------------------------------------
  // Version ranges partition the form-1 variants (each variant constrains
  // t2[version] to one band; the union is the unrestricted rule).
  auto band = [&](int variant, int variants) {
    const int lo = 1 + variant * c.max_version / variants;
    const int hi = (variant + 1) * c.max_version / variants;
    return std::pair<int64_t, int64_t>(lo, hi);
  };

  // ϕ1-style currency on version itself.
  for (int v = 0; v < c.form1_variants; ++v) {
    const auto [lo, hi] = band(v, c.form1_variants);
    AccuracyRule r =
        RuleBuilder(ds.schema, "cur:version/" + std::to_string(v))
            .WhereAttrs("version", CompareOp::kLt, "version")
            .WhereConst(2, "version", CompareOp::kGe, Value::Int(lo))
            .WhereConst(2, "version", CompareOp::kLe, Value::Int(hi))
            .Currency()
            .Concludes("version");
    ds.rules.push_back(std::move(r));
  }
  // ϕ2/ϕ3-style: currency propagates to the cur_* attributes.
  for (int a = l.cur_begin; a < l.cur_end; ++a) {
    const std::string& name = ds.schema.name(a);
    for (int v = 0; v < c.form1_variants; ++v) {
      const auto [lo, hi] = band(v, c.form1_variants);
      AccuracyRule r =
          RuleBuilder(ds.schema, "cur:" + name + "/" + std::to_string(v))
              .WhereOrder("version", /*strict=*/true)
              .WhereConst(2, name, CompareOp::kNe, Value::Null())
              .WhereConst(2, "version", CompareOp::kGe, Value::Int(lo))
              .WhereConst(2, "version", CompareOp::kLe, Value::Int(hi))
              .Currency()
              .Concludes(name);
      ds.rules.push_back(std::move(r));
    }
  }
  // ϕ11-style: dep_* follows the accuracy of its parent mst attribute.
  for (int a = l.dep_begin; a < l.dep_end; ++a) {
    const std::string& name = ds.schema.name(a);
    const int parent =
        l.mst_begin + (a - l.dep_begin) % std::max(1, c.num_master_attrs);
    AccuracyRule r = RuleBuilder(ds.schema, "corr:" + name)
                         .WhereOrder(ds.schema.name(parent), /*strict=*/true)
                         .WhereConst(2, name, CompareOp::kNe, Value::Null())
                         .Correlation()
                         .Concludes(name);
    ds.rules.push_back(std::move(r));
  }
  // ϕ6-style form-2 rules, bucketed into num_form2_rules variants.
  int emitted = 0;
  for (int b = 0; b < buckets_per_attr && emitted < c.num_form2_rules; ++b) {
    for (int a = l.mst_begin;
         a < l.mst_end && emitted < c.num_form2_rules; ++a) {
      const std::string& name = ds.schema.name(a);
      AccuracyRule r =
          MasterRuleBuilder(ds.schema, master_schema,
                            "master:" + name + "/b" + std::to_string(b))
              .WhereTeMaster("key", "key")
              .WhereMasterConst("bucket", CompareOp::kEq,
                                Value::Int(static_cast<int64_t>(b)))
              .Assign(name, name)
              .Build();
      ds.rules.push_back(std::move(r));
      ++emitted;
    }
  }
  return ds;
}

}  // namespace relacc
