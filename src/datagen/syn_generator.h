#ifndef RELACC_DATAGEN_SYN_GENERATOR_H_
#define RELACC_DATAGEN_SYN_GENERATOR_H_

#include <cstdint>

#include "chase/specification.h"
#include "topk/preference.h"

namespace relacc {

/// The paper's Syn workload (Sec. 7): one large entity instance of 20
/// attributes "extending relations stat and nba", a master relation, a set
/// Σ of random ARs (75% form (1), 25% form (2)) and random value scores.
/// Defaults are the paper's defaults (‖Ie‖, ‖Im‖, ‖Σ‖, k) =
/// (900, 300, 60, 15); Exp-4 varies one of the four at a time.
struct SynConfig {
  uint64_t seed = 7;
  int num_tuples = 900;     ///< ‖Ie‖
  int master_size = 300;    ///< ‖Im‖
  int num_rules = 60;       ///< ‖Σ‖

  // Schema layout (20 attributes): key | ts | ord_0..2 | cur_0..6 |
  // mst_0..3 | free_0..3. A hidden per-tuple timestamp drives the ord_*
  // attributes (mutually consistent currency witnesses) and the cur_*
  // values, so randomly drawn currency rules remain Church-Rosser.
  int num_ord_attrs = 3;
  int num_cur_attrs = 7;
  int num_mst_attrs = 4;
  int num_free_attrs = 4;

  int max_ts = 24;
  int free_domain_size = 30;   ///< distinct values per free attribute
  double null_prob = 0.05;
  /// Fraction of free-attribute value pairs constrained by compiled CFDs
  /// (te[free_i] = v → te[free_{i+1}] = g(v)); makes some top-k candidates
  /// fail `check`, as in the paper's random-Σ setting.
  double cfd_coverage = 0.25;
};

/// A generated Syn workload: a ready-to-chase specification (single entity
/// instance), a random-score preference model, and the ground truth.
struct SynDataset {
  Specification spec;
  PreferenceModel pref;
  Tuple truth;
};

SynDataset GenerateSyn(const SynConfig& config);

}  // namespace relacc

#endif  // RELACC_DATAGEN_SYN_GENERATOR_H_
