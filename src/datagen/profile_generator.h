#ifndef RELACC_DATAGEN_PROFILE_GENERATOR_H_
#define RELACC_DATAGEN_PROFILE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "datagen/dataset.h"

namespace relacc {

/// Shape parameters of a Med/CFP-like dataset. The schema is laid out as
///   key | version | cur_1..cur_C | mst_1..mst_M | dep_1..dep_D | free_1..free_F
/// with attribute classes that mirror how the paper's hand-written ARs
/// cover real attributes:
///  * `key`     — entity identifier, consistent in every tuple (entity
///                resolution has already run);
///  * `version` — a monotone counter à la `rnds` of Table 1; drives the
///                currency rule ϕ1;
///  * `cur_*`   — values that evolve with `version`; resolved by currency +
///                correlation ARs (ϕ2/ϕ3 style), form (1);
///  * `mst_*`   — covered by the master relation via form-(2) ARs (ϕ6
///                style); observations carry noise;
///  * `dep_*`   — correlated with a master attribute (ϕ11 style: arena
///                follows team); resolvable only when forms (1) and (2)
///                interact — reproducing the Fig. 6(e) interaction finding;
///  * `free_*`  — no rules; resolvable only when all observations agree
///                (axiom ϕ9 + λ), which calibrates the fraction of
///                complete targets of Fig. 6(a).
struct ProfileConfig {
  std::string name = "med";
  uint64_t seed = 42;

  int num_entities = 2700;
  double mean_extra_tuples = 3.0;  ///< T = min_tuples + Exp(mean), clamped
  int min_tuples = 1;
  int max_tuples = 83;

  int num_currency_attrs = 9;   ///< C
  int num_master_attrs = 4;     ///< M
  int num_dep_attrs = 7;        ///< D
  int num_free_attrs = 8;       ///< F   (total attrs = 2+C+M+D+F)

  int master_size = 2400;       ///< entities covered by Im
  int num_form2_rules = 15;     ///< bucketed variants (Sec. 7: "3-4 ARs per attribute")
  int form1_variants = 3;       ///< range-partitioned variants per form-1 rule

  int max_version = 10;
  int values_per_attr = 12;     ///< vocabulary size per attribute

  double null_prob = 0.02;      ///< P(observed cell -> null)
  /// P(a free attribute of an entity is "corrupted", i.e. a wrong variant
  /// circulates among its observations). Entity-level, so completeness
  /// does not collapse for large instances; the main calibration knob for
  /// the fraction of complete targets (Fig. 6(a)).
  double free_corruption_prob = 0.05;
  /// P(a single mst observation is wrong) — per tuple, so multi-tuple
  /// entities essentially always disagree on mst_* and only master data
  /// (form (2)) resolves them; this pins the Fig. 6(e) ablation shape.
  double mst_noise_prob = 0.25;
};

/// Paper-shaped presets (Sec. 7 "Experimental setting").
ProfileConfig MedConfig(uint64_t seed = 42);
ProfileConfig CfpConfig(uint64_t seed = 43);

/// Generates the dataset: entities, ground truths, one master relation and
/// the AR set (form-1 currency/correlation rules + bucketed form-2 rules).
EntityDataset GenerateProfile(const ProfileConfig& config);

}  // namespace relacc

#endif  // RELACC_DATAGEN_PROFILE_GENERATOR_H_
