#include "datagen/syn_generator.h"

#include <algorithm>
#include <string>

#include "rules/cfd.h"
#include "rules/rule_builder.h"
#include "util/rng.h"

namespace relacc {
namespace {

std::string BucketValue(int attr, int64_t bucket) {
  return "s" + std::to_string(attr) + "_" + std::to_string(bucket);
}

}  // namespace

SynDataset GenerateSyn(const SynConfig& c) {
  Rng rng(c.seed);
  SynDataset out;

  // --- schema --------------------------------------------------------------
  std::vector<Attribute> attrs;
  attrs.push_back({"key", ValueType::kString});
  attrs.push_back({"ts", ValueType::kInt});
  const int ord_begin = 2;
  for (int i = 0; i < c.num_ord_attrs; ++i) {
    attrs.push_back({"ord_" + std::to_string(i), ValueType::kInt});
  }
  const int cur_begin = ord_begin + c.num_ord_attrs;
  for (int i = 0; i < c.num_cur_attrs; ++i) {
    attrs.push_back({"cur_" + std::to_string(i), ValueType::kString});
  }
  const int mst_begin = cur_begin + c.num_cur_attrs;
  for (int i = 0; i < c.num_mst_attrs; ++i) {
    attrs.push_back({"mst_" + std::to_string(i), ValueType::kString});
  }
  const int free_begin = mst_begin + c.num_mst_attrs;
  for (int i = 0; i < c.num_free_attrs; ++i) {
    attrs.push_back({"free_" + std::to_string(i), ValueType::kString});
  }
  const int total = free_begin + c.num_free_attrs;
  Schema schema(std::move(attrs));

  // --- entity instance -----------------------------------------------------
  // Hidden timestamp per tuple; ord_i = ts + i keeps every currency witness
  // consistent; cur_i is a function of the ts bucket.
  const int64_t buckets = 6;
  Relation ie(schema);
  int64_t ts_max = 1;
  std::vector<int64_t> ts_of(c.num_tuples);
  for (int t = 0; t < c.num_tuples; ++t) {
    ts_of[t] = rng.UniformInt(1, c.max_ts);
    ts_max = std::max(ts_max, ts_of[t]);
  }
  auto cur_value = [&](int attr, int64_t ts) {
    return Value::Str(BucketValue(attr, ts * buckets / (c.max_ts + 1)));
  };
  const std::string key = "syn-entity";
  for (int t = 0; t < c.num_tuples; ++t) {
    std::vector<Value> row(total, Value::Null());
    row[0] = Value::Str(key);
    row[1] = Value::Int(ts_of[t]);
    for (int i = 0; i < c.num_ord_attrs; ++i) {
      row[ord_begin + i] = Value::Int(ts_of[t] + i);
    }
    for (int i = 0; i < c.num_cur_attrs; ++i) {
      if (!rng.Bernoulli(c.null_prob)) {
        row[cur_begin + i] = cur_value(cur_begin + i, ts_of[t]);
      }
    }
    for (int i = 0; i < c.num_mst_attrs; ++i) {
      if (!rng.Bernoulli(c.null_prob)) {
        row[mst_begin + i] = Value::Str(
            "m" + std::to_string(i) + "_" +
            std::to_string(rng.NextBelow(4)));  // noisy; master overrides
      }
    }
    for (int i = 0; i < c.num_free_attrs; ++i) {
      if (!rng.Bernoulli(c.null_prob)) {
        row[free_begin + i] = Value::Str(
            "f" + std::to_string(i) + "_" +
            std::to_string(rng.NextBelow(
                static_cast<uint64_t>(c.free_domain_size))));
      }
    }
    Tuple tuple(std::move(row));
    tuple.set_id(t);
    ie.Add(std::move(tuple));
  }

  // --- master relation -----------------------------------------------------
  Schema master_schema = [&] {
    std::vector<Attribute> ms;
    ms.push_back({"key", ValueType::kString});
    for (int i = 0; i < c.num_mst_attrs; ++i) {
      ms.push_back({"mst_" + std::to_string(i), ValueType::kString});
    }
    return Schema(std::move(ms));
  }();
  Relation master(master_schema);
  std::vector<Value> truth_mst(c.num_mst_attrs);
  for (int i = 0; i < c.num_mst_attrs; ++i) {
    truth_mst[i] = Value::Str("m" + std::to_string(i) + "_true");
  }
  for (int r = 0; r < c.master_size; ++r) {
    std::vector<Value> row(master_schema.size());
    // Row 0 matches the entity; the rest are unrelated master entries.
    row[0] = r == 0 ? Value::Str(key)
                    : Value::Str("other-" + std::to_string(r));
    for (int i = 0; i < c.num_mst_attrs; ++i) {
      row[1 + i] = r == 0 ? truth_mst[i]
                          : Value::Str("m" + std::to_string(i) + "_r" +
                                       std::to_string(r));
    }
    master.Add(Tuple(std::move(row)));
  }

  // --- rules ---------------------------------------------------------------
  // Random ARs: ~75% form (1) — a random currency witness ord_* propagated
  // to a random cur_* attribute over a random ts band; ~25% form (2).
  Specification& spec = out.spec;
  spec.ie = std::move(ie);
  spec.masters.push_back(std::move(master));

  // Base form-(1) rules guarantee that ts / ord_* / cur_* resolve (the
  // random banded variants below only add Σ mass); form-(2) rules cycle
  // over the master attributes. Counts add up to exactly num_rules.
  int form2_target = std::max(1, c.num_rules / 4);
  const int base_form1 = 1 + c.num_ord_attrs + c.num_cur_attrs;
  if (c.num_rules - form2_target - base_form1 < 0) {
    form2_target = std::max(1, c.num_rules - base_form1);
  }
  const int banded_target = std::max(0, c.num_rules - form2_target - base_form1);

  // Windowed currency witness: t1[ts] < t2[ts] ∧ t2[ts] ≤ t1[ord_last]
  // (= t1[ts] + num_ord-1). The transitive closure of the ≤2-step window
  // equals the full order, but grounding survives on O(n²/max_ts) pairs
  // instead of n²/2 — keeping |Γ| (and the per-check state the top-k
  // algorithms copy) near-linear, as in the paper's cost profile.
  const std::string window_attr =
      "ord_" + std::to_string(c.num_ord_attrs - 1);
  auto windowed = [&](const std::string& rule_name) {
    RuleBuilder b(schema, rule_name);
    b.WhereAttrs("ts", CompareOp::kLt, "ts")
        .WhereAttrs(window_attr, CompareOp::kGe, "ts")
        .Currency();
    return b;
  };
  spec.rules.push_back(windowed("syn-ts").Concludes("ts"));
  for (int i = 0; i < c.num_ord_attrs; ++i) {
    const std::string name = "ord_" + std::to_string(i);
    spec.rules.push_back(windowed("syn-" + name).Concludes(name));
  }
  for (int i = 0; i < c.num_cur_attrs; ++i) {
    const std::string name = "cur_" + std::to_string(i);
    spec.rules.push_back(
        windowed("syn-base-" + name)
            .WhereConst(2, name, CompareOp::kNe, Value::Null())
            .Concludes(name));
  }
  for (int r = 0; r < banded_target; ++r) {
    const int ord = ord_begin + static_cast<int>(rng.NextBelow(
                                    static_cast<uint64_t>(c.num_ord_attrs)));
    const int tgt = cur_begin + static_cast<int>(rng.NextBelow(
                                    static_cast<uint64_t>(c.num_cur_attrs)));
    const int64_t lo = rng.UniformInt(1, c.max_ts / 2);
    const int64_t hi = rng.UniformInt(lo, c.max_ts) +
                       static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>(c.num_ord_attrs)));
    AccuracyRule rule =
        RuleBuilder(schema, "syn-f1-" + std::to_string(r))
            .WhereAttrs(schema.name(ord), CompareOp::kLt, schema.name(ord))
            .WhereAttrs(window_attr, CompareOp::kGe, "ts")
            .WhereConst(2, schema.name(ord), CompareOp::kGe, Value::Int(lo))
            .WhereConst(2, schema.name(ord), CompareOp::kLe, Value::Int(hi))
            .WhereConst(2, schema.name(tgt), CompareOp::kNe, Value::Null())
            .Currency()
            .Concludes(schema.name(tgt));
    spec.rules.push_back(std::move(rule));
  }
  for (int r = 0; r < form2_target; ++r) {
    const int i = r % c.num_mst_attrs;
    AccuracyRule rule =
        MasterRuleBuilder(schema, master_schema,
                          "syn-f2-" + std::to_string(r))
            .WhereTeMaster("key", "key")
            .Assign("mst_" + std::to_string(i), "mst_" + std::to_string(i))
            .Build();
    spec.rules.push_back(std::move(rule));
  }

  // Compiled CFDs constraining consecutive free attributes: candidates
  // pairing a covered value with the wrong partner fail `check`.
  std::vector<ConstantCfd> cfds;
  for (int i = 0; i + 1 < c.num_free_attrs; i += 2) {
    for (int v = 0; v < c.free_domain_size; ++v) {
      if (!rng.Bernoulli(c.cfd_coverage)) continue;
      ConstantCfd cfd;
      cfd.name = "syn-cfd-" + std::to_string(i) + "-" + std::to_string(v);
      cfd.conditions = {
          {free_begin + i,
           Value::Str("f" + std::to_string(i) + "_" + std::to_string(v))}};
      cfd.then_attr = free_begin + i + 1;
      cfd.then_value = Value::Str("f" + std::to_string(i + 1) + "_" +
                                  std::to_string(v % c.free_domain_size));
      cfds.push_back(std::move(cfd));
    }
  }
  if (!cfds.empty()) {
    CompiledCfds compiled = CompileCfds(
        schema, cfds, /*master_index_hint=*/static_cast<int>(
            spec.masters.size()));
    spec.masters.push_back(std::move(compiled.master));
    for (AccuracyRule& r : compiled.rules) spec.rules.push_back(std::move(r));
  }

  // --- preference: random scores (Sec. 7) ----------------------------------
  out.pref = PreferenceModel(total);
  for (AttrId a = 0; a < total; ++a) {
    for (const Value& v : spec.ie.ColumnDomain(a)) {
      out.pref.SetWeight(a, v, rng.UniformDouble() * 10.0);
    }
  }

  // --- ground truth (values at the maximal timestamp; master for mst_*) ----
  std::vector<Value> truth(total, Value::Null());
  truth[0] = Value::Str(key);
  truth[1] = Value::Int(ts_max);
  for (int i = 0; i < c.num_ord_attrs; ++i) {
    truth[ord_begin + i] = Value::Int(ts_max + i);
  }
  for (int i = 0; i < c.num_cur_attrs; ++i) {
    truth[cur_begin + i] = cur_value(cur_begin + i, ts_max);
  }
  for (int i = 0; i < c.num_mst_attrs; ++i) truth[mst_begin + i] = truth_mst[i];
  out.truth = Tuple(std::move(truth));
  return out;
}

}  // namespace relacc
