#include "rules/accuracy_rule.h"

namespace relacc {
namespace {

std::string RenderPairPredicate(const TuplePairPredicate& p,
                                const Schema& schema) {
  using Kind = TuplePairPredicate::Kind;
  const auto attr = [&](AttrId a) { return schema.name(a); };
  switch (p.kind) {
    case Kind::kAttrAttr:
      return "t1[" + attr(p.left_attr) + "] " + CompareOpName(p.op) + " t2[" +
             attr(p.right_attr) + "]";
    case Kind::kAttrConst:
      return "t" + std::to_string(p.which) + "[" + attr(p.left_attr) + "] " +
             CompareOpName(p.op) + " " +
             (p.constant.is_null() ? "null" : p.constant.ToString());
    case Kind::kAttrTe:
      return "t" + std::to_string(p.which) + "[" + attr(p.left_attr) + "] " +
             CompareOpName(p.op) + " te[" + attr(p.right_attr) + "]";
    case Kind::kTeConst:
      return "te[" + attr(p.left_attr) + "] " + CompareOpName(p.op) + " " +
             (p.constant.is_null() ? "null" : p.constant.ToString());
    case Kind::kOrder:
      return std::string("t1 ") + (p.strict ? "<" : "<=") + "_" +
             attr(p.left_attr) + " t2";
  }
  return "?";
}

}  // namespace

std::string RuleToString(const AccuracyRule& rule, const Schema& schema) {
  std::string out = rule.name.empty() ? "AR" : rule.name;
  out += ": ";
  if (rule.form == AccuracyRule::Form::kTuplePair) {
    for (std::size_t i = 0; i < rule.lhs.size(); ++i) {
      if (i > 0) out += " AND ";
      out += RenderPairPredicate(rule.lhs[i], schema);
    }
    if (rule.lhs.empty()) out += "true";
    out += " -> t1 <=_" + schema.name(rule.rhs_attr) + " t2";
  } else {
    for (std::size_t i = 0; i < rule.master_lhs.size(); ++i) {
      if (i > 0) out += " AND ";
      const MasterPredicate& p = rule.master_lhs[i];
      switch (p.kind) {
        case MasterPredicate::Kind::kTeConst:
          out += "te[" + schema.name(p.te_attr) + "] = " + p.constant.ToString();
          break;
        case MasterPredicate::Kind::kTeMaster:
          out += "te[" + schema.name(p.te_attr) + "] = tm[#" +
                 std::to_string(p.master_attr) + "]";
          break;
        case MasterPredicate::Kind::kMasterConst:
          out += "tm[#" + std::to_string(p.master_attr) + "] " +
                 CompareOpName(p.op) + " " + p.constant.ToString();
          break;
      }
    }
    if (rule.master_lhs.empty()) out += "true";
    out += " -> te[";
    for (std::size_t i = 0; i < rule.assignments.size(); ++i) {
      if (i > 0) out += ",";
      out += schema.name(rule.assignments[i].first);
    }
    out += "] := tm[...]";
  }
  return out;
}

}  // namespace relacc
