#include "rules/cfd.h"

namespace relacc {

CompiledCfds CompileCfds(const Schema& entity_schema,
                         const std::vector<ConstantCfd>& cfds,
                         int master_index_hint) {
  // Master schema: one column per entity attribute (same type), plus a
  // discriminator so each rule matches only its own pattern tuple.
  std::vector<Attribute> attrs;
  attrs.push_back({"cfd_id", ValueType::kString});
  for (const Attribute& a : entity_schema.attributes()) attrs.push_back(a);
  Schema master_schema(attrs);

  CompiledCfds out;
  out.master = Relation(master_schema);
  for (const ConstantCfd& cfd : cfds) {
    std::vector<Value> row(master_schema.size(), Value::Null());
    row[0] = Value::Str(cfd.name);
    for (const auto& [attr, value] : cfd.conditions) row[1 + attr] = value;
    row[1 + cfd.then_attr] = cfd.then_value;
    out.master.Add(Tuple(std::move(row)));

    AccuracyRule rule;
    rule.form = AccuracyRule::Form::kMaster;
    rule.name = "cfd:" + cfd.name;
    rule.provenance = RuleProvenance::kCfd;
    rule.master_index = master_index_hint;
    // Predicates are built in place (emplace_back, then field writes):
    // moving a stack-local MasterPredicate into the vector trips a GCC 12
    // -Wmaybe-uninitialized false positive on the Value variant storage
    // (PR105562 family) and the tree builds with -Werror.
    {
      MasterPredicate& disc = rule.master_lhs.emplace_back();
      disc.kind = MasterPredicate::Kind::kMasterConst;
      disc.master_attr = 0;
      disc.op = CompareOp::kEq;
      disc.constant = Value::Str(cfd.name);
    }
    for (const auto& [attr, value] : cfd.conditions) {
      MasterPredicate& p = rule.master_lhs.emplace_back();
      p.kind = MasterPredicate::Kind::kTeMaster;
      p.te_attr = attr;
      p.master_attr = 1 + attr;
      (void)value;
    }
    rule.assignments.emplace_back(cfd.then_attr, 1 + cfd.then_attr);
    out.rules.push_back(std::move(rule));
  }
  return out;
}

}  // namespace relacc
