#include "rules/rule_builder.h"

namespace relacc {

RuleBuilder::RuleBuilder(const Schema& schema, std::string name)
    : schema_(schema) {
  rule_.form = AccuracyRule::Form::kTuplePair;
  rule_.name = std::move(name);
}

RuleBuilder& RuleBuilder::WhereAttrs(const std::string& a, CompareOp op,
                                     const std::string& b) {
  TuplePairPredicate p;
  p.kind = TuplePairPredicate::Kind::kAttrAttr;
  p.left_attr = schema_.MustIndexOf(a);
  p.right_attr = schema_.MustIndexOf(b);
  p.op = op;
  rule_.lhs.push_back(std::move(p));
  return *this;
}

RuleBuilder& RuleBuilder::WhereConst(int which, const std::string& a,
                                     CompareOp op, Value c) {
  TuplePairPredicate p;
  p.kind = TuplePairPredicate::Kind::kAttrConst;
  p.which = which;
  p.left_attr = schema_.MustIndexOf(a);
  p.op = op;
  p.constant = std::move(c);
  rule_.lhs.push_back(std::move(p));
  return *this;
}

RuleBuilder& RuleBuilder::WhereTe(int which, const std::string& a,
                                  CompareOp op, const std::string& b) {
  TuplePairPredicate p;
  p.kind = TuplePairPredicate::Kind::kAttrTe;
  p.which = which;
  p.left_attr = schema_.MustIndexOf(a);
  p.right_attr = schema_.MustIndexOf(b);
  p.op = op;
  rule_.lhs.push_back(std::move(p));
  return *this;
}

RuleBuilder& RuleBuilder::WhereTeConst(const std::string& a, CompareOp op,
                                       Value c) {
  TuplePairPredicate p;
  p.kind = TuplePairPredicate::Kind::kTeConst;
  p.left_attr = schema_.MustIndexOf(a);
  p.op = op;
  p.constant = std::move(c);
  rule_.lhs.push_back(std::move(p));
  return *this;
}

RuleBuilder& RuleBuilder::WhereOrder(const std::string& a, bool strict) {
  TuplePairPredicate p;
  p.kind = TuplePairPredicate::Kind::kOrder;
  p.left_attr = schema_.MustIndexOf(a);
  p.strict = strict;
  rule_.lhs.push_back(std::move(p));
  return *this;
}

RuleBuilder& RuleBuilder::Provenance(RuleProvenance p) {
  rule_.provenance = p;
  return *this;
}

AccuracyRule RuleBuilder::Concludes(const std::string& a) {
  rule_.rhs_attr = schema_.MustIndexOf(a);
  return std::move(rule_);
}

MasterRuleBuilder::MasterRuleBuilder(const Schema& entity_schema,
                                     const Schema& master_schema,
                                     std::string name)
    : entity_schema_(entity_schema), master_schema_(master_schema) {
  rule_.form = AccuracyRule::Form::kMaster;
  rule_.name = std::move(name);
  rule_.provenance = RuleProvenance::kMaster;
}

MasterRuleBuilder& MasterRuleBuilder::WhereTeMaster(
    const std::string& te_attr, const std::string& master_attr) {
  MasterPredicate p;
  p.kind = MasterPredicate::Kind::kTeMaster;
  p.te_attr = entity_schema_.MustIndexOf(te_attr);
  p.master_attr = master_schema_.MustIndexOf(master_attr);
  rule_.master_lhs.push_back(std::move(p));
  return *this;
}

MasterRuleBuilder& MasterRuleBuilder::WhereTeConst(const std::string& te_attr,
                                                   Value c) {
  MasterPredicate p;
  p.kind = MasterPredicate::Kind::kTeConst;
  p.te_attr = entity_schema_.MustIndexOf(te_attr);
  p.constant = std::move(c);
  rule_.master_lhs.push_back(std::move(p));
  return *this;
}

MasterRuleBuilder& MasterRuleBuilder::WhereMasterConst(
    const std::string& master_attr, CompareOp op, Value c) {
  MasterPredicate p;
  p.kind = MasterPredicate::Kind::kMasterConst;
  p.master_attr = master_schema_.MustIndexOf(master_attr);
  p.op = op;
  p.constant = std::move(c);
  rule_.master_lhs.push_back(std::move(p));
  return *this;
}

MasterRuleBuilder& MasterRuleBuilder::Assign(const std::string& te_attr,
                                             const std::string& master_attr) {
  rule_.assignments.emplace_back(entity_schema_.MustIndexOf(te_attr),
                                 master_schema_.MustIndexOf(master_attr));
  return *this;
}

MasterRuleBuilder& MasterRuleBuilder::OnMaster(int master_index) {
  rule_.master_index = master_index;
  return *this;
}

MasterRuleBuilder& MasterRuleBuilder::Provenance(RuleProvenance p) {
  rule_.provenance = p;
  return *this;
}

AccuracyRule MasterRuleBuilder::Build() { return std::move(rule_); }

}  // namespace relacc
