#ifndef RELACC_RULES_CFD_H_
#define RELACC_RULES_CFD_H_

#include <string>
#include <utility>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "rules/accuracy_rule.h"

namespace relacc {

/// A constant conditional functional dependency (constant CFD, [13]) over
/// the entity schema, e.g. [team = "Chicago Bulls" → arena = "United
/// Center"]. The paper (Sec. 2.1 Remark) compiles these into form-(2) ARs
/// over a synthesized master relation; only the target tuple's consistency
/// needs assurance, so general two-tuple CFDs are not required.
struct ConstantCfd {
  std::string name;
  std::vector<std::pair<AttrId, Value>> conditions;  ///< te[A] = c conjuncts
  AttrId then_attr = -1;
  Value then_value;
};

/// Result of compiling a batch of constant CFDs: one synthesized master
/// relation (one tuple per CFD) plus one form-(2) AR per CFD referencing it
/// via `master_index` (to be fixed up by the caller when appending the
/// relation to a specification's master list).
struct CompiledCfds {
  Relation master;                ///< schema: pattern attrs as strings
  std::vector<AccuracyRule> rules;
};

/// Compiles `cfds` against `entity_schema`. Every rule's `master_index` is
/// set to `master_index_hint`; append `master` at that position.
CompiledCfds CompileCfds(const Schema& entity_schema,
                         const std::vector<ConstantCfd>& cfds,
                         int master_index_hint);

}  // namespace relacc

#endif  // RELACC_RULES_CFD_H_
