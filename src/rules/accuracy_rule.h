#ifndef RELACC_RULES_ACCURACY_RULE_H_
#define RELACC_RULES_ACCURACY_RULE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/schema.h"
#include "rules/predicate.h"

namespace relacc {

/// Semantic origin of a rule. Used by experiments (e.g. DeduceOrder extracts
/// currency rules and constant CFDs, Exp-5) and for reporting.
enum class RuleProvenance {
  kGeneric = 0,
  kCurrency,        ///< data-currency rules such as ϕ1
  kCorrelation,     ///< co-existence of attributes, e.g. ϕ2, ϕ5, ϕ10
  kNullAxiom,       ///< ϕ7
  kTeAnchorAxiom,   ///< ϕ8
  kEqualityAxiom,   ///< ϕ9
  kMaster,          ///< form-(2) rules over master data, e.g. ϕ6
  kCfd,             ///< constant CFDs compiled to ARs (Sec. 2.1 Remark)
};

/// An accuracy rule (AR), Sec. 2.1. Two forms:
///
/// Form (1):  ∀t1,t2 (R(t1) ∧ R(t2) ∧ ω → t1 ⪯_{rhs_attr} t2)
///   with ω = conjunction of TuplePairPredicate. The conclusion is stored as
///   ⪯ (the non-strict accuracy order); `t1 ≺_A t2` is derivable as
///   `t1 ⪯_A t2 ∧ t1[A] ≠ t2[A]`.
///
/// Form (2):  ∀tm (Rm(tm) ∧ ω → te[Ai..] = tm[Bi..])
///   with ω = conjunction of MasterPredicate and one or more assignments
///   (paper ϕ6 assigns two attributes; each assignment is one chase step).
///   `master_index` selects which master relation of the specification the
///   rule ranges over (constant CFDs compile to single-tuple master
///   relations of their own).
struct AccuracyRule {
  enum class Form { kTuplePair, kMaster };

  Form form = Form::kTuplePair;
  std::string name;
  RuleProvenance provenance = RuleProvenance::kGeneric;

  /// Source span of the rule's name token in the DSL program it was
  /// parsed from (1-based; 0 = unknown, e.g. a programmatically-built
  /// rule). Carried so static-analysis diagnostics (analysis/) and lint
  /// output can point at the offending rule's source line.
  int line = 0;
  int column = 0;

  // --- form (1) ---
  std::vector<TuplePairPredicate> lhs;
  AttrId rhs_attr = -1;

  // --- form (2) ---
  int master_index = 0;
  std::vector<MasterPredicate> master_lhs;
  std::vector<std::pair<AttrId, AttrId>> assignments;  ///< (te attr, tm attr)
};

/// Renders a rule in the paper's notation for logs and docs.
std::string RuleToString(const AccuracyRule& rule, const Schema& schema);

}  // namespace relacc

#endif  // RELACC_RULES_ACCURACY_RULE_H_
