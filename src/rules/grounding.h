#ifndef RELACC_RULES_GROUNDING_H_
#define RELACC_RULES_GROUNDING_H_

#include <cstdint>
#include <vector>

#include "core/relation.h"
#include "rules/accuracy_rule.h"

namespace relacc {

class ColumnarRelation;  // core/columnar.h
class ThreadPool;        // util/thread_pool.h

/// A residual conjunct of a ground step (procedure Instantiation, Sec. 5):
/// every predicate that could be evaluated against constants has been
/// folded away; only order predicates and target-template predicates
/// remain, both of which become satisfiable as the chase proceeds.
struct GroundPredicate {
  enum class Kind {
    kOrderPair,  ///< ti ⪯_attr tj derived (strictness resolved at ground time)
    kTeCompare,  ///< te[attr] op constant; evaluable once te[attr] is set
  };

  Kind kind = Kind::kOrderPair;
  AttrId attr = -1;
  int i = -1;
  int j = -1;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// A possible single chase step φ ∈ Γ: once the residual LHS is satisfied,
/// enforce the conclusion (extend a partial order or instantiate te).
struct GroundStep {
  enum class Kind { kAddOrder, kSetTe };

  Kind kind = Kind::kAddOrder;
  AttrId attr = -1;
  int i = -1;              ///< kAddOrder: ti ⪯_attr tj
  int j = -1;
  Value te_value;          ///< kSetTe: te[attr] := te_value
  std::vector<GroundPredicate> residual;
  int rule_id = -1;        ///< index into the specification's rule list
};

/// Output of Instantiation: the ground step set Γ plus sizing facts needed
/// to build the chase index H. Built once per specification and shared
/// across chase runs (the top-k `check` re-runs the chase many times with
/// different initial targets over the same Γ).
struct GroundProgram {
  std::vector<GroundStep> steps;
  int num_tuples = 0;
  int num_attrs = 0;
  /// Rule names by rule_id (parallel to the specification's rule list),
  /// so chase violations can name the rules whose steps conflicted and
  /// cross-reference the static `relacc lint` checks.
  std::vector<std::string> rule_names;
};

/// Structural equality, field for field in step order — the determinism
/// contract of sharded grounding (tests assert step-by-step identity
/// across shard counts). Value equality treats null == null as true, so
/// residual constants compare as stored.
bool operator==(const GroundPredicate& a, const GroundPredicate& b);
inline bool operator!=(const GroundPredicate& a, const GroundPredicate& b) {
  return !(a == b);
}
bool operator==(const GroundStep& a, const GroundStep& b);
inline bool operator!=(const GroundStep& a, const GroundStep& b) {
  return !(a == b);
}
bool operator==(const GroundProgram& a, const GroundProgram& b);
inline bool operator!=(const GroundProgram& a, const GroundProgram& b) {
  return !(a == b);
}

/// Procedure Instantiation (Sec. 5, Fig. 4 line 1): partially evaluates
/// every rule against every ordered tuple pair of `ie` (form 1) / every
/// master tuple (form 2). Steps whose LHS is already false are dropped.
/// Runs in O(|Σ|·(|Ie|² + |Im|)) time.
GroundProgram Instantiate(const Relation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules);

/// Sharded Instantiation: the same Γ, built in parallel. The rule×Ie
/// (and rule×Im) loop space is flattened into "rows" — one (rule, ti)
/// outer-loop iteration of a form-(1) rule, one (rule, tm) iteration of
/// a form-(2) rule — and split into `num_shards` contiguous row ranges.
/// Each shard grounds its rows into a private step list; the merge
/// concatenates the lists in shard order, which reproduces the serial
/// emission order exactly, so the returned GroundProgram is
/// step-for-step identical to Instantiate(ie, masters, rules) for every
/// shard count (operator== above; enforced by tests and by
/// bench/pipeline_scaling's ground_scaling rows).
///
/// `num_shards <= 1` (or a trivially small row space) runs the serial
/// path. Shards run on `pool` when given — only idle-at-call-site pools
/// may be passed, e.g. the service's chase pool between phases — or on a
/// transient pool of min(num_shards, rows) threads when null.
GroundProgram Instantiate(const Relation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules,
                          int num_shards, ThreadPool* pool = nullptr);

/// Columnar Instantiation: the same Γ, built from dictionary-encoded
/// columns. Every constant conjunct whose operator is an equality is
/// decided by TermId comparison (id equality == value equality by the
/// interning contract, nulls included); order comparisons fall back to
/// the dictionary values, whose cross-type numeric Compare agrees with
/// the schema-typed row values. Residual constants lifted out of tuples
/// (kAttrTe) are materialized with the schema column type, so the
/// emitted program is step-for-step identical (operator== above) to
/// Instantiate(ie.ToRelation(), masters, rules) — enforced by tests.
/// Rule constants are pre-interned into ie's dictionary, serially,
/// before any fan-out.
GroundProgram Instantiate(const ColumnarRelation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules);

/// Sharded columnar Instantiation; shard/merge discipline (and the
/// resulting step-order determinism across shard counts) is exactly the
/// row overload's.
GroundProgram Instantiate(const ColumnarRelation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules,
                          int num_shards, ThreadPool* pool = nullptr);

}  // namespace relacc

#endif  // RELACC_RULES_GROUNDING_H_
