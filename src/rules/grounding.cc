#include "rules/grounding.h"

namespace relacc {
namespace {

/// Grounds one form-(1) rule on the ordered pair (ti, tj). Returns false if
/// some constant predicate already fails (the step is dropped).
bool GroundPairRule(const AccuracyRule& rule, const Relation& ie, int i,
                    int j, GroundStep* out) {
  const Tuple& t1 = ie.tuple(i);
  const Tuple& t2 = ie.tuple(j);
  out->kind = GroundStep::Kind::kAddOrder;
  out->attr = rule.rhs_attr;
  out->i = i;
  out->j = j;
  out->residual.clear();
  for (const TuplePairPredicate& p : rule.lhs) {
    switch (p.kind) {
      case TuplePairPredicate::Kind::kAttrAttr: {
        if (!EvalCompare(p.op, t1.at(p.left_attr), t2.at(p.right_attr))) {
          return false;
        }
        break;
      }
      case TuplePairPredicate::Kind::kAttrConst: {
        const Tuple& t = p.which == 1 ? t1 : t2;
        if (!EvalCompare(p.op, t.at(p.left_attr), p.constant)) return false;
        break;
      }
      case TuplePairPredicate::Kind::kAttrTe: {
        // ti[a] op te[b]  ==>  te[b] op' c with c = ti[a].
        const Tuple& t = p.which == 1 ? t1 : t2;
        const Value& c = t.at(p.left_attr);
        const CompareOp flipped = FlipCompareOp(p.op);
        // te values are non-null once set, so te = null is unsatisfiable
        // and te-order-compare against null is always false.
        if (c.is_null() && flipped != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.right_attr;
        g.op = flipped;
        g.constant = c;
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kTeConst: {
        if (p.constant.is_null() && p.op != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.left_attr;
        g.op = p.op;
        g.constant = p.constant;
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kOrder: {
        // t1 ≺_a t2 requires differing values; resolved now since tuple
        // values are constants.
        if (p.strict && t1.at(p.left_attr) == t2.at(p.left_attr)) {
          return false;
        }
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kOrderPair;
        g.attr = p.left_attr;
        g.i = i;
        g.j = j;
        out->residual.push_back(std::move(g));
        break;
      }
    }
  }
  return true;
}

/// Grounds one form-(2) rule on master tuple tm, emitting one kSetTe step
/// per assignment with a non-null source value.
void GroundMasterRule(const AccuracyRule& rule, const Tuple& tm, int rule_id,
                      std::vector<GroundStep>* out) {
  std::vector<GroundPredicate> residual;
  for (const MasterPredicate& p : rule.master_lhs) {
    switch (p.kind) {
      case MasterPredicate::Kind::kMasterConst: {
        if (!EvalCompare(p.op, tm.at(p.master_attr), p.constant)) return;
        break;
      }
      case MasterPredicate::Kind::kTeConst: {
        if (p.constant.is_null()) return;  // te never becomes null
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.te_attr;
        g.op = CompareOp::kEq;
        g.constant = p.constant;
        residual.push_back(std::move(g));
        break;
      }
      case MasterPredicate::Kind::kTeMaster: {
        const Value& c = tm.at(p.master_attr);
        if (c.is_null()) return;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.te_attr;
        g.op = CompareOp::kEq;
        g.constant = c;
        residual.push_back(std::move(g));
        break;
      }
    }
  }
  for (const auto& [te_attr, m_attr] : rule.assignments) {
    const Value& v = tm.at(m_attr);
    if (v.is_null()) continue;  // no information to copy
    GroundStep step;
    step.kind = GroundStep::Kind::kSetTe;
    step.attr = te_attr;
    step.te_value = v;
    step.residual = residual;
    step.rule_id = rule_id;
    out->push_back(std::move(step));
  }
}

}  // namespace

GroundProgram Instantiate(const Relation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules) {
  GroundProgram prog;
  prog.num_tuples = ie.size();
  prog.num_attrs = ie.schema().size();
  const int n = ie.size();
  GroundStep scratch;
  for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
    const AccuracyRule& rule = rules[r];
    if (rule.form == AccuracyRule::Form::kTuplePair) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          if (GroundPairRule(rule, ie, i, j, &scratch)) {
            scratch.rule_id = r;
            prog.steps.push_back(scratch);
          }
        }
      }
    } else {
      if (rule.master_index < 0 ||
          rule.master_index >= static_cast<int>(masters.size())) {
        continue;  // rule references an absent master relation
      }
      const Relation& im = masters[rule.master_index];
      for (const Tuple& tm : im.tuples()) {
        GroundMasterRule(rule, tm, r, &prog.steps);
      }
    }
  }
  return prog;
}

}  // namespace relacc
