#include "rules/grounding.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/columnar.h"
#include "util/thread_pool.h"

namespace relacc {
namespace {

/// Grounds one form-(1) rule on the ordered pair (ti, tj). Returns false if
/// some constant predicate already fails (the step is dropped).
bool GroundPairRule(const AccuracyRule& rule, const Relation& ie, int i,
                    int j, GroundStep* out) {
  const Tuple& t1 = ie.tuple(i);
  const Tuple& t2 = ie.tuple(j);
  out->kind = GroundStep::Kind::kAddOrder;
  out->attr = rule.rhs_attr;
  out->i = i;
  out->j = j;
  out->residual.clear();
  for (const TuplePairPredicate& p : rule.lhs) {
    switch (p.kind) {
      case TuplePairPredicate::Kind::kAttrAttr: {
        if (!EvalCompare(p.op, t1.at(p.left_attr), t2.at(p.right_attr))) {
          return false;
        }
        break;
      }
      case TuplePairPredicate::Kind::kAttrConst: {
        const Tuple& t = p.which == 1 ? t1 : t2;
        if (!EvalCompare(p.op, t.at(p.left_attr), p.constant)) return false;
        break;
      }
      case TuplePairPredicate::Kind::kAttrTe: {
        // ti[a] op te[b]  ==>  te[b] op' c with c = ti[a].
        const Tuple& t = p.which == 1 ? t1 : t2;
        const Value& c = t.at(p.left_attr);
        const CompareOp flipped = FlipCompareOp(p.op);
        // te values are non-null once set, so te = null is unsatisfiable
        // and te-order-compare against null is always false.
        if (c.is_null() && flipped != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.right_attr;
        g.op = flipped;
        g.constant = c;
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kTeConst: {
        if (p.constant.is_null() && p.op != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.left_attr;
        g.op = p.op;
        g.constant = p.constant;
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kOrder: {
        // t1 ≺_a t2 requires differing values; resolved now since tuple
        // values are constants.
        if (p.strict && t1.at(p.left_attr) == t2.at(p.left_attr)) {
          return false;
        }
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kOrderPair;
        g.attr = p.left_attr;
        g.i = i;
        g.j = j;
        out->residual.push_back(std::move(g));
        break;
      }
    }
  }
  return true;
}

/// Grounds one form-(2) rule on master tuple tm, emitting one kSetTe step
/// per assignment with a non-null source value.
void GroundMasterRule(const AccuracyRule& rule, const Tuple& tm, int rule_id,
                      std::vector<GroundStep>* out) {
  std::vector<GroundPredicate> residual;
  for (const MasterPredicate& p : rule.master_lhs) {
    switch (p.kind) {
      case MasterPredicate::Kind::kMasterConst: {
        if (!EvalCompare(p.op, tm.at(p.master_attr), p.constant)) return;
        break;
      }
      case MasterPredicate::Kind::kTeConst: {
        if (p.constant.is_null()) return;  // te never becomes null
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.te_attr;
        g.op = CompareOp::kEq;
        g.constant = p.constant;
        residual.push_back(std::move(g));
        break;
      }
      case MasterPredicate::Kind::kTeMaster: {
        const Value& c = tm.at(p.master_attr);
        if (c.is_null()) return;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.te_attr;
        g.op = CompareOp::kEq;
        g.constant = c;
        residual.push_back(std::move(g));
        break;
      }
    }
  }
  for (const auto& [te_attr, m_attr] : rule.assignments) {
    const Value& v = tm.at(m_attr);
    if (v.is_null()) continue;  // no information to copy
    GroundStep step;
    step.kind = GroundStep::Kind::kSetTe;
    step.attr = te_attr;
    step.te_value = v;
    step.residual = residual;
    step.rule_id = rule_id;
    out->push_back(std::move(step));
  }
}

/// The flattened loop space of Instantiation: one row per (rule, ti)
/// outer-loop iteration of a form-(1) rule and per (rule, tm) iteration
/// of a form-(2) rule. `starts[r]` is the first global row of rule r,
/// `starts[rules.size()]` the total row count. Rules referencing an
/// absent master relation contribute zero rows, matching the serial
/// loop's `continue`.
std::vector<int64_t> RowStarts(int num_ie_rows,
                               const std::vector<Relation>& masters,
                               const std::vector<AccuracyRule>& rules) {
  std::vector<int64_t> starts(rules.size() + 1, 0);
  for (std::size_t r = 0; r < rules.size(); ++r) {
    int64_t rows = 0;
    if (rules[r].form == AccuracyRule::Form::kTuplePair) {
      rows = num_ie_rows;
    } else if (rules[r].master_index >= 0 &&
               rules[r].master_index < static_cast<int>(masters.size())) {
      rows = masters[rules[r].master_index].size();
    }
    starts[r + 1] = starts[r] + rows;
  }
  return starts;
}

/// Grounds global rows [begin, end) in row order, appending to `out`.
/// Emission order within a row (the inner j loop / the assignment list)
/// is the serial order, so concatenating contiguous ranges in ascending
/// row order reproduces the serial program exactly.
void GroundRows(const Relation& ie, const std::vector<Relation>& masters,
                const std::vector<AccuracyRule>& rules,
                const std::vector<int64_t>& starts, int64_t begin,
                int64_t end, std::vector<GroundStep>* out) {
  const int n = ie.size();
  GroundStep scratch;
  for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
    const int64_t lo = std::max(begin, starts[r]);
    const int64_t hi = std::min(end, starts[r + 1]);
    if (lo >= hi) continue;
    const AccuracyRule& rule = rules[r];
    if (rule.form == AccuracyRule::Form::kTuplePair) {
      for (int64_t row = lo; row < hi; ++row) {
        const int i = static_cast<int>(row - starts[r]);
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          if (GroundPairRule(rule, ie, i, j, &scratch)) {
            scratch.rule_id = r;
            out->push_back(scratch);
          }
        }
      }
    } else {
      const Relation& im = masters[rule.master_index];
      for (int64_t row = lo; row < hi; ++row) {
        GroundMasterRule(rule, im.tuple(static_cast<int>(row - starts[r])),
                         r, out);
      }
    }
  }
}

/// Pre-interns every kAttrConst constant of every rule so the columnar
/// pair loop compares ids instead of Values. Must run serially, before
/// any shard fan-out, and interning an absent constant is harmless — a
/// fresh id simply matches no column id. Entry [r][k] is the constant of
/// rule r's k-th lhs conjunct (kNullTermId where the conjunct has none).
std::vector<std::vector<TermId>> InternRuleConstants(
    const std::vector<AccuracyRule>& rules, Dictionary* dict) {
  std::vector<std::vector<TermId>> ids(rules.size());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    ids[r].assign(rules[r].lhs.size(), kNullTermId);
    for (std::size_t k = 0; k < rules[r].lhs.size(); ++k) {
      const TuplePairPredicate& p = rules[r].lhs[k];
      if (p.kind == TuplePairPredicate::Kind::kAttrConst) {
        ids[r][k] = dict->Intern(p.constant);
      }
    }
  }
  return ids;
}

/// Columnar twin of GroundPairRule. Equality operators are decided on
/// TermIds (id equality == Value::operator== equality by the interning
/// contract, nulls included: all nulls share kNullTermId); order
/// operators fall back to the dictionary representatives, whose
/// cross-type numeric Compare agrees with the schema-typed row values.
/// `const_ids[k]` pre-resolves the k-th conjunct's kAttrConst constant.
bool GroundPairRuleColumnar(const AccuracyRule& rule,
                            const std::vector<TermId>& const_ids,
                            const ColumnarRelation& ie, int i, int j,
                            GroundStep* out) {
  const Dictionary& dict = ie.dict();
  out->kind = GroundStep::Kind::kAddOrder;
  out->attr = rule.rhs_attr;
  out->i = i;
  out->j = j;
  out->residual.clear();
  for (std::size_t k = 0; k < rule.lhs.size(); ++k) {
    const TuplePairPredicate& p = rule.lhs[k];
    switch (p.kind) {
      case TuplePairPredicate::Kind::kAttrAttr: {
        const TermId a = ie.id_at(i, p.left_attr);
        const TermId b = ie.id_at(j, p.right_attr);
        if (p.op == CompareOp::kEq) {
          if (a != b) return false;
        } else if (p.op == CompareOp::kNe) {
          if (a == b) return false;
        } else if (!EvalCompare(p.op, dict.value(a), dict.value(b))) {
          return false;
        }
        break;
      }
      case TuplePairPredicate::Kind::kAttrConst: {
        const int row = p.which == 1 ? i : j;
        const TermId v = ie.id_at(row, p.left_attr);
        if (p.op == CompareOp::kEq) {
          if (v != const_ids[k]) return false;
        } else if (p.op == CompareOp::kNe) {
          if (v == const_ids[k]) return false;
        } else if (!EvalCompare(p.op, dict.value(v), p.constant)) {
          return false;
        }
        break;
      }
      case TuplePairPredicate::Kind::kAttrTe: {
        // ti[a] op te[b]  ==>  te[b] op' c with c = ti[a], materialized
        // with the schema column type so the residual constant is
        // byte-identical to the row path's.
        const int row = p.which == 1 ? i : j;
        const TermId vid = ie.id_at(row, p.left_attr);
        const CompareOp flipped = FlipCompareOp(p.op);
        if (vid == kNullTermId && flipped != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.right_attr;
        g.op = flipped;
        g.constant = MaterializeAs(dict, vid, ie.schema().type(p.left_attr));
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kTeConst: {
        if (p.constant.is_null() && p.op != CompareOp::kNe) return false;
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kTeCompare;
        g.attr = p.left_attr;
        g.op = p.op;
        g.constant = p.constant;
        out->residual.push_back(std::move(g));
        break;
      }
      case TuplePairPredicate::Kind::kOrder: {
        if (p.strict &&
            ie.id_at(i, p.left_attr) == ie.id_at(j, p.left_attr)) {
          return false;
        }
        GroundPredicate g;
        g.kind = GroundPredicate::Kind::kOrderPair;
        g.attr = p.left_attr;
        g.i = i;
        g.j = j;
        out->residual.push_back(std::move(g));
        break;
      }
    }
  }
  return true;
}

/// Columnar twin of GroundRows — identical loop structure and emission
/// order; masters stay row relations (they are small and master steps
/// carry Values regardless).
void GroundRowsColumnar(const ColumnarRelation& ie,
                        const std::vector<Relation>& masters,
                        const std::vector<AccuracyRule>& rules,
                        const std::vector<std::vector<TermId>>& const_ids,
                        const std::vector<int64_t>& starts, int64_t begin,
                        int64_t end, std::vector<GroundStep>* out) {
  const int n = ie.size();
  GroundStep scratch;
  for (int r = 0; r < static_cast<int>(rules.size()); ++r) {
    const int64_t lo = std::max(begin, starts[r]);
    const int64_t hi = std::min(end, starts[r + 1]);
    if (lo >= hi) continue;
    const AccuracyRule& rule = rules[r];
    if (rule.form == AccuracyRule::Form::kTuplePair) {
      for (int64_t row = lo; row < hi; ++row) {
        const int i = static_cast<int>(row - starts[r]);
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          if (GroundPairRuleColumnar(rule, const_ids[r], ie, i, j,
                                     &scratch)) {
            scratch.rule_id = r;
            out->push_back(scratch);
          }
        }
      }
    } else {
      const Relation& im = masters[rule.master_index];
      for (int64_t row = lo; row < hi; ++row) {
        GroundMasterRule(rule, im.tuple(static_cast<int>(row - starts[r])),
                         r, out);
      }
    }
  }
}

}  // namespace

bool operator==(const GroundPredicate& a, const GroundPredicate& b) {
  return a.kind == b.kind && a.attr == b.attr && a.i == b.i && a.j == b.j &&
         a.op == b.op && a.constant == b.constant;
}

bool operator==(const GroundStep& a, const GroundStep& b) {
  return a.kind == b.kind && a.attr == b.attr && a.i == b.i && a.j == b.j &&
         a.te_value == b.te_value && a.rule_id == b.rule_id &&
         a.residual == b.residual;
}

bool operator==(const GroundProgram& a, const GroundProgram& b) {
  return a.num_tuples == b.num_tuples && a.num_attrs == b.num_attrs &&
         a.rule_names == b.rule_names && a.steps == b.steps;
}

namespace {

std::vector<std::string> RuleNames(const std::vector<AccuracyRule>& rules) {
  std::vector<std::string> names;
  names.reserve(rules.size());
  for (const AccuracyRule& rule : rules) names.push_back(rule.name);
  return names;
}

}  // namespace

GroundProgram Instantiate(const Relation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules) {
  GroundProgram prog;
  prog.num_tuples = ie.size();
  prog.num_attrs = ie.schema().size();
  prog.rule_names = RuleNames(rules);
  const std::vector<int64_t> starts = RowStarts(ie.size(), masters, rules);
  GroundRows(ie, masters, rules, starts, 0, starts.back(), &prog.steps);
  return prog;
}

namespace {

/// Shard/merge skeleton shared by the row and columnar sharded paths:
/// `ground(begin, end, out)` grounds a contiguous global-row range into a
/// private list; the merge concatenates in shard order, which is the
/// serial emission order. Returns the merged steps.
template <typename GroundRange>
std::vector<GroundStep> GroundSharded(int64_t rows, int64_t shards,
                                      ThreadPool* pool,
                                      const GroundRange& ground) {
  std::vector<std::vector<GroundStep>> parts(
      static_cast<std::size_t>(shards));
  const int64_t chunk = (rows + shards - 1) / shards;
  const auto ground_shard = [&](int64_t s) {
    const int64_t begin = s * chunk;
    const int64_t end = std::min(begin + chunk, rows);
    if (begin < end) {
      ground(begin, end, &parts[static_cast<std::size_t>(s)]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards, ground_shard);
  } else {
    // Shards beyond the core count cannot run anyway; cap the transient
    // pool so an aggressive shard count costs partitioning, not OS
    // threads (ParallelFor chunks the shards over fewer workers).
    ThreadPool local(static_cast<int>(std::min<int64_t>(
        shards,
        std::max(1u, std::thread::hardware_concurrency()))));
    local.ParallelFor(shards, ground_shard);
  }

  std::vector<GroundStep> steps;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  steps.reserve(total);
  // Deterministic merge: shard order == ascending row order == the
  // serial emission order.
  for (auto& part : parts) {
    for (GroundStep& step : part) steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace

GroundProgram Instantiate(const Relation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules,
                          int num_shards, ThreadPool* pool) {
  const std::vector<int64_t> starts = RowStarts(ie.size(), masters, rules);
  const int64_t rows = starts.back();
  // Below ~2 rows per shard the fan-out costs more than the grounding;
  // the serial path is also the reference the sharded one must match.
  const int64_t shards =
      std::min<int64_t>(std::max(1, num_shards), std::max<int64_t>(1, rows));
  if (shards <= 1) return Instantiate(ie, masters, rules);

  GroundProgram prog;
  prog.num_tuples = ie.size();
  prog.num_attrs = ie.schema().size();
  prog.rule_names = RuleNames(rules);
  prog.steps = GroundSharded(
      rows, shards, pool,
      [&](int64_t begin, int64_t end, std::vector<GroundStep>* out) {
        GroundRows(ie, masters, rules, starts, begin, end, out);
      });
  return prog;
}

GroundProgram Instantiate(const ColumnarRelation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules) {
  GroundProgram prog;
  prog.num_tuples = ie.size();
  prog.num_attrs = ie.schema().size();
  prog.rule_names = RuleNames(rules);
  const std::vector<std::vector<TermId>> const_ids =
      InternRuleConstants(rules, ie.mutable_dict());
  const std::vector<int64_t> starts = RowStarts(ie.size(), masters, rules);
  GroundRowsColumnar(ie, masters, rules, const_ids, starts, 0, starts.back(),
                     &prog.steps);
  return prog;
}

GroundProgram Instantiate(const ColumnarRelation& ie,
                          const std::vector<Relation>& masters,
                          const std::vector<AccuracyRule>& rules,
                          int num_shards, ThreadPool* pool) {
  const std::vector<int64_t> starts = RowStarts(ie.size(), masters, rules);
  const int64_t rows = starts.back();
  const int64_t shards =
      std::min<int64_t>(std::max(1, num_shards), std::max<int64_t>(1, rows));
  if (shards <= 1) return Instantiate(ie, masters, rules);

  GroundProgram prog;
  prog.num_tuples = ie.size();
  prog.num_attrs = ie.schema().size();
  prog.rule_names = RuleNames(rules);
  // Constants are interned before the fan-out; shard workers only read
  // the dictionary (lock-free shelf loads) on order comparisons.
  const std::vector<std::vector<TermId>> const_ids =
      InternRuleConstants(rules, ie.mutable_dict());
  prog.steps = GroundSharded(
      rows, shards, pool,
      [&](int64_t begin, int64_t end, std::vector<GroundStep>* out) {
        GroundRowsColumnar(ie, masters, rules, const_ids, starts, begin, end,
                           out);
      });
  return prog;
}

}  // namespace relacc
