#include "rules/axioms.h"

namespace relacc {

std::vector<AccuracyRule> ExpandAxioms(const Schema& schema) {
  std::vector<AccuracyRule> out;
  out.reserve(3 * schema.size());
  for (AttrId a = 0; a < schema.size(); ++a) {
    const std::string& name = schema.name(a);
    {
      AccuracyRule r;
      r.form = AccuracyRule::Form::kTuplePair;
      r.name = "phi7[" + name + "]";
      r.provenance = RuleProvenance::kNullAxiom;
      TuplePairPredicate p1;
      p1.kind = TuplePairPredicate::Kind::kAttrConst;
      p1.which = 1;
      p1.left_attr = a;
      p1.op = CompareOp::kEq;
      p1.constant = Value::Null();
      TuplePairPredicate p2;
      p2.kind = TuplePairPredicate::Kind::kAttrConst;
      p2.which = 2;
      p2.left_attr = a;
      p2.op = CompareOp::kNe;
      p2.constant = Value::Null();
      r.lhs = {p1, p2};
      r.rhs_attr = a;
      out.push_back(std::move(r));
    }
    {
      AccuracyRule r;
      r.form = AccuracyRule::Form::kTuplePair;
      r.name = "phi8[" + name + "]";
      r.provenance = RuleProvenance::kTeAnchorAxiom;
      TuplePairPredicate p1;
      p1.kind = TuplePairPredicate::Kind::kAttrTe;
      p1.which = 2;
      p1.left_attr = a;
      p1.right_attr = a;
      p1.op = CompareOp::kEq;
      TuplePairPredicate p2;
      p2.kind = TuplePairPredicate::Kind::kTeConst;
      p2.left_attr = a;
      p2.op = CompareOp::kNe;
      p2.constant = Value::Null();
      r.lhs = {p1, p2};
      r.rhs_attr = a;
      out.push_back(std::move(r));
    }
    {
      AccuracyRule r;
      r.form = AccuracyRule::Form::kTuplePair;
      r.name = "phi9[" + name + "]";
      r.provenance = RuleProvenance::kEqualityAxiom;
      TuplePairPredicate p;
      p.kind = TuplePairPredicate::Kind::kAttrAttr;
      p.left_attr = a;
      p.right_attr = a;
      p.op = CompareOp::kEq;
      r.lhs = {p};
      r.rhs_attr = a;
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace relacc
