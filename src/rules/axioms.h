#ifndef RELACC_RULES_AXIOMS_H_
#define RELACC_RULES_AXIOMS_H_

#include <vector>

#include "core/schema.h"
#include "rules/accuracy_rule.h"

namespace relacc {

/// Explicit per-attribute expansion of the three axioms that the paper
/// includes in every Σ (Example 3):
///   ϕ7: t1[A] = null ∧ t2[A] ≠ null → t1 ⪯_A t2   (null lowest accuracy)
///   ϕ8: t2[A] = te[A] ∧ te[A] ≠ null → t1 ⪯_A t2  (target anchors the top)
///   ϕ9: t1[A] = t2[A] → t1 ⪯_A t2                 (equal values tie)
///
/// The chase engine implements these natively (ChaseConfig::builtin_axioms)
/// because grounding ϕ8 materializes O(|Ie|²·n) steps; this expansion exists
/// for tests that cross-validate the builtin path against the declarative
/// one, and for callers that want to edit the axioms.
std::vector<AccuracyRule> ExpandAxioms(const Schema& schema);

}  // namespace relacc

#endif  // RELACC_RULES_AXIOMS_H_
