#ifndef RELACC_RULES_RULE_BUILDER_H_
#define RELACC_RULES_RULE_BUILDER_H_

#include <string>
#include <utility>

#include "core/schema.h"
#include "rules/accuracy_rule.h"

namespace relacc {

/// Fluent construction of form-(1) rules against a fixed entity schema.
/// Attribute names are resolved eagerly (abort on typos), mirroring the
/// paper's notation, e.g. ϕ1 of Table 3:
///
///   AccuracyRule phi1 = RuleBuilder(schema, "phi1")
///       .WhereAttrs("league", CompareOp::kEq, "league")
///       .WhereAttrs("rnds", CompareOp::kLt, "rnds")
///       .Currency()
///       .Concludes("rnds");
class RuleBuilder {
 public:
  RuleBuilder(const Schema& schema, std::string name);

  /// ω conjunct t1[a] op t2[b].
  RuleBuilder& WhereAttrs(const std::string& a, CompareOp op,
                          const std::string& b);

  /// ω conjunct t{which}[a] op c.
  RuleBuilder& WhereConst(int which, const std::string& a, CompareOp op,
                          Value c);

  /// ω conjunct t{which}[a] op te[b].
  RuleBuilder& WhereTe(int which, const std::string& a, CompareOp op,
                       const std::string& b);

  /// ω conjunct te[a] op c (extension; used by the ϕ8 axiom).
  RuleBuilder& WhereTeConst(const std::string& a, CompareOp op, Value c);

  /// ω conjunct t1 ≺_a t2 (strict) or t1 ⪯_a t2.
  RuleBuilder& WhereOrder(const std::string& a, bool strict);

  RuleBuilder& Provenance(RuleProvenance p);
  RuleBuilder& Currency() { return Provenance(RuleProvenance::kCurrency); }
  RuleBuilder& Correlation() {
    return Provenance(RuleProvenance::kCorrelation);
  }

  /// Finishes the rule with conclusion t1 ⪯_a t2.
  AccuracyRule Concludes(const std::string& a);

 private:
  const Schema& schema_;
  AccuracyRule rule_;
};

/// Fluent construction of form-(2) rules, e.g. ϕ6 of Table 3:
///
///   AccuracyRule phi6 = MasterRuleBuilder(schema, nba_schema, "phi6")
///       .WhereTeMaster("FN", "FN").WhereTeMaster("LN", "LN")
///       .WhereMasterConst("season", CompareOp::kEq, Value::Str("1994-95"))
///       .Assign("league", "league").Assign("team", "team")
///       .Build();
class MasterRuleBuilder {
 public:
  MasterRuleBuilder(const Schema& entity_schema, const Schema& master_schema,
                    std::string name);

  /// ω conjunct te[te_attr] = tm[master_attr].
  MasterRuleBuilder& WhereTeMaster(const std::string& te_attr,
                                   const std::string& master_attr);

  /// ω conjunct te[te_attr] = c.
  MasterRuleBuilder& WhereTeConst(const std::string& te_attr, Value c);

  /// ω conjunct tm[master_attr] op c.
  MasterRuleBuilder& WhereMasterConst(const std::string& master_attr,
                                      CompareOp op, Value c);

  /// Conclusion component te[te_attr] := tm[master_attr].
  MasterRuleBuilder& Assign(const std::string& te_attr,
                            const std::string& master_attr);

  /// Index of the master relation this rule ranges over (default 0).
  MasterRuleBuilder& OnMaster(int master_index);

  MasterRuleBuilder& Provenance(RuleProvenance p);

  AccuracyRule Build();

 private:
  const Schema& entity_schema_;
  const Schema& master_schema_;
  AccuracyRule rule_;
};

}  // namespace relacc

#endif  // RELACC_RULES_RULE_BUILDER_H_
