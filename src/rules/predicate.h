#ifndef RELACC_RULES_PREDICATE_H_
#define RELACC_RULES_PREDICATE_H_

#include <string>

#include "core/schema.h"
#include "core/value.h"

namespace relacc {

/// Comparison operators usable in AR predicates (paper Sec. 2.1, form (1)).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Symbol for logs ("=", "≠", ...) rendered in ASCII.
const char* CompareOpName(CompareOp op);

/// Mirrors `a op b` into `b op' a` (Eq/Ne fixed, Lt<->Gt, Le<->Ge).
CompareOp FlipCompareOp(CompareOp op);

/// Evaluates `a op b` with the paper's first-order semantics: equality
/// holds for null=null; order comparisons involving null (or incomparable
/// types) are false.
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

/// One conjunct of a form-(1) rule body ω, over tuple variables t1, t2 and
/// the target template te:
///   kAttrAttr : t1[left_attr] op t2[right_attr]
///   kAttrConst: t{which}[left_attr] op constant
///   kAttrTe   : t{which}[left_attr] op te[right_attr]
///   kTeConst  : te[left_attr] op constant      (extension used by axiom ϕ8's
///               "te[A] ≠ null"; constant may be Null only with op = Ne/Eq)
///   kOrder    : t1 ≺_{left_attr} t2 (strict=true) or t1 ⪯_{left_attr} t2
struct TuplePairPredicate {
  enum class Kind { kAttrAttr, kAttrConst, kAttrTe, kTeConst, kOrder };

  Kind kind = Kind::kAttrAttr;
  int which = 1;            ///< 1 or 2; tuple variable for kAttrConst/kAttrTe.
  AttrId left_attr = -1;
  AttrId right_attr = -1;
  CompareOp op = CompareOp::kEq;
  Value constant;
  bool strict = false;      ///< kOrder only.
};

/// One conjunct of a form-(2) rule body over te and a master tuple tm:
///   kTeConst   : te[te_attr] = constant
///   kTeMaster  : te[te_attr] = tm[master_attr]
///   kMasterConst: tm[master_attr] op constant (e.g. ϕ6's season = "1994-95")
struct MasterPredicate {
  enum class Kind { kTeConst, kTeMaster, kMasterConst };

  Kind kind = Kind::kTeConst;
  AttrId te_attr = -1;
  AttrId master_attr = -1;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

}  // namespace relacc

#endif  // RELACC_RULES_PREDICATE_H_
