#include "rules/predicate.h"

namespace relacc {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    default:
      break;
  }
  const auto cmp = a.Compare(b);
  if (!cmp.has_value()) return false;
  switch (op) {
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kGt:
      return *cmp > 0;
    case CompareOp::kGe:
      return *cmp >= 0;
    default:
      return false;
  }
}

}  // namespace relacc
