#include "analysis/analyzer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rules/predicate.h"

namespace relacc {

namespace {

// ---------------------------------------------------------------------------
// Satisfiability core
// ---------------------------------------------------------------------------

/// Transitive reachability over the (tiny) symbolic order graph: returns
/// a predicate `reaches(a, b)`.
auto TransitiveReach(const std::vector<std::pair<int, int>>& edges) {
  std::map<int, std::set<int>> next;
  std::set<int> nodes;
  for (const auto& [a, b] : edges) {
    next[a].insert(b);
    nodes.insert(a);
    nodes.insert(b);
  }
  // Floyd-Warshall-style closure; node counts here are single digits.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a : nodes) {
      std::set<int>& out = next[a];
      const std::set<int> snapshot = out;
      for (int mid : snapshot) {
        for (int b : next[mid]) changed |= out.insert(b).second;
      }
    }
  }
  return [next = std::move(next)](int a, int b) {
    auto it = next.find(a);
    return it != next.end() && it->second.count(b) != 0;
  };
}

/// A conservative satisfiability test for conjunctions of rule-body
/// predicates over the slots t1[A], t2[A], te[A], tm[A]. Union-find
/// congruence over equalities, constant propagation, numeric bounds,
/// strict-order cycle detection, and the tuple-level order-atom rules
/// (⪯ both ways forces equal values; ≺ forces differing values).
///
/// Satisfiable() == false is a proof of unsatisfiability; true means
/// "not provably unsatisfiable" (the engine ignores constraints it
/// cannot reason about, e.g. lexicographic string bounds).
class ConstraintSystem {
 public:
  /// Variable ids for Slot(): the target template, the two tuple
  /// variables of a (possibly unified) form-(1) body, a master tuple.
  static constexpr int kTe = 0;
  static constexpr int kT1 = 1;
  static constexpr int kT2 = 2;
  static constexpr int kTm = 3;

  int Slot(int var, AttrId attr) {
    auto [it, inserted] = slot_ids_.emplace(std::make_pair(var, attr),
                                            static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }

  void MarkUnsat() { unsat_ = true; }

  /// Slot-vs-slot comparison.
  void Cmp(int a, CompareOp op, int b) {
    switch (op) {
      case CompareOp::kEq: eq_pairs_.emplace_back(a, b); break;
      case CompareOp::kNe: ne_pairs_.emplace_back(a, b); break;
      case CompareOp::kLt: lt_edges_.push_back({a, b, true}); break;
      case CompareOp::kLe: lt_edges_.push_back({a, b, false}); break;
      case CompareOp::kGt: lt_edges_.push_back({b, a, true}); break;
      case CompareOp::kGe: lt_edges_.push_back({b, a, false}); break;
    }
  }

  /// Slot-vs-constant comparison. Order comparisons against null are
  /// unsatisfiable outright (EvalCompare is false for every value).
  void CmpConst(int a, CompareOp op, const Value& v) {
    if (v.is_null() && op != CompareOp::kEq && op != CompareOp::kNe) {
      MarkUnsat();
      return;
    }
    cmp_consts_.push_back({a, op, v});
  }

  /// Tuple-level order atom t1 ⪯_attr t2 (reversed: t2 ⪯_attr t1).
  void OrderAtom(AttrId attr, bool reversed, bool strict) {
    unsigned& mask = order_atoms_[attr];
    mask |= reversed ? 2u : 1u;
    if (strict) {
      // t1 ≺_A t2 requires t1[A] != t2[A] (resolved this way by the
      // grounder too).
      ne_pairs_.emplace_back(Slot(kT1, attr), Slot(kT2, attr));
    }
  }

  bool Satisfiable() {
    if (unsat_) return false;

    // ⪯ in both directions forces equal values on that attribute: the
    // chase reports an order conflict exactly when a two-way pair has
    // differing values, so a body demanding both directions is only
    // satisfiable where the values agree.
    for (const auto& [attr, mask] : order_atoms_) {
      if ((mask & 1u) && (mask & 2u)) {
        eq_pairs_.emplace_back(Slot(kT1, attr), Slot(kT2, attr));
      }
    }

    for (const auto& [a, b] : eq_pairs_) Union(a, b);

    // Constant propagation: assign each class its required constant;
    // then every remaining comparison against a known class constant is
    // decided by EvalCompare (which also encodes the null semantics).
    std::map<int, Value> consts;
    for (const auto& c : cmp_consts_) {
      if (c.op != CompareOp::kEq) continue;
      const int root = Find(c.slot);
      auto it = consts.find(root);
      if (it == consts.end()) {
        consts.emplace(root, c.value);
      } else if (!(it->second == c.value)) {
        return false;
      }
    }
    for (const auto& c : cmp_consts_) {
      auto it = consts.find(Find(c.slot));
      if (it != consts.end() && !EvalCompare(c.op, it->second, c.value)) {
        return false;
      }
    }

    // Numeric bounds for classes without a known constant.
    struct Bounds {
      bool has_lo = false, lo_strict = false;
      bool has_hi = false, hi_strict = false;
      double lo = 0.0, hi = 0.0;
    };
    std::map<int, Bounds> bounds;
    for (const auto& c : cmp_consts_) {
      const int root = Find(c.slot);
      if (consts.count(root) != 0) continue;  // already decided above
      const std::optional<double> v = c.value.AsNumeric();
      if (!v) continue;
      Bounds& b = bounds[root];
      switch (c.op) {
        case CompareOp::kLt:
        case CompareOp::kLe:
          if (!b.has_hi || *v < b.hi ||
              (*v == b.hi && c.op == CompareOp::kLt)) {
            b.has_hi = true;
            b.hi = *v;
            b.hi_strict = c.op == CompareOp::kLt;
          }
          break;
        case CompareOp::kGt:
        case CompareOp::kGe:
          if (!b.has_lo || *v > b.lo ||
              (*v == b.lo && c.op == CompareOp::kGt)) {
            b.has_lo = true;
            b.lo = *v;
            b.lo_strict = c.op == CompareOp::kGt;
          }
          break;
        default:
          break;
      }
    }
    for (const auto& [root, b] : bounds) {
      (void)root;
      if (b.has_lo && b.has_hi &&
          (b.lo > b.hi || (b.lo == b.hi && (b.lo_strict || b.hi_strict)))) {
        return false;
      }
    }

    // Disequalities: a class cannot differ from itself.
    for (const auto& [a, b] : ne_pairs_) {
      const int ra = Find(a);
      const int rb = Find(b);
      if (ra == rb) return false;
      const auto ca = consts.find(ra);
      const auto cb = consts.find(rb);
      if (ca != consts.end() && cb != consts.end() &&
          ca->second == cb->second) {
        return false;
      }
    }

    // Order edges between classes: evaluate decided ones, then look for
    // cycles through a strict edge (x < ... < x) and for disequal slots
    // forced equal by a ≤-cycle.
    std::vector<std::pair<int, int>> edges;  // root pairs (a ≤/< b)
    std::vector<std::pair<int, int>> strict_edges;
    for (const auto& e : lt_edges_) {
      const int ra = Find(e.a);
      const int rb = Find(e.b);
      if (ra == rb) {
        if (e.strict) return false;  // x < x
        continue;
      }
      const auto ca = consts.find(ra);
      const auto cb = consts.find(rb);
      if (ca != consts.end() && cb != consts.end()) {
        if (!EvalCompare(e.strict ? CompareOp::kLt : CompareOp::kLe,
                         ca->second, cb->second)) {
          return false;
        }
        continue;  // decided; keep it out of the symbolic graph
      }
      edges.emplace_back(ra, rb);
      if (e.strict) strict_edges.emplace_back(ra, rb);
    }
    if (!edges.empty()) {
      const auto reaches = TransitiveReach(edges);
      for (const auto& [a, b] : strict_edges) {
        if (reaches(b, a)) return false;  // cycle through a strict edge
      }
      for (const auto& [a, b] : ne_pairs_) {
        const int ra = Find(a);
        const int rb = Find(b);
        // a ≤ ... ≤ b and b ≤ ... ≤ a force a = b; a != b contradicts.
        if (reaches(ra, rb) && reaches(rb, ra)) return false;
      }
    }
    return true;
  }

 private:
  struct CmpConstEntry {
    int slot;
    CompareOp op;
    Value value;
  };
  struct LtEdge {
    int a;
    int b;
    bool strict;
  };

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

  std::map<std::pair<int, AttrId>, int> slot_ids_;
  std::vector<int> parent_;
  std::vector<std::pair<int, int>> eq_pairs_;
  std::vector<std::pair<int, int>> ne_pairs_;
  std::vector<CmpConstEntry> cmp_consts_;
  std::vector<LtEdge> lt_edges_;
  std::map<AttrId, unsigned> order_atoms_;
  bool unsat_ = false;
};

/// Adds a form-(1) rule body to `cs`. With `swap` the rule is
/// instantiated on the reversed tuple pair (its t1 becomes the system's
/// t2 and vice versa) — the unification move of the cr-order-conflict
/// check.
void AddForm1Body(ConstraintSystem* cs, const AccuracyRule& rule, bool swap) {
  const int v1 = swap ? ConstraintSystem::kT2 : ConstraintSystem::kT1;
  const int v2 = swap ? ConstraintSystem::kT1 : ConstraintSystem::kT2;
  for (const TuplePairPredicate& p : rule.lhs) {
    switch (p.kind) {
      case TuplePairPredicate::Kind::kAttrAttr:
        cs->Cmp(cs->Slot(v1, p.left_attr), p.op, cs->Slot(v2, p.right_attr));
        break;
      case TuplePairPredicate::Kind::kAttrConst:
        cs->CmpConst(cs->Slot(p.which == 1 ? v1 : v2, p.left_attr), p.op,
                     p.constant);
        break;
      case TuplePairPredicate::Kind::kAttrTe:
        cs->Cmp(cs->Slot(p.which == 1 ? v1 : v2, p.left_attr), p.op,
                cs->Slot(ConstraintSystem::kTe, p.right_attr));
        break;
      case TuplePairPredicate::Kind::kTeConst:
        // te values are never null once set (the grounder drops steps
        // whose te-vs-null predicate is not a tautological !=).
        if (p.constant.is_null()) {
          if (p.op != CompareOp::kNe) cs->MarkUnsat();
          break;
        }
        cs->CmpConst(cs->Slot(ConstraintSystem::kTe, p.left_attr), p.op,
                     p.constant);
        break;
      case TuplePairPredicate::Kind::kOrder:
        cs->OrderAtom(p.left_attr, /*reversed=*/swap, p.strict);
        break;
    }
  }
}

/// Adds the te-side constraints of a form-(2) rule body to `cs` (the
/// master-side conjuncts are evaluated against the master data directly).
void AddForm2TeBody(ConstraintSystem* cs, const AccuracyRule& rule) {
  for (const MasterPredicate& p : rule.master_lhs) {
    switch (p.kind) {
      case MasterPredicate::Kind::kTeConst:
        if (p.constant.is_null()) {
          if (p.op != CompareOp::kNe) cs->MarkUnsat();
          break;
        }
        cs->CmpConst(cs->Slot(ConstraintSystem::kTe, p.te_attr), p.op,
                     p.constant);
        break;
      case MasterPredicate::Kind::kTeMaster:
        cs->Cmp(cs->Slot(ConstraintSystem::kTe, p.te_attr), p.op,
                cs->Slot(ConstraintSystem::kTm, p.master_attr));
        break;
      case MasterPredicate::Kind::kMasterConst:
        cs->CmpConst(cs->Slot(ConstraintSystem::kTm, p.master_attr), p.op,
                     p.constant);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

SourceSpan SpanOf(const AccuracyRule& rule) {
  return SourceSpan{rule.line, rule.column};
}

std::string RuleRef(const AccuracyRule& rule, std::size_t index) {
  if (!rule.name.empty()) return "rule '" + rule.name + "'";
  return "rule #" + std::to_string(index);
}

std::string AttrRef(const Schema& schema, AttrId attr) {
  if (attr >= 0 && attr < schema.size()) {
    return "attribute '" + schema.name(attr) + "'";
  }
  return "attribute id " + std::to_string(attr);
}

// ---------------------------------------------------------------------------
// schema-unknown-attr / schema-unknown-master
// ---------------------------------------------------------------------------

/// Validates every attribute and master reference of `rule`; true iff the
/// rule is well-formed (later checks skip malformed rules so one broken
/// rule does not cascade into value-level noise).
bool CheckRuleSchema(const AccuracyRule& rule, std::size_t index,
                     const Specification& spec,
                     const std::vector<std::string>& master_names,
                     DiagnosticSink* sink) {
  const int n = spec.ie.schema().size();
  const std::string who = RuleRef(rule, index);
  bool ok = true;
  const auto bad_entity_attr = [&](AttrId attr, const char* where) {
    sink->Report("schema-unknown-attr", Severity::kError,
                 who + ": " + where + " attribute id " + std::to_string(attr) +
                     " is outside the entity schema (0.." +
                     std::to_string(n - 1) + ")",
                 SpanOf(rule));
    ok = false;
  };
  const auto check_entity = [&](AttrId attr, const char* where) {
    if (attr < 0 || attr >= n) bad_entity_attr(attr, where);
  };

  if (rule.form == AccuracyRule::Form::kTuplePair) {
    check_entity(rule.rhs_attr, "conclusion");
    for (const TuplePairPredicate& p : rule.lhs) {
      switch (p.kind) {
        case TuplePairPredicate::Kind::kAttrAttr:
          check_entity(p.left_attr, "predicate");
          check_entity(p.right_attr, "predicate");
          break;
        case TuplePairPredicate::Kind::kAttrConst:
        case TuplePairPredicate::Kind::kAttrTe:
          check_entity(p.left_attr, "predicate");
          if (p.kind == TuplePairPredicate::Kind::kAttrTe) {
            check_entity(p.right_attr, "predicate te");
          }
          if (p.which != 1 && p.which != 2) {
            sink->Report("schema-unknown-attr", Severity::kError,
                         who + ": predicate tuple variable index " +
                             std::to_string(p.which) + " must be 1 or 2",
                         SpanOf(rule));
            ok = false;
          }
          break;
        case TuplePairPredicate::Kind::kTeConst:
        case TuplePairPredicate::Kind::kOrder:
          check_entity(p.left_attr, "predicate");
          break;
      }
    }
    return ok;
  }

  // Form (2).
  const int num_masters = static_cast<int>(spec.masters.size());
  if (rule.master_index < 0 || rule.master_index >= num_masters) {
    sink->Report("schema-unknown-master", Severity::kError,
                 who + ": master relation index " +
                     std::to_string(rule.master_index) +
                     " is out of range (the specification declares " +
                     std::to_string(num_masters) + ")",
                 SpanOf(rule));
    return false;
  }
  const Schema& master = spec.masters[rule.master_index].schema();
  const std::string master_name =
      static_cast<std::size_t>(rule.master_index) < master_names.size()
          ? master_names[rule.master_index]
          : "m" + std::to_string(rule.master_index);
  const auto check_master = [&](AttrId attr, const char* where) {
    if (attr < 0 || attr >= master.size()) {
      sink->Report("schema-unknown-master", Severity::kError,
                   who + ": " + where + " attribute id " +
                       std::to_string(attr) + " is outside master '" +
                       master_name + "' (0.." +
                       std::to_string(master.size() - 1) + ")",
                   SpanOf(rule));
      ok = false;
    }
  };
  for (const MasterPredicate& p : rule.master_lhs) {
    switch (p.kind) {
      case MasterPredicate::Kind::kTeConst:
        check_entity(p.te_attr, "predicate te");
        break;
      case MasterPredicate::Kind::kTeMaster:
        check_entity(p.te_attr, "predicate te");
        check_master(p.master_attr, "predicate");
        break;
      case MasterPredicate::Kind::kMasterConst:
        check_master(p.master_attr, "predicate");
        break;
    }
  }
  for (const auto& [te_attr, m_attr] : rule.assignments) {
    check_entity(te_attr, "assignment target");
    check_master(m_attr, "assignment source");
  }
  return ok;
}

// ---------------------------------------------------------------------------
// rule-dead-lhs
// ---------------------------------------------------------------------------

/// True iff any master tuple satisfies the rule's master-side conjuncts
/// (evaluated directly — master data is part of the specification).
bool AnyMasterTupleMatches(const AccuracyRule& rule, const Relation& master) {
  for (const Tuple& tm : master.tuples()) {
    bool match = true;
    for (const MasterPredicate& p : rule.master_lhs) {
      if (p.kind != MasterPredicate::Kind::kMasterConst) continue;
      if (!EvalCompare(p.op, tm.at(p.master_attr), p.constant)) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

/// Returns true (and reports) when `rule`'s body can never be satisfied.
bool CheckDeadLhs(const AccuracyRule& rule, std::size_t index,
                  const Specification& spec,
                  const std::vector<std::string>& master_names,
                  DiagnosticSink* sink) {
  const std::string who = RuleRef(rule, index);
  if (rule.form == AccuracyRule::Form::kTuplePair) {
    ConstraintSystem cs;
    AddForm1Body(&cs, rule, /*swap=*/false);
    if (!cs.Satisfiable()) {
      sink->Report("rule-dead-lhs", Severity::kWarning,
                   who + ": the body is unsatisfiable (its predicates "
                         "contradict each other), so the rule can never fire",
                   SpanOf(rule));
      return true;
    }
    return false;
  }
  const Relation& master = spec.masters[rule.master_index];
  const std::string master_name =
      static_cast<std::size_t>(rule.master_index) < master_names.size()
          ? master_names[rule.master_index]
          : "m" + std::to_string(rule.master_index);
  if (master.empty()) {
    sink->Report("rule-dead-lhs", Severity::kWarning,
                 who + ": master relation '" + master_name +
                     "' has no tuples, so the rule can never fire",
                 SpanOf(rule));
    return true;
  }
  if (!AnyMasterTupleMatches(rule, master)) {
    sink->Report("rule-dead-lhs", Severity::kWarning,
                 who + ": no tuple of master '" + master_name +
                     "' satisfies the body's master predicates, so the "
                     "rule can never fire",
                 SpanOf(rule));
    return true;
  }
  ConstraintSystem cs;
  AddForm2TeBody(&cs, rule);
  if (!cs.Satisfiable()) {
    sink->Report("rule-dead-lhs", Severity::kWarning,
                 who + ": the body's target-template predicates are "
                       "unsatisfiable, so the rule can never fire",
                 SpanOf(rule));
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// rule-duplicate / rule-shadowed
// ---------------------------------------------------------------------------

std::string ValueKey(const Value& v) {
  return std::string(ValueTypeName(v.type())) + ":" + v.ToString();
}

std::string PredKey(const TuplePairPredicate& p) {
  return std::to_string(static_cast<int>(p.kind)) + "|" +
         std::to_string(p.which) + "|" + std::to_string(p.left_attr) + "|" +
         std::to_string(p.right_attr) + "|" +
         std::to_string(static_cast<int>(p.op)) + "|" + ValueKey(p.constant) +
         "|" + (p.strict ? "s" : "n");
}

std::string PredKey(const MasterPredicate& p) {
  return std::to_string(static_cast<int>(p.kind)) + "|" +
         std::to_string(p.te_attr) + "|" + std::to_string(p.master_attr) +
         "|" + std::to_string(static_cast<int>(p.op)) + "|" +
         ValueKey(p.constant);
}

/// A rule's canonical signature: its conclusion plus the sorted multiset
/// of body-conjunct encodings. Equal signatures = duplicate rules; a
/// strict body subset with the same conclusion = shadowing.
struct RuleSignature {
  std::string conclusion;
  std::vector<std::string> body;  ///< sorted

  bool SameConclusion(const RuleSignature& o) const {
    return conclusion == o.conclusion;
  }
  bool SameBody(const RuleSignature& o) const { return body == o.body; }
  /// True iff this body is a strict sub-multiset of `o`'s.
  bool BodySubsetOf(const RuleSignature& o) const {
    return body.size() < o.body.size() &&
           std::includes(o.body.begin(), o.body.end(), body.begin(),
                         body.end());
  }
};

RuleSignature SignatureOf(const AccuracyRule& rule) {
  RuleSignature sig;
  if (rule.form == AccuracyRule::Form::kTuplePair) {
    sig.conclusion = "order:" + std::to_string(rule.rhs_attr);
    for (const TuplePairPredicate& p : rule.lhs) {
      sig.body.push_back(PredKey(p));
    }
  } else {
    std::vector<std::string> assigns;
    for (const auto& [te_attr, m_attr] : rule.assignments) {
      assigns.push_back(std::to_string(te_attr) + ":=" +
                        std::to_string(m_attr));
    }
    std::sort(assigns.begin(), assigns.end());
    sig.conclusion = "assign:" + std::to_string(rule.master_index);
    for (const std::string& a : assigns) sig.conclusion += "," + a;
    for (const MasterPredicate& p : rule.master_lhs) {
      sig.body.push_back(PredKey(p));
    }
  }
  std::sort(sig.body.begin(), sig.body.end());
  return sig;
}

void CheckRedundancy(const std::vector<AccuracyRule>& rules,
                     const std::vector<char>& valid, DiagnosticSink* sink) {
  std::vector<RuleSignature> sigs(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (valid[i]) sigs[i] = SignatureOf(rules[i]);
  }
  for (std::size_t j = 0; j < rules.size(); ++j) {
    if (!valid[j]) continue;
    for (std::size_t i = 0; i < j; ++i) {
      if (!valid[i] || !sigs[i].SameConclusion(sigs[j])) continue;
      if (sigs[i].SameBody(sigs[j])) {
        Diagnostic& d = sink->Report(
            "rule-duplicate", Severity::kWarning,
            RuleRef(rules[j], j) + " duplicates " + RuleRef(rules[i], i) +
                " (same body and conclusion)",
            SpanOf(rules[j]));
        d.notes.push_back({"first occurrence: " + RuleRef(rules[i], i),
                           SpanOf(rules[i])});
        break;  // one report per duplicate rule is enough
      }
      if (sigs[i].BodySubsetOf(sigs[j])) {
        Diagnostic& d = sink->Report(
            "rule-shadowed", Severity::kWarning,
            RuleRef(rules[j], j) + " is shadowed by the more general " +
                RuleRef(rules[i], i) +
                ": whenever it fires, the general rule has already derived "
                "the same conclusion",
            SpanOf(rules[j]));
        d.notes.push_back({"shadowing rule: " + RuleRef(rules[i], i),
                           SpanOf(rules[i])});
        break;
      }
      if (sigs[j].BodySubsetOf(sigs[i])) {
        Diagnostic& d = sink->Report(
            "rule-shadowed", Severity::kWarning,
            RuleRef(rules[i], i) + " is shadowed by the more general " +
                RuleRef(rules[j], j) +
                ": whenever it fires, the general rule has already derived "
                "the same conclusion",
            SpanOf(rules[i]));
        d.notes.push_back({"shadowing rule: " + RuleRef(rules[j], j),
                           SpanOf(rules[j])});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cr-order-conflict
// ---------------------------------------------------------------------------

void CheckOrderConflicts(const std::vector<AccuracyRule>& rules,
                         const std::vector<char>& usable, const Schema& schema,
                         DiagnosticSink* sink) {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!usable[i] || rules[i].form != AccuracyRule::Form::kTuplePair) {
      continue;
    }
    for (std::size_t j = i; j < rules.size(); ++j) {
      if (!usable[j] || rules[j].form != AccuracyRule::Form::kTuplePair ||
          rules[i].rhs_attr != rules[j].rhs_attr) {
        continue;
      }
      // Unify rule i on (x, y) with rule j on (y, x). The conclusions
      // x ⪯ y and y ⪯ x only conflict where the concluded attribute's
      // values differ, so that disequality joins the conjunction; the
      // conclusions themselves must NOT (they are what the conflict
      // derives, not a premise).
      ConstraintSystem cs;
      AddForm1Body(&cs, rules[i], /*swap=*/false);
      AddForm1Body(&cs, rules[j], /*swap=*/true);
      cs.Cmp(cs.Slot(ConstraintSystem::kT1, rules[i].rhs_attr), CompareOp::kNe,
             cs.Slot(ConstraintSystem::kT2, rules[i].rhs_attr));
      if (!cs.Satisfiable()) continue;
      const std::string attr = AttrRef(schema, rules[i].rhs_attr);
      Diagnostic& d =
          i == j
              ? sink->Report(
                    "cr-order-conflict", Severity::kWarning,
                    RuleRef(rules[i], i) + " can derive opposite orders on " +
                        attr +
                        " for a tuple pair with differing values (its body "
                        "is satisfiable in both directions at once) — the "
                        "specification may not be Church-Rosser",
                    SpanOf(rules[i]))
              : sink->Report(
                    "cr-order-conflict", Severity::kWarning,
                    RuleRef(rules[i], i) + " and " + RuleRef(rules[j], j) +
                        " can derive opposite orders on " + attr +
                        " for the same tuple pair — the specification may "
                        "not be Church-Rosser",
                    SpanOf(rules[i]));
      if (i != j) {
        d.notes.push_back({"conflicting rule: " + RuleRef(rules[j], j),
                           SpanOf(rules[j])});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cr-assign-conflict
// ---------------------------------------------------------------------------

/// One realizable grounding of a form-(2) rule on a master tuple: the
/// target-template equalities its body demands (master references
/// resolved to that tuple's values) and the assignments it would enforce.
struct AssignGrounding {
  std::size_t rule;
  int tuple;
  std::vector<std::pair<AttrId, Value>> te_eq;  ///< required te values
  std::vector<std::pair<AttrId, Value>> sets;   ///< enforced te values
};

void CheckAssignConflicts(const std::vector<AccuracyRule>& rules,
                          const std::vector<char>& usable,
                          const Specification& spec, const Schema& schema,
                          DiagnosticSink* sink) {
  // Mirror the grounder: skip tuples failing a master-const conjunct,
  // skip groundings whose te-vs-master binding hits a null master value,
  // skip null assignment sources.
  std::vector<AssignGrounding> groundings;
  constexpr std::size_t kMaxGroundings = 4096;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (!usable[r] || rules[r].form != AccuracyRule::Form::kMaster) continue;
    const AccuracyRule& rule = rules[r];
    const Relation& master = spec.masters[rule.master_index];
    for (int t = 0; t < master.size(); ++t) {
      const Tuple& tm = master.tuple(t);
      AssignGrounding g{r, t, {}, {}};
      bool alive = true;
      for (const MasterPredicate& p : rule.master_lhs) {
        switch (p.kind) {
          case MasterPredicate::Kind::kMasterConst:
            alive = EvalCompare(p.op, tm.at(p.master_attr), p.constant);
            break;
          case MasterPredicate::Kind::kTeConst:
            if (p.op == CompareOp::kEq) g.te_eq.emplace_back(p.te_attr,
                                                             p.constant);
            break;
          case MasterPredicate::Kind::kTeMaster: {
            const Value& v = tm.at(p.master_attr);
            if (v.is_null()) {
              alive = false;  // te never equals null
            } else if (p.op == CompareOp::kEq) {
              g.te_eq.emplace_back(p.te_attr, v);
            }
            break;
          }
        }
        if (!alive) break;
      }
      if (!alive) continue;
      for (const auto& [te_attr, m_attr] : rule.assignments) {
        const Value& v = tm.at(m_attr);
        if (!v.is_null()) g.sets.emplace_back(te_attr, v);
      }
      if (!g.sets.empty()) groundings.push_back(std::move(g));
      if (groundings.size() > kMaxGroundings) return;  // combinatorial cap
    }
  }

  const auto compatible = [](const AssignGrounding& a,
                             const AssignGrounding& b) {
    for (const auto& [attr_a, val_a] : a.te_eq) {
      for (const auto& [attr_b, val_b] : b.te_eq) {
        if (attr_a == attr_b && !(val_a == val_b)) return false;
      }
    }
    return true;
  };

  std::set<std::pair<std::size_t, std::size_t>> reported;  // rule pairs
  for (std::size_t a = 0; a < groundings.size(); ++a) {
    for (std::size_t b = a + 1; b < groundings.size(); ++b) {
      const AssignGrounding& ga = groundings[a];
      const AssignGrounding& gb = groundings[b];
      if (reported.count({ga.rule, gb.rule}) != 0) continue;
      if (!compatible(ga, gb)) continue;
      for (const auto& [attr_a, val_a] : ga.sets) {
        bool hit = false;
        for (const auto& [attr_b, val_b] : gb.sets) {
          if (attr_a != attr_b || val_a == val_b) continue;
          reported.insert({ga.rule, gb.rule});
          const AccuracyRule& ra = rules[ga.rule];
          const AccuracyRule& rb = rules[gb.rule];
          std::string msg =
              ga.rule == gb.rule
                  ? RuleRef(ra, ga.rule) + " can assign conflicting values " +
                        val_a.ToString() + " vs " + val_b.ToString() + " to " +
                        AttrRef(schema, attr_a) +
                        " from different master tuples"
                  : RuleRef(ra, ga.rule) + " and " + RuleRef(rb, gb.rule) +
                        " can assign conflicting values " + val_a.ToString() +
                        " vs " + val_b.ToString() + " to " +
                        AttrRef(schema, attr_a);
          msg += " under co-satisfiable conditions — the specification may "
                 "not be Church-Rosser";
          Diagnostic& d = sink->Report("cr-assign-conflict",
                                       Severity::kWarning, std::move(msg),
                                       SpanOf(ra));
          if (ga.rule != gb.rule) {
            d.notes.push_back({"conflicting rule: " + RuleRef(rb, gb.rule),
                               SpanOf(rb)});
          }
          hit = true;
          break;
        }
        if (hit) break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cr-order-cycle
// ---------------------------------------------------------------------------

void CheckOrderCycles(const std::vector<AccuracyRule>& rules,
                      const std::vector<char>& usable, const Schema& schema,
                      DiagnosticSink* sink) {
  // Attribute-level order-dependency graph: an edge A -> B for every
  // form-(1) rule whose body has an order atom on A and whose conclusion
  // orders B. Self-edges (plain transitivity) are benign and skipped.
  std::map<AttrId, std::map<AttrId, std::size_t>> edges;  // A -> B -> rule
  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (!usable[r] || rules[r].form != AccuracyRule::Form::kTuplePair) {
      continue;
    }
    for (const TuplePairPredicate& p : rules[r].lhs) {
      if (p.kind != TuplePairPredicate::Kind::kOrder) continue;
      if (p.left_attr == rules[r].rhs_attr) continue;
      edges[p.left_attr].emplace(rules[r].rhs_attr, r);
    }
  }
  if (edges.empty()) return;

  // DFS cycle enumeration; every attribute starts at most one report, so
  // a k-cycle is reported once (from its smallest attribute).
  std::set<AttrId> done;
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (done.count(start) != 0) continue;
    // Walk for a path start -> ... -> start.
    std::vector<AttrId> path{start};
    std::vector<std::size_t> path_rules;
    std::set<AttrId> on_path{start};
    bool found = false;
    const std::function<void(AttrId)> dfs = [&](AttrId at) {
      if (found) return;
      auto it = edges.find(at);
      if (it == edges.end()) return;
      for (const auto& [next, rule] : it->second) {
        if (found) return;
        if (next == start && path.size() > 1) {
          path_rules.push_back(rule);
          found = true;
          return;
        }
        if (on_path.count(next) != 0 || done.count(next) != 0) continue;
        path.push_back(next);
        path_rules.push_back(rule);
        on_path.insert(next);
        dfs(next);
        if (found) return;
        path.pop_back();
        path_rules.pop_back();
        on_path.erase(next);
      }
    };
    dfs(start);
    for (AttrId a : path) done.insert(a);
    if (!found) continue;

    std::string cycle;
    for (AttrId a : path) cycle += schema.name(a) + " -> ";
    cycle += schema.name(start);
    Diagnostic& d = sink->Report(
        "cr-order-cycle", Severity::kNote,
        "order dependencies cycle through " + cycle +
            ": derived orders feed back into their own premises (the chase "
            "still terminates; this is informational)",
        SpanOf(rules[path_rules.front()]));
    for (std::size_t r : path_rules) {
      d.notes.push_back({"contributing " + RuleRef(rules[r], r),
                         SpanOf(rules[r])});
    }
  }
}

}  // namespace

const std::vector<AnalyzerCheck>& AnalyzerChecks() {
  static const std::vector<AnalyzerCheck> kChecks = {
      {"parse-syntax", Severity::kError,
       "rule-DSL or CFD text failed to parse"},
      {"schema-unknown-attr", Severity::kError,
       "attribute reference outside the entity schema"},
      {"schema-unknown-master", Severity::kError,
       "master relation or master attribute does not resolve"},
      {"rule-dead-lhs", Severity::kWarning,
       "rule body is unsatisfiable; the rule can never fire"},
      {"rule-duplicate", Severity::kWarning,
       "rule repeats an earlier rule's body and conclusion"},
      {"rule-shadowed", Severity::kWarning,
       "a more general rule with the same conclusion makes this one "
       "redundant"},
      {"cr-order-conflict", Severity::kWarning,
       "two rules can derive opposite orders for the same tuple pair"},
      {"cr-assign-conflict", Severity::kWarning,
       "two groundings can assign different values to the same target "
       "attribute"},
      {"cr-order-cycle", Severity::kNote,
       "the attribute-level order-dependency graph has a cycle"},
  };
  return kChecks;
}

std::vector<Diagnostic> AnalyzeSpecification(
    const Specification& spec, const std::string& entity_name,
    const std::vector<std::string>& master_names,
    const AnalyzerOptions& options) {
  (void)entity_name;  // messages name attributes/rules; kept for symmetry
  DiagnosticSink sink;
  const Schema& schema = spec.ie.schema();
  const std::vector<AccuracyRule>& rules = spec.rules;

  // Schema validation gates everything else: value-level checks index
  // schemas with the ids they validate here.
  std::vector<char> valid(rules.size(), 1);
  if (options.check_schema) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      valid[i] = CheckRuleSchema(rules[i], i, spec, master_names, &sink);
    }
  }

  std::vector<char> live = valid;  // valid and not provably dead
  if (options.check_satisfiability) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (valid[i] && CheckDeadLhs(rules[i], i, spec, master_names, &sink)) {
        live[i] = 0;
      }
    }
  }

  if (options.check_redundancy) CheckRedundancy(rules, valid, &sink);

  if (options.check_confluence) {
    CheckOrderConflicts(rules, live, schema, &sink);
    CheckAssignConflicts(rules, live, spec, schema, &sink);
    CheckOrderCycles(rules, live, schema, &sink);
  }

  sink.Sort();
  return sink.Take();
}

}  // namespace relacc
