#include "analysis/diagnostic.h"

#include <algorithm>
#include <utility>

namespace relacc {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "note";
}

Diagnostic& DiagnosticSink::Report(std::string check_id, Severity severity,
                                   std::string message, SourceSpan span) {
  Diagnostic d;
  d.check_id = std::move(check_id);
  d.severity = severity;
  d.message = std::move(message);
  d.span = span;
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

void DiagnosticSink::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

int DiagnosticSink::CountOf(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void DiagnosticSink::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     // Unknown spans (line 0) sort after located ones.
                     const int al = a.span.known() ? a.span.line : 1 << 30;
                     const int bl = b.span.known() ? b.span.line : 1 << 30;
                     if (al != bl) return al < bl;
                     return a.span.column < b.span.column;
                   });
}

Diagnostic DiagnosticFromParseIssue(const ParseIssue& issue) {
  Diagnostic d;
  d.check_id = issue.check_id.empty() ? "parse-syntax" : issue.check_id;
  d.severity = Severity::kError;
  d.message = issue.message;
  d.span.line = issue.line;
  d.span.column = issue.column;
  return d;
}

namespace {

std::string SpanPrefix(const SourceSpan& span, const std::string& file) {
  std::string out;
  if (!file.empty()) out += file + ":";
  if (span.known()) {
    out += std::to_string(span.line) + ":" + std::to_string(span.column) + ":";
  }
  if (!out.empty()) out += " ";
  return out;
}

std::string CountPhrase(int n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file) {
  std::string out = SpanPrefix(diagnostic.span, file);
  out += std::string(SeverityName(diagnostic.severity)) + ": " +
         diagnostic.message + " [" + diagnostic.check_id + "]";
  for (const DiagnosticNote& note : diagnostic.notes) {
    out += "\n  note: " + note.message;
    if (note.span.known()) {
      out += " (line " + std::to_string(note.span.line) + ", column " +
             std::to_string(note.span.column) + ")";
    }
  }
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& file) {
  if (diagnostics.empty()) return "";
  std::string out;
  int errors = 0;
  int warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d, file) + "\n";
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  out += CountPhrase(errors, "error") + ", " +
         CountPhrase(warnings, "warning") + "\n";
  return out;
}

Json DiagnosticToJson(const Diagnostic& diagnostic) {
  Json out = Json::Object();
  out.Set("check", Json::Str(diagnostic.check_id));
  out.Set("severity", Json::Str(SeverityName(diagnostic.severity)));
  out.Set("message", Json::Str(diagnostic.message));
  if (diagnostic.span.known()) {
    out.Set("line", Json::Int(diagnostic.span.line));
    out.Set("column", Json::Int(diagnostic.span.column));
  }
  if (!diagnostic.notes.empty()) {
    Json notes = Json::Array();
    for (const DiagnosticNote& note : diagnostic.notes) {
      Json n = Json::Object();
      n.Set("message", Json::Str(note.message));
      if (note.span.known()) {
        n.Set("line", Json::Int(note.span.line));
        n.Set("column", Json::Int(note.span.column));
      }
      notes.Append(std::move(n));
    }
    out.Set("notes", std::move(notes));
  }
  return out;
}

Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file) {
  Json out = Json::Object();
  out.Set("file", Json::Str(file));
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  Json list = Json::Array();
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
    list.Append(DiagnosticToJson(d));
  }
  out.Set("errors", Json::Int(errors));
  out.Set("warnings", Json::Int(warnings));
  out.Set("notes", Json::Int(notes));
  out.Set("diagnostics", std::move(list));
  return out;
}

}  // namespace relacc
