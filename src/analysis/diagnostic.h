#ifndef RELACC_ANALYSIS_DIAGNOSTIC_H_
#define RELACC_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "dsl/parse_issue.h"
#include "util/json.h"

namespace relacc {

/// Severity of a static-analysis finding. Errors make a specification
/// unusable (AccuracyService::Create rejects it under validate_spec, and
/// `relacc lint` always fails); warnings flag likely mistakes (`--werror`
/// promotes them to failures); notes are informational and never fail.
enum class Severity { kNote = 0, kWarning, kError };

/// "note" / "warning" / "error".
const char* SeverityName(Severity severity);

/// A position in the spec's rule-DSL (or CFD) source text, 1-based as the
/// lexer counts. line == 0 means the finding has no source location — it
/// concerns a programmatically-built rule or the spec as a whole.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  bool operator==(const SourceSpan&) const = default;
};

/// A secondary location attached to a Diagnostic — e.g. the other rule of
/// a cr-order-conflict pair, or the earlier rule a duplicate repeats.
struct DiagnosticNote {
  std::string message;
  SourceSpan span;
};

/// One static-analysis finding. `check_id` is a stable kebab-case
/// identifier (the vocabulary is listed in analysis/analyzer.h and in the
/// README's "Static analysis" section); consumers key suppressions and
/// tests on it, so renaming one is a breaking change.
struct Diagnostic {
  std::string check_id;
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;
  std::vector<DiagnosticNote> notes;
};

/// Collects diagnostics. Checks report through Report(); surfaces read
/// the collected list. Not thread-safe (the analyzer is single-threaded).
class DiagnosticSink {
 public:
  /// Appends a finding and returns it for note chaining:
  ///   sink.Report("cr-order-conflict", Severity::kWarning, msg, span)
  ///       .notes.push_back({other_msg, other_span});
  Diagnostic& Report(std::string check_id, Severity severity,
                     std::string message, SourceSpan span = {});

  void Add(Diagnostic diagnostic);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  int CountOf(Severity severity) const;
  int errors() const { return CountOf(Severity::kError); }
  int warnings() const { return CountOf(Severity::kWarning); }

  /// Stable sort by (severity desc, line, column): errors first, then
  /// source order within a severity. Located findings sort before
  /// unlocated ones of the same severity.
  void Sort();

  /// Moves the collected list out (the sink is empty afterwards).
  std::vector<Diagnostic> Take() { return std::move(diagnostics_); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Converts a parser/CFD ParseIssue into an error-severity Diagnostic
/// (the check id carries over; see dsl/parse_issue.h).
Diagnostic DiagnosticFromParseIssue(const ParseIssue& issue);

/// One-line rendering in the compiler idiom:
///   file:line:column: severity: message [check-id]
/// followed by one indented line per note. `file` may be empty (the
/// leading "line:column:" then only appears when the span is known).
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file = "");

/// Renders every diagnostic plus a trailing summary line
/// ("2 errors, 1 warning"); empty string for an empty list.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& file = "");

/// Machine-readable form of one finding:
/// {"check": id, "severity": name, "message": text,
///  "line": N, "column": N,            // omitted when unknown
///  "notes": [{"message": ..., "line": ..., "column": ...}, ...]}
Json DiagnosticToJson(const Diagnostic& diagnostic);

/// The `relacc lint --json` document:
/// {"file": path, "errors": N, "warnings": N, "notes": N,
///  "diagnostics": [...]}.
Json DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                       const std::string& file);

}  // namespace relacc

#endif  // RELACC_ANALYSIS_DIAGNOSTIC_H_
