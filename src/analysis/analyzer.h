#ifndef RELACC_ANALYSIS_ANALYZER_H_
#define RELACC_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "chase/specification.h"

namespace relacc {

/// The static analyzer over parsed specifications: every check runs
/// before grounding, on the rule structures alone (plus master data,
/// which is part of the spec), so a broken spec is rejected at the door
/// instead of dying chase-side with exit code 3 and one violation string.
///
/// Checks and their stable IDs (see also the README "Static analysis"
/// section; `relacc lint` surfaces them, ServiceOptions::validate_spec
/// enforces the error-severity ones):
///
///   schema-unknown-attr    (error)   An attribute id of a rule —
///       predicate side, conclusion, or assignment target — is outside
///       the entity schema. DSL-parsed rules cannot carry these (the
///       parser resolves names); the check guards programmatically-built
///       and hand-edited specs.
///   schema-unknown-master  (error)   A form-(2) rule's master_index or
///       master-attribute id does not resolve against the declared
///       master relations.
///   parse-syntax           (error)   The rule-DSL or CFD text failed to
///       parse (reported by the lenient spec loader, not this analyzer).
///   rule-dead-lhs          (warning) A rule body is unsatisfiable — its
///       constant predicates contradict each other (te[A] = "x" and
///       te[A] = "y"), its order atoms cycle, or no master tuple matches
///       a form-(2) body — so the rule can never fire.
///   rule-duplicate         (warning) Two rules have the same body and
///       conclusion; the later one is flagged.
///   rule-shadowed          (warning) A rule's body strictly contains
///       another rule's body with the same conclusion; the stricter rule
///       can never derive anything new.
///   cr-order-conflict      (warning) Two form-(1) rules on the same
///       attribute can derive opposite orders ti ⪯ tj and tj ⪯ ti for a
///       tuple pair with differing values — the static
///       may-not-be-Church-Rosser signal. Found by unifying the rule
///       bodies (one instantiated on (x,y), the other on (y,x)) and
///       testing the conjunction for satisfiability.
///   cr-assign-conflict     (warning) Two form-(2) groundings can assign
///       different values to the same target attribute under
///       co-satisfiable conditions (typically two CFDs with overlapping
///       patterns and different conclusions).
///   cr-order-cycle         (note)    The attribute-level order-dependency
///       graph (order-predicate attr → conclusion attr) has a cycle, so
///       derived orders feed back into their own premises. Legal — the
///       chase runs to a fixpoint — but worth knowing when debugging
///       rule sets.
///
/// The satisfiability core is conservative in the safe direction: it
/// only reports rule-dead-lhs when the body is *provably* unsatisfiable,
/// and suppresses cr-order-conflict / cr-assign-conflict when the
/// unified bodies are provably unsatisfiable. Conflicts that arise only
/// through axiom interplay at chase time (e.g. the paper's ϕ12, whose
/// reversed body is unsatisfiable but which still breaks Church-Rosser
/// through the ϕ8 anchor) are out of static reach — the warning means
/// "may not be Church-Rosser", and its absence is not a proof of
/// confluence.
struct AnalyzerOptions {
  bool check_schema = true;        ///< schema-unknown-attr/-master
  bool check_satisfiability = true;  ///< rule-dead-lhs
  bool check_redundancy = true;    ///< rule-duplicate / rule-shadowed
  bool check_confluence = true;    ///< cr-order-conflict/-assign-conflict/-order-cycle
};

/// Metadata of one check, for docs and tests.
struct AnalyzerCheck {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every check the analyzer (or the lenient parser feeding it) can emit.
const std::vector<AnalyzerCheck>& AnalyzerChecks();

/// Runs all enabled checks over `spec`. `entity_name` / `master_names`
/// are the document names used in messages (positional fallbacks are
/// synthesized when absent). Returned diagnostics are sorted with
/// DiagnosticSink::Sort. Rules with schema errors are excluded from the
/// later (value-level) checks, so one bad rule does not cascade.
std::vector<Diagnostic> AnalyzeSpecification(
    const Specification& spec, const std::string& entity_name = "R",
    const std::vector<std::string>& master_names = {},
    const AnalyzerOptions& options = {});

}  // namespace relacc

#endif  // RELACC_ANALYSIS_ANALYZER_H_
