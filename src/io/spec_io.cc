#include "io/spec_io.h"

#include <cstdio>
#include <utility>

#include "dsl/cfd_text.h"
#include "rules/cfd.h"

namespace relacc {

Json ValueToJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return Json::Null();
    case ValueType::kInt: return Json::Int(v.as_int());
    case ValueType::kDouble: return Json::Real(v.as_double());
    case ValueType::kString: return Json::Str(v.as_string());
    case ValueType::kBool: return Json::Bool(v.as_bool());
  }
  return Json::Null();
}

Result<Value> ValueFromJson(const Json& cell, ValueType declared,
                            const std::string& where) {
  if (cell.is_null()) return Value::Null();
  switch (declared) {
    case ValueType::kString:
      if (cell.is_string()) return Value::Str(cell.as_string());
      break;
    case ValueType::kInt:
      if (cell.is_int()) return Value::Int(cell.as_int());
      break;
    case ValueType::kDouble:
      if (cell.is_number()) return Value::Real(cell.as_double());
      break;
    case ValueType::kBool:
      if (cell.is_bool()) return Value::Bool(cell.as_bool());
      break;
    case ValueType::kNull:
      break;
  }
  return Status::InvalidArgument(where + ": cell does not match declared type '" +
                                 ValueTypeName(declared) + "'");
}

namespace {

Result<ValueType> ValueTypeFromName(const std::string& name) {
  if (name == "string") return ValueType::kString;
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "bool") return ValueType::kBool;
  return Status::InvalidArgument("unknown attribute type '" + name + "'");
}

Result<Schema> SchemaFromJson(const Json& array, const std::string& where) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < array.size(); ++i) {
    const Json& a = array.at(i);
    if (!a.is_object()) {
      return Status::InvalidArgument(where + ": schema entries must be objects");
    }
    Result<std::string> name = a.GetString("name");
    if (!name.ok()) return name.status();
    Result<std::string> type = a.GetString("type");
    if (!type.ok()) return type.status();
    Result<ValueType> vt = ValueTypeFromName(type.value());
    if (!vt.ok()) return vt.status();
    attrs.push_back({name.value(), vt.value()});
  }
  if (attrs.empty()) {
    return Status::InvalidArgument(where + ": empty schema");
  }
  return Schema(std::move(attrs));
}

Json SchemaToJson(const Schema& schema) {
  Json array = Json::Array();
  for (const Attribute& attr : schema.attributes()) {
    Json a = Json::Object();
    a.Set("name", Json::Str(attr.name));
    a.Set("type", Json::Str(ValueTypeName(attr.type)));
    array.Append(a);
  }
  return array;
}

Result<Relation> RelationFromJson(const Json& obj, const std::string& where,
                                  const std::string& base_dir) {
  Result<const Json*> schema_json = obj.GetArray("schema");
  if (!schema_json.ok()) return schema_json.status();
  Result<Schema> schema = SchemaFromJson(*schema_json.value(), where);
  if (!schema.ok()) return schema.status();

  Relation relation(schema.value());
  const Json* tuples = obj.Find("tuples");
  if (tuples != nullptr) {
    if (!tuples->is_array()) {
      return Status::InvalidArgument(where + ": 'tuples' must be an array");
    }
    for (int r = 0; r < tuples->size(); ++r) {
      const Json& row = tuples->at(r);
      if (!row.is_array() || row.size() != schema.value().size()) {
        return Status::InvalidArgument(
            where + ": row " + std::to_string(r) + " has arity " +
            std::to_string(row.size()) + ", schema has " +
            std::to_string(schema.value().size()));
      }
      std::vector<Value> values;
      values.reserve(row.size());
      for (int c = 0; c < row.size(); ++c) {
        Result<Value> v = ValueFromJson(
            row.at(c), schema.value().type(c),
            where + " row " + std::to_string(r) + " column '" +
                schema.value().name(c) + "'");
        if (!v.ok()) return v.status();
        values.push_back(std::move(v).value());
      }
      relation.Add(Tuple(std::move(values)));
    }
  }
  const Json* csv_ref = obj.Find("tuples_csv");
  if (csv_ref != nullptr) {
    if (!csv_ref->is_string()) {
      return Status::InvalidArgument(where + ": 'tuples_csv' must be a path");
    }
    std::string path = csv_ref->as_string();
    if (!path.empty() && path[0] != '/' && !base_dir.empty()) {
      path = base_dir + "/" + path;
    }
    Result<std::string> csv = ReadFile(path);
    if (!csv.ok()) return csv.status();
    Result<Relation> rows = Relation::FromCsv(schema.value(), csv.value());
    if (!rows.ok()) {
      return Status::ParseError(where + " (" + path +
                                "): " + rows.status().message());
    }
    for (const Tuple& t : rows.value().tuples()) relation.Add(t);
  }
  return relation;
}

Json RelationToJson(const Relation& relation, const std::string& name) {
  Json obj = Json::Object();
  obj.Set("name", Json::Str(name));
  obj.Set("schema", SchemaToJson(relation.schema()));
  Json tuples = Json::Array();
  for (const Tuple& t : relation.tuples()) {
    Json row = Json::Array();
    for (const Value& v : t.values()) row.Append(ValueToJson(v));
    tuples.Append(std::move(row));
  }
  obj.Set("tuples", std::move(tuples));
  return obj;
}

}  // namespace

std::vector<NamedMaster> SpecDocument::Masters() const {
  std::vector<NamedMaster> masters;
  masters.reserve(spec.masters.size());
  for (size_t i = 0; i < spec.masters.size(); ++i) {
    std::string name = i < master_names.size() ? master_names[i]
                                               : "m" + std::to_string(i);
    masters.push_back({name, &spec.masters[i].schema(), static_cast<int>(i)});
  }
  return masters;
}

namespace {

/// Shared deserialization. With `issues` non-null (lenient mode) the
/// rule/CFD text failures are collected instead of aborting.
Result<SpecDocument> SpecFromJsonImpl(const Json& doc,
                                      const std::string& base_dir,
                                      std::vector<ParseIssue>* issues) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("specification document must be an object");
  }
  SpecDocument out;

  Result<const Json*> entity = doc.GetObject("entity");
  if (!entity.ok()) return entity.status();
  Result<std::string> entity_name = entity.value()->GetString("name");
  out.entity_name = entity_name.ok() ? entity_name.value() : "R";
  Result<Relation> ie = RelationFromJson(*entity.value(), "entity", base_dir);
  if (!ie.ok()) return ie.status();
  out.spec.ie = std::move(ie).value();

  const Json* masters = doc.Find("masters");
  if (masters != nullptr) {
    if (!masters->is_array()) {
      return Status::InvalidArgument("'masters' must be an array");
    }
    for (int i = 0; i < masters->size(); ++i) {
      const Json& m = masters->at(i);
      if (!m.is_object()) {
        return Status::InvalidArgument("'masters' entries must be objects");
      }
      Result<std::string> name = m.GetString("name");
      std::string master_name =
          name.ok() ? name.value() : "m" + std::to_string(i);
      Result<Relation> master =
          RelationFromJson(m, "master '" + master_name + "'", base_dir);
      if (!master.ok()) return master.status();
      out.spec.masters.push_back(std::move(master).value());
      out.master_names.push_back(master_name);
    }
  }

  const Json* config = doc.Find("config");
  if (config != nullptr) {
    if (!config->is_object()) {
      return Status::InvalidArgument("'config' must be an object");
    }
    Result<bool> builtin = config->GetBool("builtin_axioms");
    if (builtin.ok()) out.spec.config.builtin_axioms = builtin.value();
    Result<bool> keep = config->GetBool("keep_orders");
    if (keep.ok()) out.spec.config.keep_orders = keep.value();
    Result<int64_t> max_actions = config->GetInt("max_actions");
    if (max_actions.ok()) out.spec.config.max_actions = max_actions.value();
    Result<std::string> strategy = config->GetString("check_strategy");
    if (strategy.ok()) {
      if (!ParseCheckStrategy(strategy.value(),
                              &out.spec.config.check_strategy)) {
        return Status::InvalidArgument(
            "config.check_strategy must be 'trail' or 'copy'");
      }
    }
  }

  const Json* rules = doc.Find("rules");
  if (rules != nullptr) {
    if (!rules->is_string()) {
      return Status::InvalidArgument(
          "'rules' must be a string holding a rule-DSL program");
    }
    RuleParser parser(out.spec.ie.schema(), out.entity_name, out.Masters());
    if (issues != nullptr) {
      ParsedProgram program = parser.ParseProgramLenient(rules->as_string());
      out.spec.rules = std::move(program.rules);
      for (ParseIssue& issue : program.issues) {
        issues->push_back(std::move(issue));
      }
    } else {
      Result<std::vector<AccuracyRule>> parsed =
          parser.ParseProgram(rules->as_string());
      if (!parsed.ok()) return parsed.status();
      out.spec.rules = std::move(parsed).value();
    }
  }

  // Constant CFDs (Sec. 2.1 Remark): compile to form-(2) ARs over one
  // synthesized master relation appended after the declared masters.
  const Json* cfds = doc.Find("cfds");
  if (cfds != nullptr) {
    if (!cfds->is_array()) {
      return Status::InvalidArgument(
          "'cfds' must be an array of constant-CFD strings");
    }
    std::vector<ConstantCfd> parsed_cfds;
    for (int i = 0; i < cfds->size(); ++i) {
      if (!cfds->at(i).is_string()) {
        return Status::InvalidArgument("'cfds' entries must be strings");
      }
      ParseIssue cfd_issue;
      Result<ConstantCfd> cfd =
          ParseConstantCfd(cfds->at(i).as_string(), out.spec.ie.schema(),
                           "cfd" + std::to_string(i),
                           issues != nullptr ? &cfd_issue : nullptr);
      if (!cfd.ok()) {
        if (issues == nullptr) return cfd.status();
        // CFD strings are separate one-line programs; keep the in-string
        // span but say which entry it concerns.
        cfd_issue.message =
            "cfds[" + std::to_string(i) + "]: " + cfd_issue.message;
        issues->push_back(std::move(cfd_issue));
        continue;
      }
      parsed_cfds.push_back(std::move(cfd).value());
    }
    if (!parsed_cfds.empty()) {
      CompiledCfds compiled =
          CompileCfds(out.spec.ie.schema(), parsed_cfds,
                      static_cast<int>(out.spec.masters.size()));
      out.spec.masters.push_back(std::move(compiled.master));
      out.master_names.push_back("cfd_patterns");
      for (AccuracyRule& rule : compiled.rules) {
        out.spec.rules.push_back(std::move(rule));
      }
    }
  }

  // Parse-time interning (see SpecDocument::dict): one pass over every
  // loaded cell, entity and masters alike.
  out.dict = std::make_shared<Dictionary>();
  for (const Tuple& t : out.spec.ie.tuples()) {
    for (AttrId a = 0; a < out.spec.ie.schema().size(); ++a) {
      out.dict->Intern(t.at(a));
    }
  }
  for (const Relation& m : out.spec.masters) {
    for (const Tuple& t : m.tuples()) {
      for (AttrId a = 0; a < m.schema().size(); ++a) out.dict->Intern(t.at(a));
    }
  }
  return out;
}

}  // namespace

Result<SpecDocument> SpecFromJson(const Json& doc,
                                  const std::string& base_dir) {
  return SpecFromJsonImpl(doc, base_dir, nullptr);
}

Result<SpecDocument> SpecFromJsonLenient(const Json& doc,
                                         const std::string& base_dir,
                                         std::vector<ParseIssue>* issues) {
  return SpecFromJsonImpl(doc, base_dir, issues);
}

Result<SpecDocument> SpecFromJsonText(const std::string& text,
                                      const std::string& base_dir) {
  Result<Json> doc = Json::Parse(text);
  if (!doc.ok()) return doc.status();
  return SpecFromJson(doc.value(), base_dir);
}

Json SpecToJson(const SpecDocument& doc) {
  Json out = Json::Object();
  out.Set("entity", RelationToJson(doc.spec.ie, doc.entity_name));

  Json masters = Json::Array();
  for (size_t i = 0; i < doc.spec.masters.size(); ++i) {
    std::string name = i < doc.master_names.size() ? doc.master_names[i]
                                                   : "m" + std::to_string(i);
    masters.Append(RelationToJson(doc.spec.masters[i], name));
  }
  out.Set("masters", std::move(masters));

  out.Set("rules", Json::Str(FormatProgramDsl(doc.spec.rules,
                                              doc.spec.ie.schema(),
                                              doc.Masters(),
                                              doc.entity_name)));

  Json config = Json::Object();
  config.Set("builtin_axioms", Json::Bool(doc.spec.config.builtin_axioms));
  config.Set("keep_orders", Json::Bool(doc.spec.config.keep_orders));
  config.Set("max_actions", Json::Int(doc.spec.config.max_actions));
  config.Set("check_strategy",
             Json::Str(CheckStrategyName(doc.spec.config.check_strategy)));
  out.Set("config", std::move(config));
  return out;
}

Json TupleToJson(const Tuple& tuple, const Schema& schema) {
  Json obj = Json::Object();
  for (AttrId a = 0; a < schema.size(); ++a) {
    obj.Set(schema.name(a), ValueToJson(tuple.at(a)));
  }
  return obj;
}

Json OutcomeToJson(const ChaseOutcome& outcome, const Schema& schema) {
  Json out = Json::Object();
  out.Set("church_rosser", Json::Bool(outcome.church_rosser));
  if (outcome.church_rosser) {
    out.Set("target", TupleToJson(outcome.target, schema));
    out.Set("complete", Json::Bool(outcome.target.IsComplete()));
  } else {
    out.Set("target", Json::Null());
    out.Set("violation", Json::Str(outcome.violation));
  }
  Json stats = Json::Object();
  stats.Set("ground_steps", Json::Int(outcome.stats.ground_steps));
  stats.Set("steps_applied", Json::Int(outcome.stats.steps_applied));
  stats.Set("pairs_derived", Json::Int(outcome.stats.pairs_derived));
  out.Set("stats", std::move(stats));
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  std::string content;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("error reading '" + path + "'");
  return content;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for writing");
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool bad = written != content.size();
  if (std::fclose(f) != 0) bad = true;
  return bad ? Status::IoError("error writing '" + path + "'") : Status::OK();
}

}  // namespace relacc
