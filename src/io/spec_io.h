#ifndef RELACC_IO_SPEC_IO_H_
#define RELACC_IO_SPEC_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "chase/specification.h"
#include "core/dictionary.h"
#include "dsl/parser.h"
#include "util/json.h"
#include "util/status.h"

namespace relacc {

/// A Specification plus the names the JSON document carries for its
/// relations (names are needed by the rule DSL and by diagnostics; the
/// in-memory Specification identifies relations positionally).
struct SpecDocument {
  Specification spec;
  std::string entity_name = "R";
  std::vector<std::string> master_names;  ///< parallel to spec.masters

  /// Term dictionary built at parse time: every entity and master cell
  /// is interned as the document loads, so a columnar service
  /// (ServiceOptions::dictionary / columnar_storage) starts with a warm
  /// dictionary instead of re-interning the whole instance. Shared so
  /// copies of the document (and services outliving it) stay cheap.
  std::shared_ptr<Dictionary> dict;

  /// NamedMaster views over spec.masters for the DSL. The document must
  /// outlive the returned vector (it borrows the schemas).
  std::vector<NamedMaster> Masters() const;
};

/// JSON (de)serialization of specifications. The document layout:
///
/// {
///   "entity":  {"name": "stat", "schema": [{"name": "FN", "type": "string"},
///               ...], "tuples": [["MJ", null, ...], ...]},
///   "masters": [{"name": "nba", "schema": [...], "tuples": [...]}, ...],
///   "rules":   "rule phi1 @currency: forall t1, t2 in stat (...)\n...",
///   "cfds":    ["[team] = \"Chicago Bulls\" -> [arena] = \"United Center\""],
///   "config":  {"builtin_axioms": true}
/// }
///
/// Rules are carried as one rule-DSL program string (see dsl/parser.h) so
/// the DSL stays the single authoritative rule syntax. Tuple cells use the
/// natural JSON value; cell types are validated against the declared schema
/// (an integer cell is accepted for a "double" attribute and widened).
///
/// "masters", "rules", "cfds" and "config" are optional; missing means
/// empty / defaults. Constant CFDs (dsl/cfd_text.h syntax) compile to
/// form-(2) ARs over a synthesized master relation named "cfd_patterns"
/// (Sec. 2.1 Remark), so a re-serialized document carries them as ordinary
/// rules + master data.
///
/// Any relation may carry `"tuples_csv": "file.csv"` instead of (or in
/// addition to) inline "tuples": rows are loaded from that CSV (header
/// validated against the schema; see core/relation.h) and appended after
/// the inline rows. Relative paths resolve against `base_dir` (the
/// directory of the document file; "" = the working directory).
/// Serialization always emits inline tuples — the CSV reference is an
/// input convenience.
Result<SpecDocument> SpecFromJson(const Json& doc,
                                  const std::string& base_dir = "");

/// Error-tolerant variant for `relacc lint`: rule-DSL and CFD parse
/// failures are appended to `issues` (with source spans and analyzer
/// check ids) instead of aborting the load — the document loads with the
/// rules that did parse, so the analyzer can still run over them.
/// Structural problems (missing entity, malformed tuples, unreadable CSV
/// references) still fail the whole load, as no useful spec exists then.
Result<SpecDocument> SpecFromJsonLenient(const Json& doc,
                                         const std::string& base_dir,
                                         std::vector<ParseIssue>* issues);

/// Convenience: parse text then deserialize.
Result<SpecDocument> SpecFromJsonText(const std::string& text,
                                      const std::string& base_dir = "");

/// Serializes back to the document layout above (round-trips through
/// SpecFromJson up to rule-name sanitization, which is idempotent).
Json SpecToJson(const SpecDocument& doc);

/// Serializes a chase outcome for machine consumption:
/// {"church_rosser": bool, "target": {attr: value, ...} | null,
///  "violation": "...", "stats": {...}}. The target object maps attribute
/// names to values (null where undeduced); it is omitted (JSON null) when
/// the specification is not Church-Rosser.
Json OutcomeToJson(const ChaseOutcome& outcome, const Schema& schema);

/// Serializes a tuple as an attribute-name -> value object.
Json TupleToJson(const Tuple& tuple, const Schema& schema);

/// Serializes one cell with the natural JSON value for its type.
Json ValueToJson(const Value& v);

/// Deserializes one cell against the declared attribute type (an integer
/// cell is accepted for a "double" attribute and widened; null is always
/// accepted). `where` prefixes the error message.
Result<Value> ValueFromJson(const Json& cell, ValueType declared,
                            const std::string& where);

/// Reads a whole file into a string (IoError on failure).
Result<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path` (IoError on failure).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace relacc

#endif  // RELACC_IO_SPEC_IO_H_
