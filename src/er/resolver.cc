#include "er/resolver.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace relacc {

UnionFind::UnionFind(int n) : parent_(n), rank_(n, 0) {
  for (int i = 0; i < n; ++i) parent_[i] = i;
}

int UnionFind::Find(int x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return true;
}

ResolutionResult ResolveEntities(const Relation& flat,
                                 const ResolverConfig& config) {
  const int n = flat.size();
  // Normalized key per tuple: lower-cased concatenation of key attributes
  // (nulls render as empty).
  std::vector<std::string> keys(n);
  for (int i = 0; i < n; ++i) {
    std::string key;
    for (AttrId a : config.key_attrs) {
      key += ToLower(flat.tuple(i).at(a).ToString());
      key.push_back('|');
    }
    keys[i] = std::move(key);
  }

  // Blocking on the key prefix.
  std::unordered_map<std::string, std::vector<int>> blocks;
  for (int i = 0; i < n; ++i) {
    blocks[keys[i].substr(
               0, std::min<std::size_t>(keys[i].size(),
                                        static_cast<std::size_t>(
                                            config.block_prefix)))]
        .push_back(i);
  }

  UnionFind uf(n);
  for (const auto& [prefix, members] : blocks) {
    (void)prefix;
    for (std::size_t x = 0; x < members.size(); ++x) {
      for (std::size_t y = x + 1; y < members.size(); ++y) {
        const int i = members[x];
        const int j = members[y];
        if (uf.Find(i) == uf.Find(j)) continue;
        if (TrigramJaccard(keys[i], keys[j]) >= config.similarity_threshold) {
          uf.Union(i, j);
        }
      }
    }
  }

  ResolutionResult result;
  result.cluster_of.assign(n, -1);
  std::unordered_map<int, int> root_to_cluster;
  for (int i = 0; i < n; ++i) {
    const int root = uf.Find(i);
    auto [it, inserted] =
        root_to_cluster.emplace(root, static_cast<int>(result.entities.size()));
    if (inserted) {
      result.entities.emplace_back(static_cast<int64_t>(it->second),
                                   flat.schema());
    }
    result.cluster_of[i] = it->second;
    result.entities[it->second].Add(flat.tuple(i));
  }
  return result;
}

}  // namespace relacc
