#ifndef RELACC_ER_RESOLVER_H_
#define RELACC_ER_RESOLVER_H_

#include <string>
#include <vector>

#include "core/relation.h"

namespace relacc {

/// Configuration of the entity-resolution substrate. The paper (Sec. 2.1)
/// assumes entity instances Ie are "identified by entity resolution
/// techniques [9, 24]"; this module provides that substrate so the examples
/// can start from a flat, duplicated relation.
struct ResolverConfig {
  /// Attributes whose (concatenated, lower-cased) values identify an
  /// entity; pairwise similarity is computed over this key.
  std::vector<AttrId> key_attrs;
  /// Blocking: tuples sharing the first `block_prefix` characters of the
  /// normalized key land in one block; only intra-block pairs are compared.
  int block_prefix = 3;
  /// Pairs at least this similar (trigram Jaccard over the key) match.
  double similarity_threshold = 0.75;
};

/// Result: one EntityInstance per discovered cluster, plus the cluster id
/// assigned to every input tuple (parallel to the input order).
struct ResolutionResult {
  std::vector<EntityInstance> entities;
  std::vector<int> cluster_of;
};

/// Union-find over tuple indices (exposed for tests and reuse).
class UnionFind {
 public:
  explicit UnionFind(int n);
  int Find(int x);
  /// Returns true if the two sets were distinct.
  bool Union(int a, int b);

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
};

/// Groups the tuples of `flat` into entity instances: normalize keys,
/// block, match pairs by similarity, cluster with union-find.
ResolutionResult ResolveEntities(const Relation& flat,
                                 const ResolverConfig& config);

}  // namespace relacc

#endif  // RELACC_ER_RESOLVER_H_
