#include "cli/commands.h"

#include <algorithm>
#include <iostream>
#include <ostream>
#include <sstream>

#include "chase/chase_engine.h"
#include "chase/explain.h"
#include "cli/console_user.h"
#include "datagen/profile_generator.h"
#include "discovery/ar_miner.h"
#include "framework/framework.h"
#include "io/spec_io.h"
#include "pipeline/pipeline.h"
#include "topk/rank_join_ct.h"
#include "topk/topk_ct.h"
#include "util/strings.h"

namespace relacc {

namespace {

/// Loads the spec document named by the first positional argument.
/// Relative "tuples_csv" references resolve against the document's
/// directory.
Result<SpecDocument> LoadSpec(const Args& args) {
  if (args.positionals().empty()) {
    return Status::InvalidArgument("expected a <spec.json> argument");
  }
  const std::string& path = args.positionals()[0];
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  const auto slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  return SpecFromJsonText(text.value(), base_dir);
}

/// Rejects unrecognized flags after a command has consumed its own.
int CheckUnread(const Args& args, std::ostream& err) {
  std::vector<std::string> unread = args.UnreadFlags();
  if (unread.empty()) return 0;
  err << "error: unknown flag(s):";
  for (const std::string& f : unread) err << " --" << f;
  err << "\n";
  return 2;
}

void PrintTarget(const Tuple& target, const Schema& schema,
                 std::ostream& out) {
  for (AttrId a = 0; a < schema.size(); ++a) {
    out << "  " << schema.name(a) << " = "
        << (target.at(a).is_null() ? std::string("(null)")
                                   : target.at(a).ToString())
        << "\n";
  }
}

int CmdCheck(const Args& args, std::ostream& out, std::ostream& err) {
  const bool as_json = args.Has("json");
  const bool quiet = args.Has("quiet");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  const Specification& spec = doc.value().spec;
  ChaseOutcome outcome = IsCR(spec);
  if (as_json) {
    out << OutcomeToJson(outcome, spec.ie.schema()).Dump(2) << "\n";
  } else if (!outcome.church_rosser) {
    out << "NOT Church-Rosser: " << outcome.violation << "\n";
  } else {
    out << "Church-Rosser: yes\n";
    out << "target " << (outcome.target.IsComplete() ? "(complete)" : "(incomplete)")
        << ":\n";
    if (!quiet) PrintTarget(outcome.target, spec.ie.schema(), out);
  }
  return outcome.church_rosser ? 0 : 3;
}

int CmdExplain(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string attr_name = args.GetString("attr");
  Result<int64_t> depth = args.GetInt("depth", 12);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (!depth.ok()) {
    err << "error: " << depth.status().ToString() << "\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ExplainedChase explained(spec);
  if (!explained.church_rosser()) {
    err << "error: specification is not Church-Rosser: "
        << explained.violation() << "\n";
    return 3;
  }
  if (attr_name.empty()) {
    // Explain every deduced attribute.
    for (AttrId a = 0; a < schema.size(); ++a) {
      if (explained.FindTeDerivation(a).has_value()) {
        out << explained.Explain(*explained.FindTeDerivation(a),
                                 static_cast<int>(depth.value()));
        out << "\n";
      }
    }
    return 0;
  }
  std::optional<AttrId> attr = schema.IndexOf(attr_name);
  if (!attr) {
    err << "error: unknown attribute '" << attr_name << "'\n";
    return 2;
  }
  std::optional<int> d = explained.FindTeDerivation(*attr);
  if (!d) {
    out << explained.ExplainTarget(*attr);
    return 0;
  }
  out << explained.Explain(*d, static_cast<int>(depth.value()));
  return 0;
}

int CmdTopK(const Args& args, std::ostream& out, std::ostream& err) {
  Result<int64_t> k = args.GetInt("k", 5);
  Result<int64_t> threads = args.GetInt("threads", 1);
  const std::string algo = args.GetString("algo", "topkct");
  const bool strategy_given = args.Has("check-strategy");
  const std::string strategy = args.GetString("check-strategy", "trail");
  const bool as_json = args.Has("json");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (!k.ok()) {
    err << "error: " << k.status().ToString() << "\n";
    return 2;
  }
  if (!threads.ok()) {
    err << "error: " << threads.status().ToString() << "\n";
    return 2;
  }
  // Bounded before the int cast: each worker is an OS thread plus its own
  // chase engine, so absurd values would abort in std::thread or OOM.
  if (threads.value() < 1 || threads.value() > 256) {
    err << "error: --threads must be between 1 and 256\n";
    return 2;
  }
  if (algo != "topkct" && algo != "heuristic" && algo != "rankjoin" &&
      algo != "brute") {
    err << "error: --algo must be topkct, heuristic, rankjoin or brute\n";
    return 2;
  }
  CheckStrategy check_strategy = CheckStrategy::kTrail;
  if (!ParseCheckStrategy(strategy, &check_strategy)) {
    err << "error: --check-strategy must be trail or copy\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  Specification& spec = doc.value().spec;
  // The flag overrides the spec document's config only when given, so a
  // spec pinned to one strategy keeps it by default.
  if (strategy_given) spec.config.check_strategy = check_strategy;
  const GroundProgram program =
      Instantiate(spec.ie, spec.masters, spec.rules);
  ChaseEngine engine(spec.ie, &program, spec.config);
  // Checkpoint-backed: the candidate checks below resume from the same
  // all-null terminal state this run primes.
  ChaseOutcome outcome = engine.RunFromCheckpoint();
  if (!outcome.church_rosser) {
    err << "error: specification is not Church-Rosser: " << outcome.violation
        << "\n";
    return 3;
  }
  PreferenceModel pref =
      PreferenceModel::FromOccurrences(spec.ie, spec.masters);
  TopKOptions topk_opts;
  topk_opts.num_threads = static_cast<int>(threads.value());
  TopKResult result;
  const int kk = static_cast<int>(k.value());
  if (algo == "heuristic") {
    result = TopKCTh(engine, spec.masters, outcome.target, pref, kk,
                     topk_opts);
  } else if (algo == "rankjoin") {
    result = RankJoinCT(engine, spec.masters, outcome.target, pref, kk,
                        topk_opts);
  } else if (algo == "brute") {
    result = TopKBruteForce(engine, spec.masters, outcome.target, pref, kk,
                            topk_opts);
  } else {
    result = TopKCT(engine, spec.masters, outcome.target, pref, kk,
                    topk_opts);
  }

  const Schema& schema = spec.ie.schema();
  if (as_json) {
    Json json = Json::Object();
    json.Set("deduced_target", TupleToJson(outcome.target, schema));
    Json candidates = Json::Array();
    for (size_t i = 0; i < result.targets.size(); ++i) {
      Json c = Json::Object();
      c.Set("rank", Json::Int(static_cast<int64_t>(i) + 1));
      c.Set("score", Json::Real(result.scores[i]));
      c.Set("target", TupleToJson(result.targets[i], schema));
      candidates.Append(std::move(c));
    }
    json.Set("candidates", std::move(candidates));
    json.Set("checks", Json::Int(result.checks));
    json.Set("heap_pops", Json::Int(result.heap_pops));
    out << json.Dump(2) << "\n";
    return 0;
  }
  if (outcome.target.IsComplete()) {
    out << "deduced target is already complete; nothing to rank\n";
    PrintTarget(outcome.target, schema, out);
    return 0;
  }
  out << "deduced target (incomplete):\n";
  PrintTarget(outcome.target, schema, out);
  out << "top-" << kk << " candidates (" << algo << "):\n";
  for (size_t i = 0; i < result.targets.size(); ++i) {
    out << "#" << (i + 1) << "  score=" << result.scores[i] << "\n";
    PrintTarget(result.targets[i], schema, out);
  }
  if (result.targets.empty()) out << "(no candidate targets found)\n";
  return 0;
}

int CmdFmt(const Args& args, std::ostream& out, std::ostream& err) {
  const bool rules_only = args.Has("rules-only");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;
  if (rules_only) {
    out << FormatProgramDsl(doc.value().spec.rules,
                            doc.value().spec.ie.schema(),
                            doc.value().Masters(), doc.value().entity_name);
  } else {
    out << SpecToJson(doc.value()).Dump(2) << "\n";
  }
  return 0;
}

int CmdPipeline(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string key = args.GetString("key");
  Result<int64_t> threads = args.GetInt("threads", 0);
  const std::string completion = args.GetString("completion", "best");
  const bool as_json = args.Has("json");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (!threads.ok()) {
    err << "error: " << threads.status().ToString() << "\n";
    return 2;
  }
  if (key.empty()) {
    err << "error: --key <attr[,attr...]> is required (entity-resolution "
           "key over the flat relation)\n";
    return 2;
  }
  if (completion != "best" && completion != "heuristic" &&
      completion != "none") {
    err << "error: --completion must be best, heuristic or none\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ResolverConfig resolver;
  for (const std::string& part : Split(key, ',')) {
    std::optional<AttrId> a = schema.IndexOf(std::string(Trim(part)));
    if (!a) {
      err << "error: unknown key attribute '" << part << "'\n";
      return 2;
    }
    resolver.key_attrs.push_back(*a);
  }
  PipelineOptions options;
  options.num_threads = static_cast<int>(threads.value());
  // The spec document's chase config (check_strategy, builtin_axioms,
  // action budget) governs every per-entity chase; it used to be dropped
  // here, silently running the default config instead.
  options.chase = spec.config;
  options.completion = completion == "best"
                           ? CompletionPolicy::kBestCandidate
                           : completion == "heuristic"
                                 ? CompletionPolicy::kHeuristic
                                 : CompletionPolicy::kLeaveNull;
  PipelineReport report = RunPipelineOnFlat(spec.ie, resolver, spec.masters,
                                            spec.rules, options);
  if (as_json) {
    Json json = Json::Object();
    json.Set("entities", Json::Int(static_cast<int64_t>(report.entities.size())));
    json.Set("tuples", Json::Int(report.total_tuples));
    json.Set("church_rosser", Json::Int(report.num_church_rosser));
    json.Set("complete_by_chase", Json::Int(report.num_complete_by_chase));
    json.Set("completed_by_candidates",
             Json::Int(report.num_completed_by_candidates));
    json.Set("incomplete", Json::Int(report.num_incomplete));
    json.Set("deduced_attr_fraction", Json::Real(report.deduced_attr_fraction));
    Json targets = Json::Array();
    for (int i = 0; i < report.targets.size(); ++i) {
      targets.Append(TupleToJson(report.targets.tuple(i), schema));
    }
    json.Set("targets", std::move(targets));
    out << json.Dump(2) << "\n";
    return 0;
  }
  out << "entities resolved:          " << report.entities.size() << "\n"
      << "input tuples:               " << report.total_tuples << "\n"
      << "Church-Rosser:              " << report.num_church_rosser << "\n"
      << "complete via chase:         " << report.num_complete_by_chase << "\n"
      << "completed via candidates:   " << report.num_completed_by_candidates
      << "\n"
      << "still incomplete:           " << report.num_incomplete << "\n"
      << "attrs deduced by chase:     "
      << static_cast<int>(report.deduced_attr_fraction * 100.0 + 0.5) << "%\n";
  return 0;
}

int CmdInteractive(const Args& args, std::ostream& out, std::ostream& err,
                   std::istream& in) {
  Result<int64_t> k = args.GetInt("k", 5);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (!k.ok()) {
    err << "error: " << k.status().ToString() << "\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  PreferenceModel pref =
      PreferenceModel::FromOccurrences(spec.ie, spec.masters);
  ConsoleUser user(schema, in, out);
  FrameworkOptions options;
  options.k = static_cast<int>(k.value());
  FrameworkResult result = RunFramework(spec, pref, &user, options);
  if (!result.church_rosser) {
    err << "error: specification is not Church-Rosser; revise the rules\n";
    return 3;
  }
  out << "\n== final target ("
      << (result.found_complete_target ? "complete" : "partial") << ", "
      << result.interaction_rounds << " interaction round(s)) ==\n";
  PrintTarget(result.target, schema, out);
  return 0;
}

int CmdDiscover(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string key = args.GetString("key");
  Result<int64_t> min_support = args.GetInt("min-support", 20);
  const std::string min_conf_text = args.GetString("min-confidence", "0.98");
  Result<int64_t> max_rules = args.GetInt("max-rules", 50);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) {
    err << "error: " << doc.status().ToString() << "\n";
    return 1;
  }
  if (!min_support.ok() || !max_rules.ok()) {
    err << "error: --min-support / --max-rules expect integers\n";
    return 2;
  }
  char* end = nullptr;
  const double min_confidence = std::strtod(min_conf_text.c_str(), &end);
  if (end == nullptr || *end != '\0' || min_confidence < 0.0 ||
      min_confidence > 1.0) {
    err << "error: --min-confidence expects a number in [0,1]\n";
    return 2;
  }
  if (key.empty()) {
    err << "error: --key <attr[,attr...]> is required\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ResolverConfig resolver;
  for (const std::string& part : Split(key, ',')) {
    std::optional<AttrId> a = schema.IndexOf(std::string(Trim(part)));
    if (!a) {
      err << "error: unknown key attribute '" << part << "'\n";
      return 2;
    }
    resolver.key_attrs.push_back(*a);
  }

  // Bootstrap loop of ar_miner.h: deduce targets with the current Σ, then
  // mine candidate rules from (instances, deduced targets).
  ResolutionResult resolution = ResolveEntities(spec.ie, resolver);
  PipelineOptions options;
  options.chase = spec.config;  // same wiring as CmdPipeline
  PipelineReport report = RunPipeline(resolution.entities, spec.masters,
                                      spec.rules, options);
  std::vector<Tuple> targets(resolution.entities.size(),
                             Tuple(std::vector<Value>(schema.size())));
  for (size_t row = 0; row < report.row_entity.size(); ++row) {
    targets[report.row_entity[row]] = report.targets.tuple(row);
  }
  ArMinerConfig miner;
  miner.min_support = static_cast<int>(min_support.value());
  miner.min_confidence = min_confidence;
  miner.max_rules = static_cast<int>(max_rules.value());
  std::vector<MinedRule> mined =
      MineAccuracyRules(resolution.entities, targets, miner);

  out << "# mined " << mined.size() << " candidate rule(s) from "
      << resolution.entities.size() << " entities\n";
  for (const MinedRule& m : mined) {
    out << "# support=" << m.support << " confidence=" << m.confidence << "\n"
        << FormatRuleDsl(m.rule, schema, doc.value().Masters(),
                         doc.value().entity_name);
  }
  return 0;
}

int CmdGen(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string profile = args.GetString("profile", "med");
  Result<int64_t> entities = args.GetInt("entities", 50);
  Result<int64_t> seed = args.GetInt("seed", 42);
  Result<int64_t> index = args.GetInt("entity", 0);
  const std::string output = args.GetString("out");
  if (!entities.ok() || !seed.ok() || !index.ok()) {
    err << "error: --entities / --seed / --entity expect integers\n";
    return 2;
  }
  if (profile != "med" && profile != "cfp") {
    err << "error: --profile must be med or cfp\n";
    return 2;
  }
  if (int rc = CheckUnread(args, err); rc != 0) return rc;

  ProfileConfig config = profile == "med"
                             ? MedConfig(static_cast<uint64_t>(seed.value()))
                             : CfpConfig(static_cast<uint64_t>(seed.value()));
  config.num_entities = static_cast<int>(entities.value());
  config.master_size =
      std::max(1, static_cast<int>(entities.value() * 8 / 10));
  EntityDataset dataset = GenerateProfile(config);
  if (index.value() < 0 ||
      index.value() >= static_cast<int64_t>(dataset.entities.size())) {
    err << "error: --entity out of range (dataset has "
        << dataset.entities.size() << " entities)\n";
    return 2;
  }

  SpecDocument doc;
  doc.spec = dataset.SpecFor(static_cast<int>(index.value()));
  doc.entity_name = "R";
  for (size_t m = 0; m < doc.spec.masters.size(); ++m) {
    doc.master_names.push_back("m" + std::to_string(m));
  }
  const std::string text = SpecToJson(doc).Dump(2) + "\n";
  if (output.empty()) {
    out << text;
    return 0;
  }
  Status written = WriteFile(output, text);
  if (!written.ok()) {
    err << "error: " << written.ToString() << "\n";
    return 1;
  }
  out << "wrote " << output << " (entity " << index.value() << " of "
      << dataset.entities.size() << ", " << doc.spec.ie.size()
      << " tuples, " << doc.spec.rules.size() << " rules)\n";
  return 0;
}

}  // namespace

std::string CliUsage() {
  return
      "relacc — determine the relative accuracy of attributes "
      "(Cao/Fan/Yu, SIGMOD'13)\n"
      "\n"
      "usage: relacc <command> <spec.json> [flags]\n"
      "\n"
      "commands:\n"
      "  check     Church-Rosser check + deduced target (IsCR)\n"
      "            [--json] [--quiet]\n"
      "  explain   proof tree for deduced target attributes\n"
      "            [--attr <name>] [--depth N]\n"
      "  topk      top-k candidate targets for an incomplete target\n"
      "            [--k N] [--algo topkct|heuristic|rankjoin|brute]\n"
      "            [--threads N] [--check-strategy trail|copy] [--json]\n"
      "  fmt       normalize a spec document / its rule program\n"
      "            [--rules-only]\n"
      "  pipeline  flat relation -> entity resolution -> per-entity targets\n"
      "            --key <attr[,attr...]> [--threads N]\n"
      "            [--completion best|heuristic|none] [--json]\n"
      "  interactive  the Fig. 3 user loop on one entity instance\n"
      "            [--k N]\n"
      "  discover  mine candidate form-(1) rules from a flat relation\n"
      "            --key <attr[,attr...]> [--min-support N]\n"
      "            [--min-confidence X] [--max-rules N]\n"
      "  gen       emit a sample spec document from the built-in generators\n"
      "            [--profile med|cfp] [--entities N] [--seed N]\n"
      "            [--entity I] [--out FILE]\n"
      "  help      this text\n"
      "\n"
      "The spec document format is described in io/spec_io.h; rules use the\n"
      "DSL of dsl/parser.h (an ASCII form of the paper's Table 3 notation).\n";
}

int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err) {
  return RunCliCommand(args, out, err, std::cin);
}

int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err,
                  std::istream& in) {
  const std::string& cmd = args.command();
  if (cmd == "check") return CmdCheck(args, out, err);
  if (cmd == "explain") return CmdExplain(args, out, err);
  if (cmd == "topk") return CmdTopK(args, out, err);
  if (cmd == "fmt") return CmdFmt(args, out, err);
  if (cmd == "pipeline") return CmdPipeline(args, out, err);
  if (cmd == "interactive") return CmdInteractive(args, out, err, in);
  if (cmd == "discover") return CmdDiscover(args, out, err);
  if (cmd == "gen") return CmdGen(args, out, err);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    out << CliUsage();
    return 0;
  }
  err << "error: unknown command '" << cmd << "'\n\n" << CliUsage();
  return 2;
}

int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  Result<Args> args = Args::Parse(argv);
  if (!args.ok()) {
    err << "error: " << args.status().ToString() << "\n\n" << CliUsage();
    return 2;
  }
  return RunCliCommand(args.value(), out, err);
}

}  // namespace relacc
