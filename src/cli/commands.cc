#include "cli/commands.h"

#include <csignal>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "api/accuracy_service.h"
#include "api/version.h"
#include "chase/chase_engine.h"
#include "chase/explain.h"
#include "cli/console_user.h"
#include "datagen/profile_generator.h"
#include "discovery/ar_miner.h"
#include "framework/framework.h"
#include "io/spec_io.h"
#include "pipeline/pipeline.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "snapshot/reader.h"
#include "topk/rank_join_ct.h"
#include "topk/topk_ct.h"
#include "util/strings.h"

namespace relacc {

namespace {

/// Loads the spec document named by the first positional argument.
/// Relative "tuples_csv" references resolve against the document's
/// directory.
Result<SpecDocument> LoadSpecAt(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  const auto slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  Result<SpecDocument> doc = SpecFromJsonText(text.value(), base_dir);
  if (!doc.ok() && doc.status().code() != StatusCode::kParseError &&
      doc.status().code() != StatusCode::kIoError) {
    // Spec-content problems (reported as kInvalidArgument by spec_io)
    // are document parse failures from the CLI's point of view — exit
    // code 1, as this tool has always reported for a bad spec file —
    // not usage errors (exit 2).
    return Status::ParseError(doc.status().message());
  }
  return doc;
}

Result<SpecDocument> LoadSpec(const Args& args) {
  if (args.positionals().empty()) {
    return Status::InvalidArgument("expected a <spec.json> argument");
  }
  return LoadSpecAt(args.positionals()[0]);
}

/// Rejects unrecognized flags after a command has consumed its own.
Status CheckUnread(const Args& args) {
  std::vector<std::string> unread = args.UnreadFlags();
  if (unread.empty()) return Status::OK();
  std::string msg = "unknown flag(s):";
  for (const std::string& f : unread) msg += " --" + f;
  return Status::InvalidArgument(std::move(msg));
}

/// Resolves --key into ResolverConfig::key_attrs over `schema`.
Status ParseKeyAttrs(const std::string& key, const Schema& schema,
                     ResolverConfig* resolver) {
  if (key.empty()) {
    return Status::InvalidArgument(
        "--key <attr[,attr...]> is required (entity-resolution key over "
        "the flat relation)");
  }
  for (const std::string& part : Split(key, ',')) {
    std::optional<AttrId> a = schema.IndexOf(std::string(Trim(part)));
    if (!a) {
      return Status::InvalidArgument("unknown key attribute '" + part + "'");
    }
    resolver->key_attrs.push_back(*a);
  }
  return Status::OK();
}

/// Shared by CmdPipeline and CmdDiscover: streams resolved entity
/// clusters through one pipeline session over a service built from the
/// spec document's (masters, rules, chase config).
Result<PipelineReport> StreamResolvedEntities(
    const Specification& spec, std::vector<EntityInstance> entities,
    ServiceOptions service_options) {
  Specification service_spec;
  service_spec.ie = Relation(spec.ie.schema());
  service_spec.masters = spec.masters;
  service_spec.rules = spec.rules;
  service_spec.config = spec.config;
  Result<std::unique_ptr<AccuracyService>> service = AccuracyService::Create(
      std::move(service_spec), std::move(service_options));
  if (!service.ok()) return service.status();
  Result<std::unique_ptr<PipelineSession>> session =
      service.value()->StartPipeline();
  if (!session.ok()) return session.status();
  RELACC_RETURN_NOT_OK(session.value()->Submit(std::move(entities)));
  return session.value()->Finish();
}

void PrintTarget(const Tuple& target, const Schema& schema,
                 std::ostream& out) {
  for (AttrId a = 0; a < schema.size(); ++a) {
    out << "  " << schema.name(a) << " = "
        << (target.at(a).is_null() ? std::string("(null)")
                                   : target.at(a).ToString())
        << "\n";
  }
}

Status CmdCheck(const Args& args, std::ostream& out) {
  const bool as_json = args.Has("json");
  const bool quiet = args.Has("quiet");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  const Specification& spec = doc.value().spec;
  ChaseOutcome outcome = IsCR(spec);
  if (as_json) {
    out << OutcomeToJson(outcome, spec.ie.schema()).Dump(2) << "\n";
  } else if (!outcome.church_rosser) {
    out << "NOT Church-Rosser: " << outcome.violation << "\n";
  } else {
    out << "Church-Rosser: yes\n";
    out << "target "
        << (outcome.target.IsComplete() ? "(complete)" : "(incomplete)")
        << ":\n";
    if (!quiet) PrintTarget(outcome.target, spec.ie.schema(), out);
  }
  if (!outcome.church_rosser) {
    // The verdict was fully reported on `out` above; an empty message
    // tells the exit point to set the code without a duplicate stderr
    // diagnostic.
    return Status::FailedPrecondition("");
  }
  return Status::OK();
}

Status CmdExplain(const Args& args, std::ostream& out) {
  const std::string attr_name = args.GetString("attr");
  Result<int64_t> depth = args.GetInt("depth", 12);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  if (!depth.ok()) return depth.status();
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ExplainedChase explained(spec);
  if (!explained.church_rosser()) {
    return Status::FailedPrecondition("specification is not Church-Rosser: " +
                                      explained.violation());
  }
  if (attr_name.empty()) {
    // Explain every deduced attribute.
    for (AttrId a = 0; a < schema.size(); ++a) {
      if (explained.FindTeDerivation(a).has_value()) {
        out << explained.Explain(*explained.FindTeDerivation(a),
                                 static_cast<int>(depth.value()));
        out << "\n";
      }
    }
    return Status::OK();
  }
  std::optional<AttrId> attr = schema.IndexOf(attr_name);
  if (!attr) {
    return Status::InvalidArgument("unknown attribute '" + attr_name + "'");
  }
  std::optional<int> d = explained.FindTeDerivation(*attr);
  if (!d) {
    out << explained.ExplainTarget(*attr);
    return Status::OK();
  }
  out << explained.Explain(*d, static_cast<int>(depth.value()));
  return Status::OK();
}

Status CmdTopK(const Args& args, std::ostream& out) {
  Result<int64_t> k = args.GetInt("k", 5);
  Result<int64_t> threads = args.GetInt("threads", 1);
  const std::string algo = args.GetString("algo", "topkct");
  const bool strategy_given = args.Has("check-strategy");
  const std::string strategy = args.GetString("check-strategy", "trail");
  const bool as_json = args.Has("json");
  const std::string snapshot = args.GetString("snapshot");
  if (!k.ok()) return k.status();
  if (!threads.ok()) return threads.status();
  // Bounded before the int cast: each worker is an OS thread plus its own
  // chase engine, so absurd values would abort in std::thread or OOM.
  if (threads.value() < 1 || threads.value() > 256) {
    return Status::InvalidArgument("--threads must be between 1 and 256");
  }
  TopKAlgorithm algorithm = TopKAlgorithm::kTopKCT;
  if (algo == "heuristic") {
    algorithm = TopKAlgorithm::kHeuristic;
  } else if (algo == "rankjoin") {
    algorithm = TopKAlgorithm::kRankJoin;
  } else if (algo == "brute") {
    algorithm = TopKAlgorithm::kBruteForce;
  } else if (algo != "topkct") {
    return Status::InvalidArgument(
        "--algo must be topkct, heuristic, rankjoin or brute");
  }
  CheckStrategy check_strategy = CheckStrategy::kTrail;
  if (!ParseCheckStrategy(strategy, &check_strategy)) {
    return Status::InvalidArgument("--check-strategy must be trail or copy");
  }
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  ServiceOptions service_options;
  service_options.num_threads = static_cast<int>(threads.value());
  std::unique_ptr<AccuracyService> service;
  Schema schema;
  if (!snapshot.empty()) {
    // The artifact replaces the spec document (and carries its own
    // chase config, so the strategy flag has nothing to override).
    if (strategy_given) {
      return Status::InvalidArgument(
          "--check-strategy conflicts with --snapshot: the chase config "
          "is part of the artifact");
    }
    if (!args.positionals().empty()) {
      return Status::InvalidArgument(
          "--snapshot replaces the <spec.json> argument");
    }
    service_options.snapshot_path = snapshot;
    Result<std::unique_ptr<AccuracyService>> created =
        AccuracyService::Create(Specification(), std::move(service_options));
    if (!created.ok()) return created.status();
    service = std::move(created).value();
    schema = service->specification().ie.schema();
  } else {
    Result<SpecDocument> doc = LoadSpec(args);
    if (!doc.ok()) return doc.status();
    Specification& spec = doc.value().spec;
    // The flag overrides the spec document's config only when given, so
    // a spec pinned to one strategy keeps it by default.
    if (strategy_given) spec.config.check_strategy = check_strategy;
    schema = spec.ie.schema();
    Result<std::unique_ptr<AccuracyService>> created =
        AccuracyService::Create(std::move(spec), std::move(service_options));
    if (!created.ok()) return created.status();
    service = std::move(created).value();
  }
  Result<ChaseOutcome> outcome = service->DeduceEntity();
  if (!outcome.ok()) return outcome.status();
  if (!outcome.value().church_rosser) {
    return Status::FailedPrecondition("specification is not Church-Rosser: " +
                                      outcome.value().violation);
  }
  const Tuple& deduced = outcome.value().target;
  const int kk = static_cast<int>(k.value());
  // Run the ranking even when the deduced target is complete: the
  // algorithms then verify the target and return it as its own sole
  // candidate, which the JSON output has always reported.
  Result<TopKResult> ranked = service->TopK(kk, algorithm);
  if (!ranked.ok()) return ranked.status();
  const TopKResult& result = ranked.value();

  if (as_json) {
    // The shared serve serializer, so this document is byte-identical to
    // a serve client's `topk` result by construction.
    out << serve::TopKReportToJson(deduced, result, schema).Dump(2) << "\n";
    return Status::OK();
  }
  if (deduced.IsComplete()) {
    out << "deduced target is already complete; nothing to rank\n";
    PrintTarget(deduced, schema, out);
    return Status::OK();
  }
  out << "deduced target (incomplete):\n";
  PrintTarget(deduced, schema, out);
  out << "top-" << kk << " candidates (" << algo << "):\n";
  for (size_t i = 0; i < result.targets.size(); ++i) {
    out << "#" << (i + 1) << "  score=" << result.scores[i] << "\n";
    PrintTarget(result.targets[i], schema, out);
  }
  if (result.targets.empty()) out << "(no candidate targets found)\n";
  return Status::OK();
}

Status CmdFmt(const Args& args, std::ostream& out) {
  const bool rules_only = args.Has("rules-only");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  RELACC_RETURN_NOT_OK(CheckUnread(args));
  if (rules_only) {
    out << FormatProgramDsl(doc.value().spec.rules,
                            doc.value().spec.ie.schema(),
                            doc.value().Masters(), doc.value().entity_name);
  } else {
    out << SpecToJson(doc.value()).Dump(2) << "\n";
  }
  return Status::OK();
}

Status CmdPipeline(const Args& args, std::ostream& out) {
  const std::string key = args.GetString("key");
  Result<int64_t> threads = args.GetInt("threads", 0);
  Result<int64_t> window = args.GetInt("window", 0);
  Result<int64_t> ground_shards = args.GetInt("ground-shards", 0);
  const std::string completion = args.GetString("completion", "best");
  const std::string storage = args.GetString("storage", "row");
  const std::string snapshot = args.GetString("snapshot");
  const bool as_json = args.Has("json");
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  if (!threads.ok()) return threads.status();
  if (!window.ok()) return window.status();
  if (!ground_shards.ok()) return ground_shards.status();
  if (window.value() < 0) {
    return Status::InvalidArgument(
        "--window must be >= 0 (0 = service default)");
  }
  if (ground_shards.value() < 0) {
    return Status::InvalidArgument(
        "--ground-shards must be >= 0 (0 = thread budget)");
  }
  CompletionPolicy policy = CompletionPolicy::kBestCandidate;
  if (completion == "heuristic") {
    policy = CompletionPolicy::kHeuristic;
  } else if (completion == "none") {
    policy = CompletionPolicy::kLeaveNull;
  } else if (completion != "best") {
    return Status::InvalidArgument(
        "--completion must be best, heuristic or none");
  }
  if (storage != "row" && storage != "columnar") {
    return Status::InvalidArgument("--storage must be row or columnar");
  }
  if (!snapshot.empty() && args.Has("storage") && storage != "columnar") {
    return Status::InvalidArgument(
        "--storage row conflicts with --snapshot: the artifact is "
        "dictionary-encoded");
  }
  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ResolverConfig resolver;
  RELACC_RETURN_NOT_OK(ParseKeyAttrs(key, schema, &resolver));
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  // The flat relation goes through entity resolution, then every cluster
  // streams through one pipeline session. The spec document's chase
  // config (check_strategy, builtin_axioms, action budget) governs every
  // per-entity chase; it used to be dropped here, silently running the
  // default config instead.
  ResolutionResult resolution = ResolveEntities(spec.ie, resolver);
  ServiceOptions service_options;
  service_options.num_threads = static_cast<int>(threads.value());
  service_options.completion = policy;
  service_options.ground_shards = static_cast<int>(ground_shards.value());
  if (window.value() > 0) {
    service_options.window = window.value();
  }
  if (!snapshot.empty()) {
    // The service (masters, rules, chase config, chased checkpoint)
    // comes from the artifact; the spec document still provides the
    // flat relation that entity resolution clusters. The document's
    // dictionary must not seed the service — the artifact restores its
    // own (id stability needs a fresh one).
    service_options.snapshot_path = snapshot;
  } else if (storage == "columnar") {
    // Dictionary-encoded storage, seeded with the parse-time dictionary
    // (SpecDocument::dict) so the service never re-interns the document.
    service_options.columnar_storage = true;
    service_options.dictionary = doc.value().dict;
  }
  Result<PipelineReport> finished = StreamResolvedEntities(
      spec, std::move(resolution.entities), std::move(service_options));
  if (!finished.ok()) return finished.status();
  const PipelineReport& report = finished.value();

  if (as_json) {
    // The shared serve serializer, so this document is byte-identical to
    // a serve client's `pipeline.finish` result by construction (the
    // serve-smoke CI lane diffs the two).
    out << serve::PipelineReportToJson(report, schema).Dump(2) << "\n";
    return Status::OK();
  }
  // The plan echo (budget-dependent by design, so it stays out of the
  // --json document that CI diffs across budgets): phase-1 chase slots
  // and the phase-2 completion_workers × check_threads split.
  out << "thread plan:                chase=" << report.plan.chase_threads
      << " completion=" << report.plan.completion_workers << "x"
      << report.plan.check_threads << "\n"
      << "entities resolved:          " << report.entities.size() << "\n"
      << "input tuples:               " << report.total_tuples << "\n"
      << "Church-Rosser:              " << report.num_church_rosser << "\n"
      << "complete via chase:         " << report.num_complete_by_chase << "\n"
      << "completed via candidates:   " << report.num_completed_by_candidates
      << "\n"
      << "still incomplete:           " << report.num_incomplete << "\n"
      << "attrs deduced by chase:     "
      << static_cast<int>(report.deduced_attr_fraction * 100.0 + 0.5) << "%\n";
  return Status::OK();
}

Status CmdInteractive(const Args& args, std::ostream& out, std::istream& in) {
  Result<int64_t> k = args.GetInt("k", 5);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  if (!k.ok()) return k.status();
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  PreferenceModel pref =
      PreferenceModel::FromOccurrences(spec.ie, spec.masters);
  ConsoleUser user(schema, in, out);

  // The console loop is the Fig. 3 oracle over an interactive session:
  // the session keeps the chase trail and candidate checker warm across
  // the user's revisions.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  Result<std::unique_ptr<AccuracyService>> service =
      AccuracyService::Create(spec, std::move(service_options));
  if (!service.ok()) return service.status();
  InteractionOptions session_options;
  session_options.k = static_cast<int>(std::max<int64_t>(1, k.value()));
  session_options.preference = &pref;
  Result<std::unique_ptr<InteractionSession>> session =
      service.value()->StartInteraction(std::move(session_options));
  if (!session.ok()) return session.status();
  FrameworkResult result =
      DriveInteraction(*session.value(), &user, /*max_rounds=*/32);
  if (!result.church_rosser) {
    return Status::FailedPrecondition(
        "specification is not Church-Rosser; revise the rules");
  }
  out << "\n== final target ("
      << (result.found_complete_target ? "complete" : "partial") << ", "
      << result.interaction_rounds << " interaction round(s)) ==\n";
  PrintTarget(result.target, schema, out);
  return Status::OK();
}

// --- relacc serve ----------------------------------------------------------

/// Signal → drain hand-off. The handler only calls RequestDrain (one
/// async-signal-safe write on the server's self-pipe); if the signal
/// lands in the window before the server pointer is published, the
/// pending flag makes CmdServe drain immediately after Start.
std::atomic<serve::Server*> g_serve_server{nullptr};
std::atomic<bool> g_serve_drain_pending{false};

extern "C" void RelaccServeSignalHandler(int) {
  serve::Server* server = g_serve_server.load();
  if (server != nullptr) {
    server->RequestDrain();
  } else {
    g_serve_drain_pending.store(true);
  }
}

/// Installs the drain handler on SIGTERM and SIGINT for the lifetime of
/// the scope, restoring the previous dispositions after — the serve
/// command must not leave handlers pointing at a dead server behind.
class ServeSignalScope {
 public:
  ServeSignalScope() {
    g_serve_drain_pending.store(false);
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = RelaccServeSignalHandler;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, &old_term_);
    sigaction(SIGINT, &action, &old_int_);
    // A client that disconnects mid-response must not kill the daemon:
    // writes to its dead socket should fail with EPIPE, not raise
    // SIGPIPE. The wire layer already sends with MSG_NOSIGNAL; this
    // covers every other fd (port file, stray stdio on a closed pipe).
    struct sigaction ignore;
    std::memset(&ignore, 0, sizeof(ignore));
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    sigaction(SIGPIPE, &ignore, &old_pipe_);
  }
  ~ServeSignalScope() {
    g_serve_server.store(nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGPIPE, &old_pipe_, nullptr);
  }

 private:
  struct sigaction old_term_;
  struct sigaction old_int_;
  struct sigaction old_pipe_;
};

/// `relacc serve <spec.json> [--host H] [--port N] [--replicas N]
/// [--threads N] [--window N] [--queue-depth N] [--deadline-ms N]
/// [--quarantine-after N] [--fault-inject SPEC] [--port-file PATH]
/// [--snapshot FILE [--snapshot-strict]]`: the long-lived daemon of
/// serve/server.h over a pool of AccuracyService replicas built from
/// the spec document and/or a snapshot artifact. Spec + --snapshot
/// together enable graceful degradation: a corrupt or mismatched
/// artifact logs a warning and the daemon cold-builds from the spec
/// instead of refusing to start (--snapshot-strict restores the hard
/// failure). Exit contract: 0 after a clean SIGTERM/SIGINT drain, 2 on
/// usage errors, 1 when the address cannot be bound or the spec cannot
/// be read.
Status CmdServe(const Args& args, std::ostream& out) {
  const std::string host = args.GetString("host", "127.0.0.1");
  Result<int64_t> port = args.GetInt("port", 0);
  Result<int64_t> replicas = args.GetInt("replicas", 1);
  Result<int64_t> threads = args.GetInt("threads", 0);
  Result<int64_t> window = args.GetInt("window", 0);
  Result<int64_t> queue_depth = args.GetInt("queue-depth", 32);
  Result<int64_t> memo_cache = args.GetInt("memo-cache", 0);
  Result<int64_t> deadline_ms = args.GetInt("deadline-ms", 0);
  Result<int64_t> quarantine_after = args.GetInt("quarantine-after", 3);
  std::string fault_spec = args.GetString("fault-inject");
  const bool snapshot_strict = args.Has("snapshot-strict");
  const std::string port_file = args.GetString("port-file");
  const std::string snapshot = args.GetString("snapshot");
  std::optional<SpecDocument> doc;
  if (snapshot.empty() || !args.positionals().empty()) {
    if (!snapshot.empty() && snapshot_strict) {
      return Status::InvalidArgument(
          "--snapshot replaces the <spec.json> argument");
    }
    Result<SpecDocument> loaded = LoadSpec(args);
    if (!loaded.ok()) return loaded.status();
    doc = std::move(loaded).value();
  }
  if (!port.ok()) return port.status();
  if (!replicas.ok()) return replicas.status();
  if (!threads.ok()) return threads.status();
  if (!window.ok()) return window.status();
  if (!queue_depth.ok()) return queue_depth.status();
  if (!memo_cache.ok()) return memo_cache.status();
  if (!deadline_ms.ok()) return deadline_ms.status();
  if (!quarantine_after.ok()) return quarantine_after.status();
  if (port.value() < 0 || port.value() > 65535) {
    return Status::InvalidArgument(
        "--port must be in [0, 65535] (0 = ephemeral)");
  }
  if (replicas.value() < 1 || replicas.value() > 64) {
    return Status::InvalidArgument("--replicas must be in [1, 64]");
  }
  if (threads.value() < 0 || threads.value() > 256) {
    return Status::InvalidArgument(
        "--threads must be between 0 and 256 (0 = hardware concurrency)");
  }
  if (window.value() < 0) {
    return Status::InvalidArgument(
        "--window must be >= 0 (0 = service default)");
  }
  if (queue_depth.value() < 1 || queue_depth.value() > 4096) {
    return Status::InvalidArgument("--queue-depth must be in [1, 4096]");
  }
  if (memo_cache.value() < 0 || memo_cache.value() > (1 << 24)) {
    return Status::InvalidArgument(
        "--memo-cache must be in [0, 16777216] (0 = disabled)");
  }
  if (deadline_ms.value() < 0) {
    return Status::InvalidArgument(
        "--deadline-ms must be >= 0 (0 = no deadline)");
  }
  if (quarantine_after.value() < 1 || quarantine_after.value() > 100) {
    return Status::InvalidArgument("--quarantine-after must be in [1, 100]");
  }
  RELACC_RETURN_NOT_OK(CheckUnread(args));
  if (fault_spec.empty()) {
    // Flag wins over environment; the env var exists so a supervisor
    // (or the chaos CI lane) can inject faults without changing the
    // daemon's command line.
    if (const char* env = std::getenv("RELACC_FAULT_INJECT")) fault_spec = env;
  }

  ServiceOptions service_options;
  service_options.num_threads = static_cast<int>(threads.value());
  if (window.value() > 0) service_options.window = window.value();
  service_options.memo_cache_entries =
      static_cast<std::size_t>(memo_cache.value());
  if (!snapshot.empty()) {
    service_options.snapshot_path = snapshot;
    service_options.snapshot_fallback = doc.has_value() && !snapshot_strict;
  }

  // One service per replica, every one from the same spec/snapshot (a
  // snapshot is mmap-shared, so N replicas cost one set of pages).
  std::vector<std::unique_ptr<AccuracyService>> services;
  std::vector<AccuracyService*> service_ptrs;
  for (int64_t i = 0; i < replicas.value(); ++i) {
    Specification spec;
    if (doc.has_value()) {
      spec = i + 1 < replicas.value() ? doc->spec : std::move(doc->spec);
    }
    Result<std::unique_ptr<AccuracyService>> service =
        AccuracyService::Create(std::move(spec), service_options);
    if (!service.ok()) return service.status();
    if (i == 0 && service.value()->degraded()) {
      out << "warning: snapshot '" << snapshot
          << "' unusable, serving from a cold build instead: "
          << service.value()->degraded_reason() << "\n"
          << std::flush;
    }
    service_ptrs.push_back(service.value().get());
    services.push_back(std::move(service).value());
  }

  serve::ServerOptions server_options;
  server_options.host = host;
  server_options.port = static_cast<int>(port.value());
  server_options.queue_depth = static_cast<int>(queue_depth.value());
  server_options.default_deadline_ms = deadline_ms.value();
  server_options.quarantine_after = static_cast<int>(quarantine_after.value());
  server_options.fault_inject = fault_spec;
  ServeSignalScope signals;
  Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Start(service_ptrs, server_options);
  if (!server.ok()) return server.status();
  g_serve_server.store(server.value().get());
  if (g_serve_drain_pending.load()) server.value()->RequestDrain();

  // Readiness protocol: the port file (then the listening line) appears
  // only once accepts are live, so a supervisor can wait on either.
  if (!port_file.empty()) {
    Status wrote = WriteFile(
        port_file, std::to_string(server.value()->port()) + "\n");
    if (!wrote.ok()) return wrote;
  }
  out << "relacc serve listening on " << host << ":"
      << server.value()->port() << " (" << server.value()->replicas()
      << " replica" << (server.value()->replicas() == 1 ? "" : "s") << ")\n"
      << std::flush;

  Status done = server.value()->Wait();
  const serve::Scheduler::Stats stats = server.value()->scheduler_stats();
  out << "relacc serve drained (interactive=" << stats.executed_interactive
      << " batch=" << stats.executed_batch << " rejected=" << stats.rejected
      << " deadline_exceeded=" << server.value()->deadline_exceeded()
      << " shed=" << server.value()->shed()
      << " quarantines=" << server.value()->pool().total_quarantines()
      << " readmissions=" << server.value()->pool().total_readmissions()
      << ")\n";
  return done;
}

Status CmdDiscover(const Args& args, std::ostream& out) {
  const std::string key = args.GetString("key");
  Result<int64_t> min_support = args.GetInt("min-support", 20);
  const std::string min_conf_text = args.GetString("min-confidence", "0.98");
  Result<int64_t> max_rules = args.GetInt("max-rules", 50);
  Result<SpecDocument> doc = LoadSpec(args);
  if (!doc.ok()) return doc.status();
  if (!min_support.ok() || !max_rules.ok()) {
    return Status::InvalidArgument(
        "--min-support / --max-rules expect integers");
  }
  char* end = nullptr;
  const double min_confidence = std::strtod(min_conf_text.c_str(), &end);
  if (end == nullptr || *end != '\0' || min_confidence < 0.0 ||
      min_confidence > 1.0) {
    return Status::InvalidArgument(
        "--min-confidence expects a number in [0,1]");
  }
  const Specification& spec = doc.value().spec;
  const Schema& schema = spec.ie.schema();
  ResolverConfig resolver;
  RELACC_RETURN_NOT_OK(ParseKeyAttrs(key, schema, &resolver));
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  // Bootstrap loop of ar_miner.h: deduce targets with the current Σ
  // (streamed through one pipeline session, same wiring as CmdPipeline),
  // then mine candidate rules from (instances, deduced targets).
  ResolutionResult resolution = ResolveEntities(spec.ie, resolver);
  // The miner below still needs resolution.entities, so the session gets
  // its own copy.
  std::vector<EntityInstance> clusters = resolution.entities;
  Result<PipelineReport> finished = StreamResolvedEntities(
      spec, std::move(clusters), ServiceOptions{});
  if (!finished.ok()) return finished.status();
  const PipelineReport& report = finished.value();

  std::vector<Tuple> targets(resolution.entities.size(),
                             Tuple(std::vector<Value>(schema.size())));
  for (size_t row = 0; row < report.row_entity.size(); ++row) {
    targets[report.row_entity[row]] = report.targets.tuple(row);
  }
  ArMinerConfig miner;
  miner.min_support = static_cast<int>(min_support.value());
  miner.min_confidence = min_confidence;
  miner.max_rules = static_cast<int>(max_rules.value());
  std::vector<MinedRule> mined =
      MineAccuracyRules(resolution.entities, targets, miner);

  out << "# mined " << mined.size() << " candidate rule(s) from "
      << resolution.entities.size() << " entities\n";
  for (const MinedRule& m : mined) {
    out << "# support=" << m.support << " confidence=" << m.confidence << "\n"
        << FormatRuleDsl(m.rule, schema, doc.value().Masters(),
                         doc.value().entity_name);
  }
  return Status::OK();
}

Status CmdGen(const Args& args, std::ostream& out) {
  const std::string profile = args.GetString("profile", "med");
  Result<int64_t> entities = args.GetInt("entities", 50);
  Result<int64_t> seed = args.GetInt("seed", 42);
  Result<int64_t> index = args.GetInt("entity", 0);
  const bool flat = args.Has("flat");
  const std::string output = args.GetString("out");
  if (!entities.ok() || !seed.ok() || !index.ok()) {
    return Status::InvalidArgument(
        "--entities / --seed / --entity expect integers");
  }
  if (profile != "med" && profile != "cfp") {
    return Status::InvalidArgument("--profile must be med or cfp");
  }
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  ProfileConfig config = profile == "med"
                             ? MedConfig(static_cast<uint64_t>(seed.value()))
                             : CfpConfig(static_cast<uint64_t>(seed.value()));
  config.num_entities = static_cast<int>(entities.value());
  config.master_size =
      std::max(1, static_cast<int>(entities.value() * 8 / 10));
  EntityDataset dataset = GenerateProfile(config);
  if (index.value() < 0 ||
      index.value() >= static_cast<int64_t>(dataset.entities.size())) {
    return Status::OutOfRange("--entity out of range (dataset has " +
                              std::to_string(dataset.entities.size()) +
                              " entities)");
  }

  SpecDocument doc;
  doc.spec = dataset.SpecFor(static_cast<int>(index.value()));
  if (flat) {
    // One flat relation holding every generated entity's tuples, so the
    // document exercises the full ER + pipeline path (`pipeline --key
    // key`) and multi-entity serve workloads instead of a single
    // instance. The profile's `key` attribute identifies each entity,
    // so resolution recovers the generated clusters.
    Relation all(dataset.schema);
    for (const EntityInstance& entity : dataset.entities) {
      for (const Tuple& t : entity.tuples()) all.Add(t);
    }
    doc.spec.ie = std::move(all);
  }
  doc.entity_name = "R";
  for (size_t m = 0; m < doc.spec.masters.size(); ++m) {
    doc.master_names.push_back("m" + std::to_string(m));
  }
  const std::string text = SpecToJson(doc).Dump(2) + "\n";
  if (output.empty()) {
    out << text;
    return Status::OK();
  }
  RELACC_RETURN_NOT_OK(WriteFile(output, text));
  if (flat) {
    out << "wrote " << output << " (flat, " << dataset.entities.size()
        << " entities, " << doc.spec.ie.size() << " tuples, "
        << doc.spec.rules.size() << " rules)\n";
  } else {
    out << "wrote " << output << " (entity " << index.value() << " of "
        << dataset.entities.size() << ", " << doc.spec.ie.size()
        << " tuples, " << doc.spec.rules.size() << " rules)\n";
  }
  return Status::OK();
}

// --- relacc snapshot -------------------------------------------------------

const char* SectionName(snapshot::SectionType type) {
  switch (type) {
    case snapshot::SectionType::kMeta:
      return "meta";
    case snapshot::SectionType::kDict:
      return "dict";
    case snapshot::SectionType::kEntity:
      return "entity";
    case snapshot::SectionType::kMasters:
      return "masters";
    case snapshot::SectionType::kRules:
      return "rules";
    case snapshot::SectionType::kProgram:
      return "program";
    case snapshot::SectionType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

/// `relacc snapshot build <spec.json> --out <file> [--threads N]`:
/// builds the service exactly as `relacc serve <spec.json>` would
/// (columnar storage, the document's chase config), chases the all-null
/// checkpoint once, and serializes the whole thing into one artifact.
Status CmdSnapshotBuild(const Args& args, std::ostream& out) {
  Result<int64_t> threads = args.GetInt("threads", 0);
  const std::string out_path = args.GetString("out");
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0 || threads.value() > 256) {
    return Status::InvalidArgument(
        "--threads must be between 0 and 256 (0 = hardware concurrency)");
  }
  if (out_path.empty()) {
    return Status::InvalidArgument("--out <file> is required");
  }
  if (args.positionals().size() < 2) {
    return Status::InvalidArgument(
        "usage: relacc snapshot build <spec.json> --out <file>");
  }
  Result<SpecDocument> doc = LoadSpecAt(args.positionals()[1]);
  if (!doc.ok()) return doc.status();
  RELACC_RETURN_NOT_OK(CheckUnread(args));

  ServiceOptions service_options;
  service_options.num_threads = static_cast<int>(threads.value());
  service_options.columnar_storage = true;
  service_options.dictionary = doc.value().dict;
  Result<std::unique_ptr<AccuracyService>> service = AccuracyService::Create(
      std::move(doc.value().spec), std::move(service_options));
  if (!service.ok()) return service.status();
  RELACC_RETURN_NOT_OK(service.value()->WriteSnapshot(out_path));

  // Re-open what was just written: one cheap validation pass, and the
  // summary line comes from the artifact itself, not from intent.
  Result<std::unique_ptr<snapshot::SnapshotReader>> reader =
      snapshot::SnapshotReader::Open(out_path);
  if (!reader.ok()) return reader.status();
  const snapshot::SnapshotReader::Info& info = reader.value()->info();
  out << "wrote " << out_path << " (" << info.file_size << " bytes, "
      << info.dict_terms << " terms, " << info.entity_rows
      << " entity tuples, " << info.num_masters << " master(s), "
      << info.program_steps << " ground steps, checkpoint "
      << (info.checkpoint_ok ? "ok" : "failed") << ")\n";
  return Status::OK();
}

/// `relacc snapshot info <file> [--json]`: header + section table of an
/// artifact, without loading any of it into a service.
Status CmdSnapshotInfo(const Args& args, std::ostream& out) {
  const bool as_json = args.Has("json");
  if (args.positionals().size() < 2) {
    return Status::InvalidArgument(
        "usage: relacc snapshot info <file> [--json]");
  }
  RELACC_RETURN_NOT_OK(CheckUnread(args));
  Result<std::unique_ptr<snapshot::SnapshotReader>> reader =
      snapshot::SnapshotReader::Open(args.positionals()[1]);
  if (!reader.ok()) return reader.status();
  const snapshot::SnapshotReader::Info& info = reader.value()->info();

  if (as_json) {
    Json j = Json::Object();
    j.Set("path", Json::Str(args.positionals()[1]));
    j.Set("format_version",
          Json::Int(static_cast<int64_t>(snapshot::kFormatVersion)));
    j.Set("tool_version", Json::Str(info.tool_version));
    j.Set("file_size", Json::Int(static_cast<int64_t>(info.file_size)));
    j.Set("num_attrs", Json::Int(info.num_attrs));
    j.Set("entity_rows", Json::Int(info.entity_rows));
    j.Set("num_masters", Json::Int(info.num_masters));
    j.Set("dict_terms", Json::Int(info.dict_terms));
    j.Set("program_steps", Json::Int(info.program_steps));
    j.Set("checkpoint_ok", Json::Bool(info.checkpoint_ok));
    Json sections = Json::Array();
    for (const snapshot::SectionEntry& s : info.sections) {
      Json row = Json::Object();
      row.Set("section", Json::Str(SectionName(s.type)));
      row.Set("offset", Json::Int(static_cast<int64_t>(s.offset)));
      row.Set("size", Json::Int(static_cast<int64_t>(s.size)));
      sections.Append(std::move(row));
    }
    j.Set("sections", std::move(sections));
    out << j.Dump(2) << "\n";
    return Status::OK();
  }
  out << args.positionals()[1] << ": relacc snapshot v"
      << snapshot::kFormatVersion << " (written by relacc "
      << info.tool_version << ")\n"
      << "  file size:      " << info.file_size << " bytes\n"
      << "  attributes:     " << info.num_attrs << "\n"
      << "  entity tuples:  " << info.entity_rows << "\n"
      << "  masters:        " << info.num_masters << "\n"
      << "  dict terms:     " << info.dict_terms << "\n"
      << "  ground steps:   " << info.program_steps << "\n"
      << "  checkpoint:     " << (info.checkpoint_ok ? "ok" : "failed")
      << "\n"
      << "  sections:\n";
  for (const snapshot::SectionEntry& s : info.sections) {
    out << "    " << SectionName(s.type) << ": offset=" << s.offset
        << " size=" << s.size << "\n";
  }
  return Status::OK();
}

Status CmdSnapshot(const Args& args, std::ostream& out) {
  if (args.positionals().empty()) {
    return Status::InvalidArgument(
        "usage: relacc snapshot build <spec.json> --out <file> | "
        "relacc snapshot info <file>");
  }
  const std::string& sub = args.positionals()[0];
  if (sub == "build") return CmdSnapshotBuild(args, out);
  if (sub == "info") return CmdSnapshotInfo(args, out);
  return Status::InvalidArgument("unknown snapshot subcommand '" + sub +
                                 "' (expected build or info)");
}

/// `relacc lint <spec.json> [--json] [--werror]`: loads the document
/// leniently (parse failures become diagnostics instead of aborting the
/// load), runs the static analyzer, and prints the findings. Its exit
/// contract extends the tool's usual one with code 4: 0 means a clean
/// spec, 1 an unreadable or structurally-broken document (nothing to
/// analyze), 2 a usage error, and 4 that the linter produced findings —
/// errors always fail; warnings only under --werror; notes never do.
/// Returns the exit code directly because 4 is not expressible as a
/// Status, but routes the 1/2 failures through the shared formatting.
int LintExitCode(const Status& status, std::ostream& err) {
  if (!status.message().empty()) {
    err << "error: " << status.ToString() << "\n";
  }
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 2;
    default:
      return 1;
  }
}

int CmdLint(const Args& args, std::ostream& out, std::ostream& err) {
  const bool as_json = args.Has("json");
  const bool werror = args.Has("werror");
  Status unread = CheckUnread(args);
  if (!unread.ok()) return LintExitCode(unread, err);
  if (args.positionals().empty()) {
    return LintExitCode(
        Status::InvalidArgument("expected a <spec.json> argument"), err);
  }
  const std::string& path = args.positionals()[0];
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return LintExitCode(text.status(), err);
  Result<Json> parsed = Json::Parse(text.value());
  if (!parsed.ok()) {
    return LintExitCode(Status::ParseError(parsed.status().message()), err);
  }
  const auto slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  std::vector<ParseIssue> issues;
  Result<SpecDocument> doc =
      SpecFromJsonLenient(parsed.value(), base_dir, &issues);
  if (!doc.ok()) {
    // Structural problems (missing schema, bad tuples) leave nothing to
    // analyze; they stay hard failures like every other command's.
    return LintExitCode(Status::ParseError(doc.status().message()), err);
  }

  DiagnosticSink sink;
  for (const ParseIssue& issue : issues) {
    sink.Add(DiagnosticFromParseIssue(issue));
  }
  for (Diagnostic& d :
       AnalyzeSpecification(doc.value().spec, doc.value().entity_name,
                            doc.value().master_names)) {
    sink.Add(std::move(d));
  }
  sink.Sort();
  const int errors = sink.errors();
  const int warnings = sink.warnings();
  const std::vector<Diagnostic> diagnostics = sink.Take();

  if (as_json) {
    out << DiagnosticsToJson(diagnostics, path).Dump(2) << "\n";
  } else if (diagnostics.empty()) {
    out << path << ": no issues found\n";
  } else {
    out << FormatDiagnostics(diagnostics, path);
  }
  if (errors > 0 || (werror && warnings > 0)) return 4;
  return 0;
}

/// The single exit point: every command failure is a Status routed up
/// here, mapped onto the tool's historical exit codes — 2 for usage
/// errors, 3 for a specification that is not Church-Rosser, 1 for I/O,
/// parse and internal failures.
int ExitCodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 2;
    case StatusCode::kFailedPrecondition:
      return 3;
    default:
      return 1;
  }
}

int FinishCli(const Status& status, std::ostream& err) {
  if (status.ok()) return 0;
  // An empty message means the command already reported the outcome on
  // its own stream (CmdCheck's Church-Rosser verdict goes to `out`);
  // only the exit code is taken from the status then.
  if (!status.message().empty()) {
    err << "error: " << status.ToString() << "\n";
  }
  return ExitCodeOf(status);
}

}  // namespace

std::string CliUsage() {
  return
      "relacc — determine the relative accuracy of attributes "
      "(Cao/Fan/Yu, SIGMOD'13)\n"
      "\n"
      "usage: relacc <command> <spec.json> [flags]\n"
      "       relacc --version\n"
      "\n"
      "commands:\n"
      "  check     Church-Rosser check + deduced target (IsCR)\n"
      "            [--json] [--quiet]\n"
      "  explain   proof tree for deduced target attributes\n"
      "            [--attr <name>] [--depth N]\n"
      "  topk      top-k candidate targets for an incomplete target\n"
      "            [--k N] [--algo topkct|heuristic|rankjoin|brute]\n"
      "            [--threads N] [--check-strategy trail|copy] [--json]\n"
      "            [--snapshot FILE]\n"
      "  fmt       normalize a spec document / its rule program\n"
      "            [--rules-only]\n"
      "  lint      static analysis of the spec (schema, dead rules,\n"
      "            duplicates, Church-Rosser conflict pairs)\n"
      "            [--json] [--werror]\n"
      "  pipeline  flat relation -> entity resolution -> per-entity targets\n"
      "            --key <attr[,attr...]> [--threads N] [--window N]\n"
      "            [--ground-shards N] [--completion best|heuristic|none]\n"
      "            [--storage row|columnar] [--snapshot FILE] [--json]\n"
      "  interactive  the Fig. 3 user loop on one entity instance\n"
      "            [--k N]\n"
      "  serve     long-lived daemon over a pool of AccuracyService\n"
      "            replicas (frame protocol of serve/wire.h; per-request\n"
      "            deadlines, quarantine + re-admission, drains cleanly\n"
      "            on SIGTERM)\n"
      "            [--host H] [--port N] [--replicas N] [--threads N]\n"
      "            [--window N] [--queue-depth N] [--deadline-ms N]\n"
      "            [--quarantine-after N] [--fault-inject SPEC]\n"
      "            [--port-file PATH] [--memo-cache N]\n"
      "            [--snapshot FILE [--snapshot-strict]]\n"
      "  snapshot  build / inspect mmap-able service artifacts for O(1)\n"
      "            start (snapshot build <spec.json> --out FILE;\n"
      "            snapshot info FILE [--json]); load one with\n"
      "            --snapshot on topk, pipeline and serve\n"
      "  discover  mine candidate form-(1) rules from a flat relation\n"
      "            --key <attr[,attr...]> [--min-support N]\n"
      "            [--min-confidence X] [--max-rules N]\n"
      "  gen       emit a sample spec document from the built-in generators\n"
      "            [--profile med|cfp] [--entities N] [--seed N]\n"
      "            [--entity I] [--flat] [--out FILE]\n"
      "  version   print the library version (also: relacc --version)\n"
      "  help      this text\n"
      "\n"
      "The spec document format is described in io/spec_io.h; rules use the\n"
      "DSL of dsl/parser.h (an ASCII form of the paper's Table 3 notation).\n"
      "All commands exit 0 on success, 2 on usage errors, 3 when the\n"
      "specification is not Church-Rosser, and 1 on I/O or parse failures.\n"
      "`lint` additionally exits 4 when it has findings: errors always\n"
      "fail; warnings fail only under --werror; notes never do.\n";
}

int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err) {
  return RunCliCommand(args, out, err, std::cin);
}

int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err,
                  std::istream& in) {
  const std::string& cmd = args.command();
  if (cmd == "check") return FinishCli(CmdCheck(args, out), err);
  if (cmd == "explain") return FinishCli(CmdExplain(args, out), err);
  if (cmd == "topk") return FinishCli(CmdTopK(args, out), err);
  if (cmd == "fmt") return FinishCli(CmdFmt(args, out), err);
  // lint owns its exit codes (4 = findings, which no Status expresses).
  if (cmd == "lint") return CmdLint(args, out, err);
  if (cmd == "pipeline") return FinishCli(CmdPipeline(args, out), err);
  if (cmd == "interactive") {
    return FinishCli(CmdInteractive(args, out, in), err);
  }
  if (cmd == "serve") return FinishCli(CmdServe(args, out), err);
  if (cmd == "snapshot") return FinishCli(CmdSnapshot(args, out), err);
  if (cmd == "discover") return FinishCli(CmdDiscover(args, out), err);
  if (cmd == "gen") return FinishCli(CmdGen(args, out), err);
  if (cmd == "version" || cmd == "--version") {
    out << "relacc " << kRelaccVersion << "\n";
    return 0;
  }
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    out << CliUsage();
    return 0;
  }
  err << "error: unknown command '" << cmd << "'\n\n" << CliUsage();
  return 2;
}

int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  Result<Args> args = Args::Parse(argv);
  if (!args.ok()) {
    err << "error: " << args.status().ToString() << "\n\n" << CliUsage();
    return 2;
  }
  return RunCliCommand(args.value(), out, err);
}

}  // namespace relacc
