#ifndef RELACC_CLI_CONSOLE_USER_H_
#define RELACC_CLI_CONSOLE_USER_H_

#include <iosfwd>
#include <string>

#include "core/schema.h"
#include "framework/framework.h"

namespace relacc {

/// A UserOracle over text streams — the human side of the Fig. 3 loop for
/// the `relacc interactive` command (and for tests, which script the input
/// stream). Each round prints the deduced target and the top-k candidates,
/// then reads one command:
///
///   accept <n>          take candidate #n (1-based) as the target
///   set <attr> <value>  reveal the accurate value of one attribute
///                       (values parse per the schema; quotes optional)
///   quit                stop; the framework returns the partial target
///
/// Unrecognized input re-prompts (EOF behaves like quit).
class ConsoleUser : public UserOracle {
 public:
  ConsoleUser(const Schema& schema, std::istream& in, std::ostream& out);

  Response Inspect(const Tuple& deduced_te,
                   const std::vector<Tuple>& candidates) override;

  int rounds() const { return rounds_; }

 private:
  void PrintState(const Tuple& deduced_te,
                  const std::vector<Tuple>& candidates);

  const Schema& schema_;
  std::istream& in_;
  std::ostream& out_;
  int rounds_ = 0;
};

}  // namespace relacc

#endif  // RELACC_CLI_CONSOLE_USER_H_
