#ifndef RELACC_CLI_COMMANDS_H_
#define RELACC_CLI_COMMANDS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/args.h"

namespace relacc {

/// Implementation of the `relacc` command-line tool, factored as a library
/// so tests drive commands through plain function calls. Every command
/// reads a JSON specification document (io/spec_io.h), writes its result
/// to `out`, and reports failures as a Status routed to one exit point
/// that prints the message to `err` and maps the code onto the process
/// exit code (0 ok, 2 usage, 3 not-Church-Rosser, 1 I/O or parse).
/// Commands run on relacc::AccuracyService (api/accuracy_service.h).
///
///   relacc --version | relacc version
///       Print the library version.
///   relacc check <spec.json> [--json] [--quiet]
///       IsCR: Church-Rosser verdict + deduced target.
///   relacc explain <spec.json> --attr <name> [--depth N]
///       Proof tree for the deduced te[attr].
///   relacc topk <spec.json> [--k N] [--algo topkct|heuristic|rankjoin]
///       [--threads N] [--check-strategy trail|copy] [--json]
///       Top-k candidate targets for an incomplete te.
///   relacc fmt <spec.json> [--rules-only]
///       Normalized spec (canonical rule DSL) back to stdout.
///   relacc pipeline <spec.json> --key <attr[,attr...]> [--threads N]
///       [--completion best|heuristic|none] [--storage row|columnar] [--json]
///       Treats the entity relation as a flat database: entity resolution
///       over --key, then the whole-database accuracy pipeline.
///   relacc interactive <spec.json> [--k N]
///       The Fig. 3 user loop over a console (cli/console_user.h).
///   relacc discover <spec.json> --key <...> [--min-support N]
///       [--min-confidence X] [--max-rules N]
///       Bootstrap rule mining (discovery/ar_miner.h): deduce targets with
///       the current rules, mine candidate ARs, print them as DSL.
///   relacc help
int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err);

/// Overload with an explicit input stream (`relacc interactive` reads user
/// commands from it; tests script it).
int RunCliCommand(const Args& args, std::ostream& out, std::ostream& err,
                  std::istream& in);

/// Convenience for main(): parse argv then dispatch.
int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err);

/// The help text (also printed by `relacc help`).
std::string CliUsage();

}  // namespace relacc

#endif  // RELACC_CLI_COMMANDS_H_
