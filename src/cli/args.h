#ifndef RELACC_CLI_ARGS_H_
#define RELACC_CLI_ARGS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace relacc {

/// Minimal command-line parser for the relacc tool. Grammar:
///   relacc <command> [positionals...] [--flag] [--key=value] [--key value]
/// Flags may appear anywhere after the command. `--` ends flag parsing.
class Args {
 public:
  /// Parses argv[1..). argv[0] (the program name) must be excluded.
  static Result<Args> Parse(const std::vector<std::string>& argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// True iff --name was given (with or without a value).
  bool Has(const std::string& name) const;

  /// Value of --name; `fallback` when absent. A bare `--name` yields "".
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Integer value of --name; error if present but non-numeric.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Flags consumed by none of the Get*/Has calls above — used to reject
  /// typos (`--kk 5`) with a helpful message. Tracking is by lookup, so
  /// call after the command has read everything it supports.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::unordered_map<std::string, std::string> flags_;
  mutable std::unordered_map<std::string, bool> read_;
};

}  // namespace relacc

#endif  // RELACC_CLI_ARGS_H_
