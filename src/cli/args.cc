#include "cli/args.h"

#include <cstdlib>

namespace relacc {

Result<Args> Args::Parse(const std::vector<std::string>& argv) {
  Args args;
  if (argv.empty()) {
    return Status::InvalidArgument("no command given; try 'relacc help'");
  }
  args.command_ = argv[0];
  bool flags_done = false;
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (flags_done || a.empty() || a[0] != '-' || a == "-") {
      args.positionals_.push_back(a);
      continue;
    }
    if (a == "--") {
      flags_done = true;
      continue;
    }
    if (a.size() < 3 || a[1] != '-') {
      return Status::InvalidArgument("unknown short option '" + a +
                                     "' (only --long flags are supported)");
    }
    std::string body = a.substr(2);
    std::string key;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      key = body;
      // `--key value` form: consume the next token iff it is not a flag.
      if (i + 1 < argv.size() &&
          (argv[i + 1].empty() || argv[i + 1][0] != '-')) {
        value = argv[++i];
      }
    }
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name in '" + a + "'");
    }
    args.flags_[key] = value;
  }
  return args;
}

bool Args::Has(const std::string& name) const {
  read_[name] = true;
  return flags_.count(name) > 0;
}

std::string Args::GetString(const std::string& name,
                            const std::string& fallback) const {
  read_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<int64_t> Args::GetInt(const std::string& name, int64_t fallback) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return v;
}

std::vector<std::string> Args::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (read_.find(key) == read_.end()) unread.push_back(key);
  }
  return unread;
}

}  // namespace relacc
