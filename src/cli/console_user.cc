#include "cli/console_user.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace relacc {

ConsoleUser::ConsoleUser(const Schema& schema, std::istream& in,
                         std::ostream& out)
    : schema_(schema), in_(in), out_(out) {}

void ConsoleUser::PrintState(const Tuple& deduced_te,
                             const std::vector<Tuple>& candidates) {
  out_ << "\n-- round " << (rounds_ + 1) << " --\n";
  out_ << "deduced target so far:\n";
  for (AttrId a = 0; a < schema_.size(); ++a) {
    out_ << "  " << schema_.name(a) << " = "
         << (deduced_te.at(a).is_null() ? std::string("?")
                                        : deduced_te.at(a).ToString())
         << "\n";
  }
  if (candidates.empty()) {
    out_ << "no candidate targets could be computed.\n";
  } else {
    out_ << "candidates:\n";
    for (size_t i = 0; i < candidates.size(); ++i) {
      out_ << "  #" << (i + 1) << ":";
      for (AttrId a = 0; a < schema_.size(); ++a) {
        if (!deduced_te.at(a).is_null()) continue;  // only show open attrs
        out_ << " " << schema_.name(a) << "="
             << candidates[i].at(a).ToString();
      }
      out_ << "\n";
    }
  }
  out_ << "command (accept <n> | set <attr> <value> | quit): " << std::flush;
}

UserOracle::Response ConsoleUser::Inspect(
    const Tuple& deduced_te, const std::vector<Tuple>& candidates) {
  Response response;
  PrintState(deduced_te, candidates);
  std::string line;
  while (std::getline(in_, line)) {
    std::istringstream tokens(line);
    std::string verb;
    tokens >> verb;
    if (verb.empty()) {
      out_ << "> " << std::flush;
      continue;
    }
    if (verb == "quit" || verb == "q") {
      ++rounds_;
      return response;  // empty response: framework stops
    }
    if (verb == "accept" || verb == "a") {
      int n = 0;
      if (tokens >> n && n >= 1 && n <= static_cast<int>(candidates.size())) {
        ++rounds_;
        response.accepted_candidate = n - 1;
        return response;
      }
      out_ << "no such candidate; try again: " << std::flush;
      continue;
    }
    if (verb == "set" || verb == "s") {
      std::string attr_name;
      tokens >> attr_name;
      std::string rest;
      std::getline(tokens, rest);
      std::string value_text(Trim(rest));
      // Strip optional surrounding quotes.
      if (value_text.size() >= 2 && value_text.front() == '"' &&
          value_text.back() == '"') {
        value_text = value_text.substr(1, value_text.size() - 2);
      }
      std::optional<AttrId> attr = schema_.IndexOf(attr_name);
      if (!attr) {
        out_ << "unknown attribute '" << attr_name << "'; try again: "
             << std::flush;
        continue;
      }
      Result<Value> value = Value::Parse(schema_.type(*attr), value_text);
      if (!value.ok() || value.value().is_null()) {
        out_ << "cannot parse '" << value_text << "' as "
             << ValueTypeName(schema_.type(*attr)) << "; try again: "
             << std::flush;
        continue;
      }
      ++rounds_;
      response.revision = {*attr, value.value()};
      return response;
    }
    out_ << "unknown command '" << verb << "'; try again: " << std::flush;
  }
  ++rounds_;
  return response;  // EOF: behave like quit
}

}  // namespace relacc
