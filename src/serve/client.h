#ifndef RELACC_SERVE_CLIENT_H_
#define RELACC_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/json.h"
#include "util/status.h"

namespace relacc {
namespace serve {

/// A blocking client for the `relacc serve` wire protocol: one request in
/// flight at a time, so the single response frame per request always
/// matches the call. Used by the load generator, the serve tests and the
/// serve-smoke CI lane; not thread-safe (give each client thread its own
/// connection — that is also what makes it a distinct scheduler tenant).
class ServeClient {
 public:
  /// Transport timeouts, all in milliseconds, 0 = unbounded (the
  /// pre-PR-10 behavior). A tripped recv/send timeout surfaces from
  /// Call as kDeadlineExceeded — same code the server uses for a
  /// request it cancelled, so a caller's failover loop handles "server
  /// too slow" and "network too slow" identically. After a recv
  /// timeout the connection is desynchronized (the response may still
  /// arrive later); reconnect rather than reuse it.
  struct ClientOptions {
    int connect_timeout_ms = 0;
    int recv_timeout_ms = 0;
    int send_timeout_ms = 0;
  };

  static Result<std::unique_ptr<ServeClient>> Connect(const std::string& host,
                                                      int port);
  static Result<std::unique_ptr<ServeClient>> Connect(
      const std::string& host, int port, const ClientOptions& options);

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// One round trip: sends {id, method, params}, reads the response
  /// frame, and returns its `result`. A server-side error frame comes
  /// back as the equivalent Status (code restored via
  /// StatusCodeFromWire); transport and protocol failures are
  /// kIoError/kParseError.
  Result<Json> Call(const std::string& method, Json params);

  /// The connection's file descriptor (tests shut it down mid-call to
  /// provoke truncated-frame handling).
  int fd() const { return fd_; }

  /// The backpressure hint of the most recent Call that failed with
  /// kResourceExhausted (the server's error.retry_after_ms): how many
  /// milliseconds to wait before retrying. -1 when the last Call
  /// carried no hint (success, other error, or an old server).
  int64_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_;
  int64_t next_id_ = 1;
  int64_t last_retry_after_ms_ = -1;
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_CLIENT_H_
