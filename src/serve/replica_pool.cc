#include "serve/replica_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/accuracy_service.h"

namespace relacc {
namespace serve {

namespace {

/// Tenant id of health-probe jobs. Client tenants are positive (the
/// server allocates from 1), so the prober can never collide with one.
constexpr int64_t kProbeTenant = -1;

}  // namespace

ReplicaPool::ReplicaPool(ReplicaPoolOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ReplicaPool>> ReplicaPool::Create(
    std::vector<AccuracyService*> services, ReplicaPoolOptions options) {
  if (services.empty()) {
    return Status::InvalidArgument("replica pool: no services");
  }
  for (const AccuracyService* service : services) {
    if (service == nullptr) {
      return Status::InvalidArgument("replica pool: null service");
    }
  }
  if (options.quarantine_after < 1) {
    return Status::InvalidArgument(
        "replica pool: quarantine_after must be >= 1");
  }
  auto pool = std::unique_ptr<ReplicaPool>(new ReplicaPool(std::move(options)));
  pool->replicas_.reserve(services.size());
  for (std::size_t i = 0; i < services.size(); ++i) {
    auto replica = std::make_unique<Replica>();
    replica->service = services[i];
    Scheduler::Options sched;
    sched.queue_depth = pool->options_.queue_depth;
    const int index = static_cast<int>(i);
    if (pool->options_.fault != nullptr) {
      sched.pre_job = [fault = pool->options_.fault, index] {
        fault->OnExecutorJob(index);
      };
    }
    sched.on_deadline = [p = pool.get(), index](bool /*was_running*/) {
      p->OnDeadlineExpired(index);
    };
    sched.on_job_ok = [p = pool.get(), index] { p->OnJobOk(index); };
    replica->scheduler = std::make_unique<Scheduler>(std::move(sched));
    pool->replicas_.push_back(std::move(replica));
  }
  pool->probe_thread_ = std::thread([p = pool.get()] { p->ProbeLoop(); });
  return pool;
}

ReplicaPool::~ReplicaPool() { Drain(); }

int ReplicaPool::RouteNew() const {
  int best = -1;
  int64_t best_load = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i]->healthy.load()) continue;
    const int64_t load = replicas_[i]->scheduler->load();
    if (best < 0 || load < best_load) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  return best;
}

int64_t ReplicaPool::quarantined_count() const {
  int64_t n = 0;
  for (const auto& replica : replicas_) {
    if (!replica->healthy.load()) ++n;
  }
  return n;
}

void ReplicaPool::RemoveTenant(int64_t tenant) {
  for (const auto& replica : replicas_) {
    replica->scheduler->RemoveTenant(tenant);
  }
}

void ReplicaPool::Drain() {
  draining_.store(true);
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  // A wedged executor cannot drain; release every injected wedge first
  // so a chaos run still shuts down cleanly (the chaos-serve CI lane
  // asserts SIGTERM -> exit 0).
  if (options_.fault != nullptr) options_.fault->ReleaseAll();
  for (const auto& replica : replicas_) {
    replica->scheduler->Drain();
  }
}

bool ReplicaPool::draining() const { return draining_.load(); }

std::vector<ReplicaPool::ReplicaStats> ReplicaPool::replica_stats() const {
  std::vector<ReplicaStats> out;
  out.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    ReplicaStats stats;
    stats.healthy = replica->healthy.load();
    stats.load = replica->scheduler->load();
    stats.timeouts = replica->timeouts.load();
    stats.quarantines = replica->quarantines.load();
    stats.readmissions = replica->readmissions.load();
    stats.scheduler = replica->scheduler->stats();
    out.push_back(std::move(stats));
  }
  return out;
}

Scheduler::Stats ReplicaPool::aggregate_stats() const {
  Scheduler::Stats total;
  for (const auto& replica : replicas_) {
    const Scheduler::Stats s = replica->scheduler->stats();
    total.executed_interactive += s.executed_interactive;
    total.executed_batch += s.executed_batch;
    total.rejected += s.rejected;
    total.cancelled_queued += s.cancelled_queued;
    total.expired_running += s.expired_running;
    total.p50_interactive_ms =
        std::max(total.p50_interactive_ms, s.p50_interactive_ms);
    total.p99_interactive_ms =
        std::max(total.p99_interactive_ms, s.p99_interactive_ms);
    total.p50_batch_ms = std::max(total.p50_batch_ms, s.p50_batch_ms);
    total.p99_batch_ms = std::max(total.p99_batch_ms, s.p99_batch_ms);
  }
  return total;
}

int64_t ReplicaPool::total_timeouts() const {
  int64_t n = 0;
  for (const auto& replica : replicas_) n += replica->timeouts.load();
  return n;
}

int64_t ReplicaPool::total_quarantines() const {
  int64_t n = 0;
  for (const auto& replica : replicas_) n += replica->quarantines.load();
  return n;
}

int64_t ReplicaPool::total_readmissions() const {
  int64_t n = 0;
  for (const auto& replica : replicas_) n += replica->readmissions.load();
  return n;
}

void ReplicaPool::OnDeadlineExpired(int i) {
  Replica& replica = *replicas_[static_cast<std::size_t>(i)];
  replica.timeouts.fetch_add(1);
  const int consecutive = replica.consecutive_expiries.fetch_add(1) + 1;
  if (consecutive >= options_.quarantine_after &&
      replica.healthy.exchange(false)) {
    replica.quarantines.fetch_add(1);
  }
}

void ReplicaPool::OnJobOk(int i) {
  Replica& replica = *replicas_[static_cast<std::size_t>(i)];
  replica.consecutive_expiries.store(0);
  // A job that made it to completion within its deadline is the health
  // proof itself — whether it was the prober's deduce or a pinned
  // session's own request.
  if (!replica.healthy.exchange(true)) {
    replica.readmissions.fetch_add(1);
  }
}

void ReplicaPool::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  for (;;) {
    probe_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.probe_interval_ms),
        [this] { return probe_stop_; });
    if (probe_stop_) return;
    lock.unlock();
    for (const auto& replica : replicas_) {
      if (replica->healthy.load()) continue;
      if (replica->probe_in_flight.exchange(true)) continue;
      Replica* r = replica.get();
      Scheduler::JobControl control;
      control.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(options_.probe_deadline_ms);
      control.on_deadline = [r] { r->probe_in_flight.store(false); };
      const Status queued = r->scheduler->Enqueue(
          kProbeTenant, JobClass::kInteractive,
          [r] {
            // Ping-class work: a spec-only deduce touches the chase and
            // the dictionary but no client state. The result is
            // irrelevant — completing before the probe deadline is what
            // re-admits (OnJobOk).
            (void)r->service->DeduceEntity();
            r->probe_in_flight.store(false);
          },
          control);
      // Queue full (stacked expired probes) or draining: try again next
      // interval.
      if (!queued.ok()) r->probe_in_flight.store(false);
    }
    lock.lock();
  }
}

}  // namespace serve
}  // namespace relacc
