#ifndef RELACC_SERVE_FAULT_INJECTION_H_
#define RELACC_SERVE_FAULT_INJECTION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace relacc {
namespace serve {

/// Deterministic fault injection for the serve replica pool: every
/// failover path — slow replicas, wedged executors, failing requests —
/// must be exercisable in CI, not just in theory. An injector is built
/// from a compact spec string (the `--fault-inject` flag or the
/// RELACC_FAULT_INJECT environment variable) of ';'-separated items:
///
///   delay:<replica|*>:<ms>          fixed pause before every executor
///                                   job on the replica
///   jitter:<replica|*>:<max_ms>:<seed>
///                                   seeded uniform pause in [0, max_ms]
///                                   before every executor job
///   wedge:<replica>:<after_n>       after `after_n` jobs have started on
///                                   the replica, its executor blocks
///                                   (simulating a hung replica) until
///                                   ReleaseAll()
///   fail:<replica>:<every_n>        every `every_n`-th request routed to
///                                   the replica fails with an injected
///                                   internal error before touching the
///                                   service
///
/// e.g. "jitter:*:5:42;wedge:1:3" adds up to 5 ms of seeded jitter to
/// every job and wedges replica 1 after its third job.
///
/// Delay/jitter/wedge hook into the scheduler executor (Scheduler::
/// Options::pre_job), so they also affect health probes — a wedged
/// replica genuinely cannot answer its probe. `fail` hooks into the
/// server's request routing. ReleaseAll() unblocks every wedge and
/// disarms future ones; the server calls it at the start of a drain so a
/// wedged run still shuts down cleanly on SIGTERM (the chaos-serve CI
/// lane asserts exit 0).
///
/// Instance-based (no globals): the pool owns one injector; tests build
/// their own. All entry points are thread-safe.
class FaultInjector {
 public:
  struct Stats {
    int64_t delays = 0;    ///< delay/jitter pauses applied
    int64_t wedges = 0;    ///< jobs that hit a wedge
    int64_t failures = 0;  ///< requests failed by `fail` rules
  };

  /// Parses a spec string; an empty spec yields a null injector (no
  /// faults, zero overhead). kInvalidArgument on a malformed item.
  static Result<std::unique_ptr<FaultInjector>> Parse(const std::string& spec);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Executor hook, called before each scheduler job of `replica`:
  /// applies delays and jitter, then blocks while a wedge rule holds the
  /// replica. Called from the replica's executor thread.
  void OnExecutorJob(int replica);

  /// Request hook: true when a `fail` rule says this routed request
  /// should fail (the server then answers with an injected internal
  /// error instead of enqueueing).
  bool ShouldFailRequest(int replica);

  /// Unblocks every wedged executor and disarms wedge rules; idempotent.
  void ReleaseAll();

  Stats stats() const;

 private:
  struct Rule {
    enum class Kind { kDelay, kJitter, kWedge, kFail };
    Kind kind = Kind::kDelay;
    int replica = -1;  ///< -1 matches every replica
    int64_t arg = 0;   ///< ms / max_ms / after_n / every_n
    uint64_t seed = 0;
  };

  FaultInjector() = default;

  mutable std::mutex mu_;
  std::condition_variable release_cv_;
  bool released_ = false;
  std::vector<Rule> rules_;
  std::vector<std::mt19937_64> jitter_rngs_;  ///< one per rule (kJitter only)
  std::vector<int64_t> jobs_started_;         ///< per replica, grown on demand
  std::vector<int64_t> requests_routed_;
  Stats stats_;
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_FAULT_INJECTION_H_
