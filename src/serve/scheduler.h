#ifndef RELACC_SERVE_SCHEDULER_H_
#define RELACC_SERVE_SCHEDULER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "util/status.h"

namespace relacc {
namespace serve {

/// How the scheduler classifies a job. The daemon multiplexes every
/// client onto ONE AccuracyService replica per scheduler, and the
/// service is not internally synchronized — so all service work funnels
/// through the scheduler's single executor thread, and the service's
/// thread budget parallelizes *inside* each job. Arbitration is
/// therefore about which tenant's job the executor runs next:
///
///   * kInteractive — latency-sensitive, bounded work: an interaction
///     round, a top-k call, pipeline control ops. Strict priority over
///     batch work; round-robin across tenants within the class.
///   * kBatch — throughput work chopped into window-sized quanta: one
///     pipeline window per job, with multi-window submissions re-queued
///     as continuations (RequeueFront keeps a tenant's batch stream
///     FIFO). Round-robin across tenants, so two streaming clients
///     interleave window for window.
///
/// An interactive request thus waits for at most the quantum in flight —
/// one window — no matter how large a competing batch job is. This
/// generalizes the PR 5 completion-driver hand-off queue: instead of one
/// driver thread per PipelineSession, the daemon has one executor
/// arbitrating all sessions (sessions run with inline windows; see
/// PipelineSessionOptions::inline_windows).
enum class JobClass { kInteractive, kBatch };

/// Per-tenant bounded queues + single executor thread + a deadline
/// watchdog. Admission control: a tenant may have at most `queue_depth`
/// jobs pending across both classes; Enqueue beyond that is rejected
/// with kResourceExhausted (the server surfaces it as a
/// "resource-exhausted" wire error, not by blocking the connection's
/// reader).
///
/// Deadlines: a job may carry one (JobControl::deadline). The watchdog
/// thread cancels queued jobs whose deadline passes before they run —
/// they are removed and never execute — and marks the running job
/// expired when its deadline passes mid-flight (the executor cannot
/// preempt it, but the job's `on_deadline` fires immediately, so the
/// server can answer the client without waiting for a wedged or slow
/// replica). The replica pool's quarantine policy listens on the
/// Options hooks.
class Scheduler {
 public:
  struct Options {
    /// Max pending jobs per tenant (continuations are exempt: a
    /// multi-window batch job occupies one slot for its whole life).
    int queue_depth = 32;

    /// Runs on the executor thread immediately before every job — the
    /// fault-injection hook (delays and wedges happen here, so they
    /// stall the replica exactly like a genuinely slow service would).
    std::function<void()> pre_job;

    /// A job's deadline expired: `was_running` distinguishes a running
    /// job that overran (the executor is stuck with it) from a queued
    /// job that was cancelled before it started (backlog, not
    /// sickness). Called with the scheduler lock released; the replica
    /// pool counts consecutive expiries here to quarantine a replica.
    std::function<void(bool was_running)> on_deadline;

    /// A job completed before its deadline (or had none). The pool
    /// resets its consecutive-expiry count here — and re-admits a
    /// quarantined replica whose health probe made it this far.
    std::function<void()> on_job_ok;
  };

  /// Per-job deadline contract of Enqueue/RequeueFront. `on_deadline`
  /// fires (from the watchdog thread, at most once per job) when the
  /// deadline passes with the job still queued or running; the server
  /// uses it to send kDeadlineExceeded while a response-once guard keeps
  /// the late real result from going out twice.
  struct JobControl {
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();  ///< max() = none
    std::function<void()> on_deadline;
  };

  struct Stats {
    int64_t executed_interactive = 0;
    int64_t executed_batch = 0;
    int64_t rejected = 0;  ///< admission-control rejections
    /// Deadline accounting: queued jobs cancelled before running, and
    /// running jobs that overran (they still finish; the expiry fired
    /// their on_deadline early).
    int64_t cancelled_queued = 0;
    int64_t expired_running = 0;
    /// Executor latency (enqueue → job completion, queue wait included)
    /// percentiles per class, in milliseconds. Approximate: read off a
    /// log2-bucket histogram, so a value is the upper bound of the
    /// bucket its percentile falls in; 0 when the class has no samples
    /// yet (or every sample finished within a millisecond).
    double p50_interactive_ms = 0.0;
    double p99_interactive_ms = 0.0;
    double p50_batch_ms = 0.0;
    double p99_batch_ms = 0.0;
  };

  Scheduler();  ///< default Options
  explicit Scheduler(Options options);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Stops abruptly: pending jobs are discarded.
  ~Scheduler();

  /// Queues `job` for `tenant`. kResourceExhausted when the tenant's
  /// queues are full; kFailedPrecondition once draining/stopped. On a
  /// resource-exhausted rejection, a non-null `retry_after_ms` receives
  /// a backpressure hint: roughly how long the tenant's pending backlog
  /// needs to drain (pending jobs × observed mean job time), i.e. when a
  /// retry has a fair chance of being admitted. Untouched on success.
  Status Enqueue(int64_t tenant, JobClass cls, std::function<void()> job,
                 int64_t* retry_after_ms = nullptr);
  Status Enqueue(int64_t tenant, JobClass cls, std::function<void()> job,
                 JobControl control, int64_t* retry_after_ms = nullptr);

  /// Re-queues a continuation at the FRONT of the tenant's queue for
  /// `cls`: exempt from admission control, and guaranteed to run before
  /// anything else the tenant has pending in that class — a multi-window
  /// batch submission stays one logical FIFO job even though each window
  /// is its own quantum. Only meaningful from inside a running job of
  /// the same tenant. Accepted even while draining (drain owes
  /// continuations their completion: that is the "flush in-flight
  /// windows" half of graceful shutdown). Dropped when the tenant was
  /// removed while this job ran (the tombstone in RemoveTenant) — a
  /// vanished client's continuation must not resurrect its state.
  void RequeueFront(int64_t tenant, JobClass cls, std::function<void()> job);
  void RequeueFront(int64_t tenant, JobClass cls, std::function<void()> job,
                    JobControl control);

  /// Discards every job `tenant` has pending (a vanished client's work
  /// is unobservable) and reaps the tenant's queue state. Its running
  /// job, if any, finishes normally — but a tombstone makes that job's
  /// RequeueFront a no-op, so nothing of the tenant survives the job.
  void RemoveTenant(int64_t tenant);

  /// Graceful shutdown: rejects further Enqueue calls, runs everything
  /// already queued (including continuations those jobs spawn) to
  /// completion, then stops the executor and the watchdog. Idempotent;
  /// blocks until both threads have exited.
  void Drain();

  /// True once Drain() has begun (jobs observing this can cut work
  /// short; none are required to).
  bool draining() const;

  /// Queued jobs plus the running one, across all tenants: the load
  /// metric the replica pool's least-loaded routing reads. A wedged
  /// replica's stuck job and the backlog behind it show up here, so
  /// routing steers away from it even before quarantine.
  int64_t load() const;

  /// Tenants with queue state right now. Bounded by the live-connection
  /// count: PopNext reaps entries that empty out and RemoveTenant reaps
  /// the rest (tests pin this — tenant state must not leak across
  /// vanished connections).
  int64_t tenant_count() const;

  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued job with its admission timestamp, so completion can
  /// attribute the full enqueue-to-done latency (queue wait included),
  /// plus its deadline contract.
  struct QueuedJob {
    std::function<void()> fn;
    Clock::time_point enqueued;
    Clock::time_point deadline = Clock::time_point::max();
    std::function<void()> on_deadline;
  };

  struct TenantQueues {
    std::deque<QueuedJob> interactive;
    std::deque<QueuedJob> batch;
    bool empty() const { return interactive.empty() && batch.empty(); }
    int64_t size() const {
      return static_cast<int64_t>(interactive.size() + batch.size());
    }
  };

  /// Log2-bucket latency histogram: bucket i counts samples whose
  /// millisecond latency has bit width i (so bucket 0 is sub-ms, bucket
  /// 1 is 1 ms, bucket 2 is 2–3 ms, ...). Constant space, O(1) record,
  /// percentile read-off in one pass.
  struct LatencyHistogram {
    std::array<int64_t, 32> buckets{};
    int64_t count = 0;
    void Record(int64_t ms);
    /// The upper bound (in ms) of the bucket holding percentile `p`
    /// (0 < p <= 1); 0.0 with no samples.
    double PercentileMs(double p) const;
  };

  void ExecutorLoop();
  void WatchdogLoop();

  /// Pops the next job under `mu_` honoring class priority and
  /// round-robin; false when nothing is queued. Reaps a tenant entry
  /// that the pop emptied. `tenant` receives the popped job's owner
  /// (the executor records it for RemoveTenant's tombstone check).
  bool PopNext(QueuedJob* job, JobClass* cls, int64_t* tenant);

  /// Appends `tenant` to the ready rotation of `cls` unless present.
  void MarkReady(int64_t tenant, JobClass cls);

  /// Under `mu_`: earliest deadline among queued jobs and the running
  /// one (max() when nothing has a deadline).
  Clock::time_point EarliestDeadline() const;

  /// Under `mu_`: removes queued jobs whose deadline passed and marks an
  /// overrunning running job expired; the fired callbacks are collected
  /// for the caller to invoke with the lock released.
  void CollectExpired(Clock::time_point now,
                      std::vector<std::function<void()>>* fired);

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< executor: work arrived / shutdown
  std::condition_variable deadline_cv_;  ///< watchdog: deadlines changed
  std::unordered_map<int64_t, TenantQueues> tenants_;
  /// Round-robin rotations: tenants with at least one queued job of the
  /// class, each at most once.
  std::deque<int64_t> ready_interactive_;
  std::deque<int64_t> ready_batch_;
  /// Tenants removed while their job was running: the job's
  /// RequeueFront is dropped instead of resurrecting the entry. Erased
  /// when that job completes, so the set stays bounded by one entry per
  /// executor.
  std::unordered_set<int64_t> tombstones_;
  bool draining_ = false;
  bool stop_ = false;
  Stats stats_;
  LatencyHistogram latency_interactive_;
  LatencyHistogram latency_batch_;
  /// Total executor-occupancy time, the basis of the retry-after hint's
  /// mean job time (jobs of both classes share the one executor).
  int64_t total_exec_ms_ = 0;
  int64_t queued_count_ = 0;  ///< jobs sitting in tenant queues
  // Running-job state the watchdog reads (all under mu_).
  bool running_ = false;
  bool running_expired_ = false;
  int64_t running_tenant_ = 0;
  Clock::time_point running_deadline_ = Clock::time_point::max();
  std::function<void()> running_on_deadline_;
  std::thread executor_;
  std::thread watchdog_;
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_SCHEDULER_H_
