#ifndef RELACC_SERVE_SCHEDULER_H_
#define RELACC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/status.h"

namespace relacc {
namespace serve {

/// How the scheduler classifies a job. The daemon multiplexes every
/// client onto ONE AccuracyService, and the service is not internally
/// synchronized — so all service work funnels through the scheduler's
/// single executor thread, and the service's thread budget parallelizes
/// *inside* each job. Arbitration is therefore about which tenant's job
/// the executor runs next:
///
///   * kInteractive — latency-sensitive, bounded work: an interaction
///     round, a top-k call, pipeline control ops. Strict priority over
///     batch work; round-robin across tenants within the class.
///   * kBatch — throughput work chopped into window-sized quanta: one
///     pipeline window per job, with multi-window submissions re-queued
///     as continuations (RequeueFront keeps a tenant's batch stream
///     FIFO). Round-robin across tenants, so two streaming clients
///     interleave window for window.
///
/// An interactive request thus waits for at most the quantum in flight —
/// one window — no matter how large a competing batch job is. This
/// generalizes the PR 5 completion-driver hand-off queue: instead of one
/// driver thread per PipelineSession, the daemon has one executor
/// arbitrating all sessions (sessions run with inline windows; see
/// PipelineSessionOptions::inline_windows).
enum class JobClass { kInteractive, kBatch };

/// Per-tenant bounded queues + single executor thread. Admission
/// control: a tenant may have at most `queue_depth` jobs pending across
/// both classes; Enqueue beyond that is rejected with
/// kResourceExhausted (the server surfaces it as a "resource-exhausted"
/// wire error, not by blocking the connection's reader).
class Scheduler {
 public:
  struct Options {
    /// Max pending jobs per tenant (continuations are exempt: a
    /// multi-window batch job occupies one slot for its whole life).
    int queue_depth = 32;
  };

  struct Stats {
    int64_t executed_interactive = 0;
    int64_t executed_batch = 0;
    int64_t rejected = 0;  ///< admission-control rejections
  };

  Scheduler();  ///< default Options
  explicit Scheduler(Options options);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Stops abruptly: pending jobs are discarded.
  ~Scheduler();

  /// Queues `job` for `tenant`. kResourceExhausted when the tenant's
  /// queues are full; kFailedPrecondition once draining/stopped.
  Status Enqueue(int64_t tenant, JobClass cls, std::function<void()> job);

  /// Re-queues a continuation at the FRONT of the tenant's queue for
  /// `cls`: exempt from admission control, and guaranteed to run before
  /// anything else the tenant has pending in that class — a multi-window
  /// batch submission stays one logical FIFO job even though each window
  /// is its own quantum. Only meaningful from inside a running job of
  /// the same tenant. Accepted even while draining (drain owes
  /// continuations their completion: that is the "flush in-flight
  /// windows" half of graceful shutdown).
  void RequeueFront(int64_t tenant, JobClass cls, std::function<void()> job);

  /// Discards every job `tenant` has pending (a vanished client's work
  /// is unobservable). Its running job, if any, finishes normally.
  void RemoveTenant(int64_t tenant);

  /// Graceful shutdown: rejects further Enqueue calls, runs everything
  /// already queued (including continuations those jobs spawn) to
  /// completion, then stops the executor. Idempotent; blocks until the
  /// executor has exited.
  void Drain();

  /// True once Drain() has begun (jobs observing this can cut work
  /// short; none are required to).
  bool draining() const;

  Stats stats() const;

 private:
  struct TenantQueues {
    std::deque<std::function<void()>> interactive;
    std::deque<std::function<void()>> batch;
    bool empty() const { return interactive.empty() && batch.empty(); }
    int64_t size() const {
      return static_cast<int64_t>(interactive.size() + batch.size());
    }
  };

  void ExecutorLoop();

  /// Pops the next job under `mu_` honoring class priority and
  /// round-robin; false when nothing is queued.
  bool PopNext(std::function<void()>* job, JobClass* cls);

  /// Appends `tenant` to the ready rotation of `cls` unless present.
  void MarkReady(int64_t tenant, JobClass cls);

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< executor: work arrived / shutdown
  std::unordered_map<int64_t, TenantQueues> tenants_;
  /// Round-robin rotations: tenants with at least one queued job of the
  /// class, each at most once.
  std::deque<int64_t> ready_interactive_;
  std::deque<int64_t> ready_batch_;
  bool draining_ = false;
  bool stop_ = false;
  Stats stats_;
  std::thread executor_;
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_SCHEDULER_H_
