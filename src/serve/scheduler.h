#ifndef RELACC_SERVE_SCHEDULER_H_
#define RELACC_SERVE_SCHEDULER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/status.h"

namespace relacc {
namespace serve {

/// How the scheduler classifies a job. The daemon multiplexes every
/// client onto ONE AccuracyService, and the service is not internally
/// synchronized — so all service work funnels through the scheduler's
/// single executor thread, and the service's thread budget parallelizes
/// *inside* each job. Arbitration is therefore about which tenant's job
/// the executor runs next:
///
///   * kInteractive — latency-sensitive, bounded work: an interaction
///     round, a top-k call, pipeline control ops. Strict priority over
///     batch work; round-robin across tenants within the class.
///   * kBatch — throughput work chopped into window-sized quanta: one
///     pipeline window per job, with multi-window submissions re-queued
///     as continuations (RequeueFront keeps a tenant's batch stream
///     FIFO). Round-robin across tenants, so two streaming clients
///     interleave window for window.
///
/// An interactive request thus waits for at most the quantum in flight —
/// one window — no matter how large a competing batch job is. This
/// generalizes the PR 5 completion-driver hand-off queue: instead of one
/// driver thread per PipelineSession, the daemon has one executor
/// arbitrating all sessions (sessions run with inline windows; see
/// PipelineSessionOptions::inline_windows).
enum class JobClass { kInteractive, kBatch };

/// Per-tenant bounded queues + single executor thread. Admission
/// control: a tenant may have at most `queue_depth` jobs pending across
/// both classes; Enqueue beyond that is rejected with
/// kResourceExhausted (the server surfaces it as a "resource-exhausted"
/// wire error, not by blocking the connection's reader).
class Scheduler {
 public:
  struct Options {
    /// Max pending jobs per tenant (continuations are exempt: a
    /// multi-window batch job occupies one slot for its whole life).
    int queue_depth = 32;
  };

  struct Stats {
    int64_t executed_interactive = 0;
    int64_t executed_batch = 0;
    int64_t rejected = 0;  ///< admission-control rejections
    /// Executor latency (enqueue → job completion, queue wait included)
    /// percentiles per class, in milliseconds. Approximate: read off a
    /// log2-bucket histogram, so a value is the upper bound of the
    /// bucket its percentile falls in; 0 when the class has no samples
    /// yet (or every sample finished within a millisecond).
    double p50_interactive_ms = 0.0;
    double p99_interactive_ms = 0.0;
    double p50_batch_ms = 0.0;
    double p99_batch_ms = 0.0;
  };

  Scheduler();  ///< default Options
  explicit Scheduler(Options options);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Stops abruptly: pending jobs are discarded.
  ~Scheduler();

  /// Queues `job` for `tenant`. kResourceExhausted when the tenant's
  /// queues are full; kFailedPrecondition once draining/stopped. On a
  /// resource-exhausted rejection, a non-null `retry_after_ms` receives
  /// a backpressure hint: roughly how long the tenant's pending backlog
  /// needs to drain (pending jobs × observed mean job time), i.e. when a
  /// retry has a fair chance of being admitted. Untouched on success.
  Status Enqueue(int64_t tenant, JobClass cls, std::function<void()> job,
                 int64_t* retry_after_ms = nullptr);

  /// Re-queues a continuation at the FRONT of the tenant's queue for
  /// `cls`: exempt from admission control, and guaranteed to run before
  /// anything else the tenant has pending in that class — a multi-window
  /// batch submission stays one logical FIFO job even though each window
  /// is its own quantum. Only meaningful from inside a running job of
  /// the same tenant. Accepted even while draining (drain owes
  /// continuations their completion: that is the "flush in-flight
  /// windows" half of graceful shutdown).
  void RequeueFront(int64_t tenant, JobClass cls, std::function<void()> job);

  /// Discards every job `tenant` has pending (a vanished client's work
  /// is unobservable). Its running job, if any, finishes normally.
  void RemoveTenant(int64_t tenant);

  /// Graceful shutdown: rejects further Enqueue calls, runs everything
  /// already queued (including continuations those jobs spawn) to
  /// completion, then stops the executor. Idempotent; blocks until the
  /// executor has exited.
  void Drain();

  /// True once Drain() has begun (jobs observing this can cut work
  /// short; none are required to).
  bool draining() const;

  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued job with its admission timestamp, so completion can
  /// attribute the full enqueue-to-done latency (queue wait included).
  struct QueuedJob {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  struct TenantQueues {
    std::deque<QueuedJob> interactive;
    std::deque<QueuedJob> batch;
    bool empty() const { return interactive.empty() && batch.empty(); }
    int64_t size() const {
      return static_cast<int64_t>(interactive.size() + batch.size());
    }
  };

  /// Log2-bucket latency histogram: bucket i counts samples whose
  /// millisecond latency has bit width i (so bucket 0 is sub-ms, bucket
  /// 1 is 1 ms, bucket 2 is 2–3 ms, ...). Constant space, O(1) record,
  /// percentile read-off in one pass.
  struct LatencyHistogram {
    std::array<int64_t, 32> buckets{};
    int64_t count = 0;
    void Record(int64_t ms);
    /// The upper bound (in ms) of the bucket holding percentile `p`
    /// (0 < p <= 1); 0.0 with no samples.
    double PercentileMs(double p) const;
  };

  void ExecutorLoop();

  /// Pops the next job under `mu_` honoring class priority and
  /// round-robin; false when nothing is queued.
  bool PopNext(QueuedJob* job, JobClass* cls);

  /// Appends `tenant` to the ready rotation of `cls` unless present.
  void MarkReady(int64_t tenant, JobClass cls);

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< executor: work arrived / shutdown
  std::unordered_map<int64_t, TenantQueues> tenants_;
  /// Round-robin rotations: tenants with at least one queued job of the
  /// class, each at most once.
  std::deque<int64_t> ready_interactive_;
  std::deque<int64_t> ready_batch_;
  bool draining_ = false;
  bool stop_ = false;
  Stats stats_;
  LatencyHistogram latency_interactive_;
  LatencyHistogram latency_batch_;
  /// Total executor-occupancy time, the basis of the retry-after hint's
  /// mean job time (jobs of both classes share the one executor).
  int64_t total_exec_ms_ = 0;
  std::thread executor_;
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_SCHEDULER_H_
