#ifndef RELACC_SERVE_REPLICA_POOL_H_
#define RELACC_SERVE_REPLICA_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/fault_injection.h"
#include "serve/scheduler.h"
#include "util/status.h"

namespace relacc {

class AccuracyService;

namespace serve {

struct ReplicaPoolOptions {
  /// Per-tenant admission bound of each replica's scheduler.
  int queue_depth = 32;

  /// Consecutive deadline expiries (queued cancellations and running
  /// overruns both count) before a replica is quarantined. A wedged
  /// replica produces one running overrun and then a stream of queued
  /// cancellations behind it, so both kinds must count for the
  /// threshold to ever be reached.
  int quarantine_after = 3;

  /// How often the health prober checks quarantined replicas.
  int64_t probe_interval_ms = 200;

  /// Deadline of each health-probe job; an expired probe keeps the
  /// replica quarantined.
  int64_t probe_deadline_ms = 1000;

  /// Borrowed fault injector, or null for none. Wired into every
  /// replica's executor (Scheduler::Options::pre_job), so injected
  /// delays and wedges stall a replica exactly where real slowness
  /// would.
  FaultInjector* fault = nullptr;
};

/// N serving replicas, each an AccuracyService plus its own scheduler
/// (one executor thread per replica — the service is not internally
/// synchronized, so the replica IS the unit of parallelism). The pool
/// adds the failure-handling layer on top:
///
///   * Routing: new work goes to the least-loaded healthy replica
///     (load = queued + running, so a backlog behind a slow replica
///     steers traffic away even before quarantine). Sessions stay
///     pinned to the replica that created them — the server owns that
///     map; the pool only answers "where should new work go".
///   * Quarantine: `quarantine_after` consecutive deadline expiries
///     mark a replica unhealthy and routing skips it. Its pinned
///     sessions keep their queue (they cannot move — session state
///     lives in the replica), but no new sessions land on it.
///   * Re-admission: ANY job that completes before its deadline on a
///     quarantined replica re-admits it (scheduler on_job_ok hook).
///     The background prober exists to generate exactly such a job on
///     a replica too idle to prove itself: a ping-class deduce with a
///     probe deadline, at most one in flight per replica.
///   * All-quarantined: RouteNew returns -1 and the server sheds the
///     request with kResourceExhausted plus a retry_after_ms hint of
///     one probe interval — the soonest health can change.
///
/// Drain: stops the prober, releases every injected wedge (a chaos run
/// must still exit 0 on SIGTERM), then drains each scheduler to its
/// fixpoint.
class ReplicaPool {
 public:
  /// Per-replica health/telemetry snapshot for the stats endpoint.
  struct ReplicaStats {
    bool healthy = true;
    int64_t load = 0;
    int64_t timeouts = 0;      ///< deadline expiries attributed here
    int64_t quarantines = 0;   ///< healthy -> quarantined transitions
    int64_t readmissions = 0;  ///< quarantined -> healthy transitions
    Scheduler::Stats scheduler;
  };

  /// The services are borrowed and must outlive the pool; one replica
  /// per service, in order (replica i serves services[i]).
  static Result<std::unique_ptr<ReplicaPool>> Create(
      std::vector<AccuracyService*> services, ReplicaPoolOptions options);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;
  ~ReplicaPool();

  int size() const { return static_cast<int>(replicas_.size()); }
  AccuracyService* service(int replica) { return replicas_[replica]->service; }
  Scheduler* scheduler(int replica) {
    return replicas_[replica]->scheduler.get();
  }
  const Scheduler* scheduler(int replica) const {
    return replicas_[replica]->scheduler.get();
  }

  /// Least-loaded healthy replica for brand-new work; -1 when every
  /// replica is quarantined (shed).
  int RouteNew() const;

  bool healthy(int replica) const {
    return replicas_[replica]->healthy.load();
  }
  int64_t quarantined_count() const;

  /// The retry hint handed out with a shed: one probe interval.
  int64_t shed_retry_after_ms() const { return options_.probe_interval_ms; }

  /// Discards the tenant's pending jobs on every replica (a vanished
  /// connection's work may be spread across the pool).
  void RemoveTenant(int64_t tenant);

  /// Graceful shutdown of the whole pool; idempotent, blocking.
  void Drain();
  bool draining() const;

  std::vector<ReplicaStats> replica_stats() const;

  /// Pool-wide scheduler stats: counters summed, percentiles taken as
  /// the worst (max) replica — a conservative figure for dashboards.
  Scheduler::Stats aggregate_stats() const;

  int64_t total_timeouts() const;
  int64_t total_quarantines() const;
  int64_t total_readmissions() const;

 private:
  struct Replica {
    AccuracyService* service = nullptr;
    std::unique_ptr<Scheduler> scheduler;
    std::atomic<bool> healthy{true};
    std::atomic<int> consecutive_expiries{0};
    std::atomic<int64_t> timeouts{0};
    std::atomic<int64_t> quarantines{0};
    std::atomic<int64_t> readmissions{0};
    std::atomic<bool> probe_in_flight{false};
  };

  explicit ReplicaPool(ReplicaPoolOptions options);

  /// Scheduler on_deadline hook of replica `i`.
  void OnDeadlineExpired(int i);
  /// Scheduler on_job_ok hook of replica `i`.
  void OnJobOk(int i);
  void ProbeLoop();

  const ReplicaPoolOptions options_;
  /// unique_ptr elements: Replica holds atomics and must not move once
  /// the hooks capture its index.
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::thread probe_thread_;

  std::atomic<bool> draining_{false};
};

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_REPLICA_POOL_H_
