#include "serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <utility>

#include "api/accuracy_service.h"
#include "api/version.h"
#include "io/spec_io.h"
#include "serve/socket.h"

namespace relacc {
namespace serve {

namespace {

/// Optional integer param with a default; wrong types are errors (a
/// silently-ignored typo'd param would be worse than a rejection).
Result<int64_t> OptInt(const Json& params, const std::string& key,
                       int64_t dflt) {
  const Json* v = params.Find(key);
  if (v == nullptr) return dflt;
  if (!v->is_int()) {
    return Status::InvalidArgument("param '" + key + "' must be an integer");
  }
  return v->as_int();
}

Result<std::string> OptString(const Json& params, const std::string& key,
                              std::string dflt) {
  const Json* v = params.Find(key);
  if (v == nullptr) return dflt;
  if (!v->is_string()) {
    return Status::InvalidArgument("param '" + key + "' must be a string");
  }
  return v->as_string();
}

Result<TopKAlgorithm> ParseAlgo(const std::string& algo) {
  if (algo == "topkct") return TopKAlgorithm::kTopKCT;
  if (algo == "heuristic") return TopKAlgorithm::kHeuristic;
  if (algo == "rankjoin") return TopKAlgorithm::kRankJoin;
  if (algo == "brute") return TopKAlgorithm::kBruteForce;
  return Status::InvalidArgument(
      "algo must be topkct, heuristic, rankjoin or brute");
}

Result<CompletionPolicy> ParseCompletion(const std::string& name) {
  if (name == "best") return CompletionPolicy::kBestCandidate;
  if (name == "heuristic") return CompletionPolicy::kHeuristic;
  if (name == "none") return CompletionPolicy::kLeaveNull;
  return Status::InvalidArgument(
      "completion must be best, heuristic or none");
}

/// Optional caller-supplied entity instance (`"entity"` param in the
/// wire form of EntitiesFromJson): empty when absent, error when
/// malformed. deduce and interact.start route it to the per-entity
/// AccuracyService overloads.
Result<std::optional<EntityInstance>> OptEntity(const Json& params,
                                                const Schema& schema) {
  const Json* node = params.Find("entity");
  if (node == nullptr) {
    return Result<std::optional<EntityInstance>>(std::nullopt);
  }
  Json array = Json::Array();
  array.Append(*node);
  Result<std::vector<EntityInstance>> parsed = EntitiesFromJson(array, schema);
  if (!parsed.ok()) return parsed.status();
  return Result<std::optional<EntityInstance>>(
      std::move(parsed.value().front()));
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) CloseFd(fd);
}

Result<std::unique_ptr<Server>> Server::Start(AccuracyService* service,
                                              ServerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("serve: null service");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("serve: port must be in [0, 65535]");
  }
  if (options.queue_depth < 1) {
    return Status::InvalidArgument("serve: queue_depth must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(service, std::move(options)));
  Result<int> listener = ListenOn(server->options_.host, server->options_.port);
  if (!listener.ok()) return listener.status();
  server->listen_fd_ = listener.value();
  Result<int> port = BoundPort(server->listen_fd_);
  if (!port.ok()) {
    CloseFd(server->listen_fd_);
    return port.status();
  }
  server->port_ = port.value();
  if (pipe(server->drain_pipe_) != 0) {
    CloseFd(server->listen_fd_);
    return Status::IoError("serve: pipe() failed");
  }
  Scheduler::Options sched;
  sched.queue_depth = server->options_.queue_depth;
  server->scheduler_ = std::make_unique<Scheduler>(sched);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::Server(AccuracyService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      schema_(service->specification().ie.schema()) {}

Server::~Server() {
  RequestDrain();
  Wait();
  if (drain_pipe_[0] >= 0) CloseFd(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) CloseFd(drain_pipe_[1]);
}

void Server::RequestDrain() {
  // One byte on the self-pipe; async-signal-safe (write(2) only). The
  // accept loop treats any readable byte as the drain order. Writes after
  // the first are harmless; a full pipe (impossible here) would be too.
  if (drain_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = write(drain_pipe_[1], &byte, 1);
  }
}

Status Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = drain_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int r = poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if (fds[0].revents == 0) continue;
    Result<int> client = AcceptConn(listen_fd_);
    if (!client.ok()) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = client.value();
    conn->tenant = next_tenant_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_[conn->tenant] = conn;
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
  DoDrain();
}

void Server::DoDrain() {
  // 1. Stop accepting: nothing new can join the queues.
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // 2. Flush admitted work. Enqueue rejects from here on
  //    ("failed-precondition"), but continuations of in-flight batch
  //    submits keep running until their windows are flushed and their
  //    responses written — the graceful half of SIGTERM.
  scheduler_->Drain();
  // 3. Wake every reader blocked in recv and join them all.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (auto& [tenant, conn] : conns_) conns.push_back(conn);
    readers.swap(readers_);
  }
  for (auto& conn : conns) ShutdownFd(conn->fd);
  for (std::thread& t : readers) t.join();
  conns.clear();
  // 4. Release the registry; the last reference destroys each
  //    connection's sessions (the executor has stopped, so this thread
  //    holds the final references).
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.clear();
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string payload;
    Result<bool> frame =
        ReadFrame(conn->fd, &payload, options_.max_frame_bytes);
    if (!frame.ok()) {
      // Truncated/oversized frame or socket error: the stream is no
      // longer frame-aligned. Best-effort id-0 error, then close.
      SendError(conn, 0, frame.status());
      break;
    }
    if (!frame.value()) break;  // clean EOF
    Result<Json> doc = Json::Parse(payload);
    if (!doc.ok()) {
      SendError(conn, 0, Status::ParseError("request is not valid JSON: " +
                                            doc.status().message()));
      break;
    }
    if (!Dispatch(conn, doc.value())) break;
  }
  conn->closed.store(true);
  // Discard whatever the connection still has queued (nobody can observe
  // the responses) and stop its batch continuations at the next quantum.
  scheduler_->RemoveTenant(conn->tenant);
  ShutdownFd(conn->fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->tenant);
}

bool Server::Dispatch(const std::shared_ptr<Connection>& conn,
                      const Json& request) {
  if (!request.is_object()) {
    SendError(conn, 0, Status::ParseError("request must be a JSON object"));
    return false;
  }
  const Json* id_node = request.Find("id");
  const Json* method_node = request.Find("method");
  if (id_node == nullptr || !id_node->is_int() || method_node == nullptr ||
      !method_node->is_string()) {
    SendError(conn, 0,
              Status::ParseError(
                  "request needs an integer 'id' and a string 'method'"));
    return false;
  }
  const int64_t id = id_node->as_int();
  const std::string& method = method_node->as_string();
  Json params = Json::Object();
  if (const Json* p = request.Find("params"); p != nullptr) {
    if (!p->is_object()) {
      SendError(conn, 0, Status::ParseError("'params' must be an object"));
      return false;
    }
    params = *p;
  }

  // Service-free methods answer inline on the reader thread.
  if (method == "ping") {
    Json result = Json::Object();
    result.Set("pong", Json::Bool(true));
    SendResult(conn, id, std::move(result));
    return true;
  }
  if (method == "version") {
    Json result = Json::Object();
    result.Set("version", Json::Str(kRelaccVersion));
    SendResult(conn, id, std::move(result));
    return true;
  }
  if (method == "stats") {
    const Scheduler::Stats stats = scheduler_->stats();
    Json result = Json::Object();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      result.Set("connections", Json::Int(static_cast<int64_t>(conns_.size())));
    }
    result.Set("draining", Json::Bool(scheduler_->draining()));
    result.Set("executed_interactive", Json::Int(stats.executed_interactive));
    result.Set("executed_batch", Json::Int(stats.executed_batch));
    result.Set("rejected", Json::Int(stats.rejected));
    result.Set("p50_interactive_ms", Json::Real(stats.p50_interactive_ms));
    result.Set("p99_interactive_ms", Json::Real(stats.p99_interactive_ms));
    result.Set("p50_batch_ms", Json::Real(stats.p50_batch_ms));
    result.Set("p99_batch_ms", Json::Real(stats.p99_batch_ms));
    // Storage + memo telemetry of the underlying service: how the
    // service was built (row / columnar / snapshot), how large its
    // dictionary grew, and whether the verdict memo is earning hits.
    result.Set("storage_mode", Json::Str(service_->storage_mode()));
    result.Set("dictionary_terms",
               Json::Int(static_cast<int64_t>(service_->dictionary_terms())));
    const snapshot::MemoCache::Stats memo = service_->memo_stats();
    result.Set("memo_hits", Json::Int(memo.hits));
    result.Set("memo_misses", Json::Int(memo.misses));
    result.Set("memo_entries", Json::Int(memo.entries));
    SendResult(conn, id, std::move(result));
    return true;
  }

  // pipeline.submit parses its entity payload here on the reader thread
  // (the schema is immutable service state), so the executor's quantum is
  // pure service work and malformed batches are rejected without
  // occupying a queue slot.
  if (method == "pipeline.submit") {
    Result<int64_t> session = params.GetInt("session");
    if (!session.ok()) {
      SendError(conn, id, session.status());
      return true;
    }
    const Json* entities_node = params.Find("entities");
    if (entities_node == nullptr) {
      SendError(conn, id,
                Status::InvalidArgument("param 'entities' is required"));
      return true;
    }
    Result<std::vector<EntityInstance>> entities =
        EntitiesFromJson(*entities_node, schema_);
    if (!entities.ok()) {
      SendError(conn, id, entities.status());
      return true;
    }
    auto state = std::make_shared<SubmitState>();
    state->session = session.value();
    state->entities = std::move(entities).value();
    int64_t retry_after_ms = -1;
    Status admitted = scheduler_->Enqueue(
        conn->tenant, JobClass::kBatch,
        [this, conn, id, state] { RunSubmitQuantum(conn, id, state); },
        &retry_after_ms);
    if (!admitted.ok()) SendError(conn, id, admitted, retry_after_ms);
    return true;
  }

  const JobClass cls =
      method == "pipeline.finish" ? JobClass::kBatch : JobClass::kInteractive;
  int64_t retry_after_ms = -1;
  Status admitted = scheduler_->Enqueue(
      conn->tenant, cls,
      [this, conn, id, method, params] { RunJob(conn, id, method, params); },
      &retry_after_ms);
  if (!admitted.ok()) SendError(conn, id, admitted, retry_after_ms);
  return true;
}

void Server::RunSubmitQuantum(const std::shared_ptr<Connection>& conn,
                              int64_t id,
                              const std::shared_ptr<SubmitState>& state) {
  if (conn->closed.load()) return;
  auto it = conn->pipelines.find(state->session);
  if (it == conn->pipelines.end()) {
    SendError(conn, id,
              Status::NotFound("no pipeline session " +
                               std::to_string(state->session)));
    return;
  }
  PipelineSession* session = it->second.get();
  // One window per quantum: the session has inline_windows set, so this
  // Submit chases and completes the window right here before returning —
  // and then yields the executor to whoever is next.
  const std::size_t take =
      std::min(static_cast<std::size_t>(session->window()),
               state->entities.size() - state->pos);
  std::vector<EntityInstance> chunk;
  chunk.reserve(take);
  const auto begin =
      state->entities.begin() + static_cast<std::ptrdiff_t>(state->pos);
  chunk.assign(std::make_move_iterator(begin),
               std::make_move_iterator(begin +
                                       static_cast<std::ptrdiff_t>(take)));
  Status submitted = session->Submit(std::move(chunk));
  if (!submitted.ok()) {
    SendError(conn, id, submitted);
    return;
  }
  state->pos += take;
  if (state->pos >= state->entities.size()) {
    Json result = Json::Object();
    result.Set("accepted",
               Json::Int(static_cast<int64_t>(state->entities.size())));
    SendResult(conn, id, std::move(result));
    return;
  }
  scheduler_->RequeueFront(
      conn->tenant, JobClass::kBatch,
      [this, conn, id, state] { RunSubmitQuantum(conn, id, state); });
}

void Server::RunJob(const std::shared_ptr<Connection>& conn, int64_t id,
                    const std::string& method, const Json& params) {
  if (conn->closed.load()) return;

  if (method == "pipeline.start") {
    Result<int64_t> window = OptInt(params, "window", 0);
    Result<std::string> completion = OptString(params, "completion", "");
    if (!window.ok()) return SendError(conn, id, window.status());
    if (!completion.ok()) return SendError(conn, id, completion.status());
    PipelineSessionOptions options;
    options.inline_windows = true;
    options.window = window.value();
    if (!completion.value().empty()) {
      Result<CompletionPolicy> policy = ParseCompletion(completion.value());
      if (!policy.ok()) return SendError(conn, id, policy.status());
      options.completion = policy.value();
    }
    Result<std::unique_ptr<PipelineSession>> session =
        service_->StartPipeline(std::move(options));
    if (!session.ok()) return SendError(conn, id, session.status());
    const int64_t sid = next_session_.fetch_add(1);
    conn->pipelines[sid] = std::move(session).value();
    Json result = Json::Object();
    result.Set("session", Json::Int(sid));
    return SendResult(conn, id, std::move(result));
  }

  if (method == "pipeline.poll" || method == "pipeline.drain" ||
      method == "pipeline.finish") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status());
    auto it = conn->pipelines.find(sid.value());
    if (it == conn->pipelines.end()) {
      return SendError(conn, id,
                       Status::NotFound("no pipeline session " +
                                        std::to_string(sid.value())));
    }
    PipelineSession* session = it->second.get();
    if (method == "pipeline.poll") {
      Json result = Json::Object();
      std::optional<EntityReport> report = session->Poll();
      result.Set("report", report.has_value()
                               ? EntityReportToJson(*report, schema_)
                               : Json::Null());
      return SendResult(conn, id, std::move(result));
    }
    if (method == "pipeline.drain") {
      Json reports = Json::Array();
      for (const EntityReport& report : session->Drain()) {
        reports.Append(EntityReportToJson(report, schema_));
      }
      Json result = Json::Object();
      result.Set("reports", std::move(reports));
      return SendResult(conn, id, std::move(result));
    }
    Result<PipelineReport> report = session->Finish();
    if (!report.ok()) return SendError(conn, id, report.status());
    return SendResult(conn, id,
                      PipelineReportToJson(report.value(), schema_));
  }

  if (method == "session.close") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status());
    const bool erased = conn->pipelines.erase(sid.value()) > 0 ||
                        conn->interactions.erase(sid.value()) > 0;
    if (!erased) {
      return SendError(conn, id,
                       Status::NotFound("no session " +
                                        std::to_string(sid.value())));
    }
    Json result = Json::Object();
    result.Set("closed", Json::Bool(true));
    return SendResult(conn, id, std::move(result));
  }

  if (method == "deduce") {
    Result<std::optional<EntityInstance>> entity = OptEntity(params, schema_);
    if (!entity.ok()) return SendError(conn, id, entity.status());
    Result<ChaseOutcome> outcome =
        entity.value().has_value() ? service_->DeduceEntity(*entity.value())
                                   : service_->DeduceEntity();
    if (!outcome.ok()) return SendError(conn, id, outcome.status());
    return SendResult(conn, id, OutcomeToJson(outcome.value(), schema_));
  }

  if (method == "topk") {
    Result<int64_t> k = OptInt(params, "k", 5);
    Result<std::string> algo_name = OptString(params, "algo", "topkct");
    if (!k.ok()) return SendError(conn, id, k.status());
    if (!algo_name.ok()) return SendError(conn, id, algo_name.status());
    Result<TopKAlgorithm> algo = ParseAlgo(algo_name.value());
    if (!algo.ok()) return SendError(conn, id, algo.status());
    Result<ChaseOutcome> outcome = service_->DeduceEntity();
    if (!outcome.ok()) return SendError(conn, id, outcome.status());
    if (!outcome.value().church_rosser) {
      return SendError(
          conn, id,
          Status::FailedPrecondition("specification is not Church-Rosser: " +
                                     outcome.value().violation));
    }
    Result<TopKResult> ranked =
        service_->TopK(static_cast<int>(k.value()), algo.value());
    if (!ranked.ok()) return SendError(conn, id, ranked.status());
    return SendResult(conn, id,
                      TopKReportToJson(outcome.value().target, ranked.value(),
                                       schema_));
  }

  if (method == "interact.start") {
    Result<int64_t> k = OptInt(params, "k", 15);
    if (!k.ok()) return SendError(conn, id, k.status());
    Result<std::optional<EntityInstance>> entity = OptEntity(params, schema_);
    if (!entity.ok()) return SendError(conn, id, entity.status());
    InteractionOptions options;
    options.k = static_cast<int>(k.value());
    Result<std::unique_ptr<InteractionSession>> session =
        entity.value().has_value()
            ? service_->StartInteraction(std::move(*entity.value()),
                                         std::move(options))
            : service_->StartInteraction(std::move(options));
    if (!session.ok()) return SendError(conn, id, session.status());
    const int64_t sid = next_session_.fetch_add(1);
    conn->interactions[sid] = std::move(session).value();
    Json result = Json::Object();
    result.Set("session", Json::Int(sid));
    return SendResult(conn, id, std::move(result));
  }

  if (method == "interact.suggest" || method == "interact.revise" ||
      method == "interact.accept") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status());
    auto it = conn->interactions.find(sid.value());
    if (it == conn->interactions.end()) {
      return SendError(conn, id,
                       Status::NotFound("no interaction session " +
                                        std::to_string(sid.value())));
    }
    InteractionSession* session = it->second.get();
    if (method == "interact.suggest") {
      Result<Suggestion> suggestion = session->Suggest();
      if (!suggestion.ok()) return SendError(conn, id, suggestion.status());
      return SendResult(conn, id,
                        SuggestionToJson(suggestion.value(),
                                         session->finished(), schema_));
    }
    if (method == "interact.revise") {
      Result<std::string> attr = params.GetString("attr");
      if (!attr.ok()) return SendError(conn, id, attr.status());
      std::optional<AttrId> a = schema_.IndexOf(attr.value());
      if (!a) {
        return SendError(conn, id,
                         Status::InvalidArgument("unknown attribute '" +
                                                 attr.value() + "'"));
      }
      const Json* cell = params.Find("value");
      if (cell == nullptr) {
        return SendError(conn, id,
                         Status::InvalidArgument("param 'value' is required"));
      }
      Result<Value> value = ValueFromJson(*cell, schema_.type(*a), "value");
      if (!value.ok()) return SendError(conn, id, value.status());
      Status revised = session->Revise(*a, std::move(value).value());
      if (!revised.ok()) return SendError(conn, id, revised);
      Json result = Json::Object();
      result.Set("revisions", Json::Int(session->revisions()));
      return SendResult(conn, id, std::move(result));
    }
    Result<int64_t> index = params.GetInt("index");
    if (!index.ok()) return SendError(conn, id, index.status());
    Result<Tuple> target = session->Accept(static_cast<int>(index.value()));
    if (!target.ok()) return SendError(conn, id, target.status());
    Json result = Json::Object();
    result.Set("target", TupleToJson(target.value(), schema_));
    result.Set("finished", Json::Bool(true));
    return SendResult(conn, id, std::move(result));
  }

  SendError(conn, id, Status::NotFound("unknown method '" + method + "'"));
}

void Server::SendResult(const std::shared_ptr<Connection>& conn, int64_t id,
                        Json result) {
  const std::string payload = MakeResponse(id, std::move(result)).Dump();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // A failed write means the peer vanished; the reader notices on its own.
  (void)WriteFrame(conn->fd, payload);
}

void Server::SendError(const std::shared_ptr<Connection>& conn, int64_t id,
                       const Status& status, int64_t retry_after_ms) {
  const std::string payload =
      MakeErrorResponse(id, WireErrorCode(status.code()), status.message(),
                        retry_after_ms)
          .Dump();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  (void)WriteFrame(conn->fd, payload);
}

}  // namespace serve
}  // namespace relacc
