#include "serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <optional>
#include <utility>

#include "api/accuracy_service.h"
#include "api/version.h"
#include "io/spec_io.h"
#include "serve/socket.h"

namespace relacc {
namespace serve {

namespace {

/// Optional integer param with a default; wrong types are errors (a
/// silently-ignored typo'd param would be worse than a rejection).
Result<int64_t> OptInt(const Json& params, const std::string& key,
                       int64_t dflt) {
  const Json* v = params.Find(key);
  if (v == nullptr) return dflt;
  if (!v->is_int()) {
    return Status::InvalidArgument("param '" + key + "' must be an integer");
  }
  return v->as_int();
}

Result<std::string> OptString(const Json& params, const std::string& key,
                              std::string dflt) {
  const Json* v = params.Find(key);
  if (v == nullptr) return dflt;
  if (!v->is_string()) {
    return Status::InvalidArgument("param '" + key + "' must be a string");
  }
  return v->as_string();
}

Result<TopKAlgorithm> ParseAlgo(const std::string& algo) {
  if (algo == "topkct") return TopKAlgorithm::kTopKCT;
  if (algo == "heuristic") return TopKAlgorithm::kHeuristic;
  if (algo == "rankjoin") return TopKAlgorithm::kRankJoin;
  if (algo == "brute") return TopKAlgorithm::kBruteForce;
  return Status::InvalidArgument(
      "algo must be topkct, heuristic, rankjoin or brute");
}

Result<CompletionPolicy> ParseCompletion(const std::string& name) {
  if (name == "best") return CompletionPolicy::kBestCandidate;
  if (name == "heuristic") return CompletionPolicy::kHeuristic;
  if (name == "none") return CompletionPolicy::kLeaveNull;
  return Status::InvalidArgument(
      "completion must be best, heuristic or none");
}

/// Optional caller-supplied entity instance (`"entity"` param in the
/// wire form of EntitiesFromJson): empty when absent, error when
/// malformed. deduce and interact.start route it to the per-entity
/// AccuracyService overloads.
Result<std::optional<EntityInstance>> OptEntity(const Json& params,
                                                const Schema& schema) {
  const Json* node = params.Find("entity");
  if (node == nullptr) {
    return Result<std::optional<EntityInstance>>(std::nullopt);
  }
  Json array = Json::Array();
  array.Append(*node);
  Result<std::vector<EntityInstance>> parsed = EntitiesFromJson(array, schema);
  if (!parsed.ok()) return parsed.status();
  return Result<std::optional<EntityInstance>>(
      std::move(parsed.value().front()));
}

/// Methods that create a session or touch no session at all: routed to
/// the least-loaded healthy replica.
bool IsNewWorkMethod(const std::string& method) {
  return method == "pipeline.start" || method == "interact.start" ||
         method == "deduce" || method == "topk";
}

/// Methods that follow a session's replica pin via their `session`
/// param.
bool IsSessionBoundMethod(const std::string& method) {
  return method == "pipeline.submit" || method == "pipeline.poll" ||
         method == "pipeline.drain" || method == "pipeline.finish" ||
         method == "session.close" || method == "interact.suggest" ||
         method == "interact.revise" || method == "interact.accept";
}

/// The not-found wording each method family uses (kept stable across
/// the 0.9 -> 0.10 routing change: the id is now rejected at dispatch,
/// before a replica is involved).
std::string NoSuchSession(const std::string& method, int64_t sid) {
  const std::string num = std::to_string(sid);
  if (method.rfind("pipeline.", 0) == 0) return "no pipeline session " + num;
  if (method.rfind("interact.", 0) == 0) return "no interaction session " + num;
  return "no session " + num;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) CloseFd(fd);
}

Result<std::unique_ptr<Server>> Server::Start(AccuracyService* service,
                                              ServerOptions options) {
  return Start(std::vector<AccuracyService*>{service}, std::move(options));
}

Result<std::unique_ptr<Server>> Server::Start(
    std::vector<AccuracyService*> services, ServerOptions options) {
  if (services.empty()) {
    return Status::InvalidArgument("serve: no services");
  }
  for (const AccuracyService* service : services) {
    if (service == nullptr) {
      return Status::InvalidArgument("serve: null service");
    }
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("serve: port must be in [0, 65535]");
  }
  if (options.queue_depth < 1) {
    return Status::InvalidArgument("serve: queue_depth must be >= 1");
  }
  if (options.default_deadline_ms < 0) {
    return Status::InvalidArgument("serve: default_deadline_ms must be >= 0");
  }
  Result<std::unique_ptr<FaultInjector>> fault =
      FaultInjector::Parse(options.fault_inject);
  if (!fault.ok()) return fault.status();
  std::unique_ptr<Server> server(
      new Server(std::move(services), std::move(options)));
  server->fault_ = std::move(fault).value();
  Result<int> listener = ListenOn(server->options_.host, server->options_.port);
  if (!listener.ok()) return listener.status();
  server->listen_fd_ = listener.value();
  Result<int> port = BoundPort(server->listen_fd_);
  if (!port.ok()) {
    CloseFd(server->listen_fd_);
    return port.status();
  }
  server->port_ = port.value();
  if (pipe(server->drain_pipe_) != 0) {
    CloseFd(server->listen_fd_);
    return Status::IoError("serve: pipe() failed");
  }
  ReplicaPoolOptions pool_options;
  pool_options.queue_depth = server->options_.queue_depth;
  pool_options.quarantine_after = server->options_.quarantine_after;
  pool_options.probe_interval_ms = server->options_.probe_interval_ms;
  pool_options.probe_deadline_ms = server->options_.probe_deadline_ms;
  pool_options.fault = server->fault_.get();
  Result<std::unique_ptr<ReplicaPool>> pool =
      ReplicaPool::Create(server->services_, pool_options);
  if (!pool.ok()) {
    CloseFd(server->listen_fd_);
    return pool.status();
  }
  server->pool_ = std::move(pool).value();
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::Server(std::vector<AccuracyService*> services, ServerOptions options)
    : services_(std::move(services)),
      options_(std::move(options)),
      schema_(services_.front()->specification().ie.schema()) {}

Server::~Server() {
  RequestDrain();
  Wait();
  if (drain_pipe_[0] >= 0) CloseFd(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) CloseFd(drain_pipe_[1]);
}

void Server::RequestDrain() {
  // One byte on the self-pipe; async-signal-safe (write(2) only). The
  // accept loop treats any readable byte as the drain order. Writes after
  // the first are harmless; a full pipe (impossible here) would be too.
  if (drain_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = write(drain_pipe_[1], &byte, 1);
  }
}

Status Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = drain_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int r = poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if (fds[0].revents == 0) continue;
    Result<int> client = AcceptConn(listen_fd_);
    if (!client.ok()) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = client.value();
    conn->tenant = next_tenant_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_[conn->tenant] = conn;
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
  DoDrain();
}

void Server::DoDrain() {
  // 1. Stop accepting: nothing new can join the queues.
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // 2. Flush admitted work across the pool. The pool first stops its
  //    health prober and releases injected wedges (a chaos run must
  //    still drain), then Enqueue rejects from here on
  //    ("failed-precondition") while continuations of in-flight batch
  //    submits keep running until their windows are flushed and their
  //    responses written — the graceful half of SIGTERM.
  pool_->Drain();
  // 3. Wake every reader blocked in recv and join them all.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_.size());
    for (auto& [tenant, conn] : conns_) conns.push_back(conn);
    readers.swap(readers_);
  }
  for (auto& conn : conns) ShutdownFd(conn->fd);
  for (std::thread& t : readers) t.join();
  conns.clear();
  // 4. Release the registry; the last reference destroys each
  //    connection's sessions (the executors have stopped, so this thread
  //    holds the final references).
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.clear();
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string payload;
    Result<bool> frame =
        ReadFrame(conn->fd, &payload, options_.max_frame_bytes);
    if (!frame.ok()) {
      // Truncated/oversized frame or socket error: the stream is no
      // longer frame-aligned. Best-effort id-0 error, then close.
      SendError(conn, 0, frame.status());
      break;
    }
    if (!frame.value()) break;  // clean EOF
    Result<Json> doc = Json::Parse(payload);
    if (!doc.ok()) {
      SendError(conn, 0, Status::ParseError("request is not valid JSON: " +
                                            doc.status().message()));
      break;
    }
    if (!Dispatch(conn, doc.value())) break;
  }
  conn->closed.store(true);
  // Discard whatever the connection still has queued on any replica
  // (nobody can observe the responses) and stop its batch continuations
  // at the next quantum.
  pool_->RemoveTenant(conn->tenant);
  ShutdownFd(conn->fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->tenant);
}

bool Server::Dispatch(const std::shared_ptr<Connection>& conn,
                      const Json& request) {
  if (!request.is_object()) {
    SendError(conn, 0, Status::ParseError("request must be a JSON object"));
    return false;
  }
  const Json* id_node = request.Find("id");
  const Json* method_node = request.Find("method");
  if (id_node == nullptr || !id_node->is_int() || method_node == nullptr ||
      !method_node->is_string()) {
    SendError(conn, 0,
              Status::ParseError(
                  "request needs an integer 'id' and a string 'method'"));
    return false;
  }
  const int64_t id = id_node->as_int();
  const std::string& method = method_node->as_string();
  Json params = Json::Object();
  if (const Json* p = request.Find("params"); p != nullptr) {
    if (!p->is_object()) {
      SendError(conn, 0, Status::ParseError("'params' must be an object"));
      return false;
    }
    params = *p;
  }

  // Service-free methods answer inline on the reader thread.
  if (method == "ping") {
    Json result = Json::Object();
    result.Set("pong", Json::Bool(true));
    SendResult(conn, id, std::move(result));
    return true;
  }
  if (method == "version") {
    Json result = Json::Object();
    result.Set("version", Json::Str(kRelaccVersion));
    SendResult(conn, id, std::move(result));
    return true;
  }
  if (method == "stats") {
    const Scheduler::Stats stats = pool_->aggregate_stats();
    Json result = Json::Object();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      result.Set("connections", Json::Int(static_cast<int64_t>(conns_.size())));
    }
    result.Set("draining", Json::Bool(pool_->draining()));
    result.Set("executed_interactive", Json::Int(stats.executed_interactive));
    result.Set("executed_batch", Json::Int(stats.executed_batch));
    result.Set("rejected", Json::Int(stats.rejected));
    result.Set("p50_interactive_ms", Json::Real(stats.p50_interactive_ms));
    result.Set("p99_interactive_ms", Json::Real(stats.p99_interactive_ms));
    result.Set("p50_batch_ms", Json::Real(stats.p50_batch_ms));
    result.Set("p99_batch_ms", Json::Real(stats.p99_batch_ms));
    // Failure-handling telemetry: deadline cancellations, shed load and
    // the per-replica health ledger.
    result.Set("deadline_exceeded", Json::Int(deadline_exceeded_.load()));
    result.Set("cancelled_queued", Json::Int(stats.cancelled_queued));
    result.Set("expired_running", Json::Int(stats.expired_running));
    result.Set("shed", Json::Int(shed_.load()));
    result.Set("quarantined_replicas", Json::Int(pool_->quarantined_count()));
    Json replicas = Json::Array();
    const std::vector<ReplicaPool::ReplicaStats> per_replica =
        pool_->replica_stats();
    for (std::size_t i = 0; i < per_replica.size(); ++i) {
      const ReplicaPool::ReplicaStats& r = per_replica[i];
      Json entry = Json::Object();
      entry.Set("replica", Json::Int(static_cast<int64_t>(i)));
      entry.Set("healthy", Json::Bool(r.healthy));
      entry.Set("load", Json::Int(r.load));
      entry.Set("executed", Json::Int(r.scheduler.executed_interactive +
                                      r.scheduler.executed_batch));
      entry.Set("timeouts", Json::Int(r.timeouts));
      entry.Set("quarantines", Json::Int(r.quarantines));
      entry.Set("readmissions", Json::Int(r.readmissions));
      replicas.Append(std::move(entry));
    }
    result.Set("replicas", std::move(replicas));
    // Storage + memo telemetry of the underlying services: how they
    // were built (row / columnar / snapshot — identical across the
    // pool), how large the dictionary grew, and whether the verdict
    // memos are earning hits (summed over replicas).
    result.Set("storage_mode", Json::Str(services_.front()->storage_mode()));
    result.Set(
        "dictionary_terms",
        Json::Int(static_cast<int64_t>(services_.front()->dictionary_terms())));
    int64_t memo_hits = 0;
    int64_t memo_misses = 0;
    int64_t memo_entries = 0;
    for (AccuracyService* service : services_) {
      const snapshot::MemoCache::Stats memo = service->memo_stats();
      memo_hits += memo.hits;
      memo_misses += memo.misses;
      memo_entries += memo.entries;
    }
    result.Set("memo_hits", Json::Int(memo_hits));
    result.Set("memo_misses", Json::Int(memo_misses));
    result.Set("memo_entries", Json::Int(memo_entries));
    SendResult(conn, id, std::move(result));
    return true;
  }

  if (!IsNewWorkMethod(method) && !IsSessionBoundMethod(method)) {
    SendError(conn, id, Status::NotFound("unknown method '" + method + "'"));
    return true;
  }

  // Per-request deadline: the wire param wins over the daemon default.
  Result<int64_t> deadline_ms =
      OptInt(params, "deadline_ms", options_.default_deadline_ms);
  if (!deadline_ms.ok()) {
    SendError(conn, id, deadline_ms.status());
    return true;
  }
  if (deadline_ms.value() < 0) {
    SendError(conn, id,
              Status::InvalidArgument("param 'deadline_ms' must be >= 0"));
    return true;
  }

  // Routing: new work to the least-loaded healthy replica; session-bound
  // work follows the session's pin.
  int replica = -1;
  if (IsNewWorkMethod(method)) {
    replica = pool_->RouteNew();
    if (replica < 0) {
      shed_.fetch_add(1);
      SendError(conn, id,
                Status::ResourceExhausted(
                    "every replica is quarantined; retry shortly"),
                pool_->shed_retry_after_ms());
      return true;
    }
  } else {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) {
      SendError(conn, id, sid.status());
      return true;
    }
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      auto it = conn->session_replica.find(sid.value());
      if (it != conn->session_replica.end()) replica = it->second;
    }
    if (replica < 0) {
      SendError(conn, id,
                Status::NotFound(NoSuchSession(method, sid.value())));
      return true;
    }
  }

  if (fault_ != nullptr && fault_->ShouldFailRequest(replica)) {
    SendError(conn, id,
              Status::Internal("injected fault (replica " +
                               std::to_string(replica) + ")"));
    return true;
  }

  auto responded = std::make_shared<std::atomic<bool>>(false);
  Scheduler::JobControl control;
  if (deadline_ms.value() > 0) {
    control.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms.value());
    control.on_deadline = [this, conn, id, responded,
                           ms = deadline_ms.value()] {
      if (responded->exchange(true)) return;  // the job already answered
      deadline_exceeded_.fetch_add(1);
      SendError(conn, id,
                Status::DeadlineExceeded("deadline of " + std::to_string(ms) +
                                         " ms exceeded"));
    };
  }

  // pipeline.submit parses its entity payload here on the reader thread
  // (the schema is immutable service state), so the executor's quantum is
  // pure service work and malformed batches are rejected without
  // occupying a queue slot.
  if (method == "pipeline.submit") {
    Result<int64_t> session = params.GetInt("session");
    if (!session.ok()) {
      SendError(conn, id, session.status());
      return true;
    }
    const Json* entities_node = params.Find("entities");
    if (entities_node == nullptr) {
      SendError(conn, id,
                Status::InvalidArgument("param 'entities' is required"));
      return true;
    }
    Result<std::vector<EntityInstance>> entities =
        EntitiesFromJson(*entities_node, schema_);
    if (!entities.ok()) {
      SendError(conn, id, entities.status());
      return true;
    }
    auto state = std::make_shared<SubmitState>();
    state->session = session.value();
    state->entities = std::move(entities).value();
    int64_t retry_after_ms = -1;
    Status admitted = pool_->scheduler(replica)->Enqueue(
        conn->tenant, JobClass::kBatch,
        [this, conn, id, state, replica, responded, control] {
          RunSubmitQuantum(conn, id, state, replica, responded, control);
        },
        control, &retry_after_ms);
    if (!admitted.ok()) SendError(conn, id, admitted, retry_after_ms);
    return true;
  }

  const JobClass cls =
      method == "pipeline.finish" ? JobClass::kBatch : JobClass::kInteractive;
  int64_t retry_after_ms = -1;
  Status admitted = pool_->scheduler(replica)->Enqueue(
      conn->tenant, cls,
      [this, conn, id, method, params, replica, responded] {
        RunJob(conn, id, method, params, replica, responded);
      },
      control, &retry_after_ms);
  if (!admitted.ok()) SendError(conn, id, admitted, retry_after_ms);
  return true;
}

void Server::RunSubmitQuantum(const std::shared_ptr<Connection>& conn,
                              int64_t id,
                              const std::shared_ptr<SubmitState>& state,
                              int replica, const ResponseGuard& responded,
                              const Scheduler::JobControl& control) {
  if (conn->closed.load()) return;
  // The watchdog already answered (deadline passed while this quantum
  // was queued or while the executor sat in pre_job): abandon the
  // submit; the session keeps what it has and the client restarts on a
  // fresh session.
  if (responded->load()) return;
  PipelineSession* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(conn->sessions_mu);
    auto it = conn->pipelines.find(state->session);
    if (it != conn->pipelines.end()) session = it->second.get();
  }
  if (session == nullptr) {
    SendError(conn, id,
              Status::NotFound("no pipeline session " +
                               std::to_string(state->session)),
              -1, responded);
    return;
  }
  // One window per quantum: the session has inline_windows set, so this
  // Submit chases and completes the window right here before returning —
  // and then yields the executor to whoever is next.
  const std::size_t take =
      std::min(static_cast<std::size_t>(session->window()),
               state->entities.size() - state->pos);
  std::vector<EntityInstance> chunk;
  chunk.reserve(take);
  const auto begin =
      state->entities.begin() + static_cast<std::ptrdiff_t>(state->pos);
  chunk.assign(std::make_move_iterator(begin),
               std::make_move_iterator(begin +
                                       static_cast<std::ptrdiff_t>(take)));
  Status submitted = session->Submit(std::move(chunk));
  if (!submitted.ok()) {
    SendError(conn, id, submitted, -1, responded);
    return;
  }
  state->pos += take;
  if (state->pos >= state->entities.size()) {
    Json result = Json::Object();
    result.Set("accepted",
               Json::Int(static_cast<int64_t>(state->entities.size())));
    SendResult(conn, id, std::move(result), responded);
    return;
  }
  // The continuation carries the same deadline contract: the watchdog
  // can cancel the remaining windows of an over-deadline submit.
  pool_->scheduler(replica)->RequeueFront(
      conn->tenant, JobClass::kBatch,
      [this, conn, id, state, replica, responded, control] {
        RunSubmitQuantum(conn, id, state, replica, responded, control);
      },
      control);
}

void Server::RunJob(const std::shared_ptr<Connection>& conn, int64_t id,
                    const std::string& method, const Json& params, int replica,
                    const ResponseGuard& responded) {
  if (conn->closed.load()) return;
  if (responded->load()) return;  // cancelled while queued / in pre_job
  AccuracyService* service = services_[static_cast<std::size_t>(replica)];

  if (method == "pipeline.start") {
    Result<int64_t> window = OptInt(params, "window", 0);
    Result<std::string> completion = OptString(params, "completion", "");
    if (!window.ok()) return SendError(conn, id, window.status(), -1, responded);
    if (!completion.ok()) {
      return SendError(conn, id, completion.status(), -1, responded);
    }
    PipelineSessionOptions options;
    options.inline_windows = true;
    options.window = window.value();
    if (!completion.value().empty()) {
      Result<CompletionPolicy> policy = ParseCompletion(completion.value());
      if (!policy.ok()) return SendError(conn, id, policy.status(), -1, responded);
      options.completion = policy.value();
    }
    Result<std::unique_ptr<PipelineSession>> session =
        service->StartPipeline(std::move(options));
    if (!session.ok()) return SendError(conn, id, session.status(), -1, responded);
    const int64_t sid = next_session_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      conn->pipelines[sid] = std::move(session).value();
      conn->session_replica[sid] = replica;
    }
    Json result = Json::Object();
    result.Set("session", Json::Int(sid));
    return SendResult(conn, id, std::move(result), responded);
  }

  if (method == "pipeline.poll" || method == "pipeline.drain" ||
      method == "pipeline.finish") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status(), -1, responded);
    PipelineSession* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      auto it = conn->pipelines.find(sid.value());
      if (it != conn->pipelines.end()) session = it->second.get();
    }
    if (session == nullptr) {
      return SendError(conn, id,
                       Status::NotFound("no pipeline session " +
                                        std::to_string(sid.value())),
                       -1, responded);
    }
    if (method == "pipeline.poll") {
      Json result = Json::Object();
      std::optional<EntityReport> report = session->Poll();
      result.Set("report", report.has_value()
                               ? EntityReportToJson(*report, schema_)
                               : Json::Null());
      return SendResult(conn, id, std::move(result), responded);
    }
    if (method == "pipeline.drain") {
      Json reports = Json::Array();
      for (const EntityReport& report : session->Drain()) {
        reports.Append(EntityReportToJson(report, schema_));
      }
      Json result = Json::Object();
      result.Set("reports", std::move(reports));
      return SendResult(conn, id, std::move(result), responded);
    }
    Result<PipelineReport> report = session->Finish();
    if (!report.ok()) return SendError(conn, id, report.status(), -1, responded);
    return SendResult(conn, id, PipelineReportToJson(report.value(), schema_),
                      responded);
  }

  if (method == "session.close") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status(), -1, responded);
    std::unique_ptr<PipelineSession> pipeline;
    std::unique_ptr<InteractionSession> interaction;
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      if (auto it = conn->pipelines.find(sid.value());
          it != conn->pipelines.end()) {
        pipeline = std::move(it->second);
        conn->pipelines.erase(it);
        erased = true;
      } else if (auto jt = conn->interactions.find(sid.value());
                 jt != conn->interactions.end()) {
        interaction = std::move(jt->second);
        conn->interactions.erase(jt);
        erased = true;
      }
      conn->session_replica.erase(sid.value());
    }
    // `pipeline`/`interaction` destroy here, outside the map lock, on
    // the session's own pinned executor.
    if (!erased) {
      return SendError(conn, id,
                       Status::NotFound("no session " +
                                        std::to_string(sid.value())),
                       -1, responded);
    }
    Json result = Json::Object();
    result.Set("closed", Json::Bool(true));
    return SendResult(conn, id, std::move(result), responded);
  }

  if (method == "deduce") {
    Result<std::optional<EntityInstance>> entity = OptEntity(params, schema_);
    if (!entity.ok()) return SendError(conn, id, entity.status(), -1, responded);
    Result<ChaseOutcome> outcome =
        entity.value().has_value() ? service->DeduceEntity(*entity.value())
                                   : service->DeduceEntity();
    if (!outcome.ok()) return SendError(conn, id, outcome.status(), -1, responded);
    return SendResult(conn, id, OutcomeToJson(outcome.value(), schema_),
                      responded);
  }

  if (method == "topk") {
    Result<int64_t> k = OptInt(params, "k", 5);
    Result<std::string> algo_name = OptString(params, "algo", "topkct");
    if (!k.ok()) return SendError(conn, id, k.status(), -1, responded);
    if (!algo_name.ok()) {
      return SendError(conn, id, algo_name.status(), -1, responded);
    }
    Result<TopKAlgorithm> algo = ParseAlgo(algo_name.value());
    if (!algo.ok()) return SendError(conn, id, algo.status(), -1, responded);
    Result<ChaseOutcome> outcome = service->DeduceEntity();
    if (!outcome.ok()) return SendError(conn, id, outcome.status(), -1, responded);
    if (!outcome.value().church_rosser) {
      return SendError(
          conn, id,
          Status::FailedPrecondition("specification is not Church-Rosser: " +
                                     outcome.value().violation),
          -1, responded);
    }
    Result<TopKResult> ranked =
        service->TopK(static_cast<int>(k.value()), algo.value());
    if (!ranked.ok()) return SendError(conn, id, ranked.status(), -1, responded);
    return SendResult(conn, id,
                      TopKReportToJson(outcome.value().target, ranked.value(),
                                       schema_),
                      responded);
  }

  if (method == "interact.start") {
    Result<int64_t> k = OptInt(params, "k", 15);
    if (!k.ok()) return SendError(conn, id, k.status(), -1, responded);
    Result<std::optional<EntityInstance>> entity = OptEntity(params, schema_);
    if (!entity.ok()) return SendError(conn, id, entity.status(), -1, responded);
    InteractionOptions options;
    options.k = static_cast<int>(k.value());
    Result<std::unique_ptr<InteractionSession>> session =
        entity.value().has_value()
            ? service->StartInteraction(std::move(*entity.value()),
                                        std::move(options))
            : service->StartInteraction(std::move(options));
    if (!session.ok()) return SendError(conn, id, session.status(), -1, responded);
    const int64_t sid = next_session_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      conn->interactions[sid] = std::move(session).value();
      conn->session_replica[sid] = replica;
    }
    Json result = Json::Object();
    result.Set("session", Json::Int(sid));
    return SendResult(conn, id, std::move(result), responded);
  }

  if (method == "interact.suggest" || method == "interact.revise" ||
      method == "interact.accept") {
    Result<int64_t> sid = params.GetInt("session");
    if (!sid.ok()) return SendError(conn, id, sid.status(), -1, responded);
    InteractionSession* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(conn->sessions_mu);
      auto it = conn->interactions.find(sid.value());
      if (it != conn->interactions.end()) session = it->second.get();
    }
    if (session == nullptr) {
      return SendError(conn, id,
                       Status::NotFound("no interaction session " +
                                        std::to_string(sid.value())),
                       -1, responded);
    }
    if (method == "interact.suggest") {
      Result<Suggestion> suggestion = session->Suggest();
      if (!suggestion.ok()) {
        return SendError(conn, id, suggestion.status(), -1, responded);
      }
      return SendResult(conn, id,
                        SuggestionToJson(suggestion.value(),
                                         session->finished(), schema_),
                        responded);
    }
    if (method == "interact.revise") {
      Result<std::string> attr = params.GetString("attr");
      if (!attr.ok()) return SendError(conn, id, attr.status(), -1, responded);
      std::optional<AttrId> a = schema_.IndexOf(attr.value());
      if (!a) {
        return SendError(conn, id,
                         Status::InvalidArgument("unknown attribute '" +
                                                 attr.value() + "'"),
                         -1, responded);
      }
      const Json* cell = params.Find("value");
      if (cell == nullptr) {
        return SendError(conn, id,
                         Status::InvalidArgument("param 'value' is required"),
                         -1, responded);
      }
      Result<Value> value = ValueFromJson(*cell, schema_.type(*a), "value");
      if (!value.ok()) return SendError(conn, id, value.status(), -1, responded);
      Status revised = session->Revise(*a, std::move(value).value());
      if (!revised.ok()) return SendError(conn, id, revised, -1, responded);
      Json result = Json::Object();
      result.Set("revisions", Json::Int(session->revisions()));
      return SendResult(conn, id, std::move(result), responded);
    }
    Result<int64_t> index = params.GetInt("index");
    if (!index.ok()) return SendError(conn, id, index.status(), -1, responded);
    Result<Tuple> target = session->Accept(static_cast<int>(index.value()));
    if (!target.ok()) return SendError(conn, id, target.status(), -1, responded);
    Json result = Json::Object();
    result.Set("target", TupleToJson(target.value(), schema_));
    result.Set("finished", Json::Bool(true));
    return SendResult(conn, id, std::move(result), responded);
  }

  SendError(conn, id, Status::NotFound("unknown method '" + method + "'"), -1,
            responded);
}

void Server::SendResult(const std::shared_ptr<Connection>& conn, int64_t id,
                        Json result, const ResponseGuard& responded) {
  if (responded && responded->exchange(true)) return;
  const std::string payload = MakeResponse(id, std::move(result)).Dump();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // A failed write means the peer vanished; the reader notices on its own.
  (void)WriteFrame(conn->fd, payload);
}

void Server::SendError(const std::shared_ptr<Connection>& conn, int64_t id,
                       const Status& status, int64_t retry_after_ms,
                       const ResponseGuard& responded) {
  if (responded && responded->exchange(true)) return;
  const std::string payload =
      MakeErrorResponse(id, WireErrorCode(status.code()), status.message(),
                        retry_after_ms)
          .Dump();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  (void)WriteFrame(conn->fd, payload);
}

}  // namespace serve
}  // namespace relacc
