#include "serve/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

namespace relacc {
namespace serve {

namespace {

/// Splits `text` on `sep` (no escaping; fault specs are flag-sized).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= text.size()) {
    std::size_t at = text.find(sep, from);
    if (at == std::string::npos) at = text.size();
    out.push_back(text.substr(from, at - from));
    from = at + 1;
  }
  return out;
}

/// Strict non-negative integer parse; no sign, no trailing junk.
Result<int64_t> ParseNumber(const std::string& text, const std::string& what) {
  if (text.empty()) {
    return Status::InvalidArgument("fault spec: " + what + " is empty");
  }
  int64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("fault spec: " + what +
                                     " must be a non-negative integer, got '" +
                                     text + "'");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

/// `<replica|*>`: -1 for the wildcard.
Result<int> ParseReplica(const std::string& text, bool allow_any) {
  if (text == "*") {
    if (!allow_any) {
      return Status::InvalidArgument(
          "fault spec: wedge/fail need a concrete replica, not '*'");
    }
    return -1;
  }
  Result<int64_t> n = ParseNumber(text, "replica");
  if (!n.ok()) return n.status();
  return static_cast<int>(n.value());
}

}  // namespace

Result<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& spec) {
  if (spec.empty()) return std::unique_ptr<FaultInjector>();
  auto injector = std::unique_ptr<FaultInjector>(new FaultInjector());
  for (const std::string& item : Split(spec, ';')) {
    if (item.empty()) continue;
    const std::vector<std::string> parts = Split(item, ':');
    Rule rule;
    if (parts[0] == "delay" && parts.size() == 3) {
      rule.kind = Rule::Kind::kDelay;
      Result<int> replica = ParseReplica(parts[1], /*allow_any=*/true);
      Result<int64_t> ms = ParseNumber(parts[2], "delay ms");
      if (!replica.ok()) return replica.status();
      if (!ms.ok()) return ms.status();
      rule.replica = replica.value();
      rule.arg = ms.value();
    } else if (parts[0] == "jitter" && parts.size() == 4) {
      rule.kind = Rule::Kind::kJitter;
      Result<int> replica = ParseReplica(parts[1], /*allow_any=*/true);
      Result<int64_t> ms = ParseNumber(parts[2], "jitter max_ms");
      Result<int64_t> seed = ParseNumber(parts[3], "jitter seed");
      if (!replica.ok()) return replica.status();
      if (!ms.ok()) return ms.status();
      if (!seed.ok()) return seed.status();
      rule.replica = replica.value();
      rule.arg = ms.value();
      rule.seed = static_cast<uint64_t>(seed.value());
    } else if (parts[0] == "wedge" && parts.size() == 3) {
      rule.kind = Rule::Kind::kWedge;
      Result<int> replica = ParseReplica(parts[1], /*allow_any=*/false);
      Result<int64_t> after = ParseNumber(parts[2], "wedge after_n");
      if (!replica.ok()) return replica.status();
      if (!after.ok()) return after.status();
      rule.replica = replica.value();
      rule.arg = after.value();
    } else if (parts[0] == "fail" && parts.size() == 3) {
      rule.kind = Rule::Kind::kFail;
      Result<int> replica = ParseReplica(parts[1], /*allow_any=*/false);
      Result<int64_t> every = ParseNumber(parts[2], "fail every_n");
      if (!replica.ok()) return replica.status();
      if (!every.ok()) return every.status();
      if (every.value() < 1) {
        return Status::InvalidArgument("fault spec: fail every_n must be >= 1");
      }
      rule.replica = replica.value();
      rule.arg = every.value();
    } else {
      return Status::InvalidArgument(
          "fault spec: unrecognized item '" + item +
          "' (expected delay:R:MS, jitter:R:MS:SEED, wedge:R:N or fail:R:N)");
    }
    injector->rules_.push_back(rule);
    injector->jitter_rngs_.emplace_back(rule.seed);
  }
  if (injector->rules_.empty()) return std::unique_ptr<FaultInjector>();
  return injector;
}

void FaultInjector::OnExecutorJob(int replica) {
  int64_t pause_ms = 0;
  bool wedge = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<std::size_t>(replica) >= jobs_started_.size()) {
      jobs_started_.resize(static_cast<std::size_t>(replica) + 1, 0);
    }
    const int64_t nth = ++jobs_started_[static_cast<std::size_t>(replica)];
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      Rule& rule = rules_[i];
      if (rule.replica != -1 && rule.replica != replica) continue;
      switch (rule.kind) {
        case Rule::Kind::kDelay:
          pause_ms += rule.arg;
          break;
        case Rule::Kind::kJitter:
          if (rule.arg > 0) {
            pause_ms += std::uniform_int_distribution<int64_t>(
                0, rule.arg)(jitter_rngs_[i]);
          }
          break;
        case Rule::Kind::kWedge:
          if (!released_ && nth > rule.arg) wedge = true;
          break;
        case Rule::Kind::kFail:
          break;  // request-level, not an executor fault
      }
    }
    if (pause_ms > 0) ++stats_.delays;
    if (wedge) ++stats_.wedges;
  }
  if (pause_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }
  if (wedge) {
    std::unique_lock<std::mutex> lock(mu_);
    release_cv_.wait(lock, [this] { return released_; });
  }
}

bool FaultInjector::ShouldFailRequest(int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(replica) >= requests_routed_.size()) {
    requests_routed_.resize(static_cast<std::size_t>(replica) + 1, 0);
  }
  const int64_t nth = ++requests_routed_[static_cast<std::size_t>(replica)];
  for (const Rule& rule : rules_) {
    if (rule.kind != Rule::Kind::kFail) continue;
    if (rule.replica != replica) continue;
    if (nth % rule.arg == 0) {
      ++stats_.failures;
      return true;
    }
  }
  return false;
}

void FaultInjector::ReleaseAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
  }
  release_cv_.notify_all();
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace relacc
