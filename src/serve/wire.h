#ifndef RELACC_SERVE_WIRE_H_
#define RELACC_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/relation.h"
#include "pipeline/pipeline.h"
#include "topk/topk_ct.h"
#include "util/json.h"
#include "util/status.h"

namespace relacc {

struct Suggestion;  // api/accuracy_service.h

namespace serve {

/// The `relacc serve` wire protocol: length-prefixed JSON frames over a
/// stream socket. Each frame is
///
///   [4-byte big-endian payload length][payload bytes]
///
/// where the payload is one JSON document. Requests carry
///   {"id": <int>, "method": "<name>", "params": {...}}
/// and every request receives exactly one response frame,
///   {"id": <int>, "ok": true,  "result": {...}}   or
///   {"id": <int>, "ok": false, "error": {"code": "<kebab>",
///                                        "message": "..."}}.
/// Responses to one connection come back in request order. A frame whose
/// declared length exceeds the receiver's limit, or a payload that is not
/// a JSON object of the shape above, is a protocol error: the server
/// answers with an `id` 0 error frame and closes the connection (the
/// stream can no longer be trusted to be frame-aligned).

/// Hard ceiling on one frame's payload; also the default server limit.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Encodes `payload` as a frame (length prefix + bytes).
std::string EncodeFrame(const std::string& payload);

/// Reads one frame from `fd` into `payload`. Returns false on a clean
/// EOF at a frame boundary (the peer hung up between frames), true when
/// a frame was read. Errors: kParseError on a truncated frame (EOF
/// mid-length or mid-payload), kInvalidArgument when the declared length
/// exceeds `max_bytes`, kIoError on socket errors.
Result<bool> ReadFrame(int fd, std::string* payload,
                       uint32_t max_bytes = kMaxFrameBytes);

/// Writes `payload` as one frame to `fd` (kIoError on failure; SIGPIPE is
/// suppressed so a vanished peer surfaces as a Status, not a signal).
Status WriteFrame(int fd, const std::string& payload);

// --- request / response documents -----------------------------------------

Json MakeRequest(int64_t id, const std::string& method, Json params);
Json MakeResponse(int64_t id, Json result);
/// `retry_after_ms >= 0` attaches a backpressure hint to the error
/// object (`error.retry_after_ms`): how long the client should wait
/// before retrying. Only resource-exhausted rejections carry one.
Json MakeErrorResponse(int64_t id, const std::string& code,
                       const std::string& message,
                       int64_t retry_after_ms = -1);

/// The wire error code for a library Status ("invalid-argument",
/// "not-found", "out-of-range", "failed-precondition", "internal",
/// "io-error", "parse-error", "resource-exhausted").
std::string WireErrorCode(StatusCode code);

/// The inverse mapping, for clients turning an error frame back into a
/// Status; unknown codes become kInternal.
StatusCode StatusCodeFromWire(const std::string& code);

// --- entity batches over the wire -----------------------------------------
//
// pipeline.submit carries entity instances as
//   [{"id": <entity id>, "rows": [[cell, ...], ...]}, ...]
// with cells typed against the serving specification's entity schema
// (exactly the spec-document tuple convention of io/spec_io.h).

Json EntitiesToJson(const std::vector<EntityInstance>& entities,
                    const Schema& schema);
Result<std::vector<EntityInstance>> EntitiesFromJson(const Json& array,
                                                     const Schema& schema);

// --- result documents ------------------------------------------------------
//
// These are the single source of truth for the JSON the CLI prints and
// the server returns, so `relacc pipeline --json` output and a serve
// client's pipeline.finish result are byte-identical by construction
// (the serve-smoke CI lane diffs them).

/// The `relacc pipeline --json` document (entity counts, summary
/// counters, final targets).
Json PipelineReportToJson(const PipelineReport& report, const Schema& schema);

/// One per-entity report, as returned by pipeline.poll / pipeline.drain.
Json EntityReportToJson(const EntityReport& report, const Schema& schema);

/// The `relacc topk --json` document (deduced target + ranked candidates).
Json TopKReportToJson(const Tuple& deduced, const TopKResult& result,
                      const Schema& schema);

/// One interaction round as returned by interact.suggest.
Json SuggestionToJson(const Suggestion& suggestion, bool finished,
                      const Schema& schema);

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_WIRE_H_
