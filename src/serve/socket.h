#ifndef RELACC_SERVE_SOCKET_H_
#define RELACC_SERVE_SOCKET_H_

#include <string>

#include "util/status.h"

namespace relacc {
namespace serve {

/// Thin POSIX TCP wrappers for the serve daemon and its clients — no
/// third-party dependency, IPv4 only (the daemon binds loopback by
/// default; production fronting is a reverse proxy's business). All
/// functions return raw fds the caller owns (CloseFd).

/// Creates a listening socket bound to host:port (SO_REUSEADDR; port 0
/// picks an ephemeral port — read it back with BoundPort). kIoError on
/// bind/listen failure (the "address already in use" path callers map to
/// exit code 1).
Result<int> ListenOn(const std::string& host, int port, int backlog = 64);

/// The local port a socket is bound to (resolves port-0 binds).
Result<int> BoundPort(int fd);

/// Accepts one connection; restarts on EINTR. kIoError on failure
/// (including the listener having been closed or shut down).
Result<int> AcceptConn(int listen_fd);

/// Connects to host:port. kIoError on failure.
Result<int> ConnectTo(const std::string& host, int port);

/// Connects with a bound on the handshake: the connect is attempted
/// non-blocking and polled for at most `timeout_ms`; on expiry the fd is
/// closed and kDeadlineExceeded returned. `timeout_ms <= 0` degrades to
/// the blocking ConnectTo. The returned fd is back in blocking mode.
Result<int> ConnectTo(const std::string& host, int port, int timeout_ms);

/// Bounds every subsequent recv on `fd` (SO_RCVTIMEO): a blocked read
/// returns EAGAIN after `ms`, which the wire layer maps to
/// kDeadlineExceeded. `ms <= 0` clears the bound.
Status SetRecvTimeout(int fd, int ms);

/// Bounds every subsequent send on `fd` (SO_SNDTIMEO); see
/// SetRecvTimeout.
Status SetSendTimeout(int fd, int ms);

/// shutdown(2) both directions, waking any thread blocked in recv on the
/// fd; safe on an already-shut-down socket.
void ShutdownFd(int fd);

void CloseFd(int fd);

}  // namespace serve
}  // namespace relacc

#endif  // RELACC_SERVE_SOCKET_H_
