#include "serve/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace relacc {
namespace serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Result<int> ListenOn(const std::string& host, int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535], got " +
                                   std::to_string(port));
  }
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  // REUSEADDR so a restarted daemon does not trip over TIME_WAIT from
  // its predecessor's connections.
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
           sizeof(sockaddr_in)) != 0) {
    Status st = Errno("bind " + host + ":" + std::to_string(port));
    close(fd);
    return st;
  }
  if (listen(fd, backlog) != 0) {
    Status st = Errno("listen");
    close(fd);
    return st;
  }
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> AcceptConn(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Request/response frames are small; Nagle only adds latency.
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Result<int> ConnectTo(const std::string& host, int port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
              sizeof(sockaddr_in)) != 0) {
    Status st = Errno("connect " + host + ":" + std::to_string(port));
    close(fd);
    return st;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> ConnectTo(const std::string& host, int port, int timeout_ms) {
  if (timeout_ms <= 0) return ConnectTo(host, port);
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    Status st = Errno("fcntl O_NONBLOCK");
    close(fd);
    return st;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
              sizeof(sockaddr_in)) != 0) {
    if (errno != EINPROGRESS) {
      Status st = Errno("connect " + host + ":" + std::to_string(port));
      close(fd);
      return st;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      close(fd);
      return Status::DeadlineExceeded("connect " + host + ":" +
                                      std::to_string(port) + ": timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (rc < 0) {
      Status st = Errno("poll");
      close(fd);
      return st;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      Status st = Errno("connect " + host + ":" + std::to_string(port));
      close(fd);
      return st;
    }
  }
  if (fcntl(fd, F_SETFL, flags) != 0) {  // back to blocking mode
    Status st = Errno("fcntl restore flags");
    close(fd);
    return st;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

namespace {

Status SetSockTimeout(int fd, int optname, int ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  }
  if (setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt timeout");
  }
  return Status::OK();
}

}  // namespace

Status SetRecvTimeout(int fd, int ms) {
  return SetSockTimeout(fd, SO_RCVTIMEO, ms);
}

Status SetSendTimeout(int fd, int ms) {
  return SetSockTimeout(fd, SO_SNDTIMEO, ms);
}

void ShutdownFd(int fd) { shutdown(fd, SHUT_RDWR); }

void CloseFd(int fd) { close(fd); }

}  // namespace serve
}  // namespace relacc
