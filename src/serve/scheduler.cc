#include "serve/scheduler.h"

#include <utility>

namespace relacc {
namespace serve {

Scheduler::Scheduler() : Scheduler(Options()) {}

Scheduler::Scheduler(Options options) : options_(options) {
  executor_ = std::thread([this] { ExecutorLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

Status Scheduler::Enqueue(int64_t tenant, JobClass cls,
                          std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      return Status::FailedPrecondition("scheduler is draining");
    }
    TenantQueues& q = tenants_[tenant];
    if (q.size() >= options_.queue_depth) {
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "tenant " + std::to_string(tenant) + " has " +
          std::to_string(q.size()) + " jobs pending (limit " +
          std::to_string(options_.queue_depth) + ")");
    }
    (cls == JobClass::kInteractive ? q.interactive : q.batch)
        .push_back(std::move(job));
    MarkReady(tenant, cls);
  }
  work_cv_.notify_one();
  return Status::OK();
}

void Scheduler::RequeueFront(int64_t tenant, JobClass cls,
                             std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // abrupt teardown: the continuation is dropped
    TenantQueues& q = tenants_[tenant];
    (cls == JobClass::kInteractive ? q.interactive : q.batch)
        .push_front(std::move(job));
    MarkReady(tenant, cls);
  }
  work_cv_.notify_one();
}

void Scheduler::RemoveTenant(int64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.erase(tenant);
  for (std::deque<int64_t>* rotation : {&ready_interactive_, &ready_batch_}) {
    for (auto it = rotation->begin(); it != rotation->end();) {
      it = *it == tenant ? rotation->erase(it) : it + 1;
    }
  }
}

void Scheduler::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ || stop_;
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Scheduler::MarkReady(int64_t tenant, JobClass cls) {
  std::deque<int64_t>& rotation =
      cls == JobClass::kInteractive ? ready_interactive_ : ready_batch_;
  for (const int64_t t : rotation) {
    if (t == tenant) return;
  }
  rotation.push_back(tenant);
}

bool Scheduler::PopNext(std::function<void()>* job, JobClass* cls) {
  // Interactive strictly first; round-robin across tenants within the
  // class (the tenant leaves the rotation while its job runs and
  // re-enters at the back, so no tenant runs twice before a ready peer
  // ran once).
  for (JobClass c : {JobClass::kInteractive, JobClass::kBatch}) {
    std::deque<int64_t>& rotation =
        c == JobClass::kInteractive ? ready_interactive_ : ready_batch_;
    while (!rotation.empty()) {
      const int64_t tenant = rotation.front();
      rotation.pop_front();
      auto it = tenants_.find(tenant);
      if (it == tenants_.end()) continue;  // removed while queued
      std::deque<std::function<void()>>& q = c == JobClass::kInteractive
                                                 ? it->second.interactive
                                                 : it->second.batch;
      if (q.empty()) continue;
      *job = std::move(q.front());
      q.pop_front();
      *cls = c;
      if (!q.empty()) rotation.push_back(tenant);
      return true;
    }
  }
  return false;
}

void Scheduler::ExecutorLoop() {
  for (;;) {
    std::function<void()> job;
    JobClass cls = JobClass::kInteractive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stop_) return;
        if (PopNext(&job, &cls)) break;
        // Queues are empty. Draining means no further Enqueue can add
        // work and no job is running to spawn a continuation, so this
        // is the drained fixpoint.
        if (draining_) return;
        work_cv_.wait(lock);
      }
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cls == JobClass::kInteractive) {
        ++stats_.executed_interactive;
      } else {
        ++stats_.executed_batch;
      }
    }
  }
}

}  // namespace serve
}  // namespace relacc
