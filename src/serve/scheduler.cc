#include "serve/scheduler.h"

#include <bit>
#include <utility>

namespace relacc {
namespace serve {

void Scheduler::LatencyHistogram::Record(int64_t ms) {
  const unsigned width =
      std::bit_width(static_cast<uint64_t>(ms < 0 ? 0 : ms));
  buckets[width < 32 ? width : 31] += 1;
  ++count;
}

double Scheduler::LatencyHistogram::PercentileMs(double p) const {
  if (count == 0) return 0.0;
  const int64_t rank =
      static_cast<int64_t>(p * static_cast<double>(count) + 0.5);
  int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket i holds ms values of bit width i: upper bound 2^i - 1.
      return static_cast<double>((int64_t{1} << i) - 1);
    }
  }
  return static_cast<double>((int64_t{1} << 31) - 1);
}

Scheduler::Scheduler() : Scheduler(Options()) {}

Scheduler::Scheduler(Options options) : options_(options) {
  executor_ = std::thread([this] { ExecutorLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

Status Scheduler::Enqueue(int64_t tenant, JobClass cls,
                          std::function<void()> job,
                          int64_t* retry_after_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      return Status::FailedPrecondition("scheduler is draining");
    }
    TenantQueues& q = tenants_[tenant];
    if (q.size() >= options_.queue_depth) {
      ++stats_.rejected;
      if (retry_after_ms != nullptr) {
        // Backpressure hint: time for the tenant's backlog to drain at
        // the observed mean job time. Before any job completed, a
        // nominal 10 ms quantum stands in — the hint only needs the
        // right order of magnitude to pace a client's retry loop.
        const int64_t executed =
            stats_.executed_interactive + stats_.executed_batch;
        const int64_t mean_ms =
            executed > 0 ? std::max<int64_t>(1, total_exec_ms_ / executed)
                         : 10;
        *retry_after_ms = q.size() * mean_ms;
      }
      return Status::ResourceExhausted(
          "tenant " + std::to_string(tenant) + " has " +
          std::to_string(q.size()) + " jobs pending (limit " +
          std::to_string(options_.queue_depth) + ")");
    }
    (cls == JobClass::kInteractive ? q.interactive : q.batch)
        .push_back(QueuedJob{std::move(job), Clock::now()});
    MarkReady(tenant, cls);
  }
  work_cv_.notify_one();
  return Status::OK();
}

void Scheduler::RequeueFront(int64_t tenant, JobClass cls,
                             std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // abrupt teardown: the continuation is dropped
    TenantQueues& q = tenants_[tenant];
    // The continuation's latency clock restarts here: each quantum of a
    // multi-window job is its own latency sample.
    (cls == JobClass::kInteractive ? q.interactive : q.batch)
        .push_front(QueuedJob{std::move(job), Clock::now()});
    MarkReady(tenant, cls);
  }
  work_cv_.notify_one();
}

void Scheduler::RemoveTenant(int64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.erase(tenant);
  for (std::deque<int64_t>* rotation : {&ready_interactive_, &ready_batch_}) {
    for (auto it = rotation->begin(); it != rotation->end();) {
      it = *it == tenant ? rotation->erase(it) : it + 1;
    }
  }
}

void Scheduler::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_ || stop_;
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.p50_interactive_ms = latency_interactive_.PercentileMs(0.50);
  out.p99_interactive_ms = latency_interactive_.PercentileMs(0.99);
  out.p50_batch_ms = latency_batch_.PercentileMs(0.50);
  out.p99_batch_ms = latency_batch_.PercentileMs(0.99);
  return out;
}

void Scheduler::MarkReady(int64_t tenant, JobClass cls) {
  std::deque<int64_t>& rotation =
      cls == JobClass::kInteractive ? ready_interactive_ : ready_batch_;
  for (const int64_t t : rotation) {
    if (t == tenant) return;
  }
  rotation.push_back(tenant);
}

bool Scheduler::PopNext(QueuedJob* job, JobClass* cls) {
  // Interactive strictly first; round-robin across tenants within the
  // class (the tenant leaves the rotation while its job runs and
  // re-enters at the back, so no tenant runs twice before a ready peer
  // ran once).
  for (JobClass c : {JobClass::kInteractive, JobClass::kBatch}) {
    std::deque<int64_t>& rotation =
        c == JobClass::kInteractive ? ready_interactive_ : ready_batch_;
    while (!rotation.empty()) {
      const int64_t tenant = rotation.front();
      rotation.pop_front();
      auto it = tenants_.find(tenant);
      if (it == tenants_.end()) continue;  // removed while queued
      std::deque<QueuedJob>& q = c == JobClass::kInteractive
                                     ? it->second.interactive
                                     : it->second.batch;
      if (q.empty()) continue;
      *job = std::move(q.front());
      q.pop_front();
      *cls = c;
      if (!q.empty()) rotation.push_back(tenant);
      return true;
    }
  }
  return false;
}

void Scheduler::ExecutorLoop() {
  for (;;) {
    QueuedJob job;
    JobClass cls = JobClass::kInteractive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stop_) return;
        if (PopNext(&job, &cls)) break;
        // Queues are empty. Draining means no further Enqueue can add
        // work and no job is running to spawn a continuation, so this
        // is the drained fixpoint.
        if (draining_) return;
        work_cv_.wait(lock);
      }
    }
    const Clock::time_point started = Clock::now();
    job.fn();
    const Clock::time_point done = Clock::now();
    const auto ms_since = [&done](Clock::time_point t) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(done - t)
          .count();
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cls == JobClass::kInteractive) {
        ++stats_.executed_interactive;
        latency_interactive_.Record(ms_since(job.enqueued));
      } else {
        ++stats_.executed_batch;
        latency_batch_.Record(ms_since(job.enqueued));
      }
      total_exec_ms_ += ms_since(started);
    }
  }
}

}  // namespace serve
}  // namespace relacc
